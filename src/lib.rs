//! Umbrella crate for the PAPI reproduction workspace.
//!
//! Re-exports the public crates so that examples and integration tests can
//! use a single dependency. See the individual crates for the real APIs:
//!
//! * [`simcpu`] — the simulated processor substrate.
//! * [`papi`] (crate `papi-core`) — the portable counter interface.
//! * [`tools`] (crate `papi-tools`) — dynaprof, perfometer, papirun, calibrate, tracer.
//! * [`toolkit`] (crate `papi-toolkit`) — TAU/SvPablo-style multi-metric profiling.
//! * [`obs`] (crate `papi-obs`) — self-instrumentation: internal metrics
//!   registry, structured event journal, overhead self-accounting.
//! * [`perfctr`] (crate `perfctr-emu`) — the Linux kernel-patch counter ABI.
//! * [`workloads`] (crate `papi-workloads`) — synthetic workload generators.

pub use papi_core as papi;
pub use papi_obs as obs;
pub use papi_toolkit as toolkit;
pub use papi_tools as tools;
pub use papi_workloads as workloads;
pub use perfctr_emu as perfctr;
pub use simcpu;
