//! Accuracy integration tests: the §4 claims, end to end.

use papi_suite::papi::{sampling, Papi, Preset, ProfilConfig, SimSubstrate};
use papi_suite::tools::{calibrate_workload, Dynaprof, ProbeMetric};
use papi_suite::workloads::{calibration_suite, dense_fp, tight_calls};
use simcpu::platform::{sim_alpha, sim_generic, sim_ia64, sim_x86};
use simcpu::{EventKind, Machine, Program, SampleConfig};

#[test]
fn calibration_exact_on_exact_mappings() {
    // On every platform, every calibration row whose mapping is exact must
    // match the analytic expectation exactly — "event counts converge to
    // the expected value".
    for plat in simcpu::all_platforms() {
        for w in calibration_suite() {
            for row in calibrate_workload(&plat, &w, 9) {
                if !row.inexact_mapping {
                    assert!(
                        row.pass(),
                        "{}/{}/{}: measured {} expected {}",
                        row.platform,
                        row.workload,
                        row.preset.name(),
                        row.measured,
                        row.expected
                    );
                }
            }
        }
    }
}

#[test]
fn inexact_mappings_overcount_never_undercount() {
    // Inexact mappings are supersets: measured >= expected.
    for plat in simcpu::all_platforms() {
        for w in calibration_suite() {
            for row in calibrate_workload(&plat, &w, 9) {
                if row.inexact_mapping {
                    assert!(
                        row.measured >= row.expected,
                        "{}/{}/{}: superset mapping undercounted",
                        row.platform,
                        row.workload,
                        row.preset.name()
                    );
                }
            }
        }
    }
}

#[test]
fn multiplex_error_shrinks_with_runtime() {
    // §2: estimates converge only with sufficient runtime.
    let err_at = |iters: u32| -> f64 {
        let mut m = Machine::new(sim_x86(), 33);
        let mut b = simcpu::ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(iters, |f| {
                f.ffma(3);
                f.fdiv(1);
                f.load(simcpu::AddrGen::Stride {
                    base: 0x10_0000,
                    stride: 64,
                    len: 1 << 16,
                });
            });
        });
        m.load(b.build("main"));
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        for p in [Preset::FmaIns, Preset::FpOps, Preset::FdvIns, Preset::LdIns] {
            papi.add_event(set, p.code()).unwrap();
        }
        papi.set_multiplex(set).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let v = papi.stop(set).unwrap();
        let it = iters as i64;
        let errs = [
            (v[0] - 3 * it).abs() as f64 / (3 * it) as f64, // FMA
            (v[2] - it).abs() as f64 / it as f64,           // FDV
            (v[3] - it).abs() as f64 / it as f64,           // LD
        ];
        errs.into_iter().fold(0.0, f64::max)
    };
    let short = err_at(5_000);
    let long = err_at(1_000_000);
    assert!(long < 0.05, "long-run multiplex error {long}");
    assert!(
        short > 2.0 * long,
        "short {short} should be much worse than long {long}"
    );
}

#[test]
fn sampling_estimates_with_lower_overhead_than_reads() {
    // §4: "aggregate event counts can be estimated from sampling data with
    // lower overhead than direct counting" — compare wall cycles of a run
    // with frequent direct reads vs a sampled run on the DCPI-like
    // substrate.
    let build = || {
        let mut m = Machine::new(sim_alpha(), 55);
        m.load(dense_fp(50_000, 4, 0).program);
        Papi::init(SimSubstrate::new(m)).unwrap()
    };

    // Direct: read the counter 500 times during the run.
    let mut direct = build();
    let set = direct.create_eventset();
    direct.add_event(set, Preset::TotIns.code()).unwrap();
    direct.start(set).unwrap();
    for _ in 0..500 {
        let _ = direct.read(set).unwrap();
    }
    direct.run_app().unwrap();
    let _ = direct.stop(set).unwrap();
    let direct_cycles = direct.get_real_cyc();

    // Sampled: no reads; estimate from ProfileMe samples.
    let mut sampled = build();
    let set = sampled.create_eventset();
    sampled.add_event(set, Preset::TotCyc.code()).unwrap();
    sampled
        .start_sampling(SampleConfig {
            period: 512,
            jitter: 64,
            buffer_capacity: 512,
        })
        .unwrap();
    sampled.start(set).unwrap();
    sampled.run_app().unwrap();
    sampled.stop(set).unwrap();
    let samples = sampled.stop_sampling().unwrap();
    let sampled_cycles = sampled.get_real_cyc();

    let est = sampling::estimate_count(&samples, 512, EventKind::FpFma);
    let err = (est as f64 - 200_000.0).abs() / 200_000.0;
    assert!(err < 0.1, "sampled estimate off by {err}");
    assert!(
        sampled_cycles < direct_cycles,
        "sampling ({sampled_cycles}) should cost less than 500 reads ({direct_cycles})"
    );
}

#[test]
fn attribution_precise_sampling_beats_skidded_pc() {
    // §4: overflow-PC profiles mis-attribute on OoO; EAR/ProfileMe samples
    // attribute exactly. Compare both against ground truth for the same
    // FMA-at-known-PCs workload.
    let prog = dense_fp(200_000, 2, 2).program;
    // Ground truth: the two FMA instructions are at indices 0 and 1.
    let fma_pcs: Vec<u64> = vec![Program::pc_of(0), Program::pc_of(1)];

    // --- skidded overflow-PC profile on the big-window OoO alpha ---
    let mut m = Machine::new(sim_alpha(), 77);
    m.load(prog.clone());
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let set = papi.create_eventset();
    let fp = papi.event_name_to_code("retinst_fp").unwrap();
    papi.add_event(set, fp).unwrap();
    let pid = papi
        .profil(
            set,
            fp,
            ProfilConfig {
                start: simcpu::TEXT_BASE,
                end: Program::pc_of(64),
                bucket_bytes: 4,
                threshold: 400,
            },
        )
        .unwrap();
    papi.start(set).unwrap();
    papi.run_app().unwrap();
    papi.stop(set).unwrap();
    let prof = papi.profil_histogram(pid).unwrap();
    let on_target: u64 = fma_pcs
        .iter()
        .map(|&pc| prof.buckets()[((pc - simcpu::TEXT_BASE) / 4) as usize])
        .sum();
    let total = prof.total_samples();
    let skid_accuracy = on_target as f64 / total as f64;

    // --- precise ProfileMe profile on the same machine ---
    let mut m = Machine::new(sim_alpha(), 77);
    m.load(prog);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let set = papi.create_eventset();
    papi.add_event(set, Preset::TotCyc.code()).unwrap();
    papi.start_sampling(SampleConfig {
        period: 400,
        jitter: 50,
        buffer_capacity: 512,
    })
    .unwrap();
    papi.start(set).unwrap();
    papi.run_app().unwrap();
    papi.stop(set).unwrap();
    let samples = papi.stop_sampling().unwrap();
    let fp_samples: Vec<_> = samples.iter().filter(|s| s.has(EventKind::FpFma)).collect();
    let exact_on_target = fp_samples
        .iter()
        .filter(|s| fma_pcs.contains(&s.pc))
        .count() as f64
        / fp_samples.len().max(1) as f64;

    assert!(
        skid_accuracy < 0.7,
        "OoO skid should smear attribution, got {skid_accuracy}"
    );
    assert!(
        (exact_on_target - 1.0).abs() < f64::EPSILON,
        "precise samples must attribute exactly, got {exact_on_target}"
    );
}

#[test]
fn in_order_pc_attribution_is_tight() {
    // On the in-order Itanium-like platform the same overflow-PC profile is
    // nearly exact (skid 0..2 instructions).
    let prog = dense_fp(100_000, 2, 2).program;
    let mut m = Machine::new(sim_ia64(), 13);
    m.load(prog);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let set = papi.create_eventset();
    papi.add_event(set, Preset::FmaIns.code()).unwrap();
    let pid = papi
        .profil(
            set,
            Preset::FmaIns.code(),
            ProfilConfig {
                start: simcpu::TEXT_BASE,
                end: Program::pc_of(64),
                bucket_bytes: 4,
                threshold: 500,
            },
        )
        .unwrap();
    papi.start(set).unwrap();
    papi.run_app().unwrap();
    papi.stop(set).unwrap();
    let prof = papi.profil_histogram(pid).unwrap();
    // With skid <= 2 every sample lands within 3 instructions of an FMA
    // (indices 0..=3 cover FMA+skid inside the 5-inst loop).
    let near: u64 = prof.buckets()[..5.min(prof.buckets().len())].iter().sum();
    let frac = near as f64 / prof.total_samples() as f64;
    assert!(
        frac > 0.95,
        "in-order attribution should stay in the loop, got {frac}"
    );
}

#[test]
fn data_ears_separate_code_and_data_attribution() {
    // §4: EARs identify instruction *and data* addresses. A pointer chase
    // has ONE hot load instruction but misses spread over thousands of data
    // pages — code-centric and data-centric profiles must show exactly that.
    use papi_suite::papi::sampling::data_profile_from_samples;
    let mut b = simcpu::ProgramBuilder::new();
    b.func("main", |f| {
        f.loop_(150_000, |f| {
            f.load(simcpu::AddrGen::Chase {
                base: 0x100_0000,
                len: 8 << 20,
            });
        });
    });
    let mut m = Machine::new(sim_ia64(), 21);
    m.load(b.build("main"));
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let set = papi.create_eventset();
    papi.add_event(set, Preset::TotCyc.code()).unwrap();
    papi.start_sampling(SampleConfig {
        period: 300,
        jitter: 30,
        buffer_capacity: 512,
    })
    .unwrap();
    papi.start(set).unwrap();
    papi.run_app().unwrap();
    papi.stop(set).unwrap();
    let samples = papi.stop_sampling().unwrap();
    // Code-centric: all miss samples name the single load instruction.
    let miss_pcs: std::collections::HashSet<u64> = samples
        .iter()
        .filter(|s| s.has(EventKind::L1DMiss))
        .map(|s| s.pc)
        .collect();
    assert_eq!(
        miss_pcs.len(),
        1,
        "one hot load instruction, got {miss_pcs:?}"
    );
    // Data-centric: the same samples cover many distinct 4 KiB pages.
    let dp = data_profile_from_samples(&samples, EventKind::L1DMiss, 4096);
    assert!(
        dp.len() > 100,
        "chase should touch many pages, got {}",
        dp.len()
    );
    // All data addresses are inside the chase region.
    for &(page, _) in &dp {
        assert!(
            (0x100_0000..0x100_0000 + (8 << 20)).contains(&page),
            "{page:#x}"
        );
    }
}

#[test]
fn instrumentation_overhead_direct_vs_sampling_shape() {
    // E3 shape at integration level: per-call direct reads on sim-x86 cost
    // tens of percent; buffered sampling on sim-alpha costs a few percent.
    // The run must be long enough to amortize one-time setup costs, as the
    // paper's measurements were.
    let w = tight_calls(200_000, 4);

    // Baseline cycles (uninstrumented) per platform.
    let baseline = |spec: simcpu::PlatformSpec| {
        let mut m = Machine::new(spec, 2);
        m.load(w.program.clone());
        m.run_to_halt();
        m.cycles()
    };

    // Direct-counting instrumentation on x86 (probe reads each entry/exit).
    let x86_base = baseline(sim_x86());
    let mut dp = Dynaprof::load(w.program.clone());
    let iprog = dp.instrument(&["leaf"]).unwrap();
    let mut m = Machine::new(sim_x86(), 2);
    m.load(iprog);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    dp.run(&mut papi, ProbeMetric::Papi(Preset::TotIns.code()))
        .unwrap();
    let x86_overhead = (papi.get_real_cyc() as f64 - x86_base as f64) / x86_base as f64;

    // Sampling-based observation on alpha: no per-call reads at all.
    let alpha_base = baseline(sim_alpha());
    let mut m = Machine::new(sim_alpha(), 2);
    m.load(w.program.clone());
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let set = papi.create_eventset();
    papi.add_event(set, Preset::TotCyc.code()).unwrap();
    papi.start_sampling(SampleConfig {
        period: 2048,
        jitter: 256,
        buffer_capacity: 512,
    })
    .unwrap();
    papi.start(set).unwrap();
    papi.run_app().unwrap();
    papi.stop(set).unwrap();
    let _ = papi.stop_sampling().unwrap();
    let alpha_overhead = (papi.get_real_cyc() as f64 - alpha_base as f64) / alpha_base as f64;

    assert!(
        x86_overhead > 0.15,
        "direct counting should be heavy: {x86_overhead}"
    );
    assert!(
        alpha_overhead < 0.05,
        "sampling should be light: {alpha_overhead}"
    );
}

#[test]
fn measurement_perturbs_the_cache() {
    // The act of measuring perturbs the measured program: mid-run reads
    // pollute the cache and increase the workload's own misses.
    let misses_with_reads = |n_reads: u32| -> i64 {
        let mut b = simcpu::ProgramBuilder::new();
        // A working set that just fits L1: pollution causes extra misses.
        b.func("main", |f| {
            f.loop_(40_000, |f| {
                f.load(simcpu::AddrGen::Stride {
                    base: 0x10_0000,
                    stride: 64,
                    len: 14 * 1024,
                });
            });
        });
        let mut m = Machine::new(sim_generic(), 4);
        m.load(b.build("main"));
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::L1Dcm.code()).unwrap();
        papi.start(set).unwrap();
        // Interleave reads with execution (as a naive per-interval monitor
        // would): each read crosses the kernel and pollutes L1.
        let mut reads_left = n_reads;
        loop {
            match papi.run_for(10_000).unwrap() {
                papi_suite::papi::AppExit::Halted => break,
                _ => {
                    if reads_left > 0 {
                        let _ = papi.read(set).unwrap();
                        reads_left -= 1;
                    }
                }
            }
        }
        papi.stop(set).unwrap()[0]
    };
    let quiet = misses_with_reads(0);
    let noisy = misses_with_reads(400);
    assert!(
        noisy > quiet,
        "cache pollution must be visible: {noisy} vs {quiet}"
    );
}

#[test]
fn calibration_stays_inside_the_recorded_experiment_envelope() {
    // Regression lock on E4 (EXPERIMENTS.md): the calibration sweep's
    // aggregate accuracy must never drift from what was recorded there —
    // 235 measurements, all 210 exact mappings analytically exact, 25
    // inexact-flagged supersets of which exactly 8 differ, worst-case
    // overcount the POWER3 convert/rounding anecdote (+33.3 %).
    use papi_suite::tools::calibrate_all;

    let rows = calibrate_all(&simcpu::all_platforms(), &calibration_suite(), 9);
    assert_eq!(rows.len(), 235, "calibration sweep changed shape");

    let (exact, inexact): (Vec<_>, Vec<_>) = rows.iter().partition(|r| !r.inexact_mapping);
    assert_eq!(exact.len(), 210);
    assert_eq!(inexact.len(), 25);
    for r in &exact {
        assert!(
            r.pass(),
            "{}/{}/{}: exact mapping drifted: measured {} expected {}",
            r.platform,
            r.workload,
            r.preset.name(),
            r.measured,
            r.expected
        );
    }
    let differing = inexact.iter().filter(|r| !r.pass()).count();
    assert_eq!(differing, 8, "inexact-mapping mismatch count drifted");
    for r in &inexact {
        // Superset mappings overcount, never undercount, and by at most
        // 2× (T3E counts FMA as two FP instructions; the one zero-expected
        // row — ultra FMA on convert_mix — is excluded from the ratio).
        assert!(
            r.measured >= r.expected,
            "{}/{}/{}: superset mapping undercounted",
            r.platform,
            r.workload,
            r.preset.name()
        );
        if r.expected > 0 {
            let e = r.rel_error();
            assert!(
                e <= 1.0001,
                "{}/{}/{}: inexact mapping outside the recorded envelope: {:.4}",
                r.platform,
                r.workload,
                r.preset.name(),
                e
            );
        }
    }

    // The reproduced paper anecdote: POWER3 counts convert/rounding
    // instructions as FP instructions (15 000 expected, 20 000 measured).
    let anecdote = rows
        .iter()
        .find(|r| {
            r.platform.contains("power3")
                && r.workload == "convert_mix"
                && r.preset == Preset::FpIns
        })
        .expect("the POWER3 convert_mix FpIns row disappeared");
    assert_eq!(anecdote.expected, 15_000);
    assert_eq!(anecdote.measured, 20_000);
}

/// `papi_calibrate` and `papi_validate` score through the one shared
/// grading module, proven over the whole recorded E4 envelope: every one
/// of the 235 rows passes `CalRow::pass` exactly when `grading::grade`
/// says `exact` (and `grade_with_floor` at zero floor — the validator's
/// direct-mode call — agrees), and each of the 8 recorded discrepancies
/// grades `deviates` carrying the ratio `1 + rel_error`. If either tool
/// ever grew its own comparison arithmetic again, some row here would
/// disagree.
#[test]
fn calibrate_scoring_is_the_shared_grading_module() {
    use papi_suite::tools::calibrate_all;
    use papi_suite::workloads::grading::{self, Grade};

    let rows = calibrate_all(&simcpu::all_platforms(), &calibration_suite(), 9);
    assert_eq!(rows.len(), 235, "calibration sweep changed shape");

    let mut deviating = 0;
    for r in &rows {
        let g = grading::grade(r.expected, r.measured, 0.0);
        let coord = format!("{}/{}/{}", r.platform, r.workload, r.preset.name());
        assert_eq!(
            r.grade().label(),
            g.label(),
            "{coord}: CalRow::grade drifted"
        );
        assert_eq!(
            r.pass(),
            g == Grade::Exact,
            "{coord}: pass() and grade() disagree"
        );
        let v = grading::grade_with_floor(r.expected, r.measured, 0.0, 0.0);
        assert_eq!(
            g.label(),
            v.label(),
            "{coord}: validator's grading entry point disagrees"
        );
        if let Grade::Deviates { ratio } = g {
            deviating += 1;
            if r.expected > 0 {
                assert!(
                    (ratio - (1.0 + r.rel_error())).abs() < 1e-9,
                    "{coord}: deviates ratio {ratio} inconsistent with rel_error"
                );
            }
        }
    }
    assert_eq!(deviating, 8, "discrepancy count drifted from the E4 record");
}
