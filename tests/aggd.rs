//! Cross-crate integration suite for the aggregation daemon: conservation
//! under adversarial delivery, concurrency, quotas, eviction, and the
//! serving surface — all through the public crate APIs.
//!
//! The central property mirrors tests/concurrency.rs: never "nothing
//! panicked", always *exact equality* against a deterministic replay.  A
//! daemon that loses or double-applies even one frame fails these tests
//! with the seed in the message.

use papi_aggd::{
    json_get_u64, reconcile, run_workload, AggdClient, AggdConfig, AggdServer, Aggregator, ConnCtx,
    FrameBuf, WorkloadCfg,
};
use papi_obs::export::exposition;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn ingest(agg: &Aggregator, ctx: &mut ConnCtx, msg: &[u8]) {
    agg.ingest(ctx, &msg[4..]).expect("well-formed frame");
}

/// Property: random duplication and bounded reordering leave every series
/// bit-identical to an in-order replay of the unique frames — windowed
/// buckets and histograms included, not just lifetime totals.
#[test]
fn random_dup_and_reorder_replay_is_bit_equal_to_in_order() {
    for seed in [1u64, 7, 1234] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tenants = ["alpha", "beta"];
        let series = ["cyc", "ins", "lat"];
        let mut fb = FrameBuf::new();

        // Generate per-source unique frame streams (encoded bytes).
        let mut streams: Vec<Vec<Vec<u8>>> = Vec::new();
        for (t, _) in tenants.iter().enumerate() {
            for source in 0..3u64 {
                let mut stream = Vec::new();
                let mut cycles = 0u64;
                let frames = rng.gen_range(20..60);
                for seq in 0..frames {
                    cycles += rng.gen_range(100u64..4_000);
                    if rng.gen_bool(0.2) {
                        let buckets = [(rng.gen_range(0u16..40), rng.gen_range(1u64..5)), (50, 1)];
                        stream.push(fb.hist(t as u16, 2, source, seq, cycles, &buckets).to_vec());
                    } else {
                        let deltas = [
                            (0u16, rng.gen_range(1u64..100)),
                            (1u16, rng.gen_range(1u64..100)),
                        ];
                        stream.push(fb.snapshot(t as u16, source, seq, cycles, &deltas).to_vec());
                    }
                }
                streams.push(stream);
            }
        }

        let build = |cfg: &AggdConfig| {
            let agg = Aggregator::new(cfg.clone());
            let mut ctx = ConnCtx::new();
            let mut fb = FrameBuf::new();
            for (t, name) in tenants.iter().enumerate() {
                let msg = fb.bind_tenant(t as u16, name).to_vec();
                ingest(&agg, &mut ctx, &msg);
                for (s, sname) in series.iter().enumerate() {
                    let msg = fb.reg_series(t as u16, s as u16, sname).to_vec();
                    ingest(&agg, &mut ctx, &msg);
                }
            }
            (agg, ctx)
        };
        let cfg = AggdConfig::default();

        // Oracle: unique frames, in order.
        let (oracle, mut octx) = build(&cfg);
        for stream in &streams {
            for msg in stream {
                ingest(&oracle, &mut octx, msg);
            }
        }

        // Subject: per-stream bounded shuffle (within the 64-frame replay
        // window) plus random adjacent duplicates.
        let (subject, mut sctx) = build(&cfg);
        let mut delivery: Vec<&Vec<u8>> = Vec::new();
        for stream in &streams {
            let mut order: Vec<usize> = (0..stream.len()).collect();
            for chunk in order.chunks_mut(24) {
                chunk.shuffle(&mut rng);
            }
            for idx in order {
                delivery.push(&stream[idx]);
                if rng.gen_bool(0.3) {
                    delivery.push(&stream[idx]);
                }
            }
        }
        for msg in delivery {
            ingest(&subject, &mut sctx, msg);
        }

        for tname in &tenants {
            for sname in &series {
                let a = oracle.query_sum(tname, sname);
                let b = subject.query_sum(tname, sname);
                assert_eq!(a, b, "seed {seed}: {tname}/{sname} sums diverge");
                let qa = oracle.query_quantiles(tname, sname);
                let qb = subject.query_quantiles(tname, sname);
                assert_eq!(qa, qb, "seed {seed}: {tname}/{sname} quantiles diverge");
            }
        }
        // Every duplicate was seen and counted, none applied.
        let st = subject.stats();
        assert!(st.dup_dropped > 0, "seed {seed}: no dups were injected?");
        assert_eq!(
            st.frames_in,
            st.applied() + st.dup_dropped + st.dropped_frames,
            "seed {seed}: accounting identity broken"
        );
        assert_eq!(oracle.stats().applied(), st.applied(), "seed {seed}");
    }
}

/// Four concurrent writers over real sockets, each a gapless source; close
/// certifies every stream complete and the journal records tenant
/// registration.
#[test]
fn gapless_sequences_under_four_concurrent_writers() {
    let server = AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).unwrap();
    let addr = server.local_addr();
    let frames_per_writer = 500u64;
    std::thread::scope(|scope| {
        for w in 0..4u16 {
            scope.spawn(move || {
                let mut c = AggdClient::connect(addr).unwrap();
                c.bind_tenant(0, "shared").unwrap();
                c.reg_series(0, 0, "hits").unwrap();
                for seq in 0..frames_per_writer {
                    c.snapshot(0, u64::from(w), seq, seq * 1_000, &[(0, 1)])
                        .unwrap();
                }
                c.close_source(0, u64::from(w), frames_per_writer, true)
                    .unwrap();
                c.flush().unwrap();
            });
        }
    });
    let mut c = AggdClient::connect(addr).unwrap();
    let sum = c.query_series("shared", "hits").unwrap().expect("series");
    assert_eq!(
        sum.lifetime,
        4 * frames_per_writer,
        "lost or doubled frames"
    );
    let doc = c.stats_json().unwrap();
    assert_eq!(
        json_get_u64(&doc, "aggd.frames_in"),
        Some(4 * frames_per_writer)
    );
    assert_eq!(json_get_u64(&doc, "aggd.dup_dropped"), Some(0));
    assert_eq!(json_get_u64(&doc, "aggd.sources_closed"), Some(4));
    assert_eq!(json_get_u64(&doc, "aggd.sources_incomplete"), Some(0));
    // The daemon journaled the tenant registration.
    let kinds: Vec<&'static str> = server
        .aggregator()
        .obs()
        .journal_records()
        .iter()
        .map(|r| r.event.kind())
        .collect();
    assert!(
        kinds.contains(&"obs.tenant_registered"),
        "no registration journal event: {kinds:?}"
    );
    server.shutdown();
}

/// The acceptance-scale fleet: >= 1000 seeded sessions across >= 8 writer
/// threads reconcile exactly, including a chaos cohort where gave-up
/// sessions must surface as explicitly incomplete.
#[test]
fn thousand_session_fleet_reconciles_exactly_including_chaos() {
    let server = AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).unwrap();
    let synth = WorkloadCfg {
        tenants: 12,
        sessions: 1000,
        threads: 8,
        frames_per_session: 12,
        series_per_tenant: 4,
        seed: 99,
        ..WorkloadCfg::default()
    };
    let report = run_workload(server.local_addr(), &synth).unwrap();
    assert_eq!(report.completed_sessions, 1000);
    let mut c = AggdClient::connect(server.local_addr()).unwrap();
    let rec = reconcile(&mut c, &report).unwrap();
    assert!(rec.exact(), "synthetic mismatches: {:#?}", rec.mismatches);
    assert!(rec.stats.dup_dropped > 0 && rec.stats.out_of_order > 0);
    server.shutdown();

    // Chaos cohort on a fresh daemon: real fault[chaos]: sessions.
    let server = AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).unwrap();
    let chaos = WorkloadCfg {
        tenants: 6,
        sessions: 96,
        threads: 8,
        frames_per_session: 10,
        seed: 5,
        chaos: true,
        ..WorkloadCfg::default()
    };
    let report = run_workload(server.local_addr(), &chaos).unwrap();
    assert!(
        report.incomplete_sessions > 0,
        "chaos cohort should produce gave-up sessions"
    );
    assert_eq!(
        report.completed_sessions + report.incomplete_sessions,
        96,
        "every chaos session accounted"
    );
    let mut c = AggdClient::connect(server.local_addr()).unwrap();
    let rec = reconcile(&mut c, &report).unwrap();
    assert!(rec.exact(), "chaos mismatches: {:#?}", rec.mismatches);
    server.shutdown();
}

/// The Prometheus scrape validates as text exposition format and carries
/// the pushed data; the JSON stats round-trip through the scan parser.
#[test]
fn scrape_validates_and_queries_roundtrip_over_the_wire() {
    let server = AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).unwrap();
    let mut c = AggdClient::connect(server.local_addr()).unwrap();
    c.bind_tenant(0, "web \"prod\"\\1").unwrap(); // hostile label value
    c.reg_series(0, 0, "papi.tot_cyc").unwrap();
    for seq in 0..10u64 {
        c.snapshot(0, 1, seq, seq * 2_000, &[(0, 100)]).unwrap();
    }
    c.hist(0, 0, 1, 10, 20_000, &[(10, 5), (80, 2)]).unwrap();
    c.close_source(0, 1, 11, true).unwrap();
    c.flush().unwrap();

    let text = c.scrape().unwrap();
    exposition::validate(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    assert!(text.contains("papi_aggd_series_total"));
    assert!(text.contains("papi_aggd_latency"));
    // The hostile tenant name survives as an escaped label value.
    assert!(text.contains("web \\\"prod\\\"\\\\1"), "{text}");

    let sum = c
        .query_series("web \"prod\"\\1", "papi.tot_cyc")
        .unwrap()
        .unwrap();
    assert_eq!(sum.lifetime, 1_000);
    assert_eq!(sum.windowed, 1_000, "all windows inside the default ring");
    let q = c
        .query_quantiles("web \"prod\"\\1", "papi.tot_cyc")
        .unwrap()
        .unwrap();
    assert_eq!(q.count, 7);
    let doc = c.stats_json().unwrap();
    for key in [
        "aggd.frames_in",
        "aggd.dup_dropped",
        "aggd.sources_closed",
        "aggd.tenants_live",
        "aggd.bytes_per_tenant",
    ] {
        assert!(json_get_u64(&doc, key).is_some(), "missing {key} in {doc}");
    }
    assert_eq!(json_get_u64(&doc, "aggd.frames_in"), Some(11));
    server.shutdown();
}

/// Quota backpressure sheds whole frames, visibly: nothing silent, the
/// accounting identity holds, and totals reflect exactly the admitted
/// frames.
#[test]
fn quota_backpressure_sheds_frames_loudly_and_exactly() {
    let cfg = AggdConfig {
        frames_per_window_quota: 5,
        ..AggdConfig::default()
    };
    let agg = Aggregator::new(cfg);
    let mut ctx = ConnCtx::new();
    let mut fb = FrameBuf::new();
    let msg = fb.bind_tenant(0, "noisy").to_vec();
    ingest(&agg, &mut ctx, &msg);
    let msg = fb.reg_series(0, 0, "spam").to_vec();
    ingest(&agg, &mut ctx, &msg);
    // 50 frames into the same window: 5 admitted, 45 shed.
    for seq in 0..50u64 {
        let msg = fb.snapshot(0, 1, seq, 100, &[(0, 1)]).to_vec();
        ingest(&agg, &mut ctx, &msg);
    }
    let st = agg.stats();
    assert_eq!(st.frames_in, 50);
    assert_eq!(st.dropped_frames, 45);
    assert_eq!(st.applied(), 5);
    assert_eq!(agg.query_sum("noisy", "spam").unwrap().lifetime, 5);
    // Self-metrics surface the shedding in the scrape too.
    let text = agg.scrape();
    exposition::validate(&text).unwrap();
    assert!(
        text.contains("papi_aggd_self{counter=\"dropped_frames\"} 45"),
        "{text}"
    );
}

/// Tenant-table pressure evicts the least-recently-active tenant with a
/// journal record, never silently.
#[test]
fn tenant_capacity_eviction_is_journaled() {
    let cfg = AggdConfig {
        max_tenants: 2,
        ..AggdConfig::default()
    };
    let agg = Aggregator::new(cfg);
    let mut ctx = ConnCtx::new();
    let mut fb = FrameBuf::new();
    for (t, name) in ["a", "b", "c"].iter().enumerate() {
        let msg = fb.bind_tenant(t as u16, name).to_vec();
        ingest(&agg, &mut ctx, &msg);
        let msg = fb.reg_series(t as u16, 0, "x").to_vec();
        ingest(&agg, &mut ctx, &msg);
        let msg = fb.snapshot(t as u16, 0, 0, 100, &[(0, 1)]).to_vec();
        ingest(&agg, &mut ctx, &msg);
    }
    let st = agg.stats();
    assert_eq!(st.tenants_registered, 3);
    assert_eq!(st.tenants_evicted, 1);
    assert_eq!(st.tenants_live, 2);
    let evictions: Vec<String> = agg
        .obs()
        .journal_records()
        .iter()
        .filter_map(|r| match &r.event {
            papi_obs::JournalEvent::TenantEvicted { tenant, reason } => {
                Some(format!("{tenant}:{reason}"))
            }
            _ => None,
        })
        .collect();
    assert_eq!(evictions, vec!["a:capacity".to_string()]);
}
