//! Fault-injection integration tests: the portable layer's graceful
//! degradation, end to end.
//!
//! Each test runs a workload on a clean substrate and again behind the
//! `fault:` decorator ([`papi_suite::papi::FaultSubstrate`]) with a seeded
//! plan — narrow wrapping counters preloaded near saturation, transient
//! call failures in bursts, delayed overflow delivery — and asserts the
//! API-visible behaviour is indistinguishable: counts identical (widening),
//! overflow deliveries identical (deferred-exit queueing), retries bounded
//! and accounted in papi-obs.

use papi_suite::obs::{Counter as ObsCounter, Obs};
use papi_suite::papi::{
    AppExit, BoxSubstrate, Papi, Preset, Substrate, SubstrateRegistry,
    DEFAULT_TRANSIENT_RETRY_BUDGET,
};
use papi_suite::tools::full_registry;
use papi_suite::workloads::dense_fp;

/// Preload value 1296 counts below the 32-bit wrap: any workload with more
/// events than that crosses the wrap mid-run.
const NEAR_WRAP: &str = "fault[bits=32,preload=4294966000]:";

fn session(reg: &SubstrateRegistry, name: &str, seed: u64) -> Papi<BoxSubstrate> {
    let mut papi = Papi::init_from_registry(reg, name, seed).unwrap();
    papi.substrate_mut()
        .load_program(dense_fp(2_000, 2, 1).program)
        .unwrap();
    papi
}

/// Events that resolve on every builtin platform for a 2-counter set.
fn add_portable_events(papi: &mut Papi<BoxSubstrate>) -> usize {
    let set = papi.create_eventset();
    papi.add_event(set, Preset::TotIns.code()).unwrap();
    for p in [Preset::FpOps, Preset::LdIns, Preset::TotCyc] {
        if papi.query_event(p.code()) && papi.add_event(set, p.code()).is_ok() {
            break;
        }
    }
    set
}

fn run_counts(reg: &SubstrateRegistry, name: &str) -> Vec<i64> {
    let mut papi = session(reg, name, 7);
    let set = add_portable_events(&mut papi);
    // Group-allocated platforms may not offer the event pair in one group;
    // fall back to counting TotIns alone there.
    let set = match papi.start(set) {
        Ok(()) => set,
        Err(_) => {
            let solo = papi.create_eventset();
            papi.add_event(solo, Preset::TotIns.code()).unwrap();
            papi.start(solo).unwrap();
            solo
        }
    };
    papi.run_app().unwrap();
    papi.stop(set).unwrap()
}

#[test]
fn counts_survive_32bit_wraparound_on_every_substrate() {
    // The counters wrap mid-run (preloaded 1296 counts below 2^32); the
    // widening layer must hand back exactly the fault-free totals, on all
    // eight simulated platforms and the perfctr emulation.
    let reg = full_registry();
    for name in reg.names() {
        let clean = run_counts(&reg, name);
        let wrapped = run_counts(&reg, &format!("{NEAR_WRAP}{name}"));
        assert_eq!(
            clean, wrapped,
            "{name}: counts diverged across a 32-bit counter wrap"
        );
    }
}

#[test]
fn accum_chunks_survive_wraparound() {
    // Accumulating in chunks re-baselines the widening state on every
    // reset; the chunked totals must still equal the straight-line run.
    let reg = full_registry();
    let clean = run_counts(&reg, "sim:x86");
    let mut papi = session(&reg, &format!("{NEAR_WRAP}sim:x86"), 7);
    let set = add_portable_events(&mut papi);
    let n = papi.num_events(set).unwrap();
    papi.start(set).unwrap();
    let mut totals = vec![0i64; n];
    loop {
        let exit = papi.run_for(3_000).unwrap();
        papi.accum(set, &mut totals).unwrap();
        if matches!(exit, AppExit::Halted) {
            break;
        }
    }
    let tail = papi.stop(set).unwrap();
    for (t, v) in totals.iter_mut().zip(tail) {
        *t += v;
    }
    assert_eq!(clean, totals, "accumulated totals diverged across the wrap");
}

#[test]
fn multiplexed_estimates_survive_wraparound() {
    // Multiplex estimation scales raw partition readings by active time;
    // the raw deltas feeding it must be widened too, or a wrap poisons the
    // estimate catastrophically (not just by estimation error).
    let estimates = |name: &str| -> Vec<i64> {
        let reg = full_registry();
        let mut papi = Papi::init_from_registry(&reg, name, 7).unwrap();
        papi.substrate_mut()
            .load_program(dense_fp(60_000, 3, 1).program)
            .unwrap();
        let set = papi.create_eventset();
        for p in [Preset::TotIns, Preset::FpOps, Preset::LdIns, Preset::SrIns] {
            papi.add_event(set, p.code()).unwrap();
        }
        papi.set_multiplex(set).unwrap();
        papi.set_multiplex_period(set, 10_000).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        papi.stop(set).unwrap()
    };
    let clean = estimates("sim:x86");
    let wrapped = estimates(&format!("{NEAR_WRAP}sim:x86"));
    for (c, w) in clean.iter().zip(&wrapped) {
        let diff = (c - w).abs() as f64;
        assert!(
            diff <= 2.0 + 0.25 * (*c.max(w) as f64),
            "multiplexed estimate diverged across the wrap: clean {clean:?} wrapped {wrapped:?}"
        );
        assert!(*w >= 0, "wrapped run produced a negative estimate: {w}");
    }
}

#[test]
fn delayed_overflow_delivers_exactly_once_with_gapless_journal() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let fires_on = |name: &str| -> (u64, i64) {
        let reg = full_registry();
        let mut papi = session(&reg, name, 7);
        let obs = Obs::new();
        obs.enable_journal(8192);
        papi.attach_obs(obs.clone());
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        let fires = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fires);
        papi.overflow(
            set,
            Preset::TotIns.code(),
            1_000,
            Box::new(move |_| {
                f.fetch_add(1, Ordering::Relaxed);
            }),
        )
        .unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let v = papi.stop(set).unwrap();

        // The self-observation journal must be gapless: consecutive
        // sequence numbers, nothing dropped, even while overflow exits are
        // being deferred and retries are being recorded.
        assert_eq!(obs.journal_dropped(), 0);
        let records = obs.journal_records();
        assert!(!records.is_empty());
        for pair in records.windows(2) {
            assert_eq!(
                pair[1].seq,
                pair[0].seq + 1,
                "journal sequence gap on {name}"
            );
        }
        (fires.load(Ordering::Relaxed), v[0])
    };

    let (clean_fires, clean_total) = fires_on("sim:x86");
    assert!(clean_fires > 5, "workload too small to overflow");
    // Delay every overflow delivery by a seeded 150..300 cycles and jitter
    // the multiplex timer; every crossing must still be delivered exactly
    // once before stop returns.
    let (late_fires, late_total) = fires_on("fault[ovfdelay=150,jitter=120]:sim:x86");
    assert_eq!(clean_total, late_total);
    assert_eq!(
        clean_fires, late_fires,
        "delayed delivery dropped or duplicated an overflow"
    );
}

#[test]
fn transient_read_failures_are_retried_and_accounted() {
    let reg = full_registry();
    let clean = run_counts(&reg, "sim:x86");

    let mut papi = session(&reg, "fault[read=3,start=2,stop=2,burst=2]:sim:x86", 7);
    let obs = Obs::new();
    papi.attach_obs(obs.clone());
    let set = add_portable_events(&mut papi);
    papi.start(set).unwrap();
    loop {
        if matches!(papi.run_for(2_000).unwrap(), AppExit::Halted) {
            break;
        }
        papi.read(set).unwrap();
    }
    let v = papi.stop(set).unwrap();
    assert_eq!(clean, v, "retried reads changed the counts");
    assert!(
        obs.get(ObsCounter::FaultRetries) > 0,
        "the fault schedule never tripped a retry"
    );
    assert_eq!(
        obs.get(ObsCounter::FaultGaveUp),
        0,
        "bursts within the budget must never give up"
    );
}

#[test]
fn permanent_failure_gives_up_after_bounded_budget() {
    // read period 1 = every read call fails: the retry loop must give up
    // after exactly the configured budget and surface the transient error
    // (PAPI_EMISC), with the give-up accounted in papi-obs.
    let reg = full_registry();
    let mut papi = session(&reg, "fault[read=1]:sim:x86", 7);
    let obs = Obs::new();
    papi.attach_obs(obs.clone());
    let set = add_portable_events(&mut papi);
    papi.start(set).unwrap();
    let err = papi.read(set).unwrap_err();
    assert!(err.is_transient(), "expected a transient error, got {err}");
    assert_eq!(
        obs.get(ObsCounter::FaultRetries),
        DEFAULT_TRANSIENT_RETRY_BUDGET as u64
    );
    assert!(obs.get(ObsCounter::FaultGaveUp) >= 1);

    // A zero budget disables retrying entirely.
    let mut papi = session(&reg, "fault[read=1]:sim:x86", 7);
    let obs = Obs::new();
    papi.attach_obs(obs.clone());
    papi.set_transient_retry_budget(0);
    let set = add_portable_events(&mut papi);
    papi.start(set).unwrap();
    assert!(papi.read(set).is_err());
    assert_eq!(obs.get(ObsCounter::FaultRetries), 0);
    assert!(obs.get(ObsCounter::FaultGaveUp) >= 1);
}

#[test]
fn chaos_schedule_is_fully_absorbed_end_to_end() {
    // The kitchen-sink plan (seeded narrow counters, preload, transient
    // bursts, delayed overflow, timer jitter) must be invisible in the
    // final counts on several seeds.
    let reg = full_registry();
    for seed in [11, 12, 13] {
        let run = |name: &str| -> Vec<i64> {
            let mut papi = Papi::init_from_registry(&reg, name, seed).unwrap();
            papi.substrate_mut()
                .load_program(dense_fp(2_000, 2, 1).program)
                .unwrap();
            let set = add_portable_events(&mut papi);
            papi.start(set).unwrap();
            papi.run_app().unwrap();
            papi.stop(set).unwrap()
        };
        assert_eq!(
            run("sim:x86"),
            run("fault[chaos]:sim:x86"),
            "chaos seed {seed} leaked into the counts"
        );
    }
}
