//! Concurrency stress suite for the sharded per-thread session table.
//!
//! Röhl et al.'s event-validation lesson is that concurrent counting is
//! where silent miscounts hide, so these tests don't just check "nothing
//! panicked": every thread's counts are checked for *exact* equality
//! against a single-threaded replay of the same seeded workload
//! (deterministic `SmallRng` drive loops, like tests/props.rs — failures
//! reproduce from the seed in the assert message).

use papi_suite::papi::threads::{PapiThread, TaggedSetId, ThreadedPapi, NUM_SHARDS};
use papi_suite::papi::{CountSnapshot, Papi, PapiError, Preset, SimSubstrate, Substrate};
use papi_suite::workloads::{random_program, RandomCfg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcpu::{platform, Machine};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A pool whose registered threads each get a private generic machine
/// running the seed-determined random program.
fn sim_pool() -> Arc<ThreadedPapi<SimSubstrate>> {
    Arc::new(ThreadedPapi::new(0, |seed| {
        let mut m = Machine::new(platform::sim_generic(), seed);
        m.load(random_program(seed, RandomCfg::default()));
        Papi::init(SimSubstrate::new(m))
    }))
}

/// The seeded per-thread workload: interleaved run/read_into/accum/reset
/// traffic on one EventSet, returning the total counts it observed. Fully
/// deterministic in (`seed`, the session's machine) — the replay oracle.
fn drive<S: Substrate + Send>(token: &PapiThread<S>, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1CE);
    let set = token.create_eventset();
    token
        .add_events(set, &[Preset::TotIns.code(), Preset::LdIns.code()])
        .unwrap();
    token.start(set).unwrap();
    let mut totals = vec![0i64; 2];
    let mut out = [0i64; 2];
    for _ in 0..25 {
        token.run_for(rng.gen_range(1_000..20_000)).unwrap();
        token.read_into(set, &mut out).unwrap();
        if rng.gen_bool(0.4) {
            // accum reads-and-resets: fold the epoch into the totals.
            let mut acc = [0i64; 2];
            token.accum(set, &mut acc).unwrap();
            for (t, a) in totals.iter_mut().zip(acc) {
                *t += a;
            }
        }
    }
    let tail = token.stop(set).unwrap();
    for (t, v) in totals.iter_mut().zip(tail) {
        *t += v;
    }
    token.destroy_eventset(set).unwrap();
    totals
}

#[test]
fn per_thread_totals_match_single_threaded_replay() {
    let mut rng = SmallRng::seed_from_u64(0x2001);
    let seeds: Vec<u64> = (0..4).map(|_| rng.gen_range(0u64..5000)).collect();

    // Concurrent run: 4 registered threads drive their workloads at once.
    let pool = sim_pool();
    let mut joins = Vec::new();
    for &seed in &seeds {
        let pool = pool.clone();
        joins.push(std::thread::spawn(move || {
            let token = pool.register_thread_seeded(seed).unwrap();
            let totals = drive(&token, seed);
            pool.unregister_thread(token).unwrap();
            totals
        }));
    }
    let concurrent: Vec<Vec<i64>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    assert_eq!(pool.registered_threads(), 0);

    // Replay: same seeds, same factory, one thread, one session at a time.
    let replay_pool = sim_pool();
    for (i, &seed) in seeds.iter().enumerate() {
        let token = replay_pool.register_thread_seeded(seed).unwrap();
        let totals = drive(&token, seed);
        replay_pool.unregister_thread(token).unwrap();
        assert!(totals.iter().any(|&t| t > 0), "seed {seed} counted nothing");
        assert_eq!(
            totals, concurrent[i],
            "seed {seed}: concurrent counts diverged from single-threaded replay"
        );
    }
}

#[test]
fn stress_register_count_unregister_cycles() {
    // 8 threads x 5 register/count/unregister cycles each, hammering the
    // shard tables from all sides while sessions come and go.
    let pool = sim_pool();
    let mut joins = Vec::new();
    for t in 0..8u64 {
        let pool = pool.clone();
        joins.push(std::thread::spawn(move || {
            for round in 0..5u64 {
                let seed = t * 100 + round;
                let token = pool.register_thread_seeded(seed).unwrap();
                let totals = drive(&token, seed);
                assert!(totals[0] >= 0, "seed {seed}");
                pool.unregister_thread(token).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(pool.registered_threads(), 0);
}

#[test]
fn another_threads_eventset_id_is_rejected_not_panicking() {
    let pool = sim_pool();
    let (send_id, recv_id) = std::sync::mpsc::channel::<TaggedSetId>();
    let (send_done, recv_done) = std::sync::mpsc::channel::<()>();

    let owner = {
        let pool = pool.clone();
        std::thread::spawn(move || {
            let token = pool.register_thread_seeded(1).unwrap();
            let set = token.create_eventset();
            token.add_event(set, Preset::TotIns.code()).unwrap();
            token.start(set).unwrap();
            send_id.send(set).unwrap();
            // Keep the session alive until the other thread has poked it.
            recv_done.recv().unwrap();
            token.stop(set).unwrap();
            token.destroy_eventset(set).unwrap();
            pool.unregister_thread(token).unwrap();
        })
    };

    let intruder = {
        let pool = pool.clone();
        std::thread::spawn(move || {
            let token = pool.register_thread_seeded(2).unwrap();
            let foreign = recv_id.recv().unwrap();
            // Every token entry point refuses the foreign id with the
            // PAPI_EINVAL-style error, and the intruder's own session is
            // untouched by the attempts.
            let mut out = [0i64; 1];
            assert!(matches!(
                token.read_into(foreign, &mut out),
                Err(PapiError::Inval(_))
            ));
            assert!(matches!(token.start(foreign), Err(PapiError::Inval(_))));
            assert!(matches!(token.stop(foreign), Err(PapiError::Inval(_))));
            assert!(matches!(
                token.destroy_eventset(foreign),
                Err(PapiError::Inval(_))
            ));
            let own = token.create_eventset();
            token.add_event(own, Preset::TotCyc.code()).unwrap();
            token.start(own).unwrap();
            token.read_into(own, &mut out).unwrap();
            token.stop(own).unwrap();
            token.destroy_eventset(own).unwrap();
            send_done.send(()).unwrap();
            pool.unregister_thread(token).unwrap();
        })
    };

    owner.join().unwrap();
    intruder.join().unwrap();
    assert_eq!(pool.registered_threads(), 0);
}

#[test]
fn double_register_and_live_set_unregister_are_rejected() {
    let pool = sim_pool();
    let token = pool.register_thread_seeded(3).unwrap();
    // Same OS thread, second registration: conflict.
    assert!(matches!(
        pool.register_thread_seeded(4),
        Err(PapiError::Cnflct)
    ));
    // Unregister with a live EventSet: rejected, token handed back.
    let set = token.create_eventset();
    token.add_event(set, Preset::TotIns.code()).unwrap();
    let (token, err) = pool.unregister_thread(token).unwrap_err();
    assert!(matches!(err, PapiError::Inval(_)));
    token.destroy_eventset(set).unwrap();
    pool.unregister_thread(token).unwrap();
    // Clean again: registration works anew.
    let token = pool.register_thread_seeded(5).unwrap();
    pool.unregister_thread(token).unwrap();
}

#[test]
fn shared_obs_stays_consistent_under_concurrent_sessions() {
    let pool = {
        let mut p = ThreadedPapi::new(0, |seed| {
            let mut m = Machine::new(platform::sim_generic(), seed);
            m.load(random_program(seed, RandomCfg::default()));
            Papi::init(SimSubstrate::new(m))
        });
        let obs = papi_suite::obs::Obs::new();
        obs.enable_journal(1 << 14);
        p.attach_obs(obs);
        Arc::new(p)
    };
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let pool = pool.clone();
        joins.push(std::thread::spawn(move || {
            let token = pool.register_thread_seeded(t).unwrap();
            drive(&token, t);
            pool.unregister_thread(token).unwrap();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let obs = pool.obs().unwrap();
    use papi_suite::obs::Counter;
    assert_eq!(obs.get(Counter::ThreadsRegistered), 4);
    assert_eq!(obs.get(Counter::ThreadsUnregistered), 4);
    // Each drive() makes 25 explicit read_into calls (accum stages more
    // reads internally, so >= is the exact lower bound).
    assert!(obs.get(Counter::Reads) >= 4 * 25);
    assert_eq!(obs.get(Counter::Starts), 4);
    assert_eq!(obs.get(Counter::Stops), 4);
    // Journal sequence numbers are unique across all concurrent writers,
    // and the generous capacity means nothing was dropped.
    assert_eq!(obs.journal_dropped(), 0);
    let recs = obs.journal_records();
    let mut seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), recs.len(), "duplicate journal seq numbers");
    let registered = recs
        .iter()
        .filter(|r| r.event.kind() == "obs.thread_registered")
        .count();
    assert_eq!(registered, 4);
}

#[test]
fn tagged_ids_expose_their_shard_and_stay_in_range() {
    let pool = sim_pool();
    let token = pool.register_thread_seeded(9).unwrap();
    let set = token.create_eventset();
    assert!(set.shard() < NUM_SHARDS);
    assert_eq!(set.shard(), token.shard());
    assert_eq!(set.slot(), token.slot());
    // The cross-shard lookup routes by the tag alone.
    let n = pool
        .with_session_of(set, |papi| papi.num_events(set.local()).unwrap())
        .unwrap();
    assert_eq!(n, 0);
    token.destroy_eventset(set).unwrap();
    pool.unregister_thread(token).unwrap();
}

/// Seeded-interleaving torture for the lock-free read path: one writer
/// thread drives its session through start/read/reset/stop churn (every
/// reprogramming op opens a new published generation) while reader threads
/// hammer the wait-free `snapshot_counts` observer API and assert the
/// seqlock invariants on every copy they obtain:
///
/// * the snapshot length always matches the set (never a half-published
///   area),
/// * generations never go backwards (only the owner bumps them),
/// * within one generation, every event's value is monotone non-decreasing
///   — a torn copy mixing pre-reset (large) and post-reset (small) values,
///   or values from two different publishes, would break this ordering in
///   one direction or the other.
///
/// The writer also asserts its own `read_into` results are monotone within
/// an epoch, so both ends of the seqlock are checked. The writer keeps
/// churning until the readers have demonstrably observed enough snapshots
/// (single-core hosts may schedule the readers rarely), bounded by a round
/// cap so a broken observer path fails instead of hanging.
fn seqlock_torture(substrate: &'static str) {
    let pool = Arc::new(ThreadedPapi::new(0, move |seed| {
        let reg = papi_suite::tools::full_registry();
        let mut p = Papi::init_from_registry(&reg, substrate, seed)?;
        p.substrate_mut()
            .load_program(random_program(seed, RandomCfg::default()))?;
        Ok(p)
    }));
    let done = Arc::new(AtomicBool::new(false));
    let seen = Arc::new(AtomicU64::new(0));
    let ready = Arc::new(AtomicU64::new(0));
    let (id_tx, id_rx) = std::sync::mpsc::channel::<TaggedSetId>();

    let writer = {
        let pool = pool.clone();
        let seen = seen.clone();
        let ready = ready.clone();
        std::thread::spawn(move || {
            let token = pool.register_thread_seeded(7).unwrap();
            let set = token.create_eventset();
            token
                .add_events(set, &[Preset::TotIns.code(), Preset::TotCyc.code()])
                .unwrap();
            id_tx.send(set).unwrap();
            // Don't start churning until both readers are polling — on a
            // single-core host the writer could otherwise finish every
            // round inside its first timeslice.
            while ready.load(Ordering::Relaxed) < 2 {
                std::thread::yield_now();
            }
            let mut rounds = 0u64;
            while rounds < 20 || (seen.load(Ordering::Relaxed) < 50 && rounds < 20_000) {
                rounds += 1;
                token.start(set).unwrap();
                let mut prev = [i64::MIN; 2];
                for step in 0..5u64 {
                    token.run_for(2_000).unwrap();
                    let mut out = [0i64; 2];
                    token.read_into(set, &mut out).unwrap();
                    assert!(
                        out.iter().zip(prev.iter()).all(|(o, p)| o >= p),
                        "substrate {substrate}: owner read went backwards within an epoch \
                         ({out:?} after {prev:?})"
                    );
                    prev = out;
                    // Yield while the publication area holds fresh values,
                    // so observers on a single-core host poll non-empty
                    // windows, then occasionally open a new generation.
                    std::thread::yield_now();
                    if (rounds + step).is_multiple_of(3) {
                        token.reset(set).unwrap();
                        prev = [i64::MIN; 2];
                    }
                }
                token.stop(set).unwrap();
            }
            token.destroy_eventset(set).unwrap();
            pool.unregister_thread(token).unwrap();
        })
    };

    let set = id_rx.recv().unwrap();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let pool = pool.clone();
            let done = done.clone();
            let seen = seen.clone();
            let ready = ready.clone();
            std::thread::spawn(move || {
                ready.fetch_add(1, Ordering::Relaxed);
                let mut last: Option<CountSnapshot> = None;
                while !done.load(Ordering::Relaxed) {
                    // Errors are legitimate states (stopped, reset-not-yet
                    // republished, unregistered at the end); invariants
                    // apply to every successful snapshot.
                    if let Ok(s) = pool.snapshot_counts(set) {
                        assert_eq!(s.len, 2, "substrate {substrate}: half-published snapshot");
                        assert!(
                            s.values[..2].iter().all(|&v| v >= 0),
                            "substrate {substrate}: negative count in snapshot (torn read)"
                        );
                        if let Some(l) = &last {
                            assert!(
                                s.generation >= l.generation,
                                "substrate {substrate}: generation went backwards"
                            );
                            if s.generation == l.generation {
                                for i in 0..2 {
                                    assert!(
                                        s.values[i] >= l.values[i],
                                        "substrate {substrate}: event {i} regressed \
                                         {} -> {} within generation {} \
                                         (torn or mixed-generation snapshot)",
                                        l.values[i],
                                        s.values[i],
                                        s.generation
                                    );
                                }
                            }
                        }
                        last = Some(s);
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    writer.join().unwrap();
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        seen.load(Ordering::Relaxed) > 0,
        "substrate {substrate}: observers never obtained a snapshot"
    );
    assert_eq!(pool.registered_threads(), 0);
}

#[test]
fn seqlock_torture_clean_substrate() {
    seqlock_torture("sim:x86");
}

#[test]
fn seqlock_torture_chaos_faults() {
    // Transient failure bursts + delayed interrupts: the retry loop runs
    // inside the owner's exclusive phase, so injected read failures must
    // never surface as torn or regressing observer snapshots.
    seqlock_torture("fault[chaos]:sim:x86");
}

#[test]
fn seqlock_torture_narrow_counters() {
    // 32-bit wrapped counters: the widening layer rebuilds full-width
    // monotone values before publication, so observers must see monotone
    // counts even while the raw registers wrap.
    seqlock_torture("fault[bits=32]:sim:x86");
}

#[test]
fn fault_decorated_sessions_count_identically_under_concurrency() {
    // Smoke for the fault-injection decorator under concurrency: each
    // registered thread gets a `fault[chaos]:` wrapped private substrate
    // (seeded narrow wrapped counters, transient failure bursts, delayed
    // deliveries). The retry and widening machinery is per-session state,
    // so concurrent faulted sessions must produce exactly the counts of a
    // clean single-threaded replay.
    let seeds = [3u64, 101, 2048, 77];
    let pool = Arc::new(ThreadedPapi::new(0, |seed| {
        let reg = papi_suite::tools::full_registry();
        let mut p = Papi::init_from_registry(&reg, "fault[chaos]:sim:generic", seed)?;
        p.substrate_mut()
            .load_program(random_program(seed, RandomCfg::default()))?;
        Ok(p)
    }));
    let mut joins = Vec::new();
    for &seed in &seeds {
        let pool = pool.clone();
        joins.push(std::thread::spawn(move || {
            let token = pool.register_thread_seeded(seed).unwrap();
            let totals = drive(&token, seed);
            pool.unregister_thread(token).unwrap();
            totals
        }));
    }
    let faulted: Vec<Vec<i64>> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    // Clean replay oracle: same seeds, fault-free substrates, one thread.
    let clean_pool = sim_pool();
    for (i, &seed) in seeds.iter().enumerate() {
        let token = clean_pool.register_thread_seeded(seed).unwrap();
        let totals = drive(&token, seed);
        clean_pool.unregister_thread(token).unwrap();
        assert!(totals.iter().any(|&t| t > 0), "seed {seed} counted nothing");
        assert_eq!(
            totals, faulted[i],
            "seed {seed}: the fault decorator leaked into concurrent counts"
        );
    }
}
