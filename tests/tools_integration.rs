//! End-to-end tool scenarios spanning papi-tools, papi-core, workloads and
//! the simulator.

use papi_suite::papi::{Papi, Preset, SimSubstrate};
use papi_suite::tools::papirun::papirun;
use papi_suite::tools::{calibrate_all, render_report, Dynaprof, Perfometer, ProbeMetric};
use papi_suite::workloads::{calibration_suite, matmul, phased, tight_calls};
use simcpu::platform::{sim_generic, sim_power3, sim_t3e, sim_x86};
use simcpu::Machine;

#[test]
fn calibrate_all_platforms_report() {
    let rows = calibrate_all(&simcpu::all_platforms(), &calibration_suite(), 7);
    assert!(
        rows.len() > 60,
        "expected a dense calibration matrix, got {}",
        rows.len()
    );
    // Every platform contributed.
    let plats: std::collections::HashSet<&str> = rows.iter().map(|r| r.platform).collect();
    assert_eq!(plats.len(), 8);
    // The rendered report contains both verdicts.
    let rep = render_report(&rows);
    assert!(rep.contains("ok"));
    assert!(rep.contains("MISMATCH (mapping flagged inexact)"));
    // And no *unflagged* mismatches anywhere.
    assert!(rows.iter().all(|r| r.pass() || r.inexact_mapping));
}

#[test]
fn papirun_matrix_on_three_platforms() {
    for spec in [sim_x86(), sim_t3e(), sim_power3()] {
        let name = spec.name;
        let rep = papirun(&spec, &matmul(12), &["PAPI_TOT_CYC", "PAPI_TOT_INS"], 4)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let ins = rep.rows[1].1;
        assert_eq!(ins as u64, 4 * 12u64.pow(3) + 2 * 144 + 12 + 2, "{name}");
        assert!(rep.real_us > 0);
    }
}

#[test]
fn dynaprof_then_perfometer_same_session_style() {
    // Instrument, profile per function, then monitor the same binary live —
    // the dynaprof+perfometer combination the paper describes ("a running
    // application can be attached to and monitored in real-time").
    let w = phased(2, 8_000);
    let mut dp = Dynaprof::load(w.program.clone());
    let prog = dp.instrument(&["fp_phase", "mem_phase"]).unwrap();

    let mut m = Machine::new(sim_generic(), 6);
    m.load(prog);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let rep = dp
        .run(&mut papi, ProbeMetric::Papi(Preset::TotCyc.code()))
        .unwrap();
    let mem = rep.funcs.iter().find(|f| f.name == "mem_phase").unwrap();
    let fp = rep.funcs.iter().find(|f| f.name == "fp_phase").unwrap();
    assert!(mem.incl_value > fp.incl_value);

    // Fresh machine, same binary, live trace.
    let mut m = Machine::new(sim_generic(), 6);
    m.load(w.program);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let mut pm = Perfometer::new(50_000);
    pm.monitor(&mut papi, Preset::FpOps.code()).unwrap();
    assert!(pm.trace().len() > 5);
}

#[test]
fn probe_overhead_scales_with_call_granularity() {
    // The finer the instrumentation granularity, the higher the overhead —
    // the reason tool developers moved to statistical sampling (§4).
    let overhead = |calls: u32, body: usize| -> f64 {
        let w = tight_calls(calls, body);
        let mut base = Machine::new(sim_x86(), 8);
        base.load(w.program.clone());
        base.run_to_halt();
        let base_cycles = base.cycles();
        let mut dp = Dynaprof::load(w.program);
        let prog = dp.instrument(&["leaf"]).unwrap();
        let mut m = Machine::new(sim_x86(), 8);
        m.load(prog);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        dp.run(&mut papi, ProbeMetric::Papi(Preset::TotIns.code()))
            .unwrap();
        (papi.get_real_cyc() as f64 - base_cycles as f64) / base_cycles as f64
    };
    // Same total FMA work, different function sizes: a tiny leaf means a
    // counter-read syscall per handful of cycles — crushing overhead.
    let fine = overhead(20_000, 2);
    let coarse = overhead(100, 8_000);
    assert!(fine > 5.0 * coarse, "fine {fine} vs coarse {coarse}");
    assert!(
        coarse < 0.3,
        "coarse-grain instrumentation should be modest: {coarse}"
    );
}
