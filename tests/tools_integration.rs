//! End-to-end tool scenarios spanning papi-tools, papi-core, workloads and
//! the simulator.

use papi_suite::papi::{Papi, Preset, SimSubstrate};
use papi_suite::tools::papirun::{papirun, papirun_with, RunOptions};
use papi_suite::tools::tracer::{Timeline, Tracer};
use papi_suite::tools::{calibrate_all, render_report, Dynaprof, Perfometer, ProbeMetric};
use papi_suite::workloads::{calibration_suite, dense_fp, matmul, phased, tight_calls};
use simcpu::platform::{sim_generic, sim_power3, sim_t3e, sim_x86};
use simcpu::Machine;

#[test]
fn calibrate_all_platforms_report() {
    let rows = calibrate_all(&simcpu::all_platforms(), &calibration_suite(), 7);
    assert!(
        rows.len() > 60,
        "expected a dense calibration matrix, got {}",
        rows.len()
    );
    // Every platform contributed.
    let plats: std::collections::HashSet<&str> = rows.iter().map(|r| r.platform).collect();
    assert_eq!(plats.len(), 8);
    // The rendered report contains both verdicts.
    let rep = render_report(&rows);
    assert!(rep.contains("ok"));
    assert!(rep.contains("MISMATCH (mapping flagged inexact)"));
    // And no *unflagged* mismatches anywhere.
    assert!(rows.iter().all(|r| r.pass() || r.inexact_mapping));
}

#[test]
fn papirun_matrix_on_three_platforms() {
    for spec in [sim_x86(), sim_t3e(), sim_power3()] {
        let name = spec.name;
        let rep = papirun(&spec, &matmul(12), &["PAPI_TOT_CYC", "PAPI_TOT_INS"], 4)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let ins = rep.rows[1].1;
        assert_eq!(ins as u64, 4 * 12u64.pow(3) + 2 * 144 + 12 + 2, "{name}");
        assert!(rep.real_us > 0);
    }
}

#[test]
fn dynaprof_then_perfometer_same_session_style() {
    // Instrument, profile per function, then monitor the same binary live —
    // the dynaprof+perfometer combination the paper describes ("a running
    // application can be attached to and monitored in real-time").
    let w = phased(2, 8_000);
    let mut dp = Dynaprof::load(w.program.clone());
    let prog = dp.instrument(&["fp_phase", "mem_phase"]).unwrap();

    let mut m = Machine::new(sim_generic(), 6);
    m.load(prog);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let rep = dp
        .run(&mut papi, ProbeMetric::Papi(Preset::TotCyc.code()))
        .unwrap();
    let mem = rep.funcs.iter().find(|f| f.name == "mem_phase").unwrap();
    let fp = rep.funcs.iter().find(|f| f.name == "fp_phase").unwrap();
    assert!(mem.incl_value > fp.incl_value);

    // Fresh machine, same binary, live trace.
    let mut m = Machine::new(sim_generic(), 6);
    m.load(w.program);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let mut pm = Perfometer::new(50_000);
    pm.monitor(&mut papi, Preset::FpOps.code()).unwrap();
    assert!(pm.trace().len() > 5);
}

#[test]
fn probe_overhead_scales_with_call_granularity() {
    // The finer the instrumentation granularity, the higher the overhead —
    // the reason tool developers moved to statistical sampling (§4).
    let overhead = |calls: u32, body: usize| -> f64 {
        let w = tight_calls(calls, body);
        let mut base = Machine::new(sim_x86(), 8);
        base.load(w.program.clone());
        base.run_to_halt();
        let base_cycles = base.cycles();
        let mut dp = Dynaprof::load(w.program);
        let prog = dp.instrument(&["leaf"]).unwrap();
        let mut m = Machine::new(sim_x86(), 8);
        m.load(prog);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        dp.run(&mut papi, ProbeMetric::Papi(Preset::TotIns.code()))
            .unwrap();
        (papi.get_real_cyc() as f64 - base_cycles as f64) / base_cycles as f64
    };
    // Same total FMA work, different function sizes: a tiny leaf means a
    // counter-read syscall per handful of cycles — crushing overhead.
    let fine = overhead(20_000, 2);
    let coarse = overhead(100, 8_000);
    assert!(fine > 5.0 * coarse, "fine {fine} vs coarse {coarse}");
    assert!(
        coarse < 0.3,
        "coarse-grain instrumentation should be modest: {coarse}"
    );
}

#[test]
fn perfometer_json_roundtrip_with_and_without_self_counters() {
    // With an obs context attached: every slice carries self_counters, and
    // the full trace (including those deltas) survives the save/load cycle
    // the paper's "saved for off-line analysis" path implies.
    let mut m = Machine::new(sim_generic(), 9);
    m.load(phased(2, 4_000).program);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let obs = papi_suite::obs::Obs::new();
    papi.attach_obs(obs.clone());
    let mut pm = Perfometer::new(25_000).with_obs(obs);
    pm.monitor(&mut papi, Preset::FpOps.code()).unwrap();
    assert!(pm.trace().len() > 3);
    assert!(pm.trace().iter().all(|p| p.self_counters.is_some()));
    // The save/load legs need real serde_json; the offline build container
    // ships a stub whose to_string/from_str always error.
    if papi_suite::papi::testutil::stub_json() {
        eprintln!("perfometer_json_roundtrip: offline serde_json stub detected, skipping");
        return;
    }
    let loaded = Perfometer::load_json(&pm.save_json()).unwrap();
    assert_eq!(loaded, pm.trace());

    // Without obs the field is None, and that also roundtrips.
    let mut m = Machine::new(sim_generic(), 9);
    m.load(phased(2, 4_000).program);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let mut pm = Perfometer::new(25_000);
    pm.monitor(&mut papi, Preset::FpOps.code()).unwrap();
    let loaded = Perfometer::load_json(&pm.save_json()).unwrap();
    assert_eq!(loaded, pm.trace());
    assert!(loaded.iter().all(|p| p.self_counters.is_none()));

    // Traces saved before the self_counters field existed still load.
    let legacy = r#"[{"t_us": 10.0, "delta": 5, "rate_per_s": 500000.0,
                     "metric": "PAPI_FP_OPS"}]"#;
    let loaded = Perfometer::load_json(legacy).unwrap();
    assert_eq!(loaded.len(), 1);
    assert!(loaded[0].self_counters.is_none());
}

#[test]
fn tracer_timeline_json_roundtrip_and_obs_merge() {
    let mut m = Machine::new(sim_x86(), 3);
    m.load(dense_fp(60_000, 4, 0).program);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let obs = papi_suite::obs::Obs::new();
    obs.enable_journal(2_048);
    papi.attach_obs(obs.clone());
    let tl = Tracer::new(10_000)
        .trace(&mut papi, &[Preset::FpOps.code(), Preset::TotIns.code()])
        .unwrap();

    // The obs journal converts onto the same grid and merges column-wise
    // with the application timeline (the §3 Vampir-correlation shape).
    let span_us = tl.intervals.last().unwrap().t_end_us;
    let n = tl.intervals.len();
    let obs_tl = papi_suite::toolkit::journal_to_timeline(
        &obs.journal_records(),
        1000, // sim-x86 runs at 1000 MHz
        span_us / n as f64,
        Some(span_us),
    );
    let merged = tl.merge(&obs_tl).expect("same interval grid");
    assert_eq!(merged.intervals.len(), n);
    let reads_col = merged.events.iter().position(|e| e == "obs.read").unwrap();
    let total_reads: i64 = merged.intervals.iter().map(|iv| iv.deltas[reads_col]).sum();
    assert_eq!(total_reads as u64, obs.get(papi_suite::obs::Counter::Reads));

    // JSON export/import reproduces both timelines exactly (skipped against
    // the offline serde_json stub, which cannot serialize).
    if !papi_suite::papi::testutil::stub_json() {
        assert_eq!(Timeline::from_json(&tl.to_json()).unwrap(), tl);
        assert_eq!(Timeline::from_json(&merged.to_json()).unwrap(), merged);
    } else {
        eprintln!(
            "tracer_timeline_json_roundtrip: offline serde_json stub detected, skipping JSON leg"
        );
    }
}

#[test]
fn papirun_list_substrates_prints_full_registry() {
    // What `papirun --list-substrates` prints: every simulated platform by
    // its registry name, plus the perfctr backend, with the per-substrate
    // counter/group/sampling columns.
    let reg = papi_suite::tools::full_registry();
    let listing = papi_suite::tools::render_substrate_list(&reg);
    for name in [
        "sim:x86",
        "sim:alpha",
        "sim:power3",
        "sim:ia64",
        "sim:t3e",
        "sim:ultra",
        "sim:mips",
        "sim:generic",
        "perfctr",
    ] {
        assert!(listing.contains(name), "missing {name} in:\n{listing}");
        assert!(reg.contains(name), "registry cannot create {name}");
    }
    // Legacy platform spellings survive as aliases.
    assert!(listing.contains("(alias sim-power3)"));
    // Column spot-checks: POWER3 is the group-based 8-counter machine,
    // alpha is the sampling one.
    let power3 = listing
        .lines()
        .find(|l| l.starts_with("sim:power3"))
        .unwrap();
    assert!(power3.contains(" 8 "), "{power3}");
    let alpha = listing
        .lines()
        .find(|l| l.starts_with("sim:alpha"))
        .unwrap();
    assert!(alpha.contains("yes"), "{alpha}");
    assert!(listing.lines().next().unwrap().contains("sampling"));
}

#[test]
fn papirun_by_substrate_name_end_to_end() {
    // `papirun --substrate NAME` path: same counts through the registry's
    // boxed session as through the static platform path, on every backend
    // that wraps the x86 platform.
    use papi_suite::tools::papirun::papirun_named;
    let w = matmul(12);
    let names = ["PAPI_TOT_CYC", "PAPI_TOT_INS"];
    let opts = RunOptions {
        seed: 4,
        ..RunOptions::default()
    };
    let direct = papirun_with(&sim_x86(), &w, &names, &opts).unwrap();
    for sub in ["sim:x86", "sim-x86", "perfctr"] {
        let rep = papirun_named(sub, &w, &names, &opts).unwrap();
        assert_eq!(rep.rows[1], direct.rows[1], "{sub}");
        assert_eq!(rep.platform, sub);
    }
}

#[test]
fn papirun_self_stats_multiplexed_snapshot() {
    // Five events on two counters forces multiplexing; --self-stats must
    // surface nonzero reads and rotation counts, both in the rendered report
    // and in the JSON snapshot export.
    let rep = papirun_with(
        &sim_x86(),
        &dense_fp(150_000, 4, 1),
        &[
            "PAPI_FP_OPS",
            "PAPI_TOT_INS",
            "PAPI_LD_INS",
            "PAPI_SR_INS",
            "PAPI_BR_INS",
        ],
        &RunOptions {
            seed: 5,
            self_stats: true,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert!(rep.multiplexed);
    let snap = rep.self_stats.as_ref().expect("self-stats requested");
    assert!(snap.get("mpx", "rotations").unwrap() > 0);
    assert!(snap.get("eventset", "counter_reads").unwrap() > 0);
    assert_eq!(snap.get("eventset", "starts"), Some(1));
    assert!(rep.render().contains("internal counters (papi-obs):"));
    let json = snap.to_json();
    let rotations = snap.get("mpx", "rotations").unwrap();
    assert!(json.contains(&format!("\"mpx.rotations\": {rotations}")));
}

fn rv64_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("platforms/sim-rv64.toml")
}

#[test]
fn papi_avail_reports_provenance_for_builtin_and_file_platforms() {
    use papi_suite::tools::render_avail;
    let mut reg = papi_suite::tools::full_registry();
    // Builtin: data embedded in the crate, so provenance is builtin-data.
    let report = render_avail(&reg, "sim:generic").unwrap();
    assert!(report.contains("Provenance: builtin-data"), "{report}");
    assert!(report.contains("PAPI_TOT_CYC"), "{report}");
    assert!(report.contains("Native events:"), "{report}");
    // The name path is registry-resolved: alias, any case, either spelling.
    for alias in ["SIM:GENERIC", "sim-generic", "Sim-Generic"] {
        assert_eq!(render_avail(&reg, alias).unwrap(), report, "{alias}");
    }
    // A runtime-loaded model file reports data-file provenance, and its
    // aggregate FP event makes PAPI_FP_OPS a direct mapping.
    let canonical = reg.register_platform_file(&rv64_file()).unwrap();
    assert_eq!(canonical, "file:sim-rv64");
    let report = render_avail(&reg, &canonical).unwrap();
    assert!(report.contains("Provenance: data-file"), "{report}");
    assert!(report.contains("HPM_FP_FLOPS"), "{report}");
    let fp_ops = report
        .lines()
        .find(|l| l.starts_with("PAPI_FP_OPS"))
        .unwrap();
    assert!(fp_ops.contains("HPM_FP_FLOPS"), "{fp_ops}");
    // The bare name aliases to the same report.
    assert_eq!(render_avail(&reg, "sim-rv64").unwrap(), report);
}

#[test]
fn papi_avail_matrix_spans_builtin_and_file_platforms() {
    use papi_suite::tools::render_avail_matrix;
    let mut reg = papi_suite::tools::full_registry();
    reg.register_platform_file(&rv64_file()).unwrap();
    let matrix = render_avail_matrix(&reg);
    let header = matrix.lines().next().unwrap();
    for col in ["x86", "power3", "generic", "rv64"] {
        assert!(header.contains(col), "missing {col} in: {header}");
    }
    // Every preset appears as a row, cells drawn from the D/+/i/. alphabet.
    let rows: Vec<&str> = matrix.lines().skip(1).collect();
    assert_eq!(rows.len(), papi_suite::papi::Preset::ALL.len());
    assert!(rows.iter().any(|r| r.starts_with("PAPI_FP_OPS")));
}

#[test]
fn papirun_platform_file_end_to_end() {
    // The CLI's --platform-file path, via the same lib call the binary
    // makes: load the data-only rv64 model, run matmul, and get exact
    // counts from presets mapped purely out of the file's event table.
    use papi_suite::tools::papirun_in;
    let mut reg = papi_suite::tools::full_registry();
    let canonical = reg.register_platform_file(&rv64_file()).unwrap();
    let names = ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS"];
    let opts = RunOptions {
        seed: 4,
        ..RunOptions::default()
    };
    let rep = papirun_in(&reg, &canonical, &matmul(12), &names, &opts).unwrap();
    // matmul(12): n^3 FMAs, two flops each.
    assert_eq!(rep.rows[2].1, 2 * 12i64.pow(3), "{:?}", rep.rows);
    assert!(rep.rows[0].1 > 0 && rep.rows[1].1 > 0);
    // Fault decoration composes over file platforms: same counts.
    let faulted = papirun_in(
        &reg,
        &format!("fault[bits=32]:{canonical}"),
        &matmul(12),
        &names,
        &opts,
    )
    .unwrap();
    assert_eq!(faulted.rows[2], rep.rows[2]);
    // And the listing carries the provenance column for it.
    let listing = papi_suite::tools::render_substrate_list(&reg);
    let row = listing
        .lines()
        .find(|l| l.starts_with("file:sim-rv64"))
        .unwrap();
    assert!(row.contains("data-file"), "{row}");
}

#[test]
fn papirun_through_the_fault_decorator_matches_clean_counts() {
    // `papirun --substrate fault[...]:NAME`: the registry wraps any backend
    // in the fault-injection decorator; wrapped 32-bit counters, transient
    // failure bursts and delayed deliveries must not change the reported
    // instruction counts.
    use papi_suite::tools::papirun::papirun_named;
    let w = matmul(12);
    let names = ["PAPI_TOT_CYC", "PAPI_TOT_INS"];
    let opts = RunOptions {
        seed: 4,
        ..RunOptions::default()
    };
    let direct = papirun_with(&sim_x86(), &w, &names, &opts).unwrap();
    for sub in [
        "fault:sim:x86",
        "fault[bits=32,preload=4294966000]:sim:x86",
        "fault[chaos]:sim:x86",
        "fault[chaos]:perfctr",
    ] {
        let rep = papirun_named(sub, &w, &names, &opts).unwrap();
        assert_eq!(rep.rows[1], direct.rows[1], "{sub}");
    }
}

#[test]
fn papi_validate_end_to_end_with_platform_file_and_faults() {
    // The `papi_validate` pipeline as the binary drives it: register the
    // data-only rv64 model, grade it plus a fault-decorated substrate
    // across all three modes, round-trip the line-per-cell JSON, and prove
    // a doctored baseline turns into line-numbered grade regressions.
    use papi_suite::tools::validate::{
        diff_against_baseline, parse_matrix_json, render_matrix, render_matrix_json, run_matrix,
        ValidateConfig, VALIDATION_PRESETS,
    };
    use std::sync::Arc;

    let mut reg = papi_suite::tools::full_registry();
    reg.register_platform_file(&rv64_file()).unwrap();
    let reg = Arc::new(reg);

    let subs = vec![
        "file:sim-rv64".to_string(),
        "fault[chaos]:sim:x86".to_string(),
    ];
    let cfg = ValidateConfig::new(subs.clone());
    let cells = run_matrix(&reg, &cfg);

    // Every (substrate, mode, workload, preset) combination is graded.
    let suite_len = papi_suite::workloads::validation_suite().len();
    assert_eq!(
        cells.len(),
        subs.len() * 3 * suite_len * VALIDATION_PRESETS.len()
    );
    // The data-file model has full event coverage: direct cells all exact.
    assert!(cells
        .iter()
        .filter(|c| c.substrate == "file:sim-rv64" && c.mode.label() == "direct")
        .all(|c| c.grade.label() == "exact"));

    // JSON round-trip: one line per cell, parsed back loss-free.
    let json = render_matrix_json(&cells);
    let parsed = parse_matrix_json(&json);
    assert_eq!(parsed.len(), cells.len());
    for (p, c) in parsed.iter().zip(&cells) {
        assert_eq!(p.coord(), c.coord());
        assert_eq!(p.grade, c.grade.label());
    }

    // Self-diff is clean; a baseline doctored to claim every multiplexed
    // `within` cell was `exact` yields regressions whose baseline line
    // numbers point at the doctored cells.
    assert!(diff_against_baseline(&cells, &json).is_regression_free());
    let doctored = json.replace("\"grade\":\"within\"", "\"grade\":\"exact\"");
    let diff = diff_against_baseline(&cells, &doctored);
    assert!(!diff.is_regression_free(), "no within cells to doctor?");
    for r in &diff.regressions {
        assert_eq!(r.baseline_grade, "exact");
        assert_eq!(r.current_grade, "within");
        let line = doctored.lines().nth(r.baseline_line - 1).unwrap();
        let preset = r.cell.rsplit('/').next().unwrap();
        assert!(
            line.contains(preset),
            "baseline line {} does not record cell {}",
            r.baseline_line,
            r.cell
        );
    }

    // The text report tallies every graded substrate/mode pair.
    let report = render_matrix(&cells);
    for sub in &subs {
        for mode in ["direct", "mpx", "thread"] {
            assert!(
                report.contains(&format!("{sub}/{mode}")),
                "report missing {sub}/{mode}"
            );
        }
    }
}
