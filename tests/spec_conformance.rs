//! Programmatic checks of the invariants SPEC.md documents.

use papi_core::{is_preset_code, Papi, PapiError, Preset, SimSubstrate, PRESET_MASK};
use papi_suite::workloads::dense_fp;
use simcpu::platform::{sim_generic, NATIVE_MASK};
use simcpu::Machine;

#[test]
fn code_spaces_follow_the_c_conventions() {
    // Presets carry bit 31, natives bit 30, and the spaces are disjoint.
    assert_eq!(PRESET_MASK, 0x8000_0000);
    assert_eq!(NATIVE_MASK, 0x4000_0000);
    for &p in Preset::ALL {
        assert!(is_preset_code(p.code()));
        assert_eq!(p.code() & NATIVE_MASK, 0);
    }
    for plat in simcpu::all_platforms() {
        for e in &plat.events {
            assert!(!is_preset_code(e.code), "{}", e.name);
        }
    }
}

#[test]
fn the_25_standard_presets_match_the_spec() {
    let expected = [
        "PAPI_TOT_CYC",
        "PAPI_TOT_INS",
        "PAPI_INT_INS",
        "PAPI_FP_INS",
        "PAPI_FP_OPS",
        "PAPI_FMA_INS",
        "PAPI_FDV_INS",
        "PAPI_LD_INS",
        "PAPI_SR_INS",
        "PAPI_LST_INS",
        "PAPI_L1_DCA",
        "PAPI_L1_DCM",
        "PAPI_L1_ICM",
        "PAPI_L1_TCM",
        "PAPI_L2_TCA",
        "PAPI_L2_TCM",
        "PAPI_TLB_DM",
        "PAPI_TLB_IM",
        "PAPI_TLB_TL",
        "PAPI_BR_INS",
        "PAPI_BR_TKN",
        "PAPI_BR_NTK",
        "PAPI_BR_MSP",
        "PAPI_BR_PRC",
        "PAPI_RES_STL",
    ];
    assert_eq!(Preset::ALL.len(), expected.len());
    for (p, name) in Preset::ALL.iter().zip(expected) {
        assert_eq!(p.name(), name);
        // Every formula is nonempty and names at least one signal.
        assert!(!p.formula().is_empty());
        assert!(!p.descr().is_empty());
    }
}

#[test]
fn v3_single_running_set_is_global() {
    // The one-running-set rule holds across high-level + low-level + tools.
    let mut m = Machine::new(sim_generic(), 1);
    m.load(dense_fp(100, 1, 1).program);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    papi.flops().unwrap(); // high-level starts an internal set
    let set = papi.create_eventset();
    papi.add_event(set, Preset::TotCyc.code()).unwrap();
    assert!(matches!(papi.start(set), Err(PapiError::IsRun)));
    papi.hl_stop_counters().unwrap();
    papi.start(set).unwrap();
    // And a second flops() while a low-level set runs is refused too.
    assert!(matches!(papi.flops(), Err(PapiError::IsRun)));
    papi.stop(set).unwrap();
}

#[test]
fn hl_read_counters_resets_per_spec() {
    let mut m = Machine::new(sim_generic(), 1);
    m.load(dense_fp(1_000, 2, 0).program);
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    papi.hl_start_counters(&[Preset::FmaIns.code()]).unwrap();
    papi.run_app().unwrap();
    let first = papi.hl_read_counters().unwrap();
    assert_eq!(first[0], 2_000);
    let second = papi.hl_read_counters().unwrap();
    assert_eq!(second[0], 0, "PAPI_read_counters copies then resets");
}

#[test]
fn query_event_means_startable() {
    // SPEC: presets resolve only if mappable *and allocatable* — so every
    // query_event() == true must survive an actual start().
    for plat in simcpu::all_platforms() {
        let name = plat.name;
        let mut m = Machine::new(plat, 2);
        m.load(dense_fp(50, 1, 1).program);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        for &p in Preset::ALL {
            if !papi.query_event(p.code()) {
                continue;
            }
            let set = papi.create_eventset();
            papi.add_event(set, p.code())
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            papi.start(set)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            papi.stop(set).unwrap();
            papi.destroy_eventset(set).unwrap();
        }
    }
}

#[test]
fn overflow_handler_signature_is_send() {
    // SPEC: handlers are Send (signal-handler semantics / C global session).
    fn assert_send<T: Send>(_: T) {}
    let h: Box<dyn FnMut(papi_core::OverflowInfo) + Send> = Box::new(|_| {});
    assert_send(h);
}
