//! Property-based tests over the core invariants, using seeded random
//! programs and random allocation instances.
//!
//! Originally written with `proptest!`; rewritten as explicit seeded-case
//! loops over `rand::SmallRng` so the suite compiles and runs in the
//! offline container too (whose proptest stand-in resolves the dependency
//! but does not provide the macros). Each test fixes its own seed, so
//! failures reproduce deterministically; on failure the assert message
//! carries the case's inputs instead of proptest's shrunken counterexample.

use papi_suite::papi::alloc::{
    allocate_in_group, allocate_with, greedy_first_fit, max_cardinality_assign, max_weight_assign,
    optimal_assign, AllocStats, GroupModel, MaskModel,
};
use papi_suite::papi::{Papi, Preset, PresetTable, SimSubstrate};
use papi_suite::workloads::{random_program, RandomCfg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcpu::platform::GroupDef;
use simcpu::{all_platforms, EventKind, Machine, NativeEventDesc};

fn rand_masks(rng: &mut SmallRng, len_range: std::ops::Range<usize>, mask_max: u32) -> Vec<u32> {
    let len = rng.gen_range(len_range);
    (0..len).map(|_| rng.gen_range(1..mask_max)).collect()
}

/// Counter values never depend on *which* counter an event landed on, and
/// equal the machine's ground truth.
#[test]
fn counts_match_ground_truth_on_random_programs() {
    let mut rng = SmallRng::seed_from_u64(0x1001);
    for _case in 0..48 {
        let seed = rng.gen_range(0u64..5000);
        let prog = random_program(seed, RandomCfg::default());
        // Ground truth run.
        let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
        m.enable_truth();
        m.load(prog.clone());
        m.run_to_halt();
        let truth_fp = m.truth().unwrap().total(EventKind::FpAdd);
        let truth_ld = m.truth().unwrap().total(EventKind::Loads);
        let truth_ins = m.truth().unwrap().total(EventKind::Instructions);

        // Measured through the portable interface.
        let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
        m.load(prog);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        let fad = papi.event_name_to_code("GEN_FP_INS").unwrap();
        papi.add_event(set, fad).unwrap();
        papi.add_event(set, Preset::LdIns.code()).unwrap();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let v = papi.stop(set).unwrap();
        assert!(v[0] as u64 >= truth_fp, "seed {seed}"); // FP_INS includes mul/fma/div too
        assert_eq!(v[1] as u64, truth_ld, "seed {seed}");
        assert_eq!(v[2] as u64, truth_ins, "seed {seed}");
    }
}

/// The optimal matcher succeeds at least as often as greedy first-fit, and
/// its assignments are always valid (mask-respecting, injective).
#[test]
fn optimal_dominates_greedy() {
    let mut rng = SmallRng::seed_from_u64(0x1002);
    for _case in 0..64 {
        let masks = rand_masks(&mut rng, 1..6, 63);
        let n = 6;
        let opt = optimal_assign(&masks, n);
        let greedy = greedy_first_fit(&masks, n);
        if greedy.is_some() {
            assert!(
                opt.is_some(),
                "greedy found a matching the optimal missed: {masks:?}"
            );
        }
        if let Some(a) = &opt {
            let mut seen = std::collections::HashSet::new();
            for (ev, &c) in a.iter().enumerate() {
                assert!(masks[ev] & (1 << c) != 0, "mask violated: {masks:?}");
                assert!(seen.insert(c), "counter double-booked: {masks:?}");
            }
        }
    }
}

/// Maximum-cardinality matching size is monotone: relaxing a mask (adding
/// allowed counters) never shrinks the matching.
#[test]
fn cardinality_monotone_under_relaxation() {
    let mut rng = SmallRng::seed_from_u64(0x1003);
    for _case in 0..64 {
        let masks = rand_masks(&mut rng, 1..6, 15);
        let extra = rng.gen_range(1u32..15);
        let which = rng.gen_range(0usize..6);
        let n = 4;
        let before = max_cardinality_assign(&masks, n)
            .iter()
            .filter(|o| o.is_some())
            .count();
        let mut relaxed = masks.clone();
        let i = which % relaxed.len();
        relaxed[i] |= extra;
        let after = max_cardinality_assign(&relaxed, n)
            .iter()
            .filter(|o| o.is_some())
            .count();
        assert!(after >= before, "{masks:?} relaxed[{i}] |= {extra:#b}");
    }
}

/// Weighted matching never selects a lighter set than the unweighted
/// matching could force: total matched weight >= weight of any single
/// heaviest matchable event.
#[test]
fn weighted_matching_matches_heaviest_possible() {
    let mut rng = SmallRng::seed_from_u64(0x1004);
    for _case in 0..64 {
        let masks = rand_masks(&mut rng, 1..6, 15);
        let weights: Vec<u64> = (0..6).map(|_| rng.gen_range(1u64..1000)).collect();
        let n = 4;
        let w = &weights[..masks.len()];
        let assign = max_weight_assign(&masks, w, n);
        let matched_weight: u64 = assign
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| w[i])
            .sum();
        // Every single event alone is matchable (mask nonzero), so the
        // result must weigh at least as much as the heaviest event.
        let heaviest = w.iter().copied().max().unwrap();
        assert!(matched_weight >= heaviest, "{masks:?} {w:?}");
    }
}

/// PAPI-3 split equivalence, mask scheme: feeding random mask sets through
/// the substrate-side [`MaskModel`] translation and the abstract solver
/// produces exactly the assignment of the pre-split direct
/// `optimal_assign` call (same success/failure, same counters).
#[test]
fn mask_model_allocation_equivalent_to_presplit_solver() {
    let mut rng = SmallRng::seed_from_u64(0x1005);
    for _case in 0..96 {
        let num_counters = rng.gen_range(2usize..7);
        let masks = rand_masks(&mut rng, 1..7, 1u32 << num_counters);
        let natives: Vec<NativeEventDesc> = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| NativeEventDesc {
                code: 0x4000_0000 | i as u32,
                name: "PROP_EV",
                descr: "prop",
                kinds: vec![(EventKind::Cycles, 1)],
                counter_mask: m,
                group: None,
            })
            .collect();
        let codes: Vec<u32> = natives.iter().map(|e| e.code).collect();
        let model = MaskModel { num_counters };
        let mut stats = AllocStats::default();
        let split = allocate_with(&model, &codes, &natives, &mut stats);
        let direct = optimal_assign(&masks, num_counters);
        assert_eq!(
            split, direct,
            "masks {masks:?} on {num_counters} counters diverged"
        );
        if split.is_some() {
            assert!(stats.augment_steps > 0, "solver effort not recorded");
        }
    }
}

/// PAPI-3 split equivalence, group scheme: for random POWER-style group
/// configurations, the substrate-side [`GroupModel`] translation plus the
/// abstract solver reproduces the deleted-from-core `allocate_in_group`
/// reference implementation exactly — including first-group-wins ordering.
#[test]
fn group_model_allocation_equivalent_to_reference() {
    let mut rng = SmallRng::seed_from_u64(0x1006);
    for _case in 0..96 {
        let pool: Vec<u32> = (0..10).map(|i| 0x4000_0100 | i as u32).collect();
        let n_groups = rng.gen_range(1usize..5);
        let groups: Vec<GroupDef> = (0..n_groups)
            .map(|gi| {
                let size = rng.gen_range(1usize..7);
                let mut events: Vec<u32> = Vec::new();
                while events.len() < size {
                    let c = pool[rng.gen_range(0..pool.len())];
                    if !events.contains(&c) {
                        events.push(c);
                    }
                }
                GroupDef {
                    id: gi as u32,
                    name: "PG",
                    events,
                }
            })
            .collect();
        // Request 1..4 distinct codes from the pool.
        let want = rng.gen_range(1usize..4);
        let mut codes: Vec<u32> = Vec::new();
        while codes.len() < want {
            let c = pool[rng.gen_range(0..pool.len())];
            if !codes.contains(&c) {
                codes.push(c);
            }
        }
        let model = GroupModel {
            groups: groups.clone(),
        };
        let mut stats = AllocStats::default();
        let split = allocate_with(&model, &codes, &[], &mut stats);
        let reference = allocate_in_group(&codes, &groups).map(|(_, assign)| assign);
        assert_eq!(
            split,
            reference,
            "codes {codes:?} over groups {:?} diverged",
            groups.iter().map(|g| &g.events).collect::<Vec<_>>()
        );
        if split.is_some() {
            assert!(stats.augment_steps > 0, "solver effort not recorded");
        }
    }
}

/// The allocator's search-effort counters reach the papi-obs registry for
/// both constraint schemes — masks (x86) and groups (POWER3), the latter
/// now served by the substrate-side translation rather than a core special
/// case.
#[test]
fn alloc_stats_flow_into_obs_registry() {
    use papi_suite::obs::{Counter, Obs};
    for plat in [simcpu::platform::sim_x86(), simcpu::platform::sim_power3()] {
        let name = plat.name;
        let mut m = Machine::new(plat, 2);
        m.load(papi_suite::workloads::dense_fp(100, 1, 0).program);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let obs = Obs::new();
        papi.attach_obs(obs.clone());
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotCyc.code()).unwrap();
        papi.start(set).unwrap();
        papi.stop(set).unwrap();
        assert!(obs.get(Counter::AllocAttempts) > 0, "{name}");
        assert_eq!(
            obs.get(Counter::AllocAttempts),
            obs.get(Counter::AllocSuccesses),
            "{name}: the single-event request must allocate"
        );
        assert!(
            obs.get(Counter::AllocAugmentSteps) > 0,
            "{name}: solver effort must flow through the translation layer"
        );
    }
}

/// Profil bucket totals always equal the number of overflow interrupts
/// delivered in range plus the outside count.
#[test]
fn profil_conserves_samples() {
    let mut rng = SmallRng::seed_from_u64(0x1007);
    for _case in 0..16 {
        let threshold = rng.gen_range(200u64..5000);
        let prog = papi_suite::workloads::dense_fp(20_000, 3, 1).program;
        let mut m = Machine::new(simcpu::platform::sim_generic(), 1);
        m.load(prog);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        let pid = papi
            .profil(
                set,
                Preset::TotIns.code(),
                papi_suite::papi::ProfilConfig {
                    start: simcpu::TEXT_BASE,
                    end: simcpu::Program::pc_of(16),
                    bucket_bytes: 4,
                    threshold,
                },
            )
            .unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let total_ins = papi.stop(set).unwrap()[0] as u64;
        let prof = papi.profil_histogram(pid).unwrap();
        let expected_samples = total_ins / threshold;
        // Skid at halt may drop at most a couple of pending interrupts.
        assert!(prof.total_samples() <= expected_samples, "t={threshold}");
        assert!(
            prof.total_samples() + 2 >= expected_samples,
            "t={threshold}: {} samples vs {} crossings",
            prof.total_samples(),
            expected_samples
        );
    }
}

/// Inserting probes never changes what the monitored program itself does:
/// retired-instruction and FP counts are identical with and without
/// instrumentation (probes trap, they do not retire).
#[test]
fn instrumentation_is_transparent_to_the_workload() {
    let mut rng = SmallRng::seed_from_u64(0x1008);
    for _case in 0..24 {
        let seed = rng.gen_range(0u64..2000);
        let prog = random_program(
            seed,
            RandomCfg {
                funcs: 3,
                ..Default::default()
            },
        );
        let count = |p: simcpu::Program| {
            let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
            m.enable_truth();
            m.load(p);
            m.run_to_halt();
            let t = m.truth().unwrap();
            (
                t.total(EventKind::Instructions),
                t.total(EventKind::FpAdd),
                t.total(EventKind::Loads),
            )
        };
        // Probe every function entry.
        let points: Vec<(usize, u32)> = prog
            .symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.start, i as u32))
            .collect();
        let instrumented = prog.instrument(&points);
        // Drive the instrumented version manually, skipping probe exits.
        let base = count(prog);
        let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
        m.enable_truth();
        m.load(instrumented);
        loop {
            if m.run(None) == simcpu::RunExit::Halted {
                break;
            }
        }
        let t = m.truth().unwrap();
        let inst = (
            t.total(EventKind::Instructions),
            t.total(EventKind::FpAdd),
            t.total(EventKind::Loads),
        );
        assert_eq!(base, inst, "seed {seed}");
    }
}

/// Random EventSet API call sequences never panic and never corrupt the
/// one-running-set invariant.
#[test]
fn eventset_api_fuzz() {
    let mut rng = SmallRng::seed_from_u64(0x1009);
    for _case in 0..32 {
        let seed = rng.gen_range(0u64..500);
        let n_ops = rng.gen_range(1usize..40);
        let ops: Vec<u8> = (0..n_ops).map(|_| rng.gen_range(0u8..8)).collect();
        let mut m = Machine::new(simcpu::platform::sim_x86(), seed);
        m.load(papi_suite::workloads::dense_fp(100, 1, 1).program);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let mut sets: Vec<usize> = Vec::new();
        let mut running: Option<usize> = None;
        let all_presets = [
            Preset::TotCyc,
            Preset::TotIns,
            Preset::FpOps,
            Preset::L1Dcm,
            Preset::FdvIns,
        ];
        let mut k = 0usize;
        for op in ops {
            k += 1;
            match op {
                0 => sets.push(papi.create_eventset()),
                1 => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        let _ = papi.add_event(s, all_presets[k % all_presets.len()].code());
                    }
                }
                2 => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        if let Ok(()) = papi.start(s) {
                            assert!(running.is_none(), "two sets running");
                            running = Some(s);
                        }
                    }
                }
                3 => {
                    if let Some(s) = running {
                        assert!(papi.read(s).is_ok());
                    }
                }
                4 => {
                    if let Some(s) = running.take() {
                        assert!(papi.stop(s).is_ok());
                    }
                }
                5 => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        let _ = papi.set_multiplex(s);
                    }
                }
                6 => {
                    if let Some(s) = running {
                        assert!(papi.reset(s).is_ok());
                    }
                }
                _ => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        if Some(s) != running {
                            let _ = papi.destroy_eventset(s);
                            sets.retain(|&x| x != s);
                        }
                    }
                }
            }
        }
        // Cleanup still works.
        if let Some(s) = running {
            assert!(papi.stop(s).is_ok());
        }
    }
}

#[test]
fn every_available_preset_actually_counts() {
    // "Available" must mean startable: for every platform, every preset the
    // table maps can run alone and return a non-negative value.
    for plat in all_platforms() {
        let name = plat.name;
        let table = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
        for p in table.available_presets() {
            let mut m = Machine::new(plat.clone(), 3);
            m.load(papi_suite::workloads::dense_fp(200, 2, 1).program);
            let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
            let set = papi.create_eventset();
            papi.add_event(set, p.code())
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            papi.start(set)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            papi.run_app().unwrap();
            let v = papi.stop(set).unwrap();
            assert!(v[0] >= 0, "{name}/{}: negative count {}", p.name(), v[0]);
        }
    }
}

/// Multiplex partitioning always yields valid, complete, disjoint
/// partitions whose assignments respect the masks.
#[test]
fn multiplex_partitions_are_valid() {
    use papi_suite::papi::multiplex::partition_events;
    let mut rng = SmallRng::seed_from_u64(0x100A);
    for _case in 0..64 {
        let masks = rand_masks(&mut rng, 1..10, 15);
        let descs: Vec<NativeEventDesc> = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| NativeEventDesc {
                code: 0x4000_0000 | i as u32,
                name: "PROP_EV",
                descr: "prop",
                kinds: vec![(EventKind::Cycles, 1)],
                counter_mask: m,
                group: None,
            })
            .collect();
        let refs: Vec<&NativeEventDesc> = descs.iter().collect();
        let parts = partition_events(&refs, 4, &[]).expect("every event fits alone");
        // Every native appears exactly once across partitions.
        let mut seen = vec![false; masks.len()];
        for p in &parts {
            assert_eq!(p.natives.len(), p.counters.len());
            let mut used = std::collections::HashSet::new();
            for (&n, &c) in p.natives.iter().zip(&p.counters) {
                assert!(!seen[n], "native {n} in two partitions: {masks:?}");
                seen[n] = true;
                assert!(masks[n] & (1 << c) != 0, "mask violated: {masks:?}");
                assert!(used.insert(c), "counter double-booked: {masks:?}");
            }
        }
        assert!(seen.into_iter().all(|s| s));
        assert!(parts.len() <= masks.len());
    }
}

/// Cache invariants on random access streams: misses never exceed
/// accesses, and — the LRU stack (inclusion) property — a larger
/// *fully-associative* LRU cache never misses more than a smaller one on
/// the same stream. (Set-associative geometries with different set
/// mappings are deliberately NOT compared: conflict patterns make them
/// incomparable, which a failed earlier version of this property
/// demonstrated empirically.)
#[test]
fn lru_inclusion_property() {
    use simcpu::cache::{Cache, CacheCfg};
    let mut rng = SmallRng::seed_from_u64(0x100B);
    for _case in 0..32 {
        let n_addrs = rng.gen_range(1usize..400);
        let addrs: Vec<u64> = (0..n_addrs)
            .map(|_| rng.gen_range(0u64..(1 << 16)))
            .collect();
        let mut misses = Vec::new();
        for size in [1024u32, 2048, 4096] {
            // fully associative: one set
            let mut c = Cache::new(CacheCfg {
                size,
                line: 64,
                assoc: size / 64,
            });
            for &a in &addrs {
                c.access(a);
            }
            assert!(c.misses() <= c.accesses());
            misses.push(c.misses());
        }
        assert!(misses[1] <= misses[0], "{misses:?}");
        assert!(misses[2] <= misses[1], "{misses:?}");
    }
}

/// TLB: a working set that fits never misses after the cold pass.
#[test]
fn tlb_capacity_property() {
    use simcpu::tlb::{Tlb, PAGE_SIZE};
    let mut rng = SmallRng::seed_from_u64(0x100C);
    for _case in 0..32 {
        let pages = rng.gen_range(1usize..32);
        let passes = rng.gen_range(2usize..5);
        let mut t = Tlb::new(32);
        for _ in 0..passes {
            for p in 0..pages {
                t.access(p as u64 * PAGE_SIZE);
            }
        }
        assert_eq!(t.misses(), pages as u64, "only cold misses");
    }
}

/// AddrGen never generates outside its region.
#[test]
fn addrgen_stays_in_bounds() {
    let mut rng = SmallRng::seed_from_u64(0x100D);
    for _case in 0..32 {
        let base = rng.gen_range(0u64..(1 << 30));
        let len_pow = rng.gen_range(7u32..22);
        let steps = rng.gen_range(1usize..300);
        let len = 1u64 << len_pow;
        for gen in [
            simcpu::AddrGen::Stride {
                base,
                stride: 8,
                len,
            },
            simcpu::AddrGen::Rand { base, len },
            simcpu::AddrGen::Chase { base, len },
        ] {
            let mut cursor = 0u64;
            for _ in 0..steps {
                let a = gen.next(&mut cursor, rng.gen());
                assert!(a >= base && a < base + len, "{gen:?} produced {a:#x}");
            }
        }
    }
}

#[test]
fn preset_tables_are_deterministic_and_consistent() {
    // Building the table twice gives identical mappings; every mapping
    // references only events of its own platform.
    for plat in all_platforms() {
        let t1 = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
        let t2 = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
        for &p in Preset::ALL {
            assert_eq!(t1.mapping(p.code()), t2.mapping(p.code()), "{}", plat.name);
            if let Some(m) = t1.mapping(p.code()) {
                for &(code, coeff) in &m.terms {
                    assert!(
                        plat.event_by_code(code).is_some(),
                        "{}: foreign code",
                        plat.name
                    );
                    assert!(coeff != 0);
                }
            }
        }
    }
}

/// The binary trace decoder never panics on arbitrary input bytes.
#[test]
fn trace_decode_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x100E);
    for _case in 0..128 {
        let n = rng.gen_range(0usize..600);
        let bytes: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
        let _ = papi_suite::toolkit::traceformat::decode(&bytes);
    }
}

/// Encode/decode roundtrips arbitrary well-formed timelines.
#[test]
fn trace_roundtrip_arbitrary() {
    use papi_suite::tools::tracer::{IntervalRecord, Timeline};
    let mut rng = SmallRng::seed_from_u64(0x100F);
    for _case in 0..64 {
        let k = rng.gen_range(0usize..5);
        let names: Vec<String> = (0..k)
            .map(|_| {
                let len = rng.gen_range(1usize..13);
                (0..len)
                    .map(|_| {
                        let c = rng.gen_range(0u8..27);
                        if c == 26 {
                            '_'
                        } else {
                            (b'A' + c) as char
                        }
                    })
                    .collect()
            })
            .collect();
        let n_rows = rng.gen_range(0usize..20);
        let tl = Timeline {
            events: names,
            intervals: (0..n_rows)
                .map(|i| {
                    let raw = rng.gen_range(0usize..5);
                    let mut deltas: Vec<i64> = (0..raw).map(|_| rng.gen()).collect();
                    deltas.resize(k, 0);
                    IntervalRecord {
                        t_start_us: i as f64,
                        t_end_us: i as f64 + 1.0,
                        deltas,
                    }
                })
                .collect(),
        };
        let back = papi_suite::toolkit::traceformat::decode(
            &papi_suite::toolkit::traceformat::encode(&tl),
        )
        .unwrap();
        assert_eq!(back, tl);
    }
}

/// The whole stack is deterministic: same seed, same counts, same time.
/// Build a session on `spec` with a seeded random program and a random
/// 1–4 event set drawn from `candidates` (events the platform rejects are
/// skipped). Returns `None` when the drawn set cannot start (e.g. counter
/// conflicts without multiplexing) — callers skip those cases.
fn random_started_session(
    spec: simcpu::PlatformSpec,
    prog_seed: u64,
    rng: &mut SmallRng,
    mpx: bool,
) -> Option<(Papi<SimSubstrate>, usize, usize)> {
    const CANDIDATES: [Preset; 6] = [
        Preset::TotCyc,
        Preset::TotIns,
        Preset::LdIns,
        Preset::SrIns,
        Preset::L1Dcm,
        Preset::BrIns,
    ];
    let mut m = Machine::new(spec, prog_seed);
    m.load(random_program(
        prog_seed,
        RandomCfg {
            funcs: 2,
            ..Default::default()
        },
    ));
    let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
    let set = papi.create_eventset();
    let want = rng.gen_range(1usize..=4);
    let mut added = 0usize;
    for _ in 0..8 {
        let ev = CANDIDATES[rng.gen_range(0..CANDIDATES.len())];
        if papi.add_event(set, ev.code()).is_ok() {
            added += 1;
            if added == want {
                break;
            }
        }
    }
    if added == 0 {
        papi.add_event(set, Preset::TotCyc.code()).ok()?;
        added = 1;
    }
    if mpx {
        papi.set_multiplex(set).ok()?;
    }
    papi.start(set).ok()?;
    Some((papi, set, added))
}

/// `read_into` is the same observable operation as `read`: over random
/// programs, event sets, platforms (mask- and group-allocated) and
/// multiplex on/off, two identical sessions sampled through the two entry
/// points report identical values at every step.
#[test]
fn read_into_equals_read_under_replay() {
    let mut rng = SmallRng::seed_from_u64(0x1011);
    for case in 0..36 {
        let spec = match case % 3 {
            0 => simcpu::platform::sim_x86(),
            1 => simcpu::platform::sim_generic(),
            _ => simcpu::platform::sim_power3(),
        };
        let mpx = rng.gen_bool(0.5);
        let prog_seed = rng.gen_range(0u64..2000);
        let set_seed: u64 = rng.gen();
        let mk = |spec: simcpu::PlatformSpec| {
            let mut set_rng = SmallRng::seed_from_u64(set_seed);
            random_started_session(spec, prog_seed, &mut set_rng, mpx)
        };
        let (Some((mut a, set_a, n)), Some((mut b, set_b, _))) = (mk(spec.clone()), mk(spec))
        else {
            continue;
        };
        let steps = rng.gen_range(2usize..6);
        let mut buf = vec![0i64; n];
        for step in 0..steps {
            let budget = rng.gen_range(1_000u64..50_000);
            a.run_for(budget).unwrap();
            b.run_for(budget).unwrap();
            let via_read = a.read(set_a).unwrap();
            b.read_into(set_b, &mut buf).unwrap();
            assert_eq!(
                via_read, buf,
                "case {case} step {step} (mpx={mpx}, prog_seed={prog_seed})"
            );
        }
    }
}

/// `accum` is exactly "read_into + add + reset": an identical session
/// replaying that manual sequence accumulates the same totals at every
/// step, because the two perform the same costed substrate operations.
#[test]
fn accum_equals_read_into_plus_reset_under_replay() {
    let mut rng = SmallRng::seed_from_u64(0x1012);
    for case in 0..36 {
        let spec = match case % 3 {
            0 => simcpu::platform::sim_x86(),
            1 => simcpu::platform::sim_generic(),
            _ => simcpu::platform::sim_power3(),
        };
        let mpx = rng.gen_bool(0.5);
        let prog_seed = rng.gen_range(0u64..2000);
        let set_seed: u64 = rng.gen();
        let mk = |spec: simcpu::PlatformSpec| {
            let mut set_rng = SmallRng::seed_from_u64(set_seed);
            random_started_session(spec, prog_seed, &mut set_rng, mpx)
        };
        let (Some((mut a, set_a, n)), Some((mut b, set_b, _))) = (mk(spec.clone()), mk(spec))
        else {
            continue;
        };
        let steps = rng.gen_range(2usize..6);
        let mut acc = vec![0i64; n];
        let mut manual = vec![0i64; n];
        let mut delta = vec![0i64; n];
        for step in 0..steps {
            let budget = rng.gen_range(1_000u64..50_000);
            a.run_for(budget).unwrap();
            b.run_for(budget).unwrap();
            a.accum(set_a, &mut acc).unwrap();
            b.read_into(set_b, &mut delta).unwrap();
            for (m, d) in manual.iter_mut().zip(&delta) {
                *m += d;
            }
            b.reset(set_b).unwrap();
            assert_eq!(
                acc, manual,
                "case {case} step {step} (mpx={mpx}, prog_seed={prog_seed})"
            );
        }
    }
}

#[test]
fn end_to_end_determinism() {
    let mut rng = SmallRng::seed_from_u64(0x1010);
    for _case in 0..12 {
        let seed = rng.gen_range(0u64..1000);
        let run = || {
            let prog = random_program(
                seed,
                RandomCfg {
                    funcs: 3,
                    ..Default::default()
                },
            );
            let mut m = Machine::new(simcpu::platform::sim_x86(), seed);
            m.load(prog);
            let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
            let set = papi.create_eventset();
            papi.add_event(set, Preset::TotCyc.code()).unwrap();
            papi.add_event(set, Preset::L1Dcm.code()).unwrap();
            papi.start(set).unwrap();
            papi.run_app().unwrap();
            (papi.stop(set).unwrap(), papi.get_real_cyc())
        };
        assert_eq!(run(), run(), "seed {seed}");
    }
}

// --- oracle (Expected) and grading properties ------------------------------

const ORACLE_KINDS: &[EventKind] = &[
    EventKind::FpAdd,
    EventKind::FpFma,
    EventKind::IntOps,
    EventKind::Loads,
    EventKind::Stores,
    EventKind::Branches,
    EventKind::Instructions,
    EventKind::L1DMiss,
];

/// `check` answers exactly for the kinds the oracle `covers`, and for no
/// others — a random mix of exact and approximate entries never makes the
/// two disagree.
#[test]
fn expected_check_answers_iff_covered() {
    let mut rng = SmallRng::seed_from_u64(0x2001);
    for _case in 0..64 {
        let mut e = papi_suite::workloads::Expected::default();
        let picks = rng.gen_range(0..ORACLE_KINDS.len());
        for _ in 0..picks {
            let kind = ORACLE_KINDS[rng.gen_range(0..ORACLE_KINDS.len())];
            let want = rng.gen_range(0u64..10_000);
            if rng.gen_bool(0.5) {
                e = e.exact(kind, want);
            } else {
                e = e.approx(kind, want, rng.gen_range(0.0..0.5));
            }
        }
        for &kind in ORACLE_KINDS {
            let measured = rng.gen_range(0u64..10_000);
            assert_eq!(
                e.check(kind, measured).is_some(),
                e.covers(kind),
                "kind {kind:?}"
            );
        }
    }
}

/// An exact entry always shadows an approximate one for the same kind: no
/// matter how generous the approx tolerance, only the exact value passes.
#[test]
fn expected_exact_shadows_approx() {
    let mut rng = SmallRng::seed_from_u64(0x2002);
    for _case in 0..64 {
        let want = rng.gen_range(10u64..100_000);
        let tol = rng.gen_range(0.5..4.0);
        let e = papi_suite::workloads::Expected::default()
            .exact(EventKind::Loads, want)
            .approx(EventKind::Loads, want, tol);
        // A miss kept strictly inside the approx band: only exact's shadow
        // can reject it.
        let off = want + rng.gen_range(1u64..=(tol * want as f64).floor() as u64);
        assert_eq!(e.check(EventKind::Loads, want), Some(true));
        assert_eq!(
            e.check(EventKind::Loads, off),
            Some(false),
            "want {want} off {off}"
        );
    }
}

/// The approximate tolerance band is inclusive and symmetric, and a zero
/// expectation grants the absolute budget `tol` instead of collapsing to
/// exact-match (the degenerate case `papi_validate` exists to keep honest).
#[test]
fn expected_approx_band_inclusive_symmetric() {
    let mut rng = SmallRng::seed_from_u64(0x2003);
    for _case in 0..96 {
        let want = if rng.gen_bool(0.2) {
            0
        } else {
            rng.gen_range(1u64..50_000)
        };
        let tol = rng.gen_range(0.0..0.6);
        let e = papi_suite::workloads::Expected::default().approx(EventKind::L1DMiss, want, tol);
        let band = papi_suite::workloads::grading::tolerance_band(want, tol);
        let inside = band.floor() as u64;
        assert_eq!(
            e.check(EventKind::L1DMiss, want + inside),
            Some(true),
            "want {want} tol {tol} band {band}"
        );
        if want >= inside {
            assert_eq!(e.check(EventKind::L1DMiss, want - inside), Some(true));
        }
        let outside = band.floor() as u64 + 1;
        assert_eq!(
            e.check(EventKind::L1DMiss, want + outside),
            Some(false),
            "want {want} tol {tol} band {band}"
        );
    }
}

/// `Expected::check` on an approximate entry and `grading::grade` are the
/// same predicate: check passes exactly when the grade ranks within-or-
/// better. The two modules must not drift — `papi_calibrate` scores with
/// one, `papi_validate` with the other.
#[test]
fn expected_check_agrees_with_grading() {
    let mut rng = SmallRng::seed_from_u64(0x2004);
    for _case in 0..128 {
        let want = rng.gen_range(0u64..20_000);
        let tol = rng.gen_range(0.0..0.5);
        let measured = rng.gen_range(0u64..25_000);
        let e = papi_suite::workloads::Expected::default().approx(EventKind::FpFma, want, tol);
        let passed = e.check(EventKind::FpFma, measured).unwrap();
        let g = papi_suite::workloads::grading::grade(want as i64, measured as i64, tol);
        assert_eq!(
            passed,
            g.rank() <= 1,
            "want {want} measured {measured} tol {tol}: check {passed} vs grade {g}"
        );
    }
}

/// Widening the absolute floor never worsens a grade, and a floor below
/// the relative band never changes it.
#[test]
fn grade_floor_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x2005);
    for _case in 0..128 {
        let want = rng.gen_range(0i64..20_000);
        let tol = rng.gen_range(0.0..0.3);
        let measured = rng.gen_range(0i64..25_000);
        let lo = rng.gen_range(0.0..500.0);
        let hi = lo + rng.gen_range(0.0..2_000.0);
        let g_lo = papi_suite::workloads::grading::grade_with_floor(want, measured, tol, lo);
        let g_hi = papi_suite::workloads::grading::grade_with_floor(want, measured, tol, hi);
        assert!(
            g_hi.rank() <= g_lo.rank(),
            "want {want} measured {measured} tol {tol} floors {lo}/{hi}: {g_lo} -> {g_hi}"
        );
    }
}

/// Pennycook's PP is monotone in any single cell's efficiency: raising
/// one efficiency (all others held fixed) never lowers the score — at
/// the flat level and through the two-level fold the benchmark matrix
/// uses (harmonic over configs per substrate, then harmonic over
/// substrates). An unsupported cell (eff <= 0) zeroes the whole score.
#[test]
fn pp_is_monotone_in_single_cell_efficiency() {
    use papi_bench::matrix::harmonic_pp;

    let mut rng = SmallRng::seed_from_u64(0x2006);
    for case in 0..256 {
        let n = rng.gen_range(1..8usize);
        let mut effs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0f64)).collect();
        let before = harmonic_pp(&effs);
        let i = rng.gen_range(0..n);
        let bumped = (effs[i] + rng.gen_range(0.0..1.0f64)).min(1.0);
        assert!(bumped >= effs[i]);
        effs[i] = bumped;
        let after = harmonic_pp(&effs);
        assert!(
            after >= before - 1e-12,
            "case {case}: raising eff[{i}] dropped PP {before} -> {after} ({effs:?})"
        );

        // Two-level fold: substrate scores are themselves harmonic means
        // of per-config efficiencies; bumping one config cell must not
        // lower the final PP either.
        let subs = rng.gen_range(1..5usize);
        let cfgs = rng.gen_range(1..5usize);
        let mut matrix: Vec<Vec<f64>> = (0..subs)
            .map(|_| (0..cfgs).map(|_| rng.gen_range(0.01..1.0f64)).collect())
            .collect();
        let fold = |m: &[Vec<f64>]| {
            let per_sub: Vec<f64> = m.iter().map(|c| harmonic_pp(c)).collect();
            harmonic_pp(&per_sub)
        };
        let before = fold(&matrix);
        let (s, c) = (rng.gen_range(0..subs), rng.gen_range(0..cfgs));
        matrix[s][c] = (matrix[s][c] + rng.gen_range(0.0..1.0f64)).min(1.0);
        let after = fold(&matrix);
        assert!(
            after >= before - 1e-12,
            "case {case}: raising cell [{s}][{c}] dropped PP {before} -> {after}"
        );

        // Killing any one cell (unsupported => eff 0) zeroes its
        // substrate score and with it the whole PP.
        matrix[s][c] = 0.0;
        assert_eq!(
            fold(&matrix),
            0.0,
            "case {case}: unsupported cell must zero PP"
        );
    }
}
