//! Property-based tests over the core invariants, using seeded random
//! programs and random allocation instances.

use papi_suite::papi::alloc::{
    greedy_first_fit, max_cardinality_assign, max_weight_assign, optimal_assign,
};
use papi_suite::papi::{Papi, Preset, PresetTable, SimSubstrate};
use papi_suite::workloads::{random_program, RandomCfg};
use proptest::prelude::*;
use simcpu::{all_platforms, EventKind, Machine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counter values never depend on *which* counter an event landed on,
    /// and equal the machine's ground truth.
    #[test]
    fn counts_match_ground_truth_on_random_programs(seed in 0u64..5000) {
        let prog = random_program(seed, RandomCfg::default());
        // Ground truth run.
        let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
        m.enable_truth();
        m.load(prog.clone());
        m.run_to_halt();
        let truth_fp = m.truth().unwrap().total(EventKind::FpAdd);
        let truth_ld = m.truth().unwrap().total(EventKind::Loads);
        let truth_ins = m.truth().unwrap().total(EventKind::Instructions);

        // Measured through the portable interface.
        let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
        m.load(prog);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        let fad = papi.event_name_to_code("GEN_FP_INS").unwrap();
        papi.add_event(set, fad).unwrap();
        papi.add_event(set, Preset::LdIns.code()).unwrap();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let v = papi.stop(set).unwrap();
        prop_assert!(v[0] as u64 >= truth_fp); // FP_INS includes mul/fma/div too
        prop_assert_eq!(v[1] as u64, truth_ld);
        prop_assert_eq!(v[2] as u64, truth_ins);
    }

    /// The optimal matcher succeeds at least as often as greedy first-fit,
    /// and its assignments are always valid (mask-respecting, injective).
    #[test]
    fn optimal_dominates_greedy(masks in proptest::collection::vec(1u32..63, 1..6)) {
        let n = 6;
        let opt = optimal_assign(&masks, n);
        let greedy = greedy_first_fit(&masks, n);
        if greedy.is_some() {
            prop_assert!(opt.is_some(), "greedy found a matching the optimal missed");
        }
        if let Some(a) = &opt {
            let mut seen = std::collections::HashSet::new();
            for (ev, &c) in a.iter().enumerate() {
                prop_assert!(masks[ev] & (1 << c) != 0, "mask violated");
                prop_assert!(seen.insert(c), "counter double-booked");
            }
        }
    }

    /// Maximum-cardinality matching size is monotone: relaxing a mask
    /// (adding allowed counters) never shrinks the matching.
    #[test]
    fn cardinality_monotone_under_relaxation(
        masks in proptest::collection::vec(1u32..15, 1..6),
        extra in 1u32..15,
        which in 0usize..6,
    ) {
        let n = 4;
        let before = max_cardinality_assign(&masks, n).iter().filter(|o| o.is_some()).count();
        let mut relaxed = masks.clone();
        let i = which % relaxed.len();
        relaxed[i] |= extra;
        let after = max_cardinality_assign(&relaxed, n).iter().filter(|o| o.is_some()).count();
        prop_assert!(after >= before);
    }

    /// Weighted matching never selects a lighter set than the unweighted
    /// matching could force: total matched weight >= weight of any single
    /// heaviest matchable event.
    #[test]
    fn weighted_matching_matches_heaviest_possible(
        masks in proptest::collection::vec(1u32..15, 1..6),
        weights in proptest::collection::vec(1u64..1000, 6),
    ) {
        let n = 4;
        let w = &weights[..masks.len()];
        let assign = max_weight_assign(&masks, w, n);
        let matched_weight: u64 = assign
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| w[i])
            .sum();
        // Every single event alone is matchable (mask nonzero), so the
        // result must weigh at least as much as the heaviest event.
        let heaviest = w.iter().copied().max().unwrap();
        prop_assert!(matched_weight >= heaviest);
    }

    /// Profil bucket totals always equal the number of overflow interrupts
    /// delivered in range plus the outside count.
    #[test]
    fn profil_conserves_samples(threshold in 200u64..5000) {
        let prog = papi_suite::workloads::dense_fp(20_000, 3, 1).program;
        let mut m = Machine::new(simcpu::platform::sim_generic(), 1);
        m.load(prog);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        let pid = papi.profil(
            set,
            Preset::TotIns.code(),
            papi_suite::papi::ProfilConfig {
                start: simcpu::TEXT_BASE,
                end: simcpu::Program::pc_of(16),
                bucket_bytes: 4,
                threshold,
            },
        ).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let total_ins = papi.stop(set).unwrap()[0] as u64;
        let prof = papi.profil_histogram(pid).unwrap();
        let expected_samples = total_ins / threshold;
        // Skid at halt may drop at most a couple of pending interrupts.
        prop_assert!(prof.total_samples() <= expected_samples);
        prop_assert!(prof.total_samples() + 2 >= expected_samples,
            "{} samples vs {} crossings", prof.total_samples(), expected_samples);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Inserting probes never changes what the monitored program itself
    /// does: retired-instruction and FP counts are identical with and
    /// without instrumentation (probes trap, they do not retire).
    #[test]
    fn instrumentation_is_transparent_to_the_workload(seed in 0u64..2000) {
        let prog = random_program(seed, RandomCfg { funcs: 3, ..Default::default() });
        let count = |p: simcpu::Program| {
            let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
            m.enable_truth();
            m.load(p);
            m.run_to_halt();
            let t = m.truth().unwrap();
            (t.total(EventKind::Instructions), t.total(EventKind::FpAdd), t.total(EventKind::Loads))
        };
        // Probe every function entry.
        let points: Vec<(usize, u32)> = prog
            .symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.start, i as u32))
            .collect();
        let instrumented = prog.instrument(&points);
        // Drive the instrumented version manually, skipping probe exits.
        let base = count(prog);
        let mut m = Machine::new(simcpu::platform::sim_generic(), seed);
        m.enable_truth();
        m.load(instrumented);
        loop {
            if m.run(None) == simcpu::RunExit::Halted { break }
        }
        let t = m.truth().unwrap();
        let inst = (t.total(EventKind::Instructions), t.total(EventKind::FpAdd), t.total(EventKind::Loads));
        prop_assert_eq!(base, inst);
    }

    /// Random EventSet API call sequences never panic and never corrupt the
    /// one-running-set invariant.
    #[test]
    fn eventset_api_fuzz(ops in proptest::collection::vec(0u8..8, 1..40), seed in 0u64..500) {
        let mut m = Machine::new(simcpu::platform::sim_x86(), seed);
        m.load(papi_suite::workloads::dense_fp(100, 1, 1).program);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let mut sets: Vec<usize> = Vec::new();
        let mut running: Option<usize> = None;
        let all_presets = [Preset::TotCyc, Preset::TotIns, Preset::FpOps, Preset::L1Dcm, Preset::FdvIns];
        let mut k = 0usize;
        for op in ops {
            k += 1;
            match op {
                0 => sets.push(papi.create_eventset()),
                1 => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        let _ = papi.add_event(s, all_presets[k % all_presets.len()].code());
                    }
                }
                2 => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        if let Ok(()) = papi.start(s) {
                            prop_assert!(running.is_none(), "two sets running");
                            running = Some(s);
                        }
                    }
                }
                3 => {
                    if let Some(s) = running {
                        let v = papi.read(s);
                        prop_assert!(v.is_ok());
                    }
                }
                4 => {
                    if let Some(s) = running.take() {
                        prop_assert!(papi.stop(s).is_ok());
                    }
                }
                5 => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        let _ = papi.set_multiplex(s);
                    }
                }
                6 => {
                    if let Some(s) = running {
                        prop_assert!(papi.reset(s).is_ok());
                    }
                }
                _ => {
                    if let Some(&s) = sets.get(k % sets.len().max(1)) {
                        if Some(s) != running {
                            let _ = papi.destroy_eventset(s);
                            sets.retain(|&x| x != s);
                        }
                    }
                }
            }
        }
        // Cleanup still works.
        if let Some(s) = running {
            prop_assert!(papi.stop(s).is_ok());
        }
    }
}

#[test]
fn every_available_preset_actually_counts() {
    // "Available" must mean startable: for every platform, every preset the
    // table maps can run alone and return a non-negative value.
    for plat in all_platforms() {
        let name = plat.name;
        let table = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
        for p in table.available_presets() {
            let mut m = Machine::new(plat.clone(), 3);
            m.load(papi_suite::workloads::dense_fp(200, 2, 1).program);
            let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
            let set = papi.create_eventset();
            papi.add_event(set, p.code())
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            papi.start(set)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", p.name()));
            papi.run_app().unwrap();
            let v = papi.stop(set).unwrap();
            assert!(v[0] >= 0, "{name}/{}: negative count {}", p.name(), v[0]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multiplex partitioning always yields valid, complete, disjoint
    /// partitions whose assignments respect the masks.
    #[test]
    fn multiplex_partitions_are_valid(masks in proptest::collection::vec(1u32..15, 1..10)) {
        use papi_suite::papi::multiplex::partition_events;
        use simcpu::NativeEventDesc;
        let descs: Vec<NativeEventDesc> = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| NativeEventDesc {
                code: 0x4000_0000 | i as u32,
                name: "PROP_EV",
                descr: "prop",
                kinds: vec![(EventKind::Cycles, 1)],
                counter_mask: m,
                group: None,
            })
            .collect();
        let refs: Vec<&NativeEventDesc> = descs.iter().collect();
        let parts = partition_events(&refs, 4, &[]).expect("every event fits alone");
        // Every native appears exactly once across partitions.
        let mut seen = vec![false; masks.len()];
        for p in &parts {
            prop_assert_eq!(p.natives.len(), p.counters.len());
            let mut used = std::collections::HashSet::new();
            for (&n, &c) in p.natives.iter().zip(&p.counters) {
                prop_assert!(!seen[n], "native {} in two partitions", n);
                seen[n] = true;
                prop_assert!(masks[n] & (1 << c) != 0, "mask violated");
                prop_assert!(used.insert(c), "counter double-booked in partition");
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert!(parts.len() <= masks.len());
    }

    /// Cache invariants on random access streams: misses never exceed
    /// accesses, and — the LRU stack (inclusion) property — a larger
    /// *fully-associative* LRU cache never misses more than a smaller one
    /// on the same stream. (Set-associative geometries with different set
    /// mappings are deliberately NOT compared: conflict patterns make them
    /// incomparable, which a failed earlier version of this property
    /// demonstrated empirically.)
    #[test]
    fn lru_inclusion_property(addrs in proptest::collection::vec(0u64..(1 << 16), 1..400)) {
        use simcpu::cache::{Cache, CacheCfg};
        let mut misses = Vec::new();
        for size in [1024u32, 2048, 4096] {
            // fully associative: one set
            let mut c = Cache::new(CacheCfg { size, line: 64, assoc: size / 64 });
            for &a in &addrs {
                c.access(a);
            }
            prop_assert!(c.misses() <= c.accesses());
            misses.push(c.misses());
        }
        prop_assert!(misses[1] <= misses[0]);
        prop_assert!(misses[2] <= misses[1]);
    }

    /// TLB: a working set that fits never misses after the cold pass.
    #[test]
    fn tlb_capacity_property(pages in 1usize..32, passes in 2usize..5) {
        use simcpu::tlb::{Tlb, PAGE_SIZE};
        let mut t = Tlb::new(32);
        for _ in 0..passes {
            for p in 0..pages {
                t.access(p as u64 * PAGE_SIZE);
            }
        }
        assert_eq!(t.misses(), pages as u64, "only cold misses");
    }

    /// AddrGen never generates outside its region.
    #[test]
    fn addrgen_stays_in_bounds(
        base in 0u64..(1 << 30),
        len_pow in 7u32..22,
        steps in 1usize..300,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let len = 1u64 << len_pow;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for gen in [
            simcpu::AddrGen::Stride { base, stride: 8, len },
            simcpu::AddrGen::Rand { base, len },
            simcpu::AddrGen::Chase { base, len },
        ] {
            let mut cursor = 0u64;
            for _ in 0..steps {
                let a = gen.next(&mut cursor, rng.gen());
                prop_assert!(a >= base && a < base + len, "{gen:?} produced {a:#x}");
            }
        }
    }
}

#[test]
fn preset_tables_are_deterministic_and_consistent() {
    // Building the table twice gives identical mappings; every mapping
    // references only events of its own platform.
    for plat in all_platforms() {
        let t1 = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
        let t2 = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
        for &p in Preset::ALL {
            assert_eq!(t1.mapping(p.code()), t2.mapping(p.code()), "{}", plat.name);
            if let Some(m) = t1.mapping(p.code()) {
                for &(code, coeff) in &m.terms {
                    assert!(
                        plat.event_by_code(code).is_some(),
                        "{}: foreign code",
                        plat.name
                    );
                    assert!(coeff != 0);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The binary trace decoder never panics on arbitrary input bytes.
    #[test]
    fn trace_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = papi_suite::toolkit::traceformat::decode(&bytes);
    }

    /// Encode/decode roundtrips arbitrary well-formed timelines.
    #[test]
    fn trace_roundtrip_arbitrary(
        names in proptest::collection::vec("[A-Z_]{1,12}", 0..5),
        rows in proptest::collection::vec(proptest::collection::vec(any::<i64>(), 0..5), 0..20),
    ) {
        use papi_tools::tracer::{IntervalRecord, Timeline};
        let k = names.len();
        let tl = Timeline {
            events: names,
            intervals: rows
                .into_iter()
                .enumerate()
                .map(|(i, mut deltas)| {
                    deltas.resize(k, 0);
                    IntervalRecord { t_start_us: i as f64, t_end_us: i as f64 + 1.0, deltas }
                })
                .collect(),
        };
        let back = papi_suite::toolkit::traceformat::decode(
            &papi_suite::toolkit::traceformat::encode(&tl)
        ).unwrap();
        prop_assert_eq!(back, tl);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The whole stack is deterministic: same seed, same counts, same time.
    #[test]
    fn end_to_end_determinism(seed in 0u64..1000) {
        let run = || {
            let prog = random_program(seed, RandomCfg { funcs: 3, ..Default::default() });
            let mut m = Machine::new(simcpu::platform::sim_x86(), seed);
            m.load(prog);
            let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
            let set = papi.create_eventset();
            papi.add_event(set, Preset::TotCyc.code()).unwrap();
            papi.add_event(set, Preset::L1Dcm.code()).unwrap();
            papi.start(set).unwrap();
            papi.run_app().unwrap();
            (papi.stop(set).unwrap(), papi.get_real_cyc())
        };
        prop_assert_eq!(run(), run());
    }
}
