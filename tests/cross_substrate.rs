//! Cross-substrate equivalence: the same portable measurements through the
//! direct substrate and through the kernel-patch syscall substrate.
//!
//! This is the strongest operational form of the paper's Figure-1 claim:
//! not only does the portable layer *compile* against both machine-dependent
//! layers — it produces identical event counts, identical calibration
//! verdicts, and working tool stacks on each.

use papi_core::{Papi, Preset, SimSubstrate, Substrate};
use papi_suite::workloads::{calibration_suite, phased};
use papi_tools::{Perfometer, Tracer};
use perfctr_emu::{PerfctrDev, PerfctrSubstrate};
use simcpu::platform::sim_x86;
use simcpu::Machine;

fn measure<S: Substrate>(papi: &mut Papi<S>, codes: &[u32]) -> Vec<i64> {
    let set = papi.create_eventset();
    papi.add_events(set, codes).unwrap();
    papi.start(set).unwrap();
    papi.run_app().unwrap();
    papi.stop(set).unwrap()
}

#[test]
fn calibration_suite_identical_on_both_substrates() {
    for w in calibration_suite() {
        for preset in [Preset::FpOps, Preset::LdIns, Preset::BrIns, Preset::TotIns] {
            let codes = [preset.code()];
            // Direct.
            let mut m = Machine::new(sim_x86(), 11);
            m.load(w.program.clone());
            let mut direct = Papi::init(SimSubstrate::new(m)).unwrap();
            if !direct.query_event(preset.code()) {
                continue;
            }
            let via_direct = measure(&mut direct, &codes);
            // Through the syscall ABI.
            let mut m = Machine::new(sim_x86(), 11);
            m.load(w.program.clone());
            let mut sysc = Papi::init(PerfctrSubstrate::open(PerfctrDev::new(m)).unwrap()).unwrap();
            let via_syscalls = measure(&mut sysc, &codes);
            assert_eq!(
                via_direct,
                via_syscalls,
                "{}/{}: substrates disagree",
                w.name,
                preset.name()
            );
        }
    }
}

#[test]
fn perfometer_and_tracer_run_over_syscall_substrate() {
    let mut m = Machine::new(sim_x86(), 4);
    m.load(phased(1, 20_000).program);
    let mut papi = Papi::init(PerfctrSubstrate::open(PerfctrDev::new(m)).unwrap()).unwrap();
    let mut pm = Perfometer::new(100_000);
    pm.monitor(&mut papi, Preset::FpOps.code()).unwrap();
    assert!(pm.trace().len() > 3);

    let mut m = Machine::new(sim_x86(), 4);
    m.load(phased(1, 20_000).program);
    let mut papi = Papi::init(PerfctrSubstrate::open(PerfctrDev::new(m)).unwrap()).unwrap();
    let tl = Tracer::new(100_000)
        .trace(&mut papi, &[Preset::FpOps.code(), Preset::LdIns.code()])
        .unwrap();
    assert_eq!(tl.totals()[0], 20_000 * 4 * 2);
}

#[test]
fn multiplexing_works_through_the_kernel_timer() {
    // The multiplex rotation runs off the kernel's interval timer through
    // the syscall ABI (SIGALRM path).
    let mut m = Machine::new(sim_x86(), 6);
    m.load(papi_suite::workloads::dense_fp(400_000, 3, 1).program);
    let mut papi = Papi::init(PerfctrSubstrate::open(PerfctrDev::new(m)).unwrap()).unwrap();
    let set = papi.create_eventset();
    for p in [
        Preset::FpOps,
        Preset::FmaIns,
        Preset::FdvIns,
        Preset::TotIns,
    ] {
        papi.add_event(set, p.code()).unwrap();
    }
    papi.set_multiplex(set).unwrap();
    papi.start(set).unwrap();
    papi.run_app().unwrap();
    let v = papi.stop(set).unwrap();
    let err = (v[1] - 1_200_000).abs() as f64 / 1_200_000.0;
    assert!(err < 0.1, "mpx estimate through signals off by {err}");
}
