//! E1 integration: the same measurement code runs unchanged on every
//! platform substrate — the layered-architecture claim of Figure 1.

use papi_suite::papi::{Papi, Preset, SimSubstrate};
use papi_suite::workloads::{dense_fp, matmul};
use simcpu::{all_platforms, Machine};

/// Count FP operations for the same kernel on a platform, using identical
/// portable code.
fn count_fp_ops(plat: simcpu::PlatformSpec) -> Option<i64> {
    let w = dense_fp(5_000, 3, 2);
    let mut m = Machine::new(plat, 17);
    m.load(w.program);
    let mut papi = Papi::init(SimSubstrate::new(m)).ok()?;
    if !papi.query_event(Preset::FpOps.code()) {
        return None;
    }
    let set = papi.create_eventset();
    papi.add_event(set, Preset::FpOps.code()).ok()?;
    papi.start(set).ok()?;
    papi.run_app().ok()?;
    Some(papi.stop(set).ok()?[0])
}

#[test]
fn identical_code_identical_answers_across_platforms() {
    let truth = 5_000 * (3 * 2 + 2); // 3 FMA x 2 + 2 adds per iter
    let mut measured_on = 0;
    for plat in all_platforms() {
        let name = plat.name;
        if let Some(v) = count_fp_ops(plat) {
            assert_eq!(v, truth, "FP_OPS wrong on {name}");
            measured_on += 1;
        }
    }
    // FP_OPS maps exactly on at least four of the six platforms.
    assert!(
        measured_on >= 4,
        "only {measured_on} platforms mapped FP_OPS"
    );
}

#[test]
fn every_platform_times_and_counts_cycles() {
    for plat in all_platforms() {
        let name = plat.name;
        let w = matmul(8);
        let mut m = Machine::new(plat, 3);
        m.load(w.program);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotCyc.code())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let v = papi.stop(set).unwrap();
        assert!(
            v[0] >= v[1],
            "{name}: cycles {} < instructions {}",
            v[0],
            v[1]
        );
        assert!(papi.get_real_usec() > 0, "{name}: wallclock timer dead");
        assert!(
            papi.get_virt_usec(0).unwrap() <= papi.get_real_usec(),
            "{name}: virtual > real"
        );
    }
}

#[test]
fn preset_availability_differs_but_core_is_universal() {
    let mut availability = Vec::new();
    for plat in all_platforms() {
        let m = Machine::new(plat, 1);
        let papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let avail = papi.preset_table().available_presets().len();
        availability.push((papi.hw_info().model, avail));
        // Only a small core is truly universal; FP presets, for instance,
        // are unmappable on sim-ultra (its FP pipes fold FMAs in).
        for p in [Preset::TotCyc, Preset::TotIns, Preset::BrIns] {
            assert!(
                papi.query_event(p.code()),
                "{}: missing {}",
                papi.hw_info().model,
                p.name()
            );
        }
    }
    // Portability is not uniformity: the counts of available presets differ.
    let counts: std::collections::HashSet<usize> = availability.iter().map(|&(_, c)| c).collect();
    assert!(
        counts.len() >= 3,
        "platforms should differ in preset coverage: {availability:?}"
    );
}

#[test]
fn native_namespaces_are_platform_specific() {
    // The same portable preset maps to differently-named native events.
    let mut names = std::collections::HashSet::new();
    for plat in all_platforms() {
        let m = Machine::new(plat, 1);
        let papi = Papi::init(SimSubstrate::new(m)).unwrap();
        if let Some(mapping) = papi.preset_table().mapping(Preset::TotIns.code()) {
            names.insert(papi.event_code_to_name(mapping.terms[0].0).unwrap());
        }
    }
    assert!(
        names.len() >= 5,
        "expected distinct native names, got {names:?}"
    );
}

#[test]
fn per_thread_counting_is_portable() {
    use simcpu::Granularity;
    for plat in all_platforms() {
        let name = plat.name;
        let mut m = Machine::new(plat, 5);
        m.load(dense_fp(20_000, 2, 0).program);
        m.load(papi_suite::workloads::branchy(20_000, 128).program);
        m.set_granularity(Granularity::Thread);
        let mut papi = Papi::init(SimSubstrate::new(m)).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotCyc.code()).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        papi.stop(set).unwrap();
        // Virtual clocks of both threads advanced independently.
        let v0 = papi.get_virt_usec(0).unwrap();
        let v1 = papi.get_virt_usec(1).unwrap();
        assert!(v0 > 0 && v1 > 0, "{name}: thread virtual time missing");
    }
}
