//! The named workload kernels.
//!
//! Each constructor returns a [`Workload`]: a program plus its analytic
//! expected counts. Address-space layout: every kernel keeps its data above
//! `DATA_BASE` so text (at [`simcpu::TEXT_BASE`]) and data never collide.

use crate::expected::Expected;
use simcpu::{AddrGen, BranchPat, EventKind, Program, ProgramBuilder};

/// Base address of workload data regions.
pub const DATA_BASE: u64 = 0x10_0000;

/// A program bundled with its expected-count oracle.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub program: Program,
    pub expected: Expected,
}

/// Dense matrix-multiply shape: the classic PAPI demo kernel.
///
/// Triple loop; the inner body is `load a; load b; fma`, with a store of the
/// accumulator per `(i, j)`. Exact counts: `n^3` FMAs (= `2 n^3` FLOPs),
/// `2 n^3` loads, `n^2` stores.
pub fn matmul(n: u32) -> Workload {
    assert!(n >= 2);
    let n64 = n as u64;
    let a_base = DATA_BASE;
    let b_base = DATA_BASE + 8 * n64 * n64;
    let c_base = b_base + 8 * n64 * n64;
    let mut bld = ProgramBuilder::new();
    bld.func("matmul", |f| {
        f.loop_(n, |f| {
            // i loop
            f.loop_(n, |f| {
                // j loop
                f.loop_(n, |f| {
                    // k loop: c[i][j] += a[i][k] * b[k][j]
                    f.load(AddrGen::Stride {
                        base: a_base,
                        stride: 8,
                        len: 8 * n64 * n64,
                    });
                    f.load(AddrGen::Stride {
                        base: b_base,
                        stride: 8 * n64,
                        len: 8 * n64 * n64,
                    });
                    f.ffma(1);
                });
                f.store(AddrGen::Stride {
                    base: c_base,
                    stride: 8,
                    len: 8 * n64 * n64,
                });
            });
        });
    });
    let n3 = n64 * n64 * n64;
    let n2 = n64 * n64;
    let expected = Expected::default()
        .exact(EventKind::FpFma, n3)
        .exact(EventKind::FpAdd, 0)
        .exact(EventKind::FpMul, 0)
        .exact(EventKind::FpDiv, 0)
        .exact(EventKind::FpCvt, 0)
        .exact(EventKind::Loads, 2 * n3)
        .exact(EventKind::Stores, n2)
        .exact(EventKind::Branches, n3 + n2 + n64)
        .exact(EventKind::BranchTaken, n3 - 1)
        // 4 insts per k-iter, store+br per j-iter, br per i-iter, ret+call
        .exact(EventKind::Instructions, 4 * n3 + 2 * n2 + n64 + 2);
    Workload {
        name: "matmul",
        program: bld.build("matmul"),
        expected,
    }
}

/// Cache-blocked matrix multiply: identical FLOP count to [`matmul`] but
/// the inner loops touch only `block x block` tiles, so the data working
/// set fits L1 — the textbook tuning transformation whose effect PAPI's
/// cache-miss counters are used to verify.
pub fn blocked_matmul(n: u32, block: u32) -> Workload {
    assert!(block >= 2 && n.is_multiple_of(block));
    let n64 = n as u64;
    let b64 = block as u64;
    let tile_bytes = 8 * b64 * b64;
    let bm = n / block; // blocks per dimension
    let a_tile = DATA_BASE;
    let b_tile = DATA_BASE + tile_bytes;
    let c_tile = b_tile + tile_bytes;
    let mut bld = ProgramBuilder::new();
    bld.func("block_mul", |f| {
        f.loop_(block, |f| {
            f.loop_(block, |f| {
                f.loop_(block, |f| {
                    f.load(AddrGen::Stride {
                        base: a_tile,
                        stride: 8,
                        len: tile_bytes,
                    });
                    f.load(AddrGen::Stride {
                        base: b_tile,
                        stride: 8 * b64,
                        len: tile_bytes,
                    });
                    f.ffma(1);
                });
                f.store(AddrGen::Stride {
                    base: c_tile,
                    stride: 8,
                    len: tile_bytes,
                });
            });
        });
    });
    bld.func("blocked_matmul", |f| {
        f.loop_(bm * bm * bm, |f| {
            f.call("block_mul");
        });
    });
    let n3 = n64 * n64 * n64;
    let bm3 = (bm as u64).pow(3);
    let expected = Expected::default()
        .exact(EventKind::FpFma, n3)
        .exact(EventKind::Loads, 2 * n3)
        .exact(EventKind::Stores, b64 * b64 * bm3)
        // The tiles fit L1: after warm-up essentially no data misses.
        .approx(EventKind::L1DMiss, (3 * tile_bytes / 64).max(1), 1.0);
    Workload {
        name: "blocked_matmul",
        program: bld.build("blocked_matmul"),
        expected,
    }
}

/// STREAM-style copy: `passes` sweeps over two `bytes`-sized arrays with one
/// load + one store per 64-byte line.
pub fn stream_copy(bytes: u64, passes: u32) -> Workload {
    assert!(bytes.is_multiple_of(64) && bytes > 0);
    let lines = bytes / 64;
    let iters = lines * passes as u64;
    assert!(iters <= u32::MAX as u64);
    let src = DATA_BASE;
    let dst = DATA_BASE + bytes;
    let mut bld = ProgramBuilder::new();
    bld.func("stream_copy", |f| {
        f.loop_(iters as u32, |f| {
            f.load(AddrGen::Stride {
                base: src,
                stride: 64,
                len: bytes,
            });
            f.store(AddrGen::Stride {
                base: dst,
                stride: 64,
                len: bytes,
            });
        });
    });
    let expected = Expected::default()
        .exact(EventKind::FpAdd, 0)
        .exact(EventKind::FpMul, 0)
        .exact(EventKind::FpFma, 0)
        .exact(EventKind::FpDiv, 0)
        .exact(EventKind::FpCvt, 0)
        .exact(EventKind::Loads, iters)
        .exact(EventKind::Stores, iters)
        .exact(EventKind::Branches, iters)
        .exact(EventKind::Instructions, 3 * iters + 2)
        // When the arrays dwarf the caches every new line misses.
        .approx(EventKind::L1DMiss, 2 * iters, 0.05);
    Workload {
        name: "stream_copy",
        program: bld.build("stream_copy"),
        expected,
    }
}

/// Pointer chase over a `bytes`-sized region: dependent, line-granular,
/// locality-free loads — a TLB and cache antagonist.
pub fn pointer_chase(bytes: u64, steps: u32) -> Workload {
    assert!(bytes >= 4096);
    let mut bld = ProgramBuilder::new();
    bld.func("chase", |f| {
        f.loop_(steps, |f| {
            f.load(AddrGen::Chase {
                base: DATA_BASE,
                len: bytes,
            });
            f.int(1);
        });
    });
    let expected = Expected::default()
        .exact(EventKind::Loads, steps as u64)
        .exact(EventKind::IntOps, steps as u64)
        .exact(EventKind::Instructions, 3 * steps as u64 + 2);
    Workload {
        name: "pointer_chase",
        program: bld.build("chase"),
        expected,
    }
}

/// Branch-heavy kernel: an unpredictable branch (taken with probability
/// `p_num/256`) guarding a small FP body, inside a predictable loop.
pub fn branchy(iters: u32, p_num: u8) -> Workload {
    let mut bld = ProgramBuilder::new();
    bld.func("branchy", |f| {
        f.loop_(iters, |f| {
            f.skip_if(BranchPat::Rand { p_num }, |f| {
                f.fadd(1);
            });
            f.int(1);
        });
    });
    let expected = Expected::default()
        // the random branch + the loop back-edge
        .exact(EventKind::Branches, 2 * iters as u64)
        .exact(EventKind::IntOps, iters as u64);
    Workload {
        name: "branchy",
        program: bld.build("branchy"),
        expected,
    }
}

/// Pure FP kernel: `iters × (fmas FMA + adds ADD)`, no memory traffic beyond
/// instruction fetch. The calibration workhorse.
pub fn dense_fp(iters: u32, fmas: usize, adds: usize) -> Workload {
    let mut bld = ProgramBuilder::new();
    bld.func("dense_fp", |f| {
        f.loop_(iters, |f| {
            f.ffma(fmas);
            f.fadd(adds);
        });
    });
    let it = iters as u64;
    let expected = Expected::default()
        .exact(EventKind::FpFma, it * fmas as u64)
        .exact(EventKind::FpAdd, it * adds as u64)
        .exact(EventKind::FpMul, 0)
        .exact(EventKind::FpDiv, 0)
        .exact(EventKind::FpCvt, 0)
        .exact(EventKind::Loads, 0)
        .exact(EventKind::Stores, 0)
        .exact(
            EventKind::Instructions,
            it * (fmas as u64 + adds as u64 + 1) + 2,
        )
        .exact(EventKind::Branches, it);
    Workload {
        name: "dense_fp",
        program: bld.build("dense_fp"),
        expected,
    }
}

/// FP kernel with converts mixed in — exposes the POWER3-style
/// FP-instruction counting quirk during calibration.
pub fn convert_mix(iters: u32, adds: usize, cvts: usize) -> Workload {
    let mut bld = ProgramBuilder::new();
    bld.func("convert_mix", |f| {
        f.loop_(iters, |f| {
            f.fadd(adds);
            f.fcvt(cvts);
        });
    });
    let it = iters as u64;
    let expected = Expected::default()
        .exact(EventKind::FpAdd, it * adds as u64)
        .exact(EventKind::FpCvt, it * cvts as u64)
        .exact(EventKind::FpMul, 0)
        .exact(EventKind::FpFma, 0)
        .exact(EventKind::FpDiv, 0)
        .exact(EventKind::Loads, 0)
        .exact(EventKind::Stores, 0)
        .exact(
            EventKind::Instructions,
            it * (adds as u64 + cvts as u64 + 1) + 2,
        )
        .exact(EventKind::Branches, it);
    Workload {
        name: "convert_mix",
        program: bld.build("convert_mix"),
        expected,
    }
}

/// A conjugate-gradient-iteration shape: sparse matrix-vector product with
/// irregular column accesses, two dot products and three AXPYs per
/// iteration — the memory-access mix of the implicit solvers PAPI's HPC
/// users tuned. Exact FMA/load/store oracle.
pub fn cg_like(n: u32, nnz_per_row: u32, iterations: u32) -> Workload {
    assert!(n >= 8 && nnz_per_row >= 1 && iterations >= 1);
    let n64 = n as u64;
    let nnz = nnz_per_row as u64;
    let a_vals = DATA_BASE; // matrix values, sequential
    let x_vec = DATA_BASE + 8 * n64 * nnz; // gathered vector
    let p_vec = x_vec + 8 * n64;
    let q_vec = p_vec + 8 * n64;
    let mut bld = ProgramBuilder::new();
    bld.func("spmv", |f| {
        f.loop_(n, |f| {
            f.loop_(nnz_per_row, |f| {
                f.load(AddrGen::Stride {
                    base: a_vals,
                    stride: 8,
                    len: 8 * n64 * nnz,
                });
                f.load(AddrGen::Rand {
                    base: x_vec,
                    len: 8 * n64,
                }); // gather
                f.ffma(1);
            });
        });
    });
    bld.func("dot", |f| {
        f.loop_(n, |f| {
            f.load(AddrGen::Stride {
                base: p_vec,
                stride: 8,
                len: 8 * n64,
            });
            f.load(AddrGen::Stride {
                base: q_vec,
                stride: 8,
                len: 8 * n64,
            });
            f.ffma(1);
        });
    });
    bld.func("axpy", |f| {
        f.loop_(n, |f| {
            f.load(AddrGen::Stride {
                base: p_vec,
                stride: 8,
                len: 8 * n64,
            });
            f.load(AddrGen::Stride {
                base: q_vec,
                stride: 8,
                len: 8 * n64,
            });
            f.ffma(1);
            f.store(AddrGen::Stride {
                base: q_vec,
                stride: 8,
                len: 8 * n64,
            });
        });
    });
    bld.func("cg_iter", |f| {
        f.call("spmv");
        f.call("dot");
        f.call("dot");
        f.call("axpy");
        f.call("axpy");
        f.call("axpy");
    });
    bld.func("main", |f| {
        f.loop_(iterations, |f| {
            f.call("cg_iter");
        });
    });
    let it = iterations as u64;
    let expected = Expected::default()
        .exact(EventKind::FpFma, it * (n64 * nnz + 5 * n64))
        .exact(EventKind::FpAdd, 0)
        .exact(EventKind::FpMul, 0)
        .exact(EventKind::FpDiv, 0)
        .exact(EventKind::FpCvt, 0)
        .exact(EventKind::Loads, it * (2 * n64 * nnz + 10 * n64))
        .exact(EventKind::Stores, it * 3 * n64);
    Workload {
        name: "cg_like",
        program: bld.build("main"),
        expected,
    }
}

/// A tight loop calling a tiny leaf function — the worst case for
/// entry/exit instrumentation overhead (§4: "on entry and exit of a small
/// subroutine … within a tight loop").
pub fn tight_calls(calls: u32, leaf_fmas: usize) -> Workload {
    let mut bld = ProgramBuilder::new();
    bld.func("leaf", |f| {
        f.ffma(leaf_fmas);
    });
    bld.func("driver", |f| {
        f.loop_(calls, |f| {
            f.call("leaf");
        });
    });
    let c = calls as u64;
    let expected = Expected::default()
        .exact(EventKind::FpFma, c * leaf_fmas as u64)
        .exact(EventKind::FpAdd, 0)
        .exact(EventKind::FpMul, 0)
        .exact(EventKind::FpDiv, 0)
        .exact(EventKind::FpCvt, 0)
        .exact(EventKind::Loads, 0)
        .exact(EventKind::Stores, 0)
        .exact(EventKind::Branches, c)
        // call + leaf body + ret + loop branch, plus driver ret + start call
        .exact(EventKind::Instructions, c * (leaf_fmas as u64 + 3) + 2);
    Workload {
        name: "tight_calls",
        program: bld.build("driver"),
        expected,
    }
}

/// A program with distinct execution phases, for real-time monitoring
/// (perfometer, Figure 2): an FP-dense phase, a memory-bound phase and a
/// branchy phase, executed in sequence `rounds` times.
pub fn phased(rounds: u32, phase_iters: u32) -> Workload {
    let mut bld = ProgramBuilder::new();
    bld.func("fp_phase", |f| {
        f.loop_(phase_iters, |f| {
            f.ffma(4);
        });
    });
    bld.func("mem_phase", |f| {
        f.loop_(phase_iters, |f| {
            f.load(AddrGen::Chase {
                base: DATA_BASE,
                len: 1 << 22,
            });
        });
    });
    bld.func("branch_phase", |f| {
        f.loop_(phase_iters, |f| {
            f.skip_if(BranchPat::Rand { p_num: 128 }, |f| {
                f.int(1);
            });
        });
    });
    bld.func("main", |f| {
        f.loop_(rounds, |f| {
            f.call("fp_phase");
            f.call("mem_phase");
            f.call("branch_phase");
        });
    });
    let expected = Expected::default()
        .exact(EventKind::FpFma, 4 * rounds as u64 * phase_iters as u64)
        .exact(EventKind::Loads, rounds as u64 * phase_iters as u64);
    Workload {
        name: "phased",
        program: bld.build("main"),
        expected,
    }
}

/// Page-walking store kernel for the memory-utilization extension: touches
/// exactly `pages` distinct data pages.
pub fn page_toucher(pages: u32) -> Workload {
    let mut bld = ProgramBuilder::new();
    bld.func("touch", |f| {
        f.loop_(pages, |f| {
            f.store(AddrGen::Stride {
                base: DATA_BASE,
                stride: 4096,
                len: pages as u64 * 4096,
            });
        });
    });
    let expected = Expected::default().exact(EventKind::Stores, pages as u64);
    Workload {
        name: "page_toucher",
        program: bld.build("touch"),
        expected,
    }
}

/// Röhl-style instruction-mix kernel: a loop whose body retires an exact,
/// parameter-controlled blend of FP adds, multiplies, FMAs and integer ops.
/// Every instruction class the validation presets aggregate is derivable in
/// closed form from `(iters, fadds, fmuls, fmas, ints)` — the ground-truth
/// benchmark for instruction-counting events.
pub fn inst_mix(iters: u32, fadds: usize, fmuls: usize, fmas: usize, ints: usize) -> Workload {
    assert!(iters >= 2);
    let mut bld = ProgramBuilder::new();
    bld.func("inst_mix", |f| {
        f.loop_(iters, |f| {
            f.fadd(fadds);
            f.fmul(fmuls);
            f.ffma(fmas);
            f.int(ints);
        });
    });
    let it = iters as u64;
    let body = (fadds + fmuls + fmas + ints) as u64;
    let expected = Expected::default()
        .exact(EventKind::FpAdd, it * fadds as u64)
        .derived(EventKind::FpAdd, "iters*fadds")
        .exact(EventKind::FpMul, it * fmuls as u64)
        .derived(EventKind::FpMul, "iters*fmuls")
        .exact(EventKind::FpFma, it * fmas as u64)
        .derived(EventKind::FpFma, "iters*fmas")
        .exact(EventKind::FpDiv, 0)
        .derived(EventKind::FpDiv, "0 (no divides emitted)")
        .exact(EventKind::FpCvt, 0)
        .derived(EventKind::FpCvt, "0 (no converts emitted)")
        .exact(EventKind::IntOps, it * ints as u64)
        .derived(EventKind::IntOps, "iters*ints")
        .exact(EventKind::Loads, 0)
        .derived(EventKind::Loads, "0 (register-only kernel)")
        .exact(EventKind::Stores, 0)
        .derived(EventKind::Stores, "0 (register-only kernel)")
        .exact(EventKind::Branches, it)
        .derived(EventKind::Branches, "iters (one back-edge per iteration)")
        .exact(EventKind::BranchTaken, it - 1)
        .derived(
            EventKind::BranchTaken,
            "iters-1 (back-edge falls through once)",
        )
        .exact(EventKind::Instructions, it * (body + 1) + 2)
        .derived(
            EventKind::Instructions,
            "iters*(fadds+fmuls+fmas+ints+1) + call + ret",
        );
    Workload {
        name: "inst_mix",
        program: bld.build("inst_mix"),
        expected,
    }
}

/// Deterministic branch-pattern kernel: a skip-branch taken on every `k`-th
/// execution guards an integer op, inside a counted loop. Taken/not-taken
/// totals are exact integer arithmetic on `(iters, k)` — the ground truth
/// for branch events, with no RNG involved.
pub fn branch_every(iters: u32, k: u32) -> Workload {
    assert!(iters >= 2 && k >= 1);
    let mut bld = ProgramBuilder::new();
    bld.func("branch_every", |f| {
        f.loop_(iters, |f| {
            f.skip_if(BranchPat::Every { k }, |f| {
                f.int(1);
            });
            f.fadd(1);
        });
    });
    let it = iters as u64;
    let taken = it / k as u64; // skip-branch taken on executions k, 2k, ...
    let expected = Expected::default()
        .exact(EventKind::FpAdd, it)
        .derived(EventKind::FpAdd, "iters (one add per iteration)")
        .exact(EventKind::FpMul, 0)
        .derived(EventKind::FpMul, "0")
        .exact(EventKind::FpFma, 0)
        .derived(EventKind::FpFma, "0")
        .exact(EventKind::FpDiv, 0)
        .derived(EventKind::FpDiv, "0")
        .exact(EventKind::IntOps, it - taken)
        .derived(
            EventKind::IntOps,
            "iters - floor(iters/k) (body skipped when taken)",
        )
        .exact(EventKind::Loads, 0)
        .derived(EventKind::Loads, "0")
        .exact(EventKind::Stores, 0)
        .derived(EventKind::Stores, "0")
        .exact(EventKind::Branches, 2 * it)
        .derived(EventKind::Branches, "2*iters (skip-branch + back-edge)")
        .exact(EventKind::BranchTaken, taken + it - 1)
        .derived(
            EventKind::BranchTaken,
            "floor(iters/k) skips + iters-1 back-edges",
        )
        .exact(EventKind::Instructions, 3 * it + (it - taken) + 2)
        .derived(
            EventKind::Instructions,
            "iters*(branch+add+back-edge) + executed-ints + call + ret",
        );
    Workload {
        name: "branch_every",
        program: bld.build("branch_every"),
        expected,
    }
}

/// Data-volume kernel: `passes` strided sweeps (configurable `stride`) over
/// a `bytes`-sized source and destination. Access counts — and therefore
/// the data volume `2 * accesses * stride` — are exact in the seeding
/// parameters; the miss count follows from `stride` vs the line size.
pub fn strided_stream(bytes: u64, stride: u64, passes: u32) -> Workload {
    assert!(stride >= 8 && bytes.is_multiple_of(stride) && passes >= 1);
    let iters = (bytes / stride) * passes as u64;
    assert!((2..=u32::MAX as u64).contains(&iters));
    let src = DATA_BASE;
    let dst = DATA_BASE + bytes;
    let mut bld = ProgramBuilder::new();
    bld.func("strided_stream", |f| {
        f.loop_(iters as u32, |f| {
            f.load(AddrGen::Stride {
                base: src,
                stride,
                len: bytes,
            });
            f.store(AddrGen::Stride {
                base: dst,
                stride,
                len: bytes,
            });
        });
    });
    let mut expected = Expected::default()
        .exact(EventKind::FpAdd, 0)
        .derived(EventKind::FpAdd, "0 (pure memory kernel)")
        .exact(EventKind::FpMul, 0)
        .derived(EventKind::FpMul, "0")
        .exact(EventKind::FpFma, 0)
        .derived(EventKind::FpFma, "0")
        .exact(EventKind::FpDiv, 0)
        .derived(EventKind::FpDiv, "0")
        .exact(EventKind::IntOps, 0)
        .derived(EventKind::IntOps, "0")
        .exact(EventKind::Loads, iters)
        .derived(
            EventKind::Loads,
            "passes*bytes/stride (one per strided step)",
        )
        .exact(EventKind::Stores, iters)
        .derived(EventKind::Stores, "passes*bytes/stride")
        .exact(EventKind::Branches, iters)
        .derived(EventKind::Branches, "one back-edge per step")
        .exact(EventKind::BranchTaken, iters - 1)
        .derived(EventKind::BranchTaken, "back-edge falls through once")
        .exact(EventKind::Instructions, 3 * iters + 2)
        .derived(EventKind::Instructions, "3 per step + call + ret");
    if stride >= 64 {
        // Line-granular accesses: every access opens a new line once the
        // arrays exceed the caches.
        expected = expected
            .approx(EventKind::L1DMiss, 2 * iters, 0.05)
            .derived(
                EventKind::L1DMiss,
                "~2*steps (every line-granular access misses)",
            );
    }
    Workload {
        name: "strided_stream",
        program: bld.build("strided_stream"),
        expected,
    }
}

/// Pointer-chase kernel with a *complete* instruction oracle (unlike
/// [`pointer_chase`], which only pins the memory side): dependent
/// line-granular loads plus one integer op per step. The locality-free
/// memory kernel of the validation suite.
pub fn chase_sum(bytes: u64, steps: u32) -> Workload {
    assert!(bytes >= 4096 && steps >= 2);
    let mut bld = ProgramBuilder::new();
    bld.func("chase_sum", |f| {
        f.loop_(steps, |f| {
            f.load(AddrGen::Chase {
                base: DATA_BASE,
                len: bytes,
            });
            f.int(1);
        });
    });
    let s = steps as u64;
    let expected = Expected::default()
        .exact(EventKind::FpAdd, 0)
        .derived(EventKind::FpAdd, "0 (no FP in the chase)")
        .exact(EventKind::FpMul, 0)
        .derived(EventKind::FpMul, "0")
        .exact(EventKind::FpFma, 0)
        .derived(EventKind::FpFma, "0")
        .exact(EventKind::FpDiv, 0)
        .derived(EventKind::FpDiv, "0")
        .exact(EventKind::IntOps, s)
        .derived(EventKind::IntOps, "steps (one pointer update per step)")
        .exact(EventKind::Loads, s)
        .derived(EventKind::Loads, "steps (one dependent load per step)")
        .exact(EventKind::Stores, 0)
        .derived(EventKind::Stores, "0")
        .exact(EventKind::Branches, s)
        .derived(EventKind::Branches, "one back-edge per step")
        .exact(EventKind::BranchTaken, s - 1)
        .derived(EventKind::BranchTaken, "back-edge falls through once")
        .exact(EventKind::Instructions, 3 * s + 2)
        .derived(EventKind::Instructions, "3 per step + call + ret");
    Workload {
        name: "chase_sum",
        program: bld.build("chase_sum"),
        expected,
    }
}

/// All named calibration workloads at a small default size.
pub fn calibration_suite() -> Vec<Workload> {
    vec![
        dense_fp(10_000, 4, 2),
        matmul(24),
        stream_copy(1 << 20, 2),
        tight_calls(20_000, 2),
        convert_mix(5_000, 3, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::sim_generic;
    use simcpu::{Machine, Truth};

    fn run_truth(w: &Workload) -> (Machine, u64) {
        let mut m = Machine::new(sim_generic(), 99);
        m.enable_truth();
        m.load(w.program.clone());
        m.run_to_halt();
        let retired = m.retired();
        (m, retired)
    }

    fn check_all(w: &Workload) {
        let (m, _) = run_truth(w);
        let truth: &Truth = m.truth().unwrap();
        for &(kind, want) in &w.expected.exact {
            assert_eq!(truth.total(kind), want, "{}: {:?}", w.name, kind);
        }
        for &(kind, want, tol) in &w.expected.approx {
            let got = truth.total(kind);
            let err = (got as f64 - want as f64).abs();
            let band = crate::grading::tolerance_band(want, tol);
            assert!(
                err <= band,
                "{}: {:?} got {got} want {want} (err {err}, band {band})",
                w.name,
                kind
            );
        }
    }

    #[test]
    fn matmul_oracle_matches_simulation() {
        check_all(&matmul(8));
        check_all(&matmul(12));
    }

    #[test]
    fn inst_mix_oracle_matches() {
        check_all(&inst_mix(500, 2, 1, 1, 1));
        check_all(&inst_mix(100, 0, 3, 0, 2));
        // Degenerate mix: loop overhead only.
        check_all(&inst_mix(64, 0, 0, 0, 0));
    }

    #[test]
    fn branch_every_oracle_matches() {
        check_all(&branch_every(600, 4));
        check_all(&branch_every(1000, 1)); // always taken
        check_all(&branch_every(100, 1000)); // never taken
        check_all(&branch_every(999, 7)); // iters not a multiple of k
    }

    #[test]
    fn strided_stream_oracle_matches() {
        check_all(&strided_stream(1 << 12, 8, 2));
        check_all(&strided_stream(1 << 17, 64, 1)); // line-granular: miss oracle
    }

    #[test]
    fn chase_sum_oracle_matches() {
        check_all(&chase_sum(1 << 13, 500));
        check_all(&chase_sum(1 << 16, 100));
    }

    #[test]
    fn blocked_matmul_oracle_matches() {
        check_all(&blocked_matmul(16, 4));
        check_all(&blocked_matmul(24, 8));
    }

    #[test]
    fn blocking_cuts_misses_at_equal_flops() {
        // Same FLOPs; the blocked version must miss far less once n*n
        // matrices exceed L1 (16 KiB = 2048 doubles; n=64 -> 32 KiB/matrix).
        let naive = matmul(64);
        let blocked = blocked_matmul(64, 16);
        let run_misses = |w: &Workload| {
            let mut m = Machine::new(sim_generic(), 9);
            m.enable_truth();
            m.load(w.program.clone());
            m.run_to_halt();
            let t = m.truth().unwrap();
            (t.total(EventKind::FpFma), t.total(EventKind::L1DMiss))
        };
        let (f1, m1) = run_misses(&naive);
        let (f2, m2) = run_misses(&blocked);
        assert_eq!(f1, f2, "identical FLOP counts");
        assert!(
            m2 * 10 < m1,
            "blocking should cut misses 10x+: naive {m1}, blocked {m2}"
        );
    }

    #[test]
    fn stream_oracle_matches() {
        check_all(&stream_copy(1 << 18, 2));
    }

    #[test]
    fn chase_oracle_matches() {
        check_all(&pointer_chase(1 << 16, 5000));
    }

    #[test]
    fn branchy_oracle_matches() {
        check_all(&branchy(2000, 100));
    }

    #[test]
    fn dense_fp_oracle_matches() {
        check_all(&dense_fp(1000, 3, 2));
    }

    #[test]
    fn convert_mix_oracle_matches() {
        check_all(&convert_mix(500, 2, 1));
    }

    #[test]
    fn tight_calls_oracle_matches() {
        check_all(&tight_calls(1000, 2));
    }

    #[test]
    fn cg_like_oracle_matches() {
        check_all(&cg_like(64, 7, 3));
        check_all(&cg_like(32, 3, 5));
    }

    #[test]
    fn cg_like_is_memory_dominated_at_scale() {
        // The SpMV gather defeats the caches: stalls dominate cycles.
        let w = cg_like(4096, 16, 2);
        let (m, _) = run_truth(&w);
        let t = m.truth().unwrap();
        let cyc = t.total(EventKind::Cycles);
        let stalls = t.total(EventKind::StallCycles);
        assert!(stalls * 3 > cyc, "CG should stall heavily: {stalls}/{cyc}");
    }

    #[test]
    fn phased_oracle_matches() {
        check_all(&phased(2, 300));
    }

    #[test]
    fn page_toucher_touches_pages() {
        let w = page_toucher(16);
        let mut m = Machine::new(sim_generic(), 1);
        m.load(w.program.clone());
        m.run_to_halt();
        assert_eq!(m.mem_info(0).unwrap().resident_pages, 16);
    }

    #[test]
    fn calibration_suite_nonempty_named() {
        let suite = calibration_suite();
        assert!(suite.len() >= 5);
        for w in &suite {
            assert!(!w.expected.exact.is_empty(), "{} has no oracle", w.name);
        }
    }

    #[test]
    fn chase_misses_dominate_on_large_region() {
        // 4 MiB region vs 16 KiB L1: essentially every chase load misses.
        let w = pointer_chase(1 << 22, 20_000);
        let (m, _) = run_truth(&w);
        let truth = m.truth().unwrap();
        let misses = truth.total(EventKind::L1DMiss);
        assert!(misses as f64 > 0.95 * 20_000.0, "only {misses} misses");
    }
}
