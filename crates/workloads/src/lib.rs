//! # papi-workloads — synthetic workloads with known event counts
//!
//! The paper's accuracy experiments need workloads whose true hardware event
//! counts are known analytically ("test programs … can take the form of
//! micro-benchmarks for which the expected counts are known", §4). This
//! crate provides them:
//!
//! * [`kernels::matmul`] — the dense FP kernel of every PAPI demo,
//! * [`kernels::stream_copy`], [`kernels::pointer_chase`] — memory-bound,
//! * [`kernels::branchy`] — branch-predictor antagonist,
//! * [`kernels::dense_fp`], [`kernels::convert_mix`] — calibration kernels
//!   (the latter exposes the POWER3 rounding-instruction quirk),
//! * [`kernels::tight_calls`] — the instrumentation-overhead worst case,
//! * [`kernels::inst_mix`], [`kernels::branch_every`],
//!   [`kernels::strided_stream`], [`kernels::chase_sum`] — the validation
//!   kernels ([`validation::validation_suite`]): complete closed-form
//!   oracles over every instruction-class event, graded by `papi_validate`
//!   with the [`grading`] vocabulary,
//! * [`kernels::phased`] — multi-phase program for real-time monitoring,
//! * [`kernels::page_toucher`] — memory-utilization extension exerciser,
//! * [`random::random_program`] — seeded random programs for stress tests,
//! * [`parallel`] — message-passing workloads (pingpong, master/worker,
//!   BSP ring) for the §3 parallel-tools scenarios.

pub mod expected;
pub mod grading;
pub mod kernels;
pub mod parallel;
pub mod random;
pub mod validation;

pub use expected::Expected;
pub use grading::Grade;
pub use kernels::{
    blocked_matmul, branch_every, branchy, calibration_suite, cg_like, chase_sum, convert_mix,
    dense_fp, inst_mix, matmul, page_toucher, phased, pointer_chase, stream_copy, strided_stream,
    tight_calls, Workload, DATA_BASE,
};
pub use parallel::{bsp_ring, master_worker, pingpong, ParallelWorkload};
pub use random::{random_program, RandomCfg};
pub use validation::{validation_suite, VALIDATION_KINDS};
