//! The event-validation suite: workloads with *complete* closed-form
//! oracles over the instruction-class events.
//!
//! Where [`crate::kernels::calibration_suite`] feeds `papi_calibrate` (one
//! preset per row, coverage allowed to be partial), the validation suite is
//! built for the full accuracy matrix of `papi_validate`: every member pins
//! **every** kind in [`VALIDATION_KINDS`], so each (platform, event,
//! workload) cell of the matrix has a ground-truth value and no cell is
//! vacuously green. The kernels follow Röhl et al.'s validation taxonomy
//! (PAPERS.md): an instruction-mix kernel, a deterministic branch-pattern
//! kernel, a data-volume kernel and a pointer chase, plus the three
//! calibration kernels (dense FP, convert mix, matmul) with their oracles
//! locally extended to full coverage.
//!
//! Sizes are chosen so every member retires ~17k-50k instructions: large
//! enough that a multiplexed event set (12 presets on 2-4 counters) gets
//! dozens of scheduling slices to estimate from at the validator's short
//! switching period, small enough that the whole matrix runs in seconds.

use crate::kernels::{
    branch_every, chase_sum, convert_mix, dense_fp, inst_mix, matmul, strided_stream, Workload,
};
use simcpu::EventKind;

/// The event kinds every validation workload must pin exactly. These are
/// precisely the kinds appearing in the formulas of the instruction-class
/// presets `papi_validate` grades (PAPI_TOT_INS ... PAPI_BR_NTK); cache,
/// TLB and cycle events are hardware-structure dependent and belong to the
/// calibration tolerances, not the exact validation matrix.
pub const VALIDATION_KINDS: &[EventKind] = &[
    EventKind::FpAdd,
    EventKind::FpMul,
    EventKind::FpFma,
    EventKind::FpDiv,
    EventKind::IntOps,
    EventKind::Loads,
    EventKind::Stores,
    EventKind::Branches,
    EventKind::BranchTaken,
    EventKind::Instructions,
];

/// The validation workloads, each with a complete oracle over
/// [`VALIDATION_KINDS`] and a recorded derivation per kind.
///
/// The calibration kernels are extended *here*, not in their constructors:
/// `papi_calibrate`'s coverage (and the E4 accuracy envelope locked in
/// `tests/accuracy.rs`) must not change underneath it.
pub fn validation_suite() -> Vec<Workload> {
    let mut suite = vec![
        inst_mix(8_000, 2, 1, 1, 1),
        branch_every(12_000, 4),
        strided_stream(1 << 15, 8, 2),
        chase_sum(1 << 14, 8_000),
    ];

    // matmul(16): n^3 = 4096. Covers everything but IntOps.
    let mut w = matmul(16);
    w.expected = w
        .expected
        .exact(EventKind::IntOps, 0)
        .derived(
            EventKind::IntOps,
            "0 (index arithmetic folded into codegen)",
        )
        .derived(EventKind::FpFma, "n^3")
        .derived(EventKind::FpAdd, "0")
        .derived(EventKind::FpMul, "0")
        .derived(EventKind::FpDiv, "0")
        .derived(EventKind::Loads, "2*n^3 (a[i][k], b[k][j])")
        .derived(EventKind::Stores, "n^2 (c[i][j])")
        .derived(EventKind::Branches, "n^3+n^2+n back-edges")
        .derived(EventKind::BranchTaken, "n^3-1")
        .derived(EventKind::Instructions, "4*n^3 + 2*n^2 + n + 2");
    suite.push(w);

    // dense_fp(iters, fmas, adds): pure FP, no taken-branch entry upstream.
    let iters: u64 = 8_000;
    let mut w = dense_fp(iters as u32, 3, 2);
    w.expected = w
        .expected
        .exact(EventKind::IntOps, 0)
        .derived(EventKind::IntOps, "0 (pure FP kernel)")
        .exact(EventKind::BranchTaken, iters - 1)
        .derived(
            EventKind::BranchTaken,
            "iters-1 (back-edge falls through once)",
        )
        .derived(EventKind::FpFma, "iters*fmas")
        .derived(EventKind::FpAdd, "iters*adds")
        .derived(EventKind::FpMul, "0")
        .derived(EventKind::FpDiv, "0")
        .derived(EventKind::Loads, "0")
        .derived(EventKind::Stores, "0")
        .derived(EventKind::Branches, "iters (one back-edge per iteration)")
        .derived(EventKind::Instructions, "iters*(fmas+adds+1) + call + ret");
    suite.push(w);

    // convert_mix(iters, adds, cvts): the POWER3-quirk exerciser.
    let iters: u64 = 6_000;
    let mut w = convert_mix(iters as u32, 3, 1);
    w.expected = w
        .expected
        .exact(EventKind::IntOps, 0)
        .derived(EventKind::IntOps, "0 (pure FP kernel)")
        .exact(EventKind::BranchTaken, iters - 1)
        .derived(
            EventKind::BranchTaken,
            "iters-1 (back-edge falls through once)",
        )
        .derived(EventKind::FpAdd, "iters*adds")
        .derived(
            EventKind::FpCvt,
            "iters*cvts (quirk platforms fold into FP_INS)",
        )
        .derived(EventKind::FpMul, "0")
        .derived(EventKind::FpFma, "0")
        .derived(EventKind::FpDiv, "0")
        .derived(EventKind::Loads, "0")
        .derived(EventKind::Stores, "0")
        .derived(EventKind::Branches, "iters (one back-edge per iteration)")
        .derived(EventKind::Instructions, "iters*(adds+cvts+1) + call + ret");
    suite.push(w);

    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::sim_generic;
    use simcpu::Machine;

    #[test]
    fn every_member_fully_covers_the_validation_kinds() {
        for w in validation_suite() {
            for &kind in VALIDATION_KINDS {
                assert!(
                    w.expected.get_exact(kind).is_some(),
                    "{}: no exact oracle for {:?}",
                    w.name,
                    kind
                );
                assert!(
                    w.expected.derivation(kind).is_some(),
                    "{}: no derivation recorded for {:?}",
                    w.name,
                    kind
                );
            }
        }
    }

    #[test]
    fn suite_oracles_match_ground_truth() {
        for w in validation_suite() {
            let mut m = Machine::new(sim_generic(), 7);
            m.enable_truth();
            m.load(w.program.clone());
            m.run_to_halt();
            let truth = m.truth().unwrap();
            for &kind in VALIDATION_KINDS {
                let want = w.expected.get_exact(kind).unwrap();
                assert_eq!(truth.total(kind), want, "{}: {:?}", w.name, kind);
            }
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<&str> = validation_suite().iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), validation_suite().len());
    }
}
