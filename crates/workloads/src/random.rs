//! Seeded random program generation, for stress and property tests.
//!
//! Generated programs always terminate: control flow consists only of
//! counted loops, forward skips and calls to previously generated functions
//! (so the call graph is acyclic).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcpu::{AddrGen, BranchPat, Program, ProgramBuilder};

/// Knobs for [`random_program`].
#[derive(Debug, Clone, Copy)]
pub struct RandomCfg {
    pub funcs: usize,
    /// Straight-line instructions per function body (before loops).
    pub body_len: usize,
    pub max_loop: u32,
    /// Size of the data region random memory ops touch.
    pub data_bytes: u64,
}

impl Default for RandomCfg {
    fn default() -> Self {
        RandomCfg {
            funcs: 4,
            body_len: 12,
            max_loop: 30,
            data_bytes: 1 << 18,
        }
    }
}

/// Generate a random, always-terminating program.
pub fn random_program(seed: u64, cfg: RandomCfg) -> Program {
    assert!(cfg.funcs >= 1 && cfg.body_len >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let names: Vec<String> = (0..cfg.funcs).map(|i| format!("f{i}")).collect();
    for (fi, name) in names.iter().enumerate() {
        let callees: Vec<String> = names[..fi].to_vec();
        let mut ops: Vec<u8> = (0..cfg.body_len).map(|_| rng.gen_range(0..10)).collect();
        // Guarantee at least one loop per function for interesting dynamics.
        ops.push(10);
        let loop_count = rng.gen_range(1..=cfg.max_loop);
        let p_num = rng.gen_range(0..=255u8);
        let base = 0x20_0000 + rng.gen_range(0..4u64) * cfg.data_bytes;
        let rands: Vec<u64> = (0..ops.len()).map(|_| rng.gen()).collect();
        let call_pick = if callees.is_empty() {
            None
        } else {
            Some(rng.gen_range(0..callees.len()))
        };
        b.func(name, |f| {
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => {
                        f.int(1);
                    }
                    1 => {
                        f.fadd(1);
                    }
                    2 => {
                        f.fmul(1);
                    }
                    3 => {
                        f.ffma(1);
                    }
                    4 => {
                        f.load(AddrGen::Stride {
                            base,
                            stride: 8 + (rands[i] % 8) * 8,
                            len: cfg.data_bytes,
                        });
                    }
                    5 => {
                        f.load(AddrGen::Rand {
                            base,
                            len: cfg.data_bytes,
                        });
                    }
                    6 => {
                        f.store(AddrGen::Stride {
                            base,
                            stride: 64,
                            len: cfg.data_bytes,
                        });
                    }
                    7 => {
                        f.skip_if(BranchPat::Rand { p_num }, |f| {
                            f.int(1);
                        });
                    }
                    8 => {
                        if let Some(ci) = call_pick {
                            f.call(&callees[ci]);
                        } else {
                            f.nop(1);
                        }
                    }
                    9 => {
                        f.nop(1);
                    }
                    _ => {
                        f.loop_(loop_count, |f| {
                            f.fadd(1);
                            f.int(1);
                        });
                    }
                }
            }
        });
    }
    b.build(names.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::sim_x86;
    use simcpu::Machine;

    #[test]
    fn random_programs_terminate() {
        for seed in 0..10 {
            let p = random_program(seed, RandomCfg::default());
            let mut m = Machine::new(sim_x86(), seed);
            m.load(p);
            m.run_to_halt();
            assert!(m.retired() > 0);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = random_program(7, RandomCfg::default());
        let b = random_program(7, RandomCfg::default());
        assert_eq!(a, b);
        let c = random_program(8, RandomCfg::default());
        assert_ne!(a, c);
    }

    #[test]
    fn respects_func_count() {
        let p = random_program(
            3,
            RandomCfg {
                funcs: 6,
                ..Default::default()
            },
        );
        // 6 functions + _start
        assert_eq!(p.symbols.len(), 7);
    }
}
