//! Accuracy grading: the one scoring vocabulary shared by every consumer
//! of an analytic oracle.
//!
//! Röhl et al. (PAPERS.md) grade each (platform, event) pair by running a
//! benchmark whose true count is known in closed form and comparing the
//! measured value against it. This module is that comparison, factored out
//! so `papi_calibrate` (pass/fail + relative error) and `papi_validate`
//! (the full graded accuracy matrix) cannot drift apart: both call
//! [`grade`] / [`rel_error`] and merely render the result differently.
//!
//! Semantics (SPEC.md §13):
//!
//! * **exact** — `measured == expected`, bit for bit. The only grade an
//!   exact preset mapping is allowed to earn on a conforming substrate.
//! * **within(ε)** — not exact, but `|measured - expected| <= ε·expected`
//!   (inclusive). For a zero expectation ε has nothing to scale, so the
//!   band is the absolute floor `ε` itself — see [`tolerance_band`].
//! * **deviates(ratio)** — outside the band; `ratio = measured/expected`
//!   (infinite when `expected == 0`). Carries the magnitude so anecdotes
//!   like the POWER3 +33 % convert overcount stay quantified.
//! * **unsupported** — the platform cannot measure the event at all (not
//!   produced by [`grade`]; graders emit it when event setup fails).

/// Accuracy grade of one measurement against its analytic expectation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Grade {
    /// Measured equals expected exactly.
    Exact,
    /// Within the tolerance band; carries the relative error.
    Within { err: f64 },
    /// Outside the band; carries `measured / expected`.
    Deviates { ratio: f64 },
    /// The platform cannot measure the event (mapping missing, allocation
    /// impossible, or the mode refused).
    Unsupported,
}

impl Grade {
    /// Stable machine-readable label (`exact` / `within` / `deviates` /
    /// `unsupported`) — the vocabulary of the baseline matrix files.
    pub fn label(&self) -> &'static str {
        match self {
            Grade::Exact => "exact",
            Grade::Within { .. } => "within",
            Grade::Deviates { .. } => "deviates",
            Grade::Unsupported => "unsupported",
        }
    }

    /// Severity rank: lower is better. `unsupported` ranks worst — an
    /// event disappearing from a platform is a regression, not a pass.
    pub fn rank(&self) -> u8 {
        match self {
            Grade::Exact => 0,
            Grade::Within { .. } => 1,
            Grade::Deviates { .. } => 2,
            Grade::Unsupported => 3,
        }
    }

    /// True when `self` is a worse grade than `baseline`.
    pub fn regressed_from(&self, baseline: &Grade) -> bool {
        self.rank() > baseline.rank()
    }
}

impl std::fmt::Display for Grade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Grade::Exact => write!(f, "exact"),
            Grade::Within { err } => write!(f, "within({:+.2}%)", err * 100.0),
            Grade::Deviates { ratio } => write!(f, "deviates({ratio:.3}x)"),
            Grade::Unsupported => write!(f, "unsupported"),
        }
    }
}

/// Signed relative error `(measured - expected) / expected`; `0` when both
/// are zero, `+inf` when only the expectation is zero.
pub fn rel_error(expected: i64, measured: i64) -> f64 {
    if expected == 0 {
        if measured == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - expected) as f64 / expected as f64
    }
}

/// The absolute error band a tolerance `tol` grants an expectation `want`:
/// `tol * want`, with `tol` itself as the absolute floor when `want == 0`
/// (a relative band around zero would otherwise collapse to exact-match,
/// making the tolerance dead weight — the degenerate case `papi_validate`
/// exists to keep honest).
pub fn tolerance_band(want: u64, tol: f64) -> f64 {
    if want == 0 {
        tol
    } else {
        tol * want as f64
    }
}

/// Grade `measured` against `expected` under relative tolerance `tol`
/// (inclusive). `tol = 0` grades strictly exact-or-deviates.
pub fn grade(expected: i64, measured: i64, tol: f64) -> Grade {
    grade_with_floor(expected, measured, tol, 0.0)
}

/// [`grade`] with an absolute error floor: the accepted band is
/// `max(tolerance_band(expected, tol), floor)`, inclusive.
///
/// Multiplexed estimates carry absolute error proportional to run length
/// and slice count, not to the expectation — a derived preset like
/// `PAPI_BR_NTK` can have expectation 1 on a workload retiring 180k
/// branches, where any purely relative band is meaningless. The floor is
/// the estimator's absolute error budget for such cells.
pub fn grade_with_floor(expected: i64, measured: i64, tol: f64, floor: f64) -> Grade {
    if measured == expected {
        return Grade::Exact;
    }
    let err = rel_error(expected, measured);
    let band = tolerance_band(expected.unsigned_abs(), tol).max(floor);
    if (measured - expected).abs() as f64 <= band {
        Grade::Within { err }
    } else {
        let ratio = if expected == 0 {
            f64::INFINITY
        } else {
            measured as f64 / expected as f64
        };
        Grade::Deviates { ratio }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_wins_regardless_of_tolerance() {
        assert_eq!(grade(100, 100, 0.0), Grade::Exact);
        assert_eq!(grade(100, 100, 0.5), Grade::Exact);
        assert_eq!(grade(0, 0, 0.0), Grade::Exact);
    }

    #[test]
    fn band_is_inclusive() {
        // 5% of 1000 = 50: 1050 is within, 1051 deviates.
        assert!(matches!(grade(1000, 1050, 0.05), Grade::Within { .. }));
        assert!(matches!(grade(1000, 1051, 0.05), Grade::Deviates { .. }));
        assert!(matches!(grade(1000, 950, 0.05), Grade::Within { .. }));
        assert!(matches!(grade(1000, 949, 0.05), Grade::Deviates { .. }));
    }

    #[test]
    fn zero_expectation_uses_absolute_floor() {
        // tol acts as an absolute count budget around zero.
        assert!(matches!(grade(0, 2, 3.0), Grade::Within { .. }));
        assert!(matches!(grade(0, 4, 3.0), Grade::Deviates { .. }));
        // And with no budget, any count deviates (infinite ratio).
        match grade(0, 1, 0.0) {
            Grade::Deviates { ratio } => assert!(ratio.is_infinite()),
            g => panic!("expected deviates, got {g:?}"),
        }
    }

    #[test]
    fn floor_widens_but_never_narrows_the_band() {
        // Relative band 5% of 10 = 0.5; floor 3 admits |err| <= 3.
        assert!(matches!(
            grade_with_floor(10, 13, 0.05, 3.0),
            Grade::Within { .. }
        ));
        assert!(matches!(
            grade_with_floor(10, 14, 0.05, 3.0),
            Grade::Deviates { .. }
        ));
        // A floor below the relative band changes nothing.
        assert!(matches!(
            grade_with_floor(1000, 1050, 0.05, 1.0),
            Grade::Within { .. }
        ));
        assert!(matches!(
            grade_with_floor(1000, 1051, 0.05, 1.0),
            Grade::Deviates { .. }
        ));
        // Zero floor degrades to plain grade().
        assert_eq!(grade_with_floor(100, 100, 0.0, 0.0), grade(100, 100, 0.0));
    }

    #[test]
    fn deviates_carries_the_ratio() {
        match grade(15_000, 20_000, 0.0) {
            Grade::Deviates { ratio } => assert!((ratio - 4.0 / 3.0).abs() < 1e-12),
            g => panic!("expected deviates, got {g:?}"),
        }
    }

    #[test]
    fn rel_error_matches_manual() {
        assert_eq!(rel_error(100, 133), 0.33);
        assert_eq!(rel_error(0, 0), 0.0);
        assert!(rel_error(0, 5).is_infinite());
        assert_eq!(rel_error(200, 100), -0.5);
    }

    #[test]
    fn rank_orders_grades() {
        let g = [
            Grade::Exact,
            Grade::Within { err: 0.1 },
            Grade::Deviates { ratio: 2.0 },
            Grade::Unsupported,
        ];
        for w in g.windows(2) {
            assert!(w[1].regressed_from(&w[0]));
            assert!(!w[0].regressed_from(&w[1]));
        }
    }
}
