//! Expected-count oracles attached to workloads.
//!
//! Calibration (the paper's `calibrate` utility) needs workloads whose true
//! event counts are known analytically. Each workload carries a list of
//! exact expectations and a list of approximate ones (hardware-structure
//! dependent counts like cache misses, with a tolerance).

use simcpu::EventKind;

/// Expected event counts for one workload.
#[derive(Debug, Clone, Default)]
pub struct Expected {
    /// Counts that must match exactly.
    pub exact: Vec<(EventKind, u64)>,
    /// Counts with a relative tolerance (`|measured - expected| <= tol *
    /// expected`).
    pub approx: Vec<(EventKind, u64, f64)>,
}

impl Expected {
    pub fn exact(mut self, kind: EventKind, count: u64) -> Self {
        self.exact.push((kind, count));
        self
    }

    pub fn approx(mut self, kind: EventKind, count: u64, tol: f64) -> Self {
        self.approx.push((kind, count, tol));
        self
    }

    /// The exact expectation for `kind`, if recorded.
    pub fn get_exact(&self, kind: EventKind) -> Option<u64> {
        self.exact.iter().find(|(k, _)| *k == kind).map(|&(_, c)| c)
    }

    /// True if the oracle has any expectation (exact or approximate) for
    /// `kind`.
    pub fn covers(&self, kind: EventKind) -> bool {
        self.exact.iter().any(|(k, _)| *k == kind) || self.approx.iter().any(|(k, _, _)| *k == kind)
    }

    /// Check a measured count against the oracle. Returns `None` if the
    /// oracle has no expectation for `kind`, else whether it matched.
    pub fn check(&self, kind: EventKind, measured: u64) -> Option<bool> {
        if let Some(want) = self.get_exact(kind) {
            return Some(measured == want);
        }
        if let Some(&(_, want, tol)) = self.approx.iter().find(|(k, _, _)| *k == kind) {
            let err = (measured as f64 - want as f64).abs();
            return Some(err <= tol * want as f64);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_check() {
        let e = Expected::default().exact(EventKind::FpFma, 100);
        assert_eq!(e.check(EventKind::FpFma, 100), Some(true));
        assert_eq!(e.check(EventKind::FpFma, 99), Some(false));
        assert_eq!(e.check(EventKind::Loads, 5), None);
        assert_eq!(e.get_exact(EventKind::FpFma), Some(100));
    }

    #[test]
    fn approx_check() {
        let e = Expected::default().approx(EventKind::L1DMiss, 1000, 0.05);
        assert_eq!(e.check(EventKind::L1DMiss, 1049), Some(true));
        assert_eq!(e.check(EventKind::L1DMiss, 1051), Some(false));
        assert_eq!(e.check(EventKind::L1DMiss, 951), Some(true));
    }
}
