//! Expected-count oracles attached to workloads.
//!
//! Calibration (the paper's `calibrate` utility) needs workloads whose true
//! event counts are known analytically. Each workload carries a list of
//! exact expectations and a list of approximate ones (hardware-structure
//! dependent counts like cache misses, with a tolerance).
//!
//! Tolerance semantics are shared with the grading module: an approximate
//! expectation `(kind, want, tol)` accepts `|measured - want| <=`
//! [`crate::grading::tolerance_band`]`(want, tol)` — relative band
//! `tol * want` for a nonzero expectation, and `tol` itself as an
//! *absolute* count budget when `want == 0` (a purely relative band around
//! zero would degenerate to exact-match and silently make the tolerance
//! dead weight). Both bands are inclusive. A zero expectation that truly
//! means "exactly zero" belongs in `exact`, not `approx`.

use crate::grading;
use simcpu::EventKind;

/// Expected event counts for one workload.
#[derive(Debug, Clone, Default)]
pub struct Expected {
    /// Counts that must match exactly.
    pub exact: Vec<(EventKind, u64)>,
    /// Counts with a tolerance: `|measured - want| <=`
    /// [`grading::tolerance_band`]`(want, tol)`, inclusive.
    pub approx: Vec<(EventKind, u64, f64)>,
    /// Human-readable derivations: how each expectation follows from the
    /// kernel's seeding parameters (`"n^3"` for matmul FMAs, ...). Surfaced
    /// by `papi_validate` as the provenance of every graded cell.
    pub derivations: Vec<(EventKind, &'static str)>,
}

impl Expected {
    pub fn exact(mut self, kind: EventKind, count: u64) -> Self {
        self.exact.push((kind, count));
        self
    }

    pub fn approx(mut self, kind: EventKind, count: u64, tol: f64) -> Self {
        self.approx.push((kind, count, tol));
        self
    }

    /// Record the closed-form derivation of the most recent expectation for
    /// `kind` (exact or approximate) in terms of the kernel's parameters.
    pub fn derived(mut self, kind: EventKind, formula: &'static str) -> Self {
        self.derivations.retain(|(k, _)| *k != kind);
        self.derivations.push((kind, formula));
        self
    }

    /// The recorded derivation for `kind`, if any.
    pub fn derivation(&self, kind: EventKind) -> Option<&'static str> {
        self.derivations
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, f)| f)
    }

    /// The exact expectation for `kind`, if recorded.
    pub fn get_exact(&self, kind: EventKind) -> Option<u64> {
        self.exact.iter().find(|(k, _)| *k == kind).map(|&(_, c)| c)
    }

    /// The approximate expectation for `kind`, if recorded:
    /// `(want, tolerance)`.
    pub fn get_approx(&self, kind: EventKind) -> Option<(u64, f64)> {
        self.approx
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|&(_, c, t)| (c, t))
    }

    /// True if the oracle has any expectation (exact or approximate) for
    /// `kind`.
    pub fn covers(&self, kind: EventKind) -> bool {
        self.exact.iter().any(|(k, _)| *k == kind) || self.approx.iter().any(|(k, _, _)| *k == kind)
    }

    /// Check a measured count against the oracle. Returns `None` if the
    /// oracle has no expectation for `kind`, else whether it matched. An
    /// exact expectation takes precedence over an approximate one for the
    /// same kind.
    pub fn check(&self, kind: EventKind, measured: u64) -> Option<bool> {
        if let Some(want) = self.get_exact(kind) {
            return Some(measured == want);
        }
        if let Some((want, tol)) = self.get_approx(kind) {
            let err = (measured as f64 - want as f64).abs();
            return Some(err <= grading::tolerance_band(want, tol));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_check() {
        let e = Expected::default().exact(EventKind::FpFma, 100);
        assert_eq!(e.check(EventKind::FpFma, 100), Some(true));
        assert_eq!(e.check(EventKind::FpFma, 99), Some(false));
        assert_eq!(e.check(EventKind::Loads, 5), None);
        assert_eq!(e.get_exact(EventKind::FpFma), Some(100));
    }

    #[test]
    fn approx_check() {
        let e = Expected::default().approx(EventKind::L1DMiss, 1000, 0.05);
        assert_eq!(e.check(EventKind::L1DMiss, 1049), Some(true));
        assert_eq!(e.check(EventKind::L1DMiss, 1051), Some(false));
        assert_eq!(e.check(EventKind::L1DMiss, 951), Some(true));
        // The band is inclusive at exactly tol * want.
        assert_eq!(e.check(EventKind::L1DMiss, 1050), Some(true));
        assert_eq!(e.check(EventKind::L1DMiss, 950), Some(true));
    }

    #[test]
    fn zero_want_approx_uses_absolute_budget() {
        // tol doubles as an absolute count budget around a zero
        // expectation instead of collapsing to exact-match.
        let e = Expected::default().approx(EventKind::L1DMiss, 0, 8.0);
        assert_eq!(e.check(EventKind::L1DMiss, 0), Some(true));
        assert_eq!(e.check(EventKind::L1DMiss, 8), Some(true)); // inclusive
        assert_eq!(e.check(EventKind::L1DMiss, 9), Some(false));
    }

    #[test]
    fn exact_beats_approx_for_the_same_kind() {
        let e = Expected::default()
            .exact(EventKind::Loads, 100)
            .approx(EventKind::Loads, 100, 0.5);
        // Were the approx band consulted, 120 would pass (band 50).
        assert_eq!(e.check(EventKind::Loads, 120), Some(false));
        assert_eq!(e.check(EventKind::Loads, 100), Some(true));
    }

    #[test]
    fn derivations_recorded_and_overridable() {
        let e = Expected::default()
            .exact(EventKind::FpFma, 8)
            .derived(EventKind::FpFma, "n^3")
            .derived(EventKind::FpFma, "n*n*n");
        assert_eq!(e.derivation(EventKind::FpFma), Some("n*n*n"));
        assert_eq!(e.derivation(EventKind::Loads), None);
    }
}
