//! Message-passing workloads: multi-program (multi-thread) kernels in the
//! shapes MPI tools care about (§3 of the paper — Vampir, TAU's MPI
//! wrapper, dynaprof's planned "instrumentation and control of parallel
//! message-passing programs").

use simcpu::{Program, ProgramBuilder};

/// A parallel workload: one program per thread, loaded together.
#[derive(Debug, Clone)]
pub struct ParallelWorkload {
    pub name: &'static str,
    pub programs: Vec<Program>,
}

impl ParallelWorkload {
    /// Load every rank onto `machine`, returning the thread ids.
    pub fn load_into(&self, machine: &mut simcpu::Machine) -> Vec<simcpu::ThreadId> {
        self.programs
            .iter()
            .map(|p| machine.load(p.clone()))
            .collect()
    }
}

/// Two ranks exchanging a token `rounds` times; rank 0 computes FP work
/// before each send, rank 1 integer work after each receive.
pub fn pingpong(rounds: u32, work: usize) -> ParallelWorkload {
    let mut a = ProgramBuilder::new();
    a.func("main", |f| {
        f.loop_(rounds, |f| {
            f.ffma(work);
            f.send(0);
            f.recv(1);
        });
    });
    let mut b = ProgramBuilder::new();
    b.func("main", |f| {
        f.loop_(rounds, |f| {
            f.recv(0);
            f.int(work);
            f.send(1);
        });
    });
    ParallelWorkload {
        name: "pingpong",
        programs: vec![a.build("main"), b.build("main")],
    }
}

/// A master farming `items` work units to `workers` ranks round-robin over
/// per-worker request channels, collecting results on channel 0.
///
/// Channel layout: `0` = results to master, `1 + w` = work for worker `w`.
pub fn master_worker(workers: u16, items_per_worker: u32, work: usize) -> ParallelWorkload {
    assert!(workers >= 1);
    let mut programs = Vec::new();
    let mut m = ProgramBuilder::new();
    m.func("main", |f| {
        // Send every worker its items, then collect all results.
        for w in 0..workers {
            f.loop_(items_per_worker, |f| {
                f.send(1 + w);
            });
        }
        f.loop_(items_per_worker * workers as u32, |f| {
            f.recv(0);
        });
    });
    programs.push(m.build("main"));
    for w in 0..workers {
        let mut p = ProgramBuilder::new();
        p.func("main", |f| {
            f.loop_(items_per_worker, |f| {
                f.recv(1 + w);
                f.ffma(work);
                f.send(0);
            });
        });
        programs.push(p.build("main"));
    }
    ParallelWorkload {
        name: "master_worker",
        programs,
    }
}

/// Bulk-synchronous phases: every rank computes, then exchanges a token
/// with its ring neighbour — the alternating compute/communicate pattern a
/// Vampir timeline shows.
pub fn bsp_ring(ranks: u16, supersteps: u32, work: usize) -> ParallelWorkload {
    assert!(ranks >= 2);
    let mut programs = Vec::new();
    for r in 0..ranks {
        let next = (r + 1) % ranks;
        let mut p = ProgramBuilder::new();
        p.func("main", |f| {
            f.loop_(supersteps, |f| {
                f.ffma(work);
                f.send(next); // channel id = receiving rank
                f.recv(r);
            });
        });
        programs.push(p.build("main"));
    }
    ParallelWorkload {
        name: "bsp_ring",
        programs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::sim_generic;
    use simcpu::{EventKind, Machine};

    fn run_counting(w: &ParallelWorkload) -> Machine {
        let mut m = Machine::new(sim_generic(), 5);
        m.enable_truth();
        w.load_into(&mut m);
        m.run_to_halt();
        m
    }

    #[test]
    fn pingpong_message_totals() {
        let m = run_counting(&pingpong(200, 3));
        let t = m.truth().unwrap();
        assert_eq!(t.total(EventKind::MsgSend), 400);
        assert_eq!(t.total(EventKind::MsgRecv), 400);
        assert_eq!(t.total(EventKind::FpFma), 600);
        assert_eq!(t.total(EventKind::IntOps), 600);
    }

    #[test]
    fn master_worker_completes_and_balances() {
        let w = master_worker(3, 100, 4);
        let mut m = Machine::new(sim_generic(), 5);
        let tids = w.load_into(&mut m);
        assert_eq!(tids.len(), 4);
        m.enable_truth();
        m.run_to_halt();
        let t = m.truth().unwrap();
        // 300 work sends + 300 result sends
        assert_eq!(t.total(EventKind::MsgSend), 600);
        assert_eq!(t.total(EventKind::FpFma), 300 * 4);
        for tid in tids {
            assert!(m.thread_halted(tid));
        }
    }

    #[test]
    fn bsp_ring_all_ranks_advance() {
        let m = run_counting(&bsp_ring(4, 50, 2));
        let t = m.truth().unwrap();
        assert_eq!(t.total(EventKind::MsgSend), 4 * 50);
        assert_eq!(t.total(EventKind::MsgRecv), 4 * 50);
        assert_eq!(t.total(EventKind::FpFma), 4 * 50 * 2);
    }

    #[test]
    fn ring_with_more_ranks_blocks_more() {
        // More ranks per core => more blocked waiting overall.
        let m2 = run_counting(&bsp_ring(2, 100, 50));
        let m6 = run_counting(&bsp_ring(6, 100, 50));
        let b2 = m2.truth().unwrap().total(EventKind::MsgBlockCycles);
        let b6 = m6.truth().unwrap().total(EventKind::MsgBlockCycles);
        assert!(b6 > b2, "6-rank ring should wait more: {b6} vs {b2}");
    }
}
