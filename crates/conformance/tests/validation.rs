//! The validation-check matrix: graded accuracy cells defended against the
//! golden baseline (`results/validation_matrix.json`), plus the harness
//! self-test — a substrate with glitching reads must produce grade
//! regressions that name the check and carry full cell coordinates and
//! baseline line numbers.

use papi_conformance::register_broken;
use papi_conformance::validation::{
    run_validation_checks, validation_substrates, GradeDivergence, REFERENCE_SUBSTRATE,
    VALIDATION_CHECKS,
};
use papi_core::SubstrateRegistry;
use papi_tools::full_registry;
use papi_tools::validate::{render_matrix_json, run_matrix, ValidateConfig};
use std::path::Path;
use std::sync::Arc;

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn fail_report(divs: &[GradeDivergence]) -> String {
    divs.iter()
        .map(|d| format!("  {d}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn registry_with_rv64() -> SubstrateRegistry {
    let mut reg = full_registry();
    reg.register_platform_file(&repo_path("platforms/sim-rv64.toml"))
        .expect("platforms/sim-rv64.toml must load");
    reg
}

/// The headline check: grade the conformance substrate list and defend
/// every cell against the committed golden matrix. Any finding here is
/// either a real accuracy regression or a stale baseline (regenerate with
/// `papi_validate --json --platform-file platforms/sim-rv64.toml`).
#[test]
fn validation_matrix_is_green_against_golden_baseline() {
    let reg = Arc::new(registry_with_rv64());
    let baseline = std::fs::read_to_string(repo_path("results/validation_matrix.json"))
        .expect("golden baseline results/validation_matrix.json must exist");
    let cfg = ValidateConfig::new(validation_substrates());
    let divs = run_validation_checks(&reg, &cfg, &baseline);
    assert!(
        divs.is_empty(),
        "validation findings:\n{}",
        fail_report(&divs)
    );
}

/// Self-test: plant a substrate whose reads glitch, hand the checks a
/// golden baseline recording the grades its clean inner substrate earns,
/// and require the harness to fail `grade-regression-vs-baseline` with
/// full cell coordinates and the defended baseline line.
#[test]
fn broken_substrate_fails_the_named_grade_regression_check() {
    let mut reg = full_registry();
    register_broken(&mut reg);
    let reg = Arc::new(reg);

    // `broken` wraps sim:generic, so the reference platform's own matrix —
    // relabelled — is exactly the baseline a conforming `broken` would
    // have to reproduce.
    let clean = run_matrix(
        &reg,
        &ValidateConfig::new(vec![REFERENCE_SUBSTRATE.to_string()]),
    );
    let golden = render_matrix_json(&clean).replace(
        &format!("\"substrate\":\"{REFERENCE_SUBSTRATE}\""),
        "\"substrate\":\"broken\"",
    );

    let cfg = ValidateConfig::new(vec!["broken".to_string()]);
    let divs = run_validation_checks(&reg, &cfg, &golden);

    let regressions: Vec<_> = divs
        .iter()
        .filter(|d| d.check == "grade-regression-vs-baseline")
        .collect();
    assert!(
        !regressions.is_empty(),
        "the glitching substrate earned no grade regressions; findings:\n{}",
        fail_report(&divs)
    );
    for r in &regressions {
        let parts: Vec<&str> = r.cell.split('/').collect();
        assert_eq!(parts.len(), 4, "cell coordinates incomplete: {}", r.cell);
        assert_eq!(parts[0], "broken");
        assert!(
            r.baseline_line.is_some(),
            "regression lacks a baseline line number: {r}"
        );
    }
}

/// The check table and substrate list stay in the shape the reports and
/// CI logs key on.
#[test]
fn validation_substrates_cover_every_accuracy_regime() {
    let subs = validation_substrates();
    assert!(subs.contains(&REFERENCE_SUBSTRATE.to_string()));
    assert!(subs.iter().any(|s| s.starts_with("file:")));
    assert!(subs.iter().any(|s| s.starts_with("fault[")));
    assert!(VALIDATION_CHECKS.len() >= 5);
    // Every listed substrate resolves through the registry (with the
    // platform file loaded).
    let reg = registry_with_rv64();
    for s in &subs {
        assert!(reg.contains(s), "substrate '{s}' does not resolve");
    }
}
