//! The conformance matrix: every SPEC check × every registered substrate ×
//! every fault schedule, plus the harness self-test (a deliberately broken
//! substrate must be caught with a named check failure).

use papi_conformance::{
    checks, fault_schedules, register_broken, run_clean_invariants, run_matrix,
};
use papi_tools::full_registry;

fn fail_report(divs: &[papi_conformance::Divergence]) -> String {
    divs.iter()
        .map(|d| format!("  {d}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn matrix_is_green_seed_1() {
    let reg = full_registry();
    let divs = run_matrix(&reg, &[0xC0FF_EE01]);
    assert!(divs.is_empty(), "divergences:\n{}", fail_report(&divs));
}

#[test]
fn matrix_is_green_seed_2() {
    let reg = full_registry();
    let divs = run_matrix(&reg, &[0xC0FF_EE02]);
    assert!(divs.is_empty(), "divergences:\n{}", fail_report(&divs));
}

#[test]
fn matrix_is_green_seed_3() {
    let reg = full_registry();
    let divs = run_matrix(&reg, &[0xC0FF_EE03]);
    assert!(divs.is_empty(), "divergences:\n{}", fail_report(&divs));
}

#[test]
fn matrix_covers_every_substrate_and_schedule() {
    let reg = full_registry();
    // The suite's reach: at least the eight simulated platforms plus the
    // perfctr emulation, three fault schedules, and all table checks.
    assert!(reg.names().len() >= 9, "registry shrank: {:?}", reg.names());
    assert_eq!(fault_schedules().len(), 3);
    assert!(checks().len() >= 6);
    for s in fault_schedules() {
        let wrapped = format!("{s}sim:generic");
        assert!(
            reg.create(&wrapped, 7).is_ok(),
            "schedule prefix {s} does not resolve through the registry"
        );
    }
}

/// Harness self-test: a substrate whose reads glitch must be caught by the
/// monotonicity check *by name* — a suite that cannot catch a planted
/// defect proves nothing about the substrates it passes.
#[test]
fn broken_substrate_is_caught_with_named_check_failure() {
    let mut reg = full_registry();
    register_broken(&mut reg);
    let divs = run_clean_invariants(&reg, "broken", 0xBAD);
    assert!(
        !divs.is_empty(),
        "the deliberately broken substrate sailed through the conformance checks"
    );
    assert!(
        divs.iter()
            .any(|d| d.check == "read-monotone-stop-consistent"),
        "expected 'read-monotone-stop-consistent' to name the defect, got:\n{}",
        fail_report(&divs)
    );
    for d in &divs {
        assert_eq!(d.substrate, "broken");
        assert_eq!(d.schedule, "clean");
    }
}
