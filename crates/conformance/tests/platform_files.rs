//! Conformance over the checked-in platform-model files: every
//! `platforms/*.toml` must lint, load through the registry, and pass the
//! full differential matrix (every check × every fault schedule). This is
//! the acceptance gate for data-only platforms — sim-rv64 has no Rust
//! constructor, so this suite is the only thing standing behind it.

use papi_conformance::{fault_schedules, run_matrix};
use papi_core::SubstrateRegistry;
use std::path::PathBuf;

fn platforms_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../platforms")
}

fn model_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(platforms_dir())
        .expect("platforms/ directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_model_file_lints() {
    let files = model_files();
    assert!(
        files.len() >= 9,
        "expected the 8 builtins plus sim-rv64, found {files:?}"
    );
    for path in &files {
        let spec =
            simcpu::load_platform_file(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // A linted file is canonical: rendering and re-parsing is lossless.
        let rendered = simcpu::render_platform(&spec);
        let reparsed = simcpu::parse_platform(&rendered)
            .unwrap_or_else(|e| panic!("{}: render does not re-parse: {e}", path.display()));
        assert_eq!(reparsed, spec, "{} round-trip", path.display());
    }
}

/// The tentpole acceptance test: a registry holding *only* file-loaded
/// platforms (including the data-only sim-rv64) is green across the whole
/// differential matrix — every check, every fault schedule.
#[test]
fn file_platforms_pass_full_conformance_matrix() {
    let mut reg = SubstrateRegistry::new();
    let names = reg
        .register_platform_dir(&platforms_dir())
        .expect("all checked-in model files load");
    assert!(
        names.iter().any(|n| n == "file:sim-rv64"),
        "sim-rv64 missing from {names:?}"
    );
    assert_eq!(fault_schedules().len(), 3, "schedule coverage shrank");
    let divs = run_matrix(&reg, &[0xDA7A_F11E]);
    assert!(
        divs.is_empty(),
        "divergences:\n{}",
        divs.iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Malformed files must fail loudly with a named check — a model file that
/// cannot be validated never reaches the registry.
#[test]
fn malformed_file_fails_with_named_check_not_silently() {
    let dir = std::env::temp_dir().join(format!("papi-conf-badfile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("sim-broken.toml");
    let src = std::fs::read_to_string(platforms_dir().join("sim-rv64.toml")).unwrap();
    // Corrupt the event table: counters beyond num_counters.
    std::fs::write(&bad, src.replace("counters = [0]", "counters = [0, 99]")).unwrap();
    let mut reg = SubstrateRegistry::new();
    let err = reg.register_platform_file(&bad).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("mask-beyond-counters") || msg.contains("bad-counter-spec"),
        "expected a named check in: {msg}"
    );
    assert!(reg.names().is_empty(), "bad file must not register");
    std::fs::remove_dir_all(&dir).ok();
}
