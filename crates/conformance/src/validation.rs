//! Validation-matrix conformance: the `papi_validate` accuracy matrix
//! re-expressed as named, line-numbered checks.
//!
//! The differential matrix in [`crate::run_matrix`] proves the portable
//! layer behaves *identically* under faults; this module proves it counts
//! *correctly*: every (substrate, mode, workload, preset) cell is graded
//! against a closed-form oracle (SPEC.md §13) and compared with the golden
//! baseline committed at `results/validation_matrix.json`. A finding names
//! its check, carries full cell coordinates, and — for baseline
//! regressions — the 1-based line of the golden file that recorded the
//! grade being defended.
//!
//! The suite grades a trimmed substrate list ([`validation_substrates`]):
//! the full matrix is the CI gate of `papi_validate --baseline`; here the
//! point is that grade regressions are *conformance failures* with the
//! same named-check reporting discipline as the fault matrix, caught
//! in-tree by `cargo test`.

use papi_core::SubstrateRegistry;
use papi_tools::validate::{
    diff_against_parsed, parse_matrix_json, run_matrix, Cell, Mode, ValidateConfig,
    VALIDATION_PRESETS,
};
use papi_workloads::Grade;
use std::sync::Arc;

/// One named validation check (the grading counterpart of [`crate::Check`]).
pub struct ValidationCheck {
    /// Stable name, reported on every finding.
    pub name: &'static str,
    /// SPEC.md clause the check enforces.
    pub spec: &'static str,
}

/// The validation check table. Names are stable: baselines, CI logs and
/// the self-test all key on them.
pub const VALIDATION_CHECKS: &[ValidationCheck] = &[
    ValidationCheck {
        name: "grade-direct-exact",
        spec: "SPEC §13: on the reference platform every direct-mode cell grades exact",
    },
    ValidationCheck {
        name: "grade-mpx-within-band",
        spec: "SPEC §13: reference-platform multiplexed estimates stay within the tolerance band",
    },
    ValidationCheck {
        name: "grade-matrix-coverage",
        spec: "SPEC §13: every graded substrate yields a cell for every (mode, workload, preset)",
    },
    ValidationCheck {
        name: "grade-regression-vs-baseline",
        spec: "SPEC §13: no cell's grade may rank worse than the golden baseline records",
    },
    ValidationCheck {
        name: "grade-baseline-coverage",
        spec: "SPEC §13: the golden baseline spans all modes and presets, a data-file platform and a fault-decorated substrate",
    },
];

/// The substrate the exactness and multiplex-band checks pin: the clean
/// reference model with no quirks and enough counters for every preset.
pub const REFERENCE_SUBSTRATE: &str = "sim:generic";

/// One grading conformance failure.
#[derive(Debug, Clone)]
pub struct GradeDivergence {
    /// Name from [`VALIDATION_CHECKS`].
    pub check: &'static str,
    /// Full cell coordinates `substrate/mode/workload/preset`, or a
    /// coarser locus for coverage findings.
    pub cell: String,
    /// 1-based line in the golden baseline file, for findings that defend
    /// a recorded grade.
    pub baseline_line: Option<usize>,
    pub detail: String,
}

impl std::fmt::Display for GradeDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "check '{}' cell {}", self.check, self.cell)?;
        if let Some(line) = self.baseline_line {
            write!(f, " (baseline line {line})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The trimmed substrate list the conformance suite grades: the reference
/// platform, a constrained 2-counter platform, the quirk platform, the
/// data-file model and one fault-decorated substrate — one representative
/// per accuracy regime, so the suite stays fast while still exercising
/// every grading path (exact, within, deviates, unsupported).
pub fn validation_substrates() -> Vec<String> {
    vec![
        REFERENCE_SUBSTRATE.to_string(),
        "sim:x86".to_string(),
        "sim:power3".to_string(),
        "file:sim-rv64".to_string(),
        "fault[chaos]:sim:x86".to_string(),
    ]
}

/// Run every validation check over `cfg.substrates` and return the
/// findings. `baseline_text` is the golden matrix JSON (normally the
/// committed `results/validation_matrix.json`); only baseline cells whose
/// substrate is in the run set are defended, and retained cells keep their
/// original line numbers.
pub fn run_validation_checks(
    reg: &Arc<SubstrateRegistry>,
    cfg: &ValidateConfig,
    baseline_text: &str,
) -> Vec<GradeDivergence> {
    let mut divs = Vec::new();

    for name in &cfg.substrates {
        if !reg.contains(name) {
            divs.push(GradeDivergence {
                check: "grade-matrix-coverage",
                cell: name.clone(),
                baseline_line: None,
                detail: "substrate not registered (platform file missing?)".to_string(),
            });
        }
    }

    let cells = run_matrix(reg, cfg);
    let suite_len = papi_workloads::validation_suite().len();
    let per_substrate = Mode::ALL.len() * suite_len * VALIDATION_PRESETS.len();

    for name in &cfg.substrates {
        let n = cells.iter().filter(|c| &c.substrate == name).count();
        if n != per_substrate {
            divs.push(GradeDivergence {
                check: "grade-matrix-coverage",
                cell: name.clone(),
                baseline_line: None,
                detail: format!("{n} cells graded, expected {per_substrate}"),
            });
        }
    }

    if cfg.substrates.iter().any(|s| s == REFERENCE_SUBSTRATE) {
        for c in cells.iter().filter(|c| c.substrate == REFERENCE_SUBSTRATE) {
            match c.mode {
                Mode::Direct | Mode::Thread => {
                    if c.grade != Grade::Exact {
                        divs.push(reference_finding("grade-direct-exact", c));
                    }
                }
                Mode::Mpx => {
                    if c.grade.rank() > 1 {
                        divs.push(reference_finding("grade-mpx-within-band", c));
                    }
                }
            }
        }
    }

    let baseline = parse_matrix_json(baseline_text);
    let defended: Vec<_> = baseline
        .iter()
        .filter(|b| cfg.substrates.contains(&b.substrate))
        .cloned()
        .collect();
    let diff = diff_against_parsed(&cells, &defended);
    for r in &diff.regressions {
        divs.push(GradeDivergence {
            check: "grade-regression-vs-baseline",
            cell: r.cell.clone(),
            baseline_line: Some(r.baseline_line),
            detail: format!("{} -> {}", r.baseline_grade, r.current_grade),
        });
    }

    divs.extend(baseline_coverage(&baseline));
    divs
}

fn reference_finding(check: &'static str, c: &Cell) -> GradeDivergence {
    GradeDivergence {
        check,
        cell: c.coord(),
        baseline_line: None,
        detail: format!(
            "expected {} measured {:?} ({}); derivation: {}",
            c.expected, c.measured, c.grade, c.derivation
        ),
    }
}

/// The `grade-baseline-coverage` check: a regenerated golden file that
/// silently dropped the data-file platform, the fault-decorated substrate,
/// a mode or a preset would hollow out the regression gate without failing
/// it — so the baseline's own span is a conformance condition.
fn baseline_coverage(baseline: &[papi_tools::validate::ParsedCell]) -> Vec<GradeDivergence> {
    let mut divs = Vec::new();
    let mut missing = |cell: &str, detail: String| {
        divs.push(GradeDivergence {
            check: "grade-baseline-coverage",
            cell: cell.to_string(),
            baseline_line: None,
            detail,
        });
    };
    if baseline.is_empty() {
        missing(
            "(baseline)",
            "no cells parsed from the golden matrix".to_string(),
        );
        return divs;
    }
    if !baseline.iter().any(|b| b.substrate.starts_with("file:")) {
        missing(
            "(baseline)",
            "no data-file platform (file:*) in the golden matrix".to_string(),
        );
    }
    if !baseline.iter().any(|b| b.substrate.starts_with("fault[")) {
        missing(
            "(baseline)",
            "no fault-decorated substrate (fault[*]) in the golden matrix".to_string(),
        );
    }
    for mode in Mode::ALL {
        if !baseline.iter().any(|b| b.mode == mode.label()) {
            missing("(baseline)", format!("mode '{}' absent", mode.label()));
        }
    }
    for &preset in VALIDATION_PRESETS {
        if !baseline.iter().any(|b| b.preset == preset.name()) {
            missing("(baseline)", format!("preset {} absent", preset.name()));
        }
    }
    divs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_table_names_are_unique_and_spec_tagged() {
        let mut names: Vec<_> = VALIDATION_CHECKS.iter().map(|c| c.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), VALIDATION_CHECKS.len());
        for c in VALIDATION_CHECKS {
            assert!(c.spec.contains("SPEC"), "{} lacks a spec tag", c.name);
        }
    }

    #[test]
    fn baseline_coverage_flags_a_hollowed_out_golden_file() {
        // A baseline with only one clean-substrate direct cell is missing
        // the data-file platform, the fault substrate, two modes and
        // eleven presets.
        let text = r#"{"substrate":"sim:generic","mode":"direct","workload":"inst_mix","preset":"PAPI_TOT_INS","grade":"exact"}"#;
        let divs = baseline_coverage(&parse_matrix_json(text));
        assert!(divs.iter().all(|d| d.check == "grade-baseline-coverage"));
        assert_eq!(divs.len(), 2 + 2 + (VALIDATION_PRESETS.len() - 1));
        let empty = baseline_coverage(&parse_matrix_json(""));
        assert_eq!(empty.len(), 1);
    }
}
