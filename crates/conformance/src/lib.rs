//! # papi-conformance — ctests-style differential conformance suite
//!
//! The original PAPI distribution shipped `ctests/`: a battery of small
//! programs run against every substrate port to prove the portable layer
//! behaved identically everywhere. This crate is that idea plus fault
//! injection: every check is a table entry derived from SPEC.md, run
//! against **every registered substrate**, both clean and wrapped in a
//! [`papi_core::FaultSubstrate`] fault schedule.
//!
//! The conformance condition is differential: the faulted run must produce
//! the *same* observable counts as the fault-free run (after the portable
//! layer's transient-retry and wraparound-widening machinery has done its
//! job), or fail with the same spec-listed [`PapiError`] — it must never
//! silently diverge.
//!
//! Checks only compare observables that are invariant under fault timing:
//! final totals, accumulated sums, overflow delivery counts, and error
//! codes. Mid-run readings depend on *when* (in cycles) they are taken, and
//! retries cost cycles, so those are used for intra-run invariants
//! (monotonicity, stop/read agreement) but never compared across runs.
//! Multiplexed estimates are timing-dependent by nature and compare under a
//! relative tolerance.
//!
//! [`BrokenSubstrate`] is the suite's self-test: a deliberately
//! nonconforming substrate (its batch reads glitch a huge additive offset
//! on and off) that a healthy harness must catch with a *named* check
//! failure — see `tests/matrix.rs`.
//!
//! The [`validation`] module is the suite's second axis: where the
//! differential matrix proves faulted and clean runs *agree*, the
//! validation checks prove the counts are *right* — every graded cell of
//! the `papi_validate` accuracy matrix defended against the golden
//! baseline, with the same named-check reporting.

use papi_core::{BoxSubstrate, Papi, PapiError, Preset, Substrate, SubstrateRegistry};
use simcpu::Program;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod validation;

/// How a check's observables compare between the clean and faulted runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Bit-exact: retries and widening must fully absorb the faults.
    Exact,
    /// Relative tolerance, for timing-scaled observables (multiplex
    /// estimates): `|a - b| <= rel * max(|a|, |b|)`, with an absolute slack
    /// of 2 counts for near-zero values.
    Rel(f64),
}

/// What a check observed: comparable values, or a spec-listed API error at
/// a point where the spec permits one (e.g. `Cnflct` on a platform that
/// cannot allocate the requested events).
#[derive(Debug)]
pub enum CheckOutcome {
    Values(Vec<i64>),
    ApiError(PapiError),
    /// The platform cannot express the check (e.g. too few events resolve).
    /// Clean and faulted runs must agree on skipping — a fault schedule
    /// must never change what a platform supports.
    Skipped(&'static str),
}

/// `Ok(outcome)` or an *invariant violation* — the check itself detected
/// nonconforming behaviour (counts went backwards, stop disagreed with the
/// final read, an expected error did not materialize).
pub type CheckResult = Result<CheckOutcome, String>;

/// One table-driven conformance check.
pub struct Check {
    /// Stable name, reported on failure.
    pub name: &'static str,
    /// SPEC.md section the check enforces.
    pub spec: &'static str,
    /// Cross-run comparison policy.
    pub tolerance: Tolerance,
    /// Build the monitored workload (fresh per run).
    pub workload: fn() -> Program,
    /// Drive a session and return observables.
    pub run: fn(&mut Papi<BoxSubstrate>) -> CheckResult,
}

/// One conformance failure: which check, where, and why.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub check: &'static str,
    pub substrate: String,
    /// Fault-schedule prefix, or `"clean"` for a fault-free invariant
    /// violation.
    pub schedule: String,
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "check '{}' on {} [{}]: {}",
            self.check, self.substrate, self.schedule, self.detail
        )
    }
}

// --- workloads -------------------------------------------------------------

fn fp_workload() -> Program {
    papi_workloads::dense_fp(5_000, 2, 1).program
}

fn mpx_workload() -> Program {
    papi_workloads::dense_fp(100_000, 3, 1).program
}

/// Map a `PapiError` to its SPEC §8 C return code (the conformance suite's
/// own table, deliberately independent of `papi-capi`).
pub fn spec_error_code(e: &PapiError) -> i64 {
    match e {
        PapiError::Inval(_) => -1,
        PapiError::Substrate(_) => -4,
        PapiError::NoEvnt(_) => -7,
        PapiError::Cnflct => -8,
        PapiError::NotRun => -9,
        PapiError::IsRun => -10,
        PapiError::NoEvst(_) => -11,
        PapiError::NotPreset(_) => -12,
        PapiError::NoCntr => -13,
        PapiError::SubstrateTransient(_) => -14,
        PapiError::NoSupp(_) => -19,
    }
}

/// First preset from `candidates` this platform resolves.
fn pick_event(papi: &Papi<BoxSubstrate>, candidates: &[Preset]) -> Option<u32> {
    candidates
        .iter()
        .map(|p| p.code())
        .find(|&c| papi.query_event(c))
}

/// First preset from `candidates` that resolves to a *single* native event
/// with coefficient 1. Overflow thresholds apply to the native counter the
/// event is armed on, so the exactly-once invariant (`fires ==
/// counts/threshold`) only holds when the preset value IS that counter's
/// value — a derived multi-term preset would fire on the native count, not
/// the derived one.
fn pick_direct_event(papi: &Papi<BoxSubstrate>, candidates: &[Preset]) -> Option<u32> {
    candidates.iter().map(|p| p.code()).find(|&c| {
        papi.preset_table()
            .resolve(c, papi.native_events())
            .map(|m| m.terms.len() == 1 && m.terms[0].1 == 1)
            .unwrap_or(false)
    })
}

// --- the checks ------------------------------------------------------------

/// SPEC §3: counts are monotone across reads while running, and `stop`
/// agrees with a final read taken after the application halted. Only the
/// final totals are compared across runs (mid-run readings are
/// timing-dependent).
fn check_read_monotone(papi: &mut Papi<BoxSubstrate>) -> CheckResult {
    let set = papi.create_eventset();
    let mut codes = Vec::new();
    for cand in [&[Preset::TotIns][..], &[Preset::FpOps, Preset::FmaIns][..]] {
        if let Some(c) = pick_event(papi, cand) {
            codes.push(c);
        }
    }
    if codes.is_empty() {
        return Err("no candidate preset resolves on this platform".into());
    }
    for &c in &codes {
        papi.add_event(set, c)
            .map_err(|e| format!("add_event: {e}"))?;
    }
    match papi.start(set) {
        Ok(()) => {}
        Err(e @ PapiError::Cnflct) | Err(e @ PapiError::NoCntr) => {
            return Ok(CheckOutcome::ApiError(e))
        }
        Err(e) => return Err(format!("start: {e}")),
    }
    papi.run_for(5_000).map_err(|e| format!("run_for: {e}"))?;
    let r1 = papi.read(set).map_err(|e| format!("read 1: {e}"))?;
    papi.run_app().map_err(|e| format!("run_app: {e}"))?;
    let r2 = papi.read(set).map_err(|e| format!("read 2: {e}"))?;
    for (a, b) in r1.iter().zip(&r2) {
        if b < a {
            return Err(format!("counts went backwards: read1 {a} then read2 {b}"));
        }
        if *a < 0 || *b < 0 {
            return Err(format!("negative count: read1 {a}, read2 {b}"));
        }
    }
    let v = papi.stop(set).map_err(|e| format!("stop: {e}"))?;
    if v != r2 {
        return Err(format!(
            "stop {v:?} disagrees with final read {r2:?} (no work ran between them)"
        ));
    }
    Ok(CheckOutcome::Values(v))
}

/// SPEC §3: `accum` chunks telescope — accumulated totals over arbitrary
/// chunk boundaries equal the single-run totals, regardless of where the
/// chunks fall.
fn check_accum_chunks(papi: &mut Papi<BoxSubstrate>) -> CheckResult {
    let set = papi.create_eventset();
    let Some(code) = pick_event(papi, &[Preset::TotIns, Preset::FpOps]) else {
        return Err("no candidate preset resolves on this platform".into());
    };
    papi.add_event(set, code)
        .map_err(|e| format!("add_event: {e}"))?;
    papi.start(set).map_err(|e| format!("start: {e}"))?;
    let mut totals = vec![0i64];
    loop {
        let exit = papi.run_for(4_000).map_err(|e| format!("run_for: {e}"))?;
        papi.accum(set, &mut totals)
            .map_err(|e| format!("accum: {e}"))?;
        if matches!(exit, papi_core::AppExit::Halted) {
            break;
        }
    }
    let tail = papi.stop(set).map_err(|e| format!("stop: {e}"))?;
    totals[0] += tail[0];
    if totals[0] < 0 {
        return Err(format!("negative accumulated total {}", totals[0]));
    }
    Ok(CheckOutcome::Values(totals))
}

/// SPEC §3 (overflow): the handler fires exactly once per threshold
/// crossing — delivery may be delayed, never dropped or duplicated.
fn check_overflow_exactly_once(papi: &mut Papi<BoxSubstrate>) -> CheckResult {
    let set = papi.create_eventset();
    let Some(code) = pick_direct_event(papi, &[Preset::FmaIns, Preset::TotIns, Preset::TotCyc])
    else {
        return Ok(CheckOutcome::Skipped(
            "no single-term preset resolves on this platform",
        ));
    };
    papi.add_event(set, code)
        .map_err(|e| format!("add_event: {e}"))?;
    let fires = Arc::new(AtomicU64::new(0));
    let f2 = Arc::clone(&fires);
    const THRESHOLD: u64 = 500;
    if let Err(e) = papi.overflow(
        set,
        code,
        THRESHOLD,
        Box::new(move |_| {
            f2.fetch_add(1, Ordering::Relaxed);
        }),
    ) {
        // Spec-listed refusal (e.g. multiplexed set, missing support) is a
        // legitimate outcome as long as both runs refuse identically.
        return Ok(CheckOutcome::ApiError(e));
    }
    match papi.start(set) {
        Ok(()) => {}
        Err(e @ PapiError::Cnflct) | Err(e @ PapiError::NoCntr) => {
            return Ok(CheckOutcome::ApiError(e))
        }
        Err(e) => return Err(format!("start: {e}")),
    }
    papi.run_app().map_err(|e| format!("run_app: {e}"))?;
    let v = papi.stop(set).map_err(|e| format!("stop: {e}"))?;
    let n = fires.load(Ordering::Relaxed) as i64;
    let expected = v[0] / THRESHOLD as i64;
    if (n - expected).abs() > 2 {
        return Err(format!(
            "{n} overflow deliveries for {} counts at threshold {THRESHOLD} (expected ~{expected})",
            v[0]
        ));
    }
    if v[0] > 2 * THRESHOLD as i64 && n == 0 {
        return Err("counter crossed the threshold but the handler never fired".into());
    }
    Ok(CheckOutcome::Values(vec![n, v[0]]))
}

/// SPEC §3 (multiplexing): estimates from a time-sliced set track the true
/// counts; compared under tolerance because estimation is timing-scaled.
fn check_mpx_estimates(papi: &mut Papi<BoxSubstrate>) -> CheckResult {
    let set = papi.create_eventset();
    let mut added = 0;
    for p in [
        Preset::FmaIns,
        Preset::FpOps,
        Preset::FdvIns,
        Preset::LdIns,
        Preset::TotIns,
        Preset::IntIns,
    ] {
        if added < 4 && papi.query_event(p.code()) && papi.add_event(set, p.code()).is_ok() {
            added += 1;
        }
    }
    if added < 2 {
        return Ok(CheckOutcome::Skipped(
            "fewer than two presets resolve on this platform",
        ));
    }
    if let Err(e) = papi.set_multiplex(set) {
        return Ok(CheckOutcome::ApiError(e));
    }
    papi.set_multiplex_period(set, 10_000)
        .map_err(|e| format!("set_multiplex_period: {e}"))?;
    match papi.start(set) {
        Ok(()) => {}
        Err(e @ PapiError::Cnflct) | Err(e @ PapiError::NoCntr) => {
            return Ok(CheckOutcome::ApiError(e))
        }
        Err(e) => return Err(format!("start: {e}")),
    }
    papi.run_app().map_err(|e| format!("run_app: {e}"))?;
    let v = papi.stop(set).map_err(|e| format!("stop: {e}"))?;
    if v.iter().any(|&x| x < 0) {
        return Err(format!("negative multiplex estimate: {v:?}"));
    }
    Ok(CheckOutcome::Values(v))
}

/// SPEC §8: operations fail with the spec-listed error codes, identically
/// on every substrate and under every fault schedule.
fn check_error_model(papi: &mut Papi<BoxSubstrate>) -> CheckResult {
    let set = papi.create_eventset();
    let Some(code) = pick_event(papi, &[Preset::TotIns, Preset::FpOps]) else {
        return Err("no candidate preset resolves on this platform".into());
    };
    papi.add_event(set, code)
        .map_err(|e| format!("add_event: {e}"))?;
    let mut codes = Vec::new();
    let mut expect = |r: Result<(), PapiError>, what: &str| -> Result<(), String> {
        match r {
            Err(e) => {
                codes.push(spec_error_code(&e));
                Ok(())
            }
            Ok(()) => Err(format!("{what} unexpectedly succeeded")),
        }
    };
    expect(papi.read(set).map(|_| ()), "read before start")?;
    papi.start(set).map_err(|e| format!("start: {e}"))?;
    expect(papi.start(set), "second start")?;
    expect(
        papi.add_event(set, Preset::TotCyc.code()),
        "add to running set",
    )?;
    papi.run_app().map_err(|e| format!("run_app: {e}"))?;
    papi.stop(set).map_err(|e| format!("stop: {e}"))?;
    expect(papi.stop(set).map(|_| ()), "second stop")?;
    expect(papi.add_event(set, 0x7777), "add bogus event code")?;
    expect(papi.read(9999).map(|_| ()), "read unknown set")?;
    let want = [-9, -10, -10, -9, -7, -9];
    if codes != want {
        return Err(format!("error codes {codes:?}, spec says {want:?}"));
    }
    Ok(CheckOutcome::Values(codes))
}

/// SPEC §5: the cycle and microsecond clocks are monotone non-decreasing
/// and advance across a run. Clock readings are timing-dependent, so the
/// cross-run comparison carries no values.
fn check_timers_monotone(papi: &mut Papi<BoxSubstrate>) -> CheckResult {
    let c0 = papi.get_real_cyc();
    let u0 = papi.get_real_usec();
    papi.run_app().map_err(|e| format!("run_app: {e}"))?;
    let c1 = papi.get_real_cyc();
    let u1 = papi.get_real_usec();
    if c1 < c0 || u1 < u0 {
        return Err(format!(
            "clocks went backwards: cyc {c0}->{c1}, usec {u0}->{u1}"
        ));
    }
    if c1 == c0 {
        return Err("cycle clock did not advance across a run".into());
    }
    Ok(CheckOutcome::Values(Vec::new()))
}

/// The conformance table: every check, with its SPEC reference and
/// comparison policy.
pub fn checks() -> Vec<Check> {
    vec![
        Check {
            name: "read-monotone-stop-consistent",
            spec: "SPEC §3 (start/read/stop)",
            tolerance: Tolerance::Exact,
            workload: fp_workload,
            run: check_read_monotone,
        },
        Check {
            name: "accum-chunks-telescope",
            spec: "SPEC §3 (accum)",
            tolerance: Tolerance::Exact,
            workload: fp_workload,
            run: check_accum_chunks,
        },
        Check {
            name: "overflow-exactly-once",
            spec: "SPEC §3 (overflow)",
            tolerance: Tolerance::Exact,
            workload: fp_workload,
            run: check_overflow_exactly_once,
        },
        Check {
            name: "mpx-estimates-track-counts",
            spec: "SPEC §3 (multiplexing)",
            tolerance: Tolerance::Rel(0.25),
            workload: mpx_workload,
            run: check_mpx_estimates,
        },
        Check {
            name: "error-model-codes",
            spec: "SPEC §8 (error model)",
            tolerance: Tolerance::Exact,
            workload: fp_workload,
            run: check_error_model,
        },
        Check {
            name: "timers-monotone",
            spec: "SPEC §5 (timers)",
            tolerance: Tolerance::Exact,
            workload: fp_workload,
            run: check_timers_monotone,
        },
    ]
}

/// The fault-schedule prefixes the matrix crosses every substrate with.
/// Each is prepended to the substrate name (`<prefix><substrate>`); the
/// per-run seed flows into the plan as its default seed, so the same
/// prefix yields different failure phases per seed.
pub fn fault_schedules() -> Vec<&'static str> {
    vec![
        // Everything at once, derived from the seed.
        "fault[chaos]:",
        // Wrap-only: 32-bit counters preloaded near saturation.
        "fault[bits=32,preload=4294963296]:",
        // Transients-only: periodic read/start/stop failures in bursts.
        "fault[read=3,start=2,stop=2,burst=2]:",
    ]
}

// --- the harness -----------------------------------------------------------

/// Run one check on one named substrate: fresh session, workload loaded.
pub fn run_one(
    reg: &SubstrateRegistry,
    substrate: &str,
    seed: u64,
    check: &Check,
) -> Result<CheckResult, PapiError> {
    let mut papi = Papi::init_from_registry(reg, substrate, seed)?;
    papi.substrate_mut().load_program((check.workload)())?;
    Ok((check.run)(&mut papi))
}

fn values_match(tol: Tolerance, a: &[i64], b: &[i64]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    match tol {
        Tolerance::Exact => a == b,
        Tolerance::Rel(rel) => a.iter().zip(b).all(|(&x, &y)| {
            let diff = (x - y).abs() as f64;
            diff <= 2.0 + rel * (x.abs().max(y.abs()) as f64)
        }),
    }
}

/// Differentially compare a check's clean outcome against its outcome
/// under one fault schedule. `None` means conforming.
pub fn differential(
    check: &Check,
    substrate: &str,
    schedule: &str,
    clean: &CheckResult,
    faulted: &CheckResult,
) -> Option<Divergence> {
    let diverge = |detail: String| {
        Some(Divergence {
            check: check.name,
            substrate: substrate.to_string(),
            schedule: schedule.to_string(),
            detail,
        })
    };
    match (clean, faulted) {
        (Err(v), _) => diverge(format!("clean-run invariant violation: {v}")),
        (_, Err(v)) => diverge(format!("faulted-run invariant violation: {v}")),
        (Ok(CheckOutcome::Values(a)), Ok(CheckOutcome::Values(b))) => {
            if values_match(check.tolerance, a, b) {
                None
            } else {
                diverge(format!("counts diverged: clean {a:?} vs faulted {b:?}"))
            }
        }
        (Ok(CheckOutcome::ApiError(a)), Ok(CheckOutcome::ApiError(b))) => {
            if std::mem::discriminant(a) == std::mem::discriminant(b) {
                None
            } else {
                diverge(format!("error diverged: clean {a} vs faulted {b}"))
            }
        }
        (Ok(CheckOutcome::Skipped(_)), Ok(CheckOutcome::Skipped(_))) => None,
        (Ok(a), Ok(b)) => diverge(format!(
            "outcome kind diverged: clean {a:?} vs faulted {b:?}"
        )),
    }
}

/// Run the full matrix: every check × every canonical substrate × every
/// fault schedule, at each seed. Returns all divergences (empty =
/// conforming).
pub fn run_matrix(reg: &SubstrateRegistry, seeds: &[u64]) -> Vec<Divergence> {
    let mut out = Vec::new();
    let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    for check in checks() {
        for name in &names {
            for &seed in seeds {
                let clean = match run_one(reg, name, seed, &check) {
                    Ok(r) => r,
                    Err(e) => {
                        out.push(Divergence {
                            check: check.name,
                            substrate: name.clone(),
                            schedule: "clean".into(),
                            detail: format!("session init failed: {e}"),
                        });
                        continue;
                    }
                };
                for schedule in fault_schedules() {
                    let faulted_name = format!("{schedule}{name}");
                    let faulted = match run_one(reg, &faulted_name, seed, &check) {
                        Ok(r) => r,
                        Err(e) => {
                            out.push(Divergence {
                                check: check.name,
                                substrate: name.clone(),
                                schedule: schedule.to_string(),
                                detail: format!("faulted session init failed: {e}"),
                            });
                            continue;
                        }
                    };
                    if let Some(d) = differential(&check, name, schedule, &clean, &faulted) {
                        out.push(d);
                    }
                }
            }
        }
    }
    out
}

/// Run every check clean-only on one substrate, reporting invariant
/// violations (used to prove a broken substrate is caught by name).
pub fn run_clean_invariants(
    reg: &SubstrateRegistry,
    substrate: &str,
    seed: u64,
) -> Vec<Divergence> {
    let mut out = Vec::new();
    for check in checks() {
        match run_one(reg, substrate, seed, &check) {
            Ok(Err(v)) => out.push(Divergence {
                check: check.name,
                substrate: substrate.to_string(),
                schedule: "clean".into(),
                detail: v,
            }),
            Ok(Ok(_)) => {}
            Err(e) => out.push(Divergence {
                check: check.name,
                substrate: substrate.to_string(),
                schedule: "clean".into(),
                detail: format!("session init failed: {e}"),
            }),
        }
    }
    out
}

// --- the deliberately broken fixture ---------------------------------------

/// A nonconforming substrate: every second batch read glitches a huge
/// additive offset onto the values, so counts appear to leap forward and
/// then fall back — exactly the kind of silent corruption the differential
/// suite exists to catch.
pub struct BrokenSubstrate<S> {
    inner: S,
    reads: u64,
}

impl<S: Substrate> BrokenSubstrate<S> {
    pub fn new(inner: S) -> Self {
        BrokenSubstrate { inner, reads: 0 }
    }

    fn glitch(&self) -> u64 {
        // Offset on odd calls only: consecutive reads are non-monotone.
        if self.reads % 2 == 1 {
            1 << 40
        } else {
            0
        }
    }
}

impl<S: Substrate> Substrate for BrokenSubstrate<S> {
    fn hw_info(&self) -> papi_core::HwInfo {
        self.inner.hw_info()
    }
    fn num_counters(&self) -> usize {
        self.inner.num_counters()
    }
    fn native_events(&self) -> &[simcpu::NativeEventDesc] {
        self.inner.native_events()
    }
    fn groups(&self) -> &[simcpu::platform::GroupDef] {
        self.inner.groups()
    }
    fn load_program(&mut self, program: Program) -> papi_core::Result<()> {
        self.inner.load_program(program)
    }
    fn program(&mut self, assign: &[Option<(u32, simcpu::Domain)>]) -> papi_core::Result<()> {
        self.inner.program(assign)
    }
    fn start(&mut self) -> papi_core::Result<()> {
        self.inner.start()
    }
    fn stop(&mut self) -> papi_core::Result<()> {
        self.inner.stop()
    }
    fn reset(&mut self) -> papi_core::Result<()> {
        self.inner.reset()
    }
    fn read(&mut self, idx: usize) -> papi_core::Result<u64> {
        self.reads += 1;
        let g = self.glitch();
        Ok(self.inner.read(idx)? + g)
    }
    fn read_batch(&mut self, ctrs: &[usize], out: &mut Vec<u64>) -> papi_core::Result<()> {
        self.reads += 1;
        let g = self.glitch();
        let base = out.len();
        self.inner.read_batch(ctrs, out)?;
        for v in &mut out[base..] {
            *v += g;
        }
        Ok(())
    }
    fn set_overflow(&mut self, idx: usize, threshold: Option<u64>) -> papi_core::Result<()> {
        self.inner.set_overflow(idx, threshold)
    }
    fn configure_sampling(&mut self, cfg: Option<simcpu::SampleConfig>) -> papi_core::Result<()> {
        self.inner.configure_sampling(cfg)
    }
    fn drain_samples(&mut self) -> Vec<simcpu::SampleRecord> {
        self.inner.drain_samples()
    }
    fn set_timer(&mut self, period_cycles: Option<u64>) {
        self.inner.set_timer(period_cycles)
    }
    fn set_granularity(&mut self, g: simcpu::Granularity) {
        self.inner.set_granularity(g)
    }
    fn run(&mut self, budget_cycles: Option<u64>) -> simcpu::RunExit {
        self.inner.run(budget_cycles)
    }
    fn real_cycles(&self) -> u64 {
        self.inner.real_cycles()
    }
    fn real_ns(&self) -> u64 {
        self.inner.real_ns()
    }
    fn virt_ns(&self, thread: simcpu::ThreadId) -> papi_core::Result<u64> {
        self.inner.virt_ns(thread)
    }
    fn mem_info(&self, thread: simcpu::ThreadId) -> papi_core::Result<simcpu::MemInfo> {
        self.inner.mem_info(thread)
    }
}

/// Register the broken fixture under `"broken"` (wrapping `sim:generic`).
pub fn register_broken(reg: &mut SubstrateRegistry) {
    reg.register(
        "broken",
        "deliberately nonconforming fixture (glitching reads)",
        Box::new(|seed| {
            Ok(
                Box::new(BrokenSubstrate::new(papi_core::SimSubstrate::for_platform(
                    simcpu::platform::sim_generic(),
                    seed,
                ))) as BoxSubstrate,
            )
        }),
    );
}
