//! Length-prefixed wire protocol for ingest and queries.
//!
//! Every message on the socket is `u32le length` followed by `length`
//! payload bytes; the first payload byte is the opcode.  Ingest opcodes
//! (`< 16`) are fire-and-forget so a pusher never blocks on the daemon;
//! [`OP_FLUSH`] and the query opcodes (`>= 16`) are request/response and
//! double as ordering barriers (the server processes each connection's
//! messages in order).
//!
//! Decoding borrows from the receive buffer — [`Frame`] holds `&str` /
//! iterator views, never owned copies — and encoding reuses one
//! [`FrameBuf`], so a steady-state snapshot frame costs zero heap
//! allocations on both ends of the socket.

use std::fmt;

/// Bind a connection-local tenant id to a tenant name (registers it).
pub const OP_BIND_TENANT: u8 = 1;
/// Bind a connection-local series id to a series name under a tenant.
pub const OP_REG_SERIES: u8 = 2;
/// Counter-delta frame for one source at one virtual time.
pub const OP_SNAPSHOT: u8 = 3;
/// Histogram bucket-delta frame for one series.
pub const OP_HIST: u8 = 4;
/// Declare a source stream finished (gapless check happens here).
pub const OP_CLOSE_SOURCE: u8 = 5;
/// Barrier: server acknowledges once everything before it is applied.
pub const OP_FLUSH: u8 = 6;

/// Query: windowed values for one (tenant, series).
pub const OP_QUERY_SERIES: u8 = 16;
/// Query: lifetime and windowed totals for one (tenant, series).
pub const OP_QUERY_SUM: u8 = 17;
/// Query: latency quantiles for one (tenant, series).
pub const OP_QUERY_QUANTILES: u8 = 18;
/// Query: full Prometheus text exposition scrape.
pub const OP_SCRAPE: u8 = 19;
/// Query: daemon self-metrics as flat JSON.
pub const OP_STATS: u8 = 20;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: unknown tenant or series.
pub const STATUS_NOT_FOUND: u8 = 1;
/// Response status: malformed request.
pub const STATUS_BAD_REQUEST: u8 = 2;

/// A malformed wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub &'static str);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

/// Borrowed iterator over `(u16, u64)` pairs in a frame body.
#[derive(Debug, Clone, Copy)]
pub struct PairIter<'a> {
    buf: &'a [u8],
}

impl<'a> Iterator for PairIter<'a> {
    type Item = (u16, u64);

    #[inline]
    fn next(&mut self) -> Option<(u16, u64)> {
        if self.buf.len() < 10 {
            return None;
        }
        let k = u16::from_le_bytes([self.buf[0], self.buf[1]]);
        let mut v = [0u8; 8];
        v.copy_from_slice(&self.buf[2..10]);
        self.buf = &self.buf[10..];
        Some((k, u64::from_le_bytes(v)))
    }
}

/// One decoded message, borrowing from the receive buffer.
#[derive(Debug, Clone)]
pub enum Frame<'a> {
    /// [`OP_BIND_TENANT`]
    BindTenant {
        /// Connection-local tenant id being bound.
        tid: u16,
        /// Tenant name.
        name: &'a str,
    },
    /// [`OP_REG_SERIES`]
    RegSeries {
        /// Bound tenant id.
        tid: u16,
        /// Connection-local series id being bound.
        sid: u16,
        /// Series name.
        name: &'a str,
    },
    /// [`OP_SNAPSHOT`]
    Snapshot {
        /// Bound tenant id.
        tid: u16,
        /// Source stream id (unique per monitored session).
        source: u64,
        /// Gapless per-source sequence number (starts at 0).
        seq: u64,
        /// Virtual time of the frame (window assignment).
        cycles: u64,
        /// `(sid, delta)` pairs.
        deltas: PairIter<'a>,
    },
    /// [`OP_HIST`]
    Hist {
        /// Bound tenant id.
        tid: u16,
        /// Bound series id the histogram belongs to.
        sid: u16,
        /// Source stream id.
        source: u64,
        /// Gapless per-source sequence number (shared with snapshots).
        seq: u64,
        /// Virtual time of the frame.
        cycles: u64,
        /// `(bucket, count)` pairs.
        buckets: PairIter<'a>,
    },
    /// [`OP_CLOSE_SOURCE`]
    CloseSource {
        /// Bound tenant id.
        tid: u16,
        /// Source stream id.
        source: u64,
        /// Total unique frames the source claims to have sent.
        frames_sent: u64,
        /// Whether the source considers its stream complete.
        complete: bool,
    },
    /// [`OP_FLUSH`]
    Flush,
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&v, rest) = self.buf.split_first().ok_or(ProtoError("truncated u8"))?;
        self.buf = rest;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        if self.buf.len() < 2 {
            return Err(ProtoError("truncated u16"));
        }
        let v = u16::from_le_bytes([self.buf[0], self.buf[1]]);
        self.buf = &self.buf[2..];
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        if self.buf.len() < 8 {
            return Err(ProtoError("truncated u64"));
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[..8]);
        self.buf = &self.buf[8..];
        Ok(u64::from_le_bytes(b))
    }

    fn str(&mut self) -> Result<&'a str, ProtoError> {
        let len = self.u16()? as usize;
        if self.buf.len() < len {
            return Err(ProtoError("truncated string"));
        }
        let s = std::str::from_utf8(&self.buf[..len]).map_err(|_| ProtoError("invalid utf-8"))?;
        self.buf = &self.buf[len..];
        Ok(s)
    }

    fn pairs(&mut self) -> Result<PairIter<'a>, ProtoError> {
        let n = self.u16()? as usize;
        if self.buf.len() < n * 10 {
            return Err(ProtoError("truncated pair list"));
        }
        let it = PairIter {
            buf: &self.buf[..n * 10],
        };
        self.buf = &self.buf[n * 10..];
        Ok(it)
    }
}

/// Decode one ingest-side payload (the bytes after the length prefix).
pub fn decode(payload: &[u8]) -> Result<Frame<'_>, ProtoError> {
    let mut c = Cursor { buf: payload };
    match c.u8()? {
        OP_BIND_TENANT => Ok(Frame::BindTenant {
            tid: c.u16()?,
            name: c.str()?,
        }),
        OP_REG_SERIES => Ok(Frame::RegSeries {
            tid: c.u16()?,
            sid: c.u16()?,
            name: c.str()?,
        }),
        OP_SNAPSHOT => Ok(Frame::Snapshot {
            tid: c.u16()?,
            source: c.u64()?,
            seq: c.u64()?,
            cycles: c.u64()?,
            deltas: c.pairs()?,
        }),
        OP_HIST => Ok(Frame::Hist {
            tid: c.u16()?,
            sid: c.u16()?,
            source: c.u64()?,
            seq: c.u64()?,
            cycles: c.u64()?,
            buckets: c.pairs()?,
        }),
        OP_CLOSE_SOURCE => Ok(Frame::CloseSource {
            tid: c.u16()?,
            source: c.u64()?,
            frames_sent: c.u64()?,
            complete: c.u8()? != 0,
        }),
        OP_FLUSH => Ok(Frame::Flush),
        _ => Err(ProtoError("unknown opcode")),
    }
}

/// Reusable encoder: each method rebuilds the buffer in place (no
/// steady-state allocation once the buffer has grown to working size) and
/// returns the complete length-prefixed message ready to write.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty encoder.
    pub fn new() -> Self {
        FrameBuf { buf: Vec::new() }
    }

    fn begin(&mut self, op: u8) {
        self.buf.clear();
        self.buf.extend_from_slice(&[0, 0, 0, 0]);
        self.buf.push(op);
    }

    fn finish(&mut self) -> &[u8] {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        &self.buf
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_str(&mut self, s: &str) {
        self.put_u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Encode [`OP_BIND_TENANT`].
    pub fn bind_tenant(&mut self, tid: u16, name: &str) -> &[u8] {
        self.begin(OP_BIND_TENANT);
        self.put_u16(tid);
        self.put_str(name);
        self.finish()
    }

    /// Encode [`OP_REG_SERIES`].
    pub fn reg_series(&mut self, tid: u16, sid: u16, name: &str) -> &[u8] {
        self.begin(OP_REG_SERIES);
        self.put_u16(tid);
        self.put_u16(sid);
        self.put_str(name);
        self.finish()
    }

    /// Encode [`OP_SNAPSHOT`].
    pub fn snapshot(
        &mut self,
        tid: u16,
        source: u64,
        seq: u64,
        cycles: u64,
        deltas: &[(u16, u64)],
    ) -> &[u8] {
        self.begin(OP_SNAPSHOT);
        self.put_u16(tid);
        self.put_u64(source);
        self.put_u64(seq);
        self.put_u64(cycles);
        self.put_u16(deltas.len() as u16);
        for &(sid, d) in deltas {
            self.put_u16(sid);
            self.put_u64(d);
        }
        self.finish()
    }

    /// Encode [`OP_HIST`].
    pub fn hist(
        &mut self,
        tid: u16,
        sid: u16,
        source: u64,
        seq: u64,
        cycles: u64,
        buckets: &[(u16, u64)],
    ) -> &[u8] {
        self.begin(OP_HIST);
        self.put_u16(tid);
        self.put_u16(sid);
        self.put_u64(source);
        self.put_u64(seq);
        self.put_u64(cycles);
        self.put_u16(buckets.len() as u16);
        for &(b, n) in buckets {
            self.put_u16(b);
            self.put_u64(n);
        }
        self.finish()
    }

    /// Encode [`OP_CLOSE_SOURCE`].
    pub fn close_source(
        &mut self,
        tid: u16,
        source: u64,
        frames_sent: u64,
        complete: bool,
    ) -> &[u8] {
        self.begin(OP_CLOSE_SOURCE);
        self.put_u16(tid);
        self.put_u64(source);
        self.put_u64(frames_sent);
        self.buf.push(complete as u8);
        self.finish()
    }

    /// Encode [`OP_FLUSH`].
    pub fn flush(&mut self) -> &[u8] {
        self.begin(OP_FLUSH);
        self.finish()
    }

    /// Encode [`OP_QUERY_SERIES`] / [`OP_QUERY_SUM`] / [`OP_QUERY_QUANTILES`].
    pub fn query(&mut self, op: u8, tenant: &str, series: &str) -> &[u8] {
        self.begin(op);
        self.put_str(tenant);
        self.put_str(series);
        self.finish()
    }

    /// Encode a bare request ([`OP_SCRAPE`] / [`OP_STATS`]).
    pub fn bare(&mut self, op: u8) -> &[u8] {
        self.begin(op);
        self.finish()
    }
}

/// Decode a query request's `(tenant, series)` operands.
pub fn decode_query(payload: &[u8]) -> Result<(u8, &str, &str), ProtoError> {
    let mut c = Cursor { buf: payload };
    let op = c.u8()?;
    let tenant = c.str()?;
    let series = c.str()?;
    Ok((op, tenant, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_borrows() {
        let mut fb = FrameBuf::new();
        let msg = fb.snapshot(3, 77, 9, 12_345, &[(0, 10), (2, 500)]);
        assert_eq!(
            u32::from_le_bytes(msg[..4].try_into().unwrap()) as usize,
            msg.len() - 4
        );
        match decode(&msg[4..]).unwrap() {
            Frame::Snapshot {
                tid,
                source,
                seq,
                cycles,
                deltas,
            } => {
                assert_eq!((tid, source, seq, cycles), (3, 77, 9, 12_345));
                let pairs: Vec<_> = deltas.collect();
                assert_eq!(pairs, vec![(0, 10), (2, 500)]);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn all_ops_roundtrip() {
        let mut fb = FrameBuf::new();
        let msg = fb.bind_tenant(1, "web").to_vec();
        assert!(matches!(
            decode(&msg[4..]).unwrap(),
            Frame::BindTenant {
                tid: 1,
                name: "web"
            }
        ));
        let msg = fb.reg_series(1, 4, "papi.tot_ins").to_vec();
        assert!(matches!(
            decode(&msg[4..]).unwrap(),
            Frame::RegSeries {
                tid: 1,
                sid: 4,
                name: "papi.tot_ins"
            }
        ));
        let msg = fb.hist(1, 4, 9, 2, 100, &[(5, 3)]).to_vec();
        match decode(&msg[4..]).unwrap() {
            Frame::Hist { buckets, .. } => {
                assert_eq!(buckets.collect::<Vec<_>>(), vec![(5, 3)]);
            }
            other => panic!("wrong frame {other:?}"),
        }
        let msg = fb.close_source(1, 9, 10, true).to_vec();
        assert!(matches!(
            decode(&msg[4..]).unwrap(),
            Frame::CloseSource {
                tid: 1,
                source: 9,
                frames_sent: 10,
                complete: true
            }
        ));
        let msg = fb.flush().to_vec();
        assert!(matches!(decode(&msg[4..]).unwrap(), Frame::Flush));
        let msg = fb.query(OP_QUERY_SUM, "t", "s").to_vec();
        assert_eq!(decode_query(&msg[4..]).unwrap(), (OP_QUERY_SUM, "t", "s"));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut fb = FrameBuf::new();
        let msg = fb.snapshot(3, 77, 9, 12_345, &[(0, 10)]).to_vec();
        for cut in 5..msg.len() {
            assert!(decode(&msg[4..cut]).is_err(), "cut={cut}");
        }
        assert!(decode(&[]).is_err());
        assert!(decode(&[99]).is_err());
    }
}
