//! papi-aggd: a multi-tenant counter aggregation daemon.
//!
//! The paper's end-state for hardware counters is not one process reading
//! its own registers — it is a fleet: thousands of monitored sessions
//! streaming counter deltas into a shared service that answers "what is
//! tenant X's FP-op rate, and what does its read-latency tail look like?"
//! This crate is that service, built on the suite's own observability
//! primitives:
//!
//! * **Exactly-once ingestion** ([`tenant`]): every source stream carries
//!   gapless sequence numbers; an IPsec-style anti-replay window detects
//!   duplicates and reordering, so a retried frame is *never* applied
//!   twice and a late frame is applied exactly once.  Counter deltas
//!   commute, which is what makes out-of-order application sound.
//! * **Bounded state** ([`bucket`]): per-series time buckets live in a
//!   fixed ring of windows; lifetime totals are kept separately so window
//!   eviction never corrupts aggregate reconciliation.  Per-tenant frame
//!   quotas backpressure runaway sources.  Nothing is dropped silently:
//!   every shed frame or evicted window increments an `aggd.*` counter in
//!   the daemon's own [`papi_obs`] registry.
//! * **Histograms**: latency distributions travel as sparse
//!   `(bucket, count)` pairs and merge into per-series
//!   [`papi_obs::LogHistogram`]s, so p50/p95/p99 are served without the
//!   daemon ever seeing raw samples.
//! * **Serving surface** ([`server`], [`proto`]): a length-prefixed wire
//!   protocol over a local TCP socket carries both the ingest stream and
//!   queries; scrapes reuse the [`papi_obs::export::exposition`] writer so
//!   the output validates as Prometheus text exposition format.
//!
//! [`workload`] is the correctness harness: a seeded multi-tenant
//! generator whose aggregate totals must reconcile exactly against a
//! sequential replay, including under `fault[chaos]:` substrates.

pub mod aggregator;
pub mod bucket;
pub mod proto;
pub mod push;
pub mod server;
pub mod tenant;
pub mod workload;

pub use aggregator::{AggdConfig, AggdStats, Aggregator, ConnCtx, SeriesQuantiles, SeriesSum};
pub use proto::{Frame, FrameBuf, ProtoError};
pub use push::SnapshotPusher;
pub use server::{AggdClient, AggdServer};
pub use tenant::{IngestOutcome, Tenant};
pub use workload::{reconcile, run_workload, ReconcileReport, WorkloadCfg, WorkloadReport};

/// Extract `"key":<u64>` from a flat hand-rendered JSON object.
///
/// The vendored serde_json stub cannot parse offline, and every JSON
/// document this crate emits is flat `{"key":uint,...}`, so a scan is a
/// faithful round-trip reader for tests and CLI consumers.
pub fn json_get_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::json_get_u64;

    #[test]
    fn json_get_u64_reads_flat_documents() {
        let doc = r#"{"a":1,"b.c":42,"d":0}"#;
        assert_eq!(json_get_u64(doc, "a"), Some(1));
        assert_eq!(json_get_u64(doc, "b.c"), Some(42));
        assert_eq!(json_get_u64(doc, "d"), Some(0));
        assert_eq!(json_get_u64(doc, "missing"), None);
    }
}
