//! Socket transport: a local TCP listener in front of the [`Aggregator`],
//! and the matching client.
//!
//! Each connection gets its own OS thread and its own [`ConnCtx`] binding
//! table.  Messages are processed strictly in arrival order per
//! connection, which is what makes [`AggdClient::flush`] an ordering
//! barrier: once the flush acks, every frame written before it has been
//! applied.  Receive buffers are reused across messages, so the
//! steady-state per-frame server cost is one read and one aggregator
//! apply — no allocation.

use crate::aggregator::{Aggregator, ConnCtx};
use crate::proto::{self, FrameBuf};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running daemon: aggregator core + listener + connection threads.
pub struct AggdServer {
    agg: Arc<Aggregator>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl AggdServer {
    /// Bind and start serving.  Use `"127.0.0.1:0"` for an ephemeral port
    /// (read it back with [`AggdServer::local_addr`]).
    pub fn bind(addr: &str, agg: Aggregator) -> io::Result<AggdServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let agg = Arc::new(agg);
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let agg = Arc::clone(&agg);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let agg = Arc::clone(&agg);
                    let stop = Arc::clone(&stop);
                    let h = std::thread::spawn(move || serve_conn(stream, &agg, &stop));
                    conns.lock().unwrap().push(h);
                }
            })
        };
        Ok(AggdServer {
            agg,
            addr: local,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The aggregator behind the socket (for in-process inspection).
    pub fn aggregator(&self) -> &Arc<Aggregator> {
        &self.agg
    }

    /// Stop accepting, drain connection threads, and shut down.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for AggdServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

enum ReadStatus {
    /// Buffer filled completely.
    Done,
    /// Connection closed (or stop requested, or hard error): end the
    /// connection.
    Closed,
}

/// Fill `buf` completely, preserving partial progress across read
/// timeouts (timeouts exist only to poll the stop flag — a mid-message
/// timeout must never discard already-consumed bytes, or the stream
/// mis-frames).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> ReadStatus {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadStatus::Closed,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return ReadStatus::Closed;
                }
            }
            Err(_) => return ReadStatus::Closed,
        }
    }
    ReadStatus::Done
}

fn serve_conn(mut stream: TcpStream, agg: &Aggregator, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut ctx = ConnCtx::new();
    let mut payload: Vec<u8> = Vec::with_capacity(4096);
    let mut resp: Vec<u8> = Vec::with_capacity(4096);
    let mut header = [0u8; 4];
    loop {
        if let ReadStatus::Closed = read_full(&mut stream, &mut header, stop) {
            break;
        }
        let len = u32::from_le_bytes(header) as usize;
        payload.clear();
        payload.resize(len, 0);
        if let ReadStatus::Closed = read_full(&mut stream, &mut payload, stop) {
            break;
        }
        let op = payload.first().copied().unwrap_or(0);
        if op >= 16 {
            resp.clear();
            resp.extend_from_slice(&[0, 0, 0, 0]);
            agg.serve_query(&payload, &mut resp);
            let len = (resp.len() - 4) as u32;
            resp[..4].copy_from_slice(&len.to_le_bytes());
            if stream.write_all(&resp).is_err() {
                break;
            }
        } else {
            let _ = agg.ingest(&mut ctx, &payload);
            if op == proto::OP_FLUSH {
                resp.clear();
                resp.extend_from_slice(&1u32.to_le_bytes());
                resp.push(proto::STATUS_OK);
                if stream.write_all(&resp).is_err() {
                    break;
                }
            }
        }
    }
}

/// Client side of the wire protocol: encodes with a reusable [`FrameBuf`]
/// and reads length-prefixed responses.
pub struct AggdClient {
    stream: TcpStream,
    fb: FrameBuf,
    resp: Vec<u8>,
}

impl AggdClient {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<AggdClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(AggdClient {
            stream,
            fb: FrameBuf::new(),
            resp: Vec::new(),
        })
    }

    /// Bind a connection-local tenant id.
    pub fn bind_tenant(&mut self, tid: u16, name: &str) -> io::Result<()> {
        let msg = self.fb.bind_tenant(tid, name);
        self.stream.write_all(msg)
    }

    /// Bind a connection-local series id under a tenant.
    pub fn reg_series(&mut self, tid: u16, sid: u16, name: &str) -> io::Result<()> {
        let msg = self.fb.reg_series(tid, sid, name);
        self.stream.write_all(msg)
    }

    /// Send one counter-delta frame (fire-and-forget).
    pub fn snapshot(
        &mut self,
        tid: u16,
        source: u64,
        seq: u64,
        cycles: u64,
        deltas: &[(u16, u64)],
    ) -> io::Result<()> {
        let msg = self.fb.snapshot(tid, source, seq, cycles, deltas);
        self.stream.write_all(msg)
    }

    /// Send one pre-encoded message verbatim (duplication/replay testing).
    pub fn send_raw(&mut self, msg: &[u8]) -> io::Result<()> {
        self.stream.write_all(msg)
    }

    /// Encode a snapshot frame without sending it (for later
    /// [`AggdClient::send_raw`], e.g. to inject duplicates).
    pub fn encode_snapshot(
        &mut self,
        tid: u16,
        source: u64,
        seq: u64,
        cycles: u64,
        deltas: &[(u16, u64)],
    ) -> Vec<u8> {
        self.fb.snapshot(tid, source, seq, cycles, deltas).to_vec()
    }

    /// Send one histogram frame (fire-and-forget).
    pub fn hist(
        &mut self,
        tid: u16,
        sid: u16,
        source: u64,
        seq: u64,
        cycles: u64,
        buckets: &[(u16, u64)],
    ) -> io::Result<()> {
        let msg = self.fb.hist(tid, sid, source, seq, cycles, buckets);
        self.stream.write_all(msg)
    }

    /// Declare a source stream finished.
    pub fn close_source(
        &mut self,
        tid: u16,
        source: u64,
        frames_sent: u64,
        complete: bool,
    ) -> io::Result<()> {
        let msg = self.fb.close_source(tid, source, frames_sent, complete);
        self.stream.write_all(msg)
    }

    fn request(&mut self) -> io::Result<&[u8]> {
        let mut header = [0u8; 4];
        self.stream.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header) as usize;
        self.resp.clear();
        self.resp.resize(len, 0);
        self.stream.read_exact(&mut self.resp)?;
        Ok(&self.resp)
    }

    /// Barrier: returns once every frame written before it is applied.
    pub fn flush(&mut self) -> io::Result<()> {
        let msg = self.fb.flush().to_vec();
        self.stream.write_all(&msg)?;
        let resp = self.request()?;
        if resp.first() == Some(&proto::STATUS_OK) {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, "flush failed"))
        }
    }

    /// Lifetime/windowed totals plus live windows for one series.
    pub fn query_series(
        &mut self,
        tenant: &str,
        series: &str,
    ) -> io::Result<Option<crate::SeriesSum>> {
        let msg = self
            .fb
            .query(proto::OP_QUERY_SERIES, tenant, series)
            .to_vec();
        self.stream.write_all(&msg)?;
        let resp = self.request()?;
        match resp.first() {
            Some(&proto::STATUS_OK) => {
                let u64at =
                    |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
                let lifetime = u64at(resp, 1);
                let windowed = u64at(resp, 9);
                let n = u32::from_le_bytes(resp[17..21].try_into().unwrap()) as usize;
                let mut windows = Vec::with_capacity(n);
                for i in 0..n {
                    windows.push((u64at(resp, 21 + i * 16), u64at(resp, 29 + i * 16)));
                }
                Ok(Some(crate::SeriesSum {
                    lifetime,
                    windowed,
                    windows,
                }))
            }
            Some(&proto::STATUS_NOT_FOUND) => Ok(None),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "bad response")),
        }
    }

    /// Latency quantiles for one series.
    pub fn query_quantiles(
        &mut self,
        tenant: &str,
        series: &str,
    ) -> io::Result<Option<crate::SeriesQuantiles>> {
        let msg = self
            .fb
            .query(proto::OP_QUERY_QUANTILES, tenant, series)
            .to_vec();
        self.stream.write_all(&msg)?;
        let resp = self.request()?;
        match resp.first() {
            Some(&proto::STATUS_OK) => {
                let u64at =
                    |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
                Ok(Some(crate::SeriesQuantiles {
                    count: u64at(resp, 1),
                    sum: u64at(resp, 9),
                    max: u64at(resp, 17),
                    p50: u64at(resp, 25),
                    p95: u64at(resp, 33),
                    p99: u64at(resp, 41),
                }))
            }
            Some(&proto::STATUS_NOT_FOUND) => Ok(None),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "bad response")),
        }
    }

    fn text_request(&mut self, op: u8) -> io::Result<String> {
        let msg = self.fb.bare(op).to_vec();
        self.stream.write_all(&msg)?;
        let resp = self.request()?;
        if resp.first() != Some(&proto::STATUS_OK) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad response"));
        }
        String::from_utf8(resp[1..].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 response"))
    }

    /// Full Prometheus scrape.
    pub fn scrape(&mut self) -> io::Result<String> {
        self.text_request(proto::OP_SCRAPE)
    }

    /// Daemon self-metrics as flat JSON.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.text_request(proto::OP_STATS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::AggdConfig;
    use papi_obs::export::exposition;

    #[test]
    fn end_to_end_over_the_socket() {
        let server =
            AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).expect("bind");
        let addr = server.local_addr();
        let mut c = AggdClient::connect(addr).expect("connect");
        c.bind_tenant(0, "web").unwrap();
        c.reg_series(0, 0, "papi.tot_ins").unwrap();
        c.reg_series(0, 1, "papi.fp_ops").unwrap();
        for seq in 0..10u64 {
            c.snapshot(0, 1, seq, seq * 1_000, &[(0, 10), (1, 2)])
                .unwrap();
        }
        // A duplicate of the last frame: dropped exactly once.
        c.snapshot(0, 1, 9, 9_000, &[(0, 10), (1, 2)]).unwrap();
        c.hist(0, 0, 1, 10, 9_000, &[(8, 4)]).unwrap();
        c.close_source(0, 1, 11, true).unwrap();
        c.flush().unwrap();

        let sum = c.query_series("web", "papi.tot_ins").unwrap().unwrap();
        assert_eq!(sum.lifetime, 100);
        assert_eq!(sum.windowed, 100);
        assert!(!sum.windows.is_empty());
        let q = c.query_quantiles("web", "papi.tot_ins").unwrap().unwrap();
        assert_eq!(q.count, 4);
        assert!(c.query_series("web", "absent").unwrap().is_none());

        let text = c.scrape().unwrap();
        exposition::validate(&text).unwrap_or_else(|e| panic!("invalid scrape: {e}"));
        let stats = c.stats_json().unwrap();
        assert_eq!(crate::json_get_u64(&stats, "aggd.frames_in"), Some(12));
        assert_eq!(crate::json_get_u64(&stats, "aggd.dup_dropped"), Some(1));
        assert_eq!(crate::json_get_u64(&stats, "aggd.sources_closed"), Some(1));
        server.shutdown();
    }

    #[test]
    fn two_connections_share_tenant_state() {
        let server =
            AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).expect("bind");
        let addr = server.local_addr();
        let mut a = AggdClient::connect(addr).unwrap();
        let mut b = AggdClient::connect(addr).unwrap();
        // Different connection-local ids, same tenant/series names.
        a.bind_tenant(5, "t").unwrap();
        a.reg_series(5, 9, "s").unwrap();
        b.bind_tenant(0, "t").unwrap();
        b.reg_series(0, 0, "s").unwrap();
        a.snapshot(5, 100, 0, 10, &[(9, 7)]).unwrap();
        b.snapshot(0, 200, 0, 10, &[(0, 5)]).unwrap();
        a.flush().unwrap();
        b.flush().unwrap();
        let sum = a.query_series("t", "s").unwrap().unwrap();
        assert_eq!(sum.lifetime, 12);
        server.shutdown();
    }
}
