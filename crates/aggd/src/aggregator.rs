//! The daemon core: tenant table, connection dispatch, queries, scrape.
//!
//! Tenants live in an `RwLock<HashMap>` that the hot path never touches:
//! a connection binds tenant ids once ([`ConnCtx`]) and every subsequent
//! frame dispatches through the connection's `Arc<Tenant>` table — a
//! vector index, no map lookup, no allocation.  The tenant table itself is
//! bounded: registering tenant `max_tenants + 1` evicts the
//! least-recently-active tenant (journaled and counted, never silent).

use crate::proto::{self, Frame, ProtoError};
use crate::tenant::{IngestOutcome, Tenant};
use papi_obs::export::exposition::Exposition;
use papi_obs::{Counter, JournalEvent, Obs, ObsHandle};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Daemon shape: window geometry, tenant capacity, quotas.
#[derive(Debug, Clone)]
pub struct AggdConfig {
    /// Virtual-cycle width of one time bucket.
    pub window_cycles: u64,
    /// Live windows retained per series (the ring length).
    pub windows: usize,
    /// Tenant-table capacity; registering beyond it evicts the LRU tenant.
    pub max_tenants: usize,
    /// Frames admitted per tenant per window before backpressure sheds.
    pub frames_per_window_quota: u32,
    /// Journal capacity for tenant lifecycle events (0 disables).
    pub journal_capacity: usize,
}

impl Default for AggdConfig {
    fn default() -> Self {
        AggdConfig {
            window_cycles: 10_000,
            windows: 16,
            max_tenants: 64,
            frames_per_window_quota: u32::MAX,
            journal_capacity: 1024,
        }
    }
}

/// Lifetime + windowed totals for one series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSum {
    /// Sum of every applied delta ever (eviction-immune).
    pub lifetime: u64,
    /// Sum over the windows still live in the ring.
    pub windowed: u64,
    /// Live `(window_start_cycles, value)` pairs, oldest first.
    pub windows: Vec<(u64, u64)>,
}

/// Histogram serving statistics for one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesQuantiles {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values (bucket-bound approximated).
    pub sum: u64,
    /// Largest recorded value (bucket-bound approximated).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Daemon-wide accounting snapshot (from the obs registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggdStats {
    /// Frames received (every outcome).
    pub frames_in: u64,
    /// Duplicates / beyond-window frames dropped.
    pub dup_dropped: u64,
    /// Applied frames that arrived out of order.
    pub out_of_order: u64,
    /// Frames shed by per-tenant quotas.
    pub dropped_frames: u64,
    /// Non-empty windows overwritten by newer ones.
    pub evicted_windows: u64,
    /// Applied deltas older than the ring horizon.
    pub stale_windows: u64,
    /// Delta entries referencing unbound series ids.
    pub unknown_series: u64,
    /// Tenants ever registered.
    pub tenants_registered: u64,
    /// Tenants evicted from the table.
    pub tenants_evicted: u64,
    /// Sources closed gaplessly complete.
    pub sources_closed: u64,
    /// Sources closed incomplete (gap or explicit give-up).
    pub sources_incomplete: u64,
    /// Tenants currently resident.
    pub tenants_live: u64,
    /// Series currently resident across tenants.
    pub series_live: u64,
    /// Approximate resident bytes per live tenant.
    pub bytes_per_tenant: u64,
}

impl AggdStats {
    /// Frames applied exactly once.
    pub fn applied(&self) -> u64 {
        self.frames_in - self.dup_dropped - self.dropped_frames
    }

    /// The zero-silent-drop identity over the whole daemon.
    pub fn accounted(&self) -> bool {
        self.frames_in >= self.dup_dropped + self.dropped_frames
    }
}

/// Per-connection binding table: tenant ids and series ids are
/// connection-local, resolved once at bind time so the frame hot path is
/// an index into these vectors.
#[derive(Debug, Default)]
pub struct ConnCtx {
    tenants: Vec<Option<ConnTenant>>,
}

#[derive(Debug)]
struct ConnTenant {
    tenant: Arc<Tenant>,
    /// Connection-local sid -> tenant series index.
    sids: Vec<u16>,
}

impl ConnCtx {
    /// An empty binding table.
    pub fn new() -> Self {
        ConnCtx::default()
    }

    fn bind(&mut self, tid: u16, tenant: Arc<Tenant>) {
        let idx = tid as usize;
        if self.tenants.len() <= idx {
            self.tenants.resize_with(idx + 1, || None);
        }
        self.tenants[idx] = Some(ConnTenant {
            tenant,
            sids: Vec::new(),
        });
    }

    fn tenant(&self, tid: u16) -> Option<&ConnTenant> {
        self.tenants.get(tid as usize)?.as_ref()
    }
}

/// The aggregation daemon core (transport-independent; [`crate::server`]
/// puts it behind a socket).
pub struct Aggregator {
    cfg: AggdConfig,
    obs: ObsHandle,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Logical activity clock for LRU tenant eviction.
    activity: AtomicU64,
}

impl Aggregator {
    /// A fresh daemon with `cfg`'s shape.
    pub fn new(cfg: AggdConfig) -> Aggregator {
        let obs = Obs::new();
        if cfg.journal_capacity > 0 {
            obs.enable_journal(cfg.journal_capacity);
        }
        Aggregator {
            cfg,
            obs,
            tenants: RwLock::new(HashMap::new()),
            activity: AtomicU64::new(0),
        }
    }

    /// The daemon's own observability registry (`aggd.*` counters and the
    /// tenant-lifecycle journal live here).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// The configured shape.
    pub fn config(&self) -> &AggdConfig {
        &self.cfg
    }

    /// Register (or look up) a tenant.  At capacity, the
    /// least-recently-active tenant is evicted first — journaled and
    /// counted, never silent.
    pub fn bind_tenant(&self, name: &str) -> Arc<Tenant> {
        if let Some(t) = self.tenants.read().unwrap().get(name) {
            return Arc::clone(t);
        }
        let mut map = self.tenants.write().unwrap();
        if let Some(t) = map.get(name) {
            return Arc::clone(t);
        }
        if map.len() >= self.cfg.max_tenants {
            if let Some(lru) = map
                .values()
                .min_by_key(|t| t.last_active.load(Ordering::Relaxed))
                .map(|t| t.name().to_string())
            {
                map.remove(&lru);
                self.obs.inc(Counter::AggdTenantsEvicted);
                self.obs.record(self.activity.load(Ordering::Relaxed), || {
                    JournalEvent::TenantEvicted {
                        tenant: lru.clone(),
                        reason: "capacity",
                    }
                });
            }
        }
        let t = Arc::new(Tenant::new(
            name,
            self.cfg.window_cycles,
            self.cfg.windows,
            self.cfg.frames_per_window_quota,
        ));
        t.last_active.store(
            self.activity.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        map.insert(name.to_string(), Arc::clone(&t));
        self.obs.inc(Counter::AggdTenantsRegistered);
        self.obs.record(self.activity.load(Ordering::Relaxed), || {
            JournalEvent::TenantRegistered {
                tenant: name.to_string(),
            }
        });
        t
    }

    /// Explicitly evict a tenant; `true` if it was resident.
    pub fn evict_tenant(&self, name: &str) -> bool {
        let removed = self.tenants.write().unwrap().remove(name).is_some();
        if removed {
            self.obs.inc(Counter::AggdTenantsEvicted);
            self.obs.record(self.activity.load(Ordering::Relaxed), || {
                JournalEvent::TenantEvicted {
                    tenant: name.to_string(),
                    reason: "explicit",
                }
            });
        }
        removed
    }

    /// Look up a resident tenant.
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().unwrap().get(name).map(Arc::clone)
    }

    /// Number of resident tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.read().unwrap().len()
    }

    /// Apply one decoded ingest frame through a connection's bindings.
    ///
    /// Steady-state (`Snapshot`/`Hist` with everything bound) performs
    /// zero heap allocations.
    pub fn apply(&self, ctx: &mut ConnCtx, frame: &Frame<'_>) -> IngestOutcome {
        match frame {
            Frame::BindTenant { tid, name } => {
                let t = self.bind_tenant(name);
                ctx.bind(*tid, t);
                IngestOutcome::Applied
            }
            Frame::RegSeries { tid, sid, name } => {
                let Some(ct) = ctx.tenants.get_mut(*tid as usize).and_then(|t| t.as_mut()) else {
                    self.obs.inc(Counter::AggdFramesIn);
                    self.obs.inc(Counter::AggdUnknownSeries);
                    return IngestOutcome::UnknownTenant;
                };
                let idx = ct
                    .tenant
                    .register_series(name, self.cfg.window_cycles, self.cfg.windows);
                let slot = *sid as usize;
                if ct.sids.len() <= slot {
                    ct.sids.resize(slot + 1, u16::MAX);
                }
                ct.sids[slot] = idx;
                IngestOutcome::Applied
            }
            Frame::Snapshot {
                tid,
                source,
                seq,
                cycles,
                deltas,
            } => {
                let Some(ct) = ctx.tenant(*tid) else {
                    self.obs.inc(Counter::AggdFramesIn);
                    return IngestOutcome::UnknownTenant;
                };
                ct.tenant.last_active.store(
                    self.activity.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                ct.tenant
                    .ingest_snapshot(&self.obs, *source, *seq, *cycles, *deltas, &ct.sids)
            }
            Frame::Hist {
                tid,
                sid,
                source,
                seq,
                cycles,
                buckets,
            } => {
                let Some(ct) = ctx.tenant(*tid) else {
                    self.obs.inc(Counter::AggdFramesIn);
                    return IngestOutcome::UnknownTenant;
                };
                ct.tenant.last_active.store(
                    self.activity.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                ct.tenant
                    .ingest_hist(&self.obs, *source, *seq, *cycles, *sid, *buckets, &ct.sids)
            }
            Frame::CloseSource {
                tid,
                source,
                frames_sent,
                complete,
            } => {
                let Some(ct) = ctx.tenant(*tid) else {
                    self.obs.inc(Counter::AggdFramesIn);
                    return IngestOutcome::UnknownTenant;
                };
                ct.tenant
                    .close_source(&self.obs, *source, *frames_sent, *complete);
                IngestOutcome::Applied
            }
            Frame::Flush => IngestOutcome::Applied,
        }
    }

    /// Decode and apply one ingest payload (server receive path).
    pub fn ingest(&self, ctx: &mut ConnCtx, payload: &[u8]) -> Result<IngestOutcome, ProtoError> {
        let frame = proto::decode(payload)?;
        Ok(self.apply(ctx, &frame))
    }

    /// Lifetime/windowed totals for one series.
    pub fn query_sum(&self, tenant: &str, series: &str) -> Option<SeriesSum> {
        self.tenant(tenant)?
            .with_series(series, |ring, _| SeriesSum {
                lifetime: ring.lifetime_total(),
                windowed: ring.windowed_total(),
                windows: ring.windows(),
            })
    }

    /// Latency quantiles for one series.
    pub fn query_quantiles(&self, tenant: &str, series: &str) -> Option<SeriesQuantiles> {
        self.tenant(tenant)?.with_series(series, |_, hist| {
            let s = hist.snapshot();
            SeriesQuantiles {
                count: s.count,
                sum: s.sum,
                max: s.max,
                p50: s.quantile(0.50),
                p95: s.quantile(0.95),
                p99: s.quantile(0.99),
            }
        })
    }

    /// Daemon-wide accounting.
    pub fn stats(&self) -> AggdStats {
        let map = self.tenants.read().unwrap();
        let tenants_live = map.len() as u64;
        let series_live: u64 = map.values().map(|t| t.series_count() as u64).sum();
        let bytes: u64 = map.values().map(|t| t.approx_bytes() as u64).sum();
        AggdStats {
            frames_in: self.obs.get(Counter::AggdFramesIn),
            dup_dropped: self.obs.get(Counter::AggdDupDropped),
            out_of_order: self.obs.get(Counter::AggdOutOfOrder),
            dropped_frames: self.obs.get(Counter::AggdDroppedFrames),
            evicted_windows: self.obs.get(Counter::AggdEvictedWindows),
            stale_windows: self.obs.get(Counter::AggdStaleWindows),
            unknown_series: self.obs.get(Counter::AggdUnknownSeries),
            tenants_registered: self.obs.get(Counter::AggdTenantsRegistered),
            tenants_evicted: self.obs.get(Counter::AggdTenantsEvicted),
            sources_closed: self.obs.get(Counter::AggdSourcesClosed),
            sources_incomplete: self.obs.get(Counter::AggdSourcesIncomplete),
            tenants_live,
            series_live,
            bytes_per_tenant: bytes.checked_div(tenants_live).unwrap_or(0),
        }
    }

    /// Flat JSON of [`AggdStats`] (hand-rendered; see
    /// [`crate::json_get_u64`] for the matching reader).
    pub fn stats_json(&self) -> String {
        let s = self.stats();
        let mut out = String::from("{");
        let mut first = true;
        let mut put = |out: &mut String, k: &str, v: u64| {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{k}\":{v}");
        };
        put(&mut out, "aggd.frames_in", s.frames_in);
        put(&mut out, "aggd.applied", s.applied());
        put(&mut out, "aggd.dup_dropped", s.dup_dropped);
        put(&mut out, "aggd.out_of_order", s.out_of_order);
        put(&mut out, "aggd.dropped_frames", s.dropped_frames);
        put(&mut out, "aggd.evicted_windows", s.evicted_windows);
        put(&mut out, "aggd.stale_windows", s.stale_windows);
        put(&mut out, "aggd.unknown_series", s.unknown_series);
        put(&mut out, "aggd.tenants_registered", s.tenants_registered);
        put(&mut out, "aggd.tenants_evicted", s.tenants_evicted);
        put(&mut out, "aggd.sources_closed", s.sources_closed);
        put(&mut out, "aggd.sources_incomplete", s.sources_incomplete);
        put(&mut out, "aggd.tenants_live", s.tenants_live);
        put(&mut out, "aggd.series_live", s.series_live);
        put(&mut out, "aggd.bytes_per_tenant", s.bytes_per_tenant);
        out.push('}');
        out
    }

    /// Full Prometheus text-exposition scrape: per-series totals, live
    /// window sums, latency summaries, and the daemon's own accounting.
    /// The output validates under
    /// [`papi_obs::export::exposition::validate`].
    pub fn scrape(&self) -> String {
        struct Row {
            tenant: String,
            series: String,
            lifetime: u64,
            windowed: u64,
            q: Option<SeriesQuantiles>,
        }
        let mut rows: Vec<Row> = Vec::new();
        {
            let map = self.tenants.read().unwrap();
            let mut names: Vec<&String> = map.keys().collect();
            names.sort();
            for name in names {
                let t = &map[name];
                t.visit_series(|series, ring, hist| {
                    let s = hist.snapshot();
                    rows.push(Row {
                        tenant: name.clone(),
                        series: series.to_string(),
                        lifetime: ring.lifetime_total(),
                        windowed: ring.windowed_total(),
                        q: if s.count > 0 {
                            Some(SeriesQuantiles {
                                count: s.count,
                                sum: s.sum,
                                max: s.max,
                                p50: s.quantile(0.50),
                                p95: s.quantile(0.95),
                                p99: s.quantile(0.99),
                            })
                        } else {
                            None
                        },
                    });
                });
            }
        }
        let mut e = Exposition::new();
        e.family(
            "papi_aggd_series_total",
            "Lifetime sum of applied counter deltas per series",
            "counter",
        );
        for r in &rows {
            e.sample(
                "papi_aggd_series_total",
                &[("tenant", &r.tenant), ("series", &r.series)],
                r.lifetime,
            );
        }
        e.family(
            "papi_aggd_series_window",
            "Sum over the live time windows per series",
            "gauge",
        );
        for r in &rows {
            e.sample(
                "papi_aggd_series_window",
                &[("tenant", &r.tenant), ("series", &r.series)],
                r.windowed,
            );
        }
        e.family(
            "papi_aggd_latency",
            "Merged latency distribution per series (bucket upper bounds)",
            "summary",
        );
        for r in &rows {
            let Some(q) = r.q else { continue };
            for (label, v) in [("0.5", q.p50), ("0.95", q.p95), ("0.99", q.p99)] {
                e.sample(
                    "papi_aggd_latency",
                    &[
                        ("tenant", &r.tenant),
                        ("series", &r.series),
                        ("quantile", label),
                    ],
                    v,
                );
            }
            e.sample(
                "papi_aggd_latency_sum",
                &[("tenant", &r.tenant), ("series", &r.series)],
                q.sum,
            );
            e.sample(
                "papi_aggd_latency_count",
                &[("tenant", &r.tenant), ("series", &r.series)],
                q.count,
            );
        }
        let s = self.stats();
        e.family(
            "papi_aggd_self",
            "Aggregation daemon self-accounting",
            "counter",
        );
        for (name, v) in [
            ("frames_in", s.frames_in),
            ("dup_dropped", s.dup_dropped),
            ("out_of_order", s.out_of_order),
            ("dropped_frames", s.dropped_frames),
            ("evicted_windows", s.evicted_windows),
            ("stale_windows", s.stale_windows),
            ("unknown_series", s.unknown_series),
            ("tenants_registered", s.tenants_registered),
            ("tenants_evicted", s.tenants_evicted),
            ("sources_closed", s.sources_closed),
            ("sources_incomplete", s.sources_incomplete),
        ] {
            e.sample("papi_aggd_self", &[("counter", name)], v);
        }
        e.family("papi_aggd_tenants", "Resident tenants", "gauge");
        e.sample("papi_aggd_tenants", &[], s.tenants_live);
        e.finish()
    }

    /// Serve one query payload; the response (status byte + body) is
    /// appended to `out`.
    pub fn serve_query(&self, payload: &[u8], out: &mut Vec<u8>) {
        let Some(&op) = payload.first() else {
            out.push(proto::STATUS_BAD_REQUEST);
            return;
        };
        match op {
            proto::OP_QUERY_SERIES | proto::OP_QUERY_SUM => {
                let Ok((_, tenant, series)) = proto::decode_query(payload) else {
                    out.push(proto::STATUS_BAD_REQUEST);
                    return;
                };
                match self.query_sum(tenant, series) {
                    None => out.push(proto::STATUS_NOT_FOUND),
                    Some(sum) => {
                        out.push(proto::STATUS_OK);
                        out.extend_from_slice(&sum.lifetime.to_le_bytes());
                        out.extend_from_slice(&sum.windowed.to_le_bytes());
                        out.extend_from_slice(&(sum.windows.len() as u32).to_le_bytes());
                        if op == proto::OP_QUERY_SERIES {
                            for (w, v) in &sum.windows {
                                out.extend_from_slice(&w.to_le_bytes());
                                out.extend_from_slice(&v.to_le_bytes());
                            }
                        }
                    }
                }
            }
            proto::OP_QUERY_QUANTILES => {
                let Ok((_, tenant, series)) = proto::decode_query(payload) else {
                    out.push(proto::STATUS_BAD_REQUEST);
                    return;
                };
                match self.query_quantiles(tenant, series) {
                    None => out.push(proto::STATUS_NOT_FOUND),
                    Some(q) => {
                        out.push(proto::STATUS_OK);
                        for v in [q.count, q.sum, q.max, q.p50, q.p95, q.p99] {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
            }
            proto::OP_SCRAPE => {
                out.push(proto::STATUS_OK);
                out.extend_from_slice(self.scrape().as_bytes());
            }
            proto::OP_STATS => {
                out.push(proto::STATUS_OK);
                out.extend_from_slice(self.stats_json().as_bytes());
            }
            _ => out.push(proto::STATUS_BAD_REQUEST),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FrameBuf;

    fn ingest_msg(agg: &Aggregator, ctx: &mut ConnCtx, msg: &[u8]) -> IngestOutcome {
        agg.ingest(ctx, &msg[4..]).unwrap()
    }

    #[test]
    fn bind_register_ingest_query() {
        let agg = Aggregator::new(AggdConfig::default());
        let mut ctx = ConnCtx::new();
        let mut fb = FrameBuf::new();
        let msg = fb.bind_tenant(0, "web").to_vec();
        ingest_msg(&agg, &mut ctx, &msg);
        let msg = fb.reg_series(0, 0, "papi.tot_ins").to_vec();
        ingest_msg(&agg, &mut ctx, &msg);
        let msg = fb.snapshot(0, 1, 0, 5_000, &[(0, 123)]).to_vec();
        assert_eq!(ingest_msg(&agg, &mut ctx, &msg), IngestOutcome::Applied);
        let sum = agg.query_sum("web", "papi.tot_ins").unwrap();
        assert_eq!(sum.lifetime, 123);
        assert_eq!(sum.windows, vec![(0, 123)]);
        assert!(agg.query_sum("web", "nope").is_none());
        assert!(agg.query_sum("nope", "papi.tot_ins").is_none());
    }

    #[test]
    fn tenant_capacity_evicts_lru_and_journals() {
        let cfg = AggdConfig {
            max_tenants: 2,
            ..AggdConfig::default()
        };
        let agg = Aggregator::new(cfg);
        agg.bind_tenant("a");
        agg.bind_tenant("b");
        // Touch "a" so "b" is LRU.
        let mut ctx = ConnCtx::new();
        let mut fb = FrameBuf::new();
        let msg = fb.bind_tenant(0, "a").to_vec();
        ingest_msg(&agg, &mut ctx, &msg);
        let msg = fb.reg_series(0, 0, "s").to_vec();
        ingest_msg(&agg, &mut ctx, &msg);
        let msg = fb.snapshot(0, 1, 0, 10, &[(0, 1)]).to_vec();
        ingest_msg(&agg, &mut ctx, &msg);
        agg.bind_tenant("c");
        assert_eq!(agg.tenant_count(), 2);
        assert!(agg.tenant("a").is_some());
        assert!(agg.tenant("b").is_none(), "LRU tenant b evicted");
        assert!(agg.tenant("c").is_some());
        let stats = agg.stats();
        assert_eq!(stats.tenants_registered, 3);
        assert_eq!(stats.tenants_evicted, 1);
        let kinds: Vec<&str> = agg
            .obs()
            .journal_records()
            .iter()
            .map(|r| r.event.kind())
            .collect();
        assert!(kinds.contains(&"obs.tenant_registered"));
        assert!(kinds.contains(&"obs.tenant_evicted"));
    }

    #[test]
    fn scrape_is_valid_exposition() {
        let agg = Aggregator::new(AggdConfig::default());
        let mut ctx = ConnCtx::new();
        let mut fb = FrameBuf::new();
        for m in [
            fb.bind_tenant(0, "web \"prod\"\n").to_vec(),
            fb.reg_series(0, 0, "papi.tot_ins").to_vec(),
            fb.snapshot(0, 1, 0, 100, &[(0, 9)]).to_vec(),
            fb.hist(0, 0, 1, 1, 100, &[(4, 2), (9, 1)]).to_vec(),
        ] {
            ingest_msg(&agg, &mut ctx, &m);
        }
        let text = agg.scrape();
        papi_obs::export::exposition::validate(&text)
            .unwrap_or_else(|e| panic!("invalid scrape: {e}\n{text}"));
        assert!(text.contains("papi_aggd_series_total"));
        assert!(text.contains(r#"tenant="web \"prod\"\n""#));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("papi_aggd_self{counter=\"frames_in\"} 2"));
    }

    #[test]
    fn stats_json_roundtrips_through_reader() {
        let agg = Aggregator::new(AggdConfig::default());
        let mut ctx = ConnCtx::new();
        let mut fb = FrameBuf::new();
        for m in [
            fb.bind_tenant(0, "t").to_vec(),
            fb.reg_series(0, 0, "s").to_vec(),
            fb.snapshot(0, 1, 0, 10, &[(0, 1)]).to_vec(),
            fb.snapshot(0, 1, 0, 10, &[(0, 1)]).to_vec(),
        ] {
            ingest_msg(&agg, &mut ctx, &m);
        }
        let doc = agg.stats_json();
        assert_eq!(crate::json_get_u64(&doc, "aggd.frames_in"), Some(2));
        assert_eq!(crate::json_get_u64(&doc, "aggd.dup_dropped"), Some(1));
        assert_eq!(crate::json_get_u64(&doc, "aggd.tenants_live"), Some(1));
        assert!(crate::json_get_u64(&doc, "aggd.bytes_per_tenant").unwrap() > 0);
    }

    #[test]
    fn unknown_tenant_is_counted_not_panicked() {
        let agg = Aggregator::new(AggdConfig::default());
        let mut ctx = ConnCtx::new();
        let mut fb = FrameBuf::new();
        let msg = fb.snapshot(9, 1, 0, 10, &[(0, 1)]).to_vec();
        assert_eq!(
            ingest_msg(&agg, &mut ctx, &msg),
            IngestOutcome::UnknownTenant
        );
        assert_eq!(agg.stats().frames_in, 1);
    }
}
