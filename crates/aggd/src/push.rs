//! Live session → daemon snapshot streaming (`papirun --push-aggd`).
//!
//! [`SnapshotPusher`] turns a session's [`papi_obs`] state into wire
//! frames: every counter becomes a series named `subsystem.counter`, every
//! latency histogram a series carrying sparse bucket deltas.  The pusher
//! is *incremental* — each [`SnapshotPusher::push`] sends only what changed
//! since the previous push, so a long-running session streams bounded
//! deltas, and the daemon's windowed buckets reflect when the activity
//! actually happened rather than when the session ended.
//!
//! Sequence numbers are gapless per source, so daemon-side anti-replay
//! dedups retried pushes and the close-time accounting can certify the
//! stream complete.

use crate::server::AggdClient;
use papi_obs::histogram::HistSnapshot;
use papi_obs::{Hist, LogHistogram, Obs, COUNTERS, HISTS};
use std::io;
use std::net::ToSocketAddrs;

/// Streams incremental obs deltas from one session to an aggregation
/// daemon over a socket.
pub struct SnapshotPusher {
    client: AggdClient,
    tid: u16,
    source: u64,
    seq: u64,
    prev: Vec<u64>,
    prev_hists: Vec<HistSnapshot>,
    scratch: Vec<(u16, u64)>,
    closed: bool,
}

impl SnapshotPusher {
    /// Connect to the daemon and register this session's series: one per
    /// obs counter (named `subsystem.counter`) plus one per latency
    /// histogram.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        source: u64,
    ) -> io::Result<SnapshotPusher> {
        let mut client = AggdClient::connect(addr)?;
        let tid = 0u16;
        client.bind_tenant(tid, tenant)?;
        for (i, c) in COUNTERS.iter().enumerate() {
            let name = format!("{}.{}", c.subsystem(), c.name());
            client.reg_series(tid, i as u16, &name)?;
        }
        for (j, h) in HISTS.iter().enumerate() {
            client.reg_series(tid, Self::hist_sid(j), h.name())?;
        }
        Ok(SnapshotPusher {
            client,
            tid,
            source,
            seq: 0,
            prev: vec![0; COUNTERS.len()],
            prev_hists: HISTS
                .iter()
                .map(|_| LogHistogram::new().snapshot())
                .collect(),
            scratch: Vec::with_capacity(COUNTERS.len()),
            closed: false,
        })
    }

    fn hist_sid(slot: usize) -> u16 {
        (COUNTERS.len() + slot) as u16
    }

    /// The series name a histogram slot is registered under.
    pub fn hist_series_name(h: Hist) -> &'static str {
        h.name()
    }

    /// Frames sent so far (the close-time `frames_sent`).
    pub fn frames_sent(&self) -> u64 {
        self.seq
    }

    /// Push everything that changed since the last push, stamped at
    /// virtual time `cycles`.  Returns the number of frames sent (0 when
    /// the session was idle).
    pub fn push(&mut self, obs: &Obs, cycles: u64) -> io::Result<u64> {
        let mut sent = 0u64;
        self.scratch.clear();
        for (i, &c) in COUNTERS.iter().enumerate() {
            let cur = obs.get(c);
            let delta = cur.saturating_sub(self.prev[i]);
            if delta > 0 {
                self.scratch.push((i as u16, delta));
                self.prev[i] = cur;
            }
        }
        if !self.scratch.is_empty() {
            // scratch is moved out to appease the borrow checker (snapshot
            // borrows &mut self via the client), then restored.
            let pairs = std::mem::take(&mut self.scratch);
            let r = self
                .client
                .snapshot(self.tid, self.source, self.seq, cycles, &pairs);
            self.scratch = pairs;
            r?;
            self.seq += 1;
            sent += 1;
        }
        for (j, &h) in HISTS.iter().enumerate() {
            let cur = obs.hist(h).snapshot();
            let delta = cur.delta(&self.prev_hists[j]);
            let pairs = delta.nonzero_buckets();
            if !pairs.is_empty() {
                self.client.hist(
                    self.tid,
                    Self::hist_sid(j),
                    self.source,
                    self.seq,
                    cycles,
                    &pairs,
                )?;
                self.prev_hists[j] = cur;
                self.seq += 1;
                sent += 1;
            }
        }
        Ok(sent)
    }

    /// Close the stream: the daemon checks the sequence numbers are
    /// gapless and records the source complete (or, with
    /// `complete = false`, explicitly incomplete — a session that gave
    /// up).  Idempotent.
    pub fn finish(&mut self, complete: bool) -> io::Result<()> {
        if self.closed {
            return Ok(());
        }
        self.closed = true;
        self.client
            .close_source(self.tid, self.source, self.seq, complete)?;
        self.client.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{AggdConfig, Aggregator};
    use crate::server::AggdServer;
    use papi_obs::Counter;

    #[test]
    fn pusher_streams_counter_and_hist_deltas() {
        let server =
            AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).unwrap();
        let obs = Obs::new();
        let mut p = SnapshotPusher::connect(server.local_addr(), "push-test", 7).unwrap();

        obs.add(Counter::Reads, 5);
        obs.observe_cycles(Counter::CyclesInRead, 120);
        assert!(p.push(&obs, 1_000).unwrap() >= 1);
        // Idle push sends nothing and burns no sequence numbers.
        assert_eq!(p.push(&obs, 2_000).unwrap(), 0);
        obs.add(Counter::Reads, 3);
        assert_eq!(p.push(&obs, 3_000).unwrap(), 1);
        p.finish(true).unwrap();

        let mut c = AggdClient::connect(server.local_addr()).unwrap();
        let sum = c
            .query_series("push-test", "eventset.reads")
            .unwrap()
            .expect("series exists");
        assert_eq!(sum.lifetime, 8, "two incremental deltas, not cumulative");
        let q = c
            .query_quantiles("push-test", Hist::ReadCycles.name())
            .unwrap()
            .expect("hist series exists");
        assert_eq!(q.count, 1);
        let doc = c.stats_json().unwrap();
        assert_eq!(crate::json_get_u64(&doc, "aggd.sources_closed"), Some(1));
        server.shutdown();
    }
}
