//! Fixed-ring time-series buckets with eviction-immune lifetime totals.
//!
//! Each series owns a ring of `windows` fixed-width time windows.  Virtual
//! time `cycles` maps to window index `cycles / window_cycles`, which maps
//! to ring slot `window % windows`.  The ring never grows: when a newer
//! window claims a slot still holding an older non-empty window, the old
//! window is *evicted* (counted, never silent); a frame older than the
//! whole ring is *stale* and contributes to the lifetime total only.
//!
//! The lifetime total is updated on every applied delta regardless of
//! window outcome, so aggregate reconciliation ("daemon total == replay
//! total") is immune to eviction and staleness — those only limit how much
//! *windowed* history a query can see, which is exactly the bounded-memory
//! contract.

/// What happened to a delta applied at some virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOutcome {
    /// Landed in a live window (possibly creating it in an empty slot).
    Applied,
    /// Landed in a new window after evicting an older non-empty one.
    Evicted,
    /// Older than the ring horizon; lifetime total only.
    Stale,
}

#[derive(Debug, Clone, Copy, Default)]
struct WindowSlot {
    /// Window index this slot currently holds.
    window: u64,
    /// Accumulated value within the window.
    value: u64,
    /// Whether the slot holds a live window at all.
    occupied: bool,
}

/// One series' windowed history plus its lifetime total.
#[derive(Debug)]
pub struct SeriesRing {
    window_cycles: u64,
    slots: Vec<WindowSlot>,
    lifetime: u64,
    /// Highest window index ever seen (the staleness horizon).
    latest: u64,
    any: bool,
}

impl SeriesRing {
    /// A ring of `windows` windows, each `window_cycles` wide.
    pub fn new(window_cycles: u64, windows: usize) -> Self {
        SeriesRing {
            window_cycles: window_cycles.max(1),
            slots: vec![WindowSlot::default(); windows.max(1)],
            lifetime: 0,
            latest: 0,
            any: false,
        }
    }

    /// Window index for a virtual time.
    #[inline]
    pub fn window_of(&self, cycles: u64) -> u64 {
        cycles / self.window_cycles
    }

    /// Apply a counter delta observed at `cycles`.  Never allocates.
    #[inline]
    pub fn apply(&mut self, cycles: u64, delta: u64) -> WindowOutcome {
        self.lifetime = self.lifetime.wrapping_add(delta);
        let w = self.window_of(cycles);
        if self.any && w + (self.slots.len() as u64) <= self.latest {
            return WindowOutcome::Stale;
        }
        if !self.any || w > self.latest {
            self.latest = w;
            self.any = true;
        }
        let n = self.slots.len() as u64;
        let slot = &mut self.slots[(w % n) as usize];
        if slot.occupied && slot.window == w {
            slot.value = slot.value.wrapping_add(delta);
            WindowOutcome::Applied
        } else {
            let evicted = slot.occupied && slot.value != 0;
            slot.window = w;
            slot.value = delta;
            slot.occupied = true;
            if evicted {
                WindowOutcome::Evicted
            } else {
                WindowOutcome::Applied
            }
        }
    }

    /// Lifetime total of every applied delta (eviction-immune).
    pub fn lifetime_total(&self) -> u64 {
        self.lifetime
    }

    /// Sum over the live windows still in the ring.
    pub fn windowed_total(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.occupied)
            .map(|s| s.value)
            .sum()
    }

    /// Live `(window_start_cycles, value)` pairs, oldest first.
    pub fn windows(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .slots
            .iter()
            .filter(|s| s.occupied)
            .map(|s| (s.window * self.window_cycles, s.value))
            .collect();
        v.sort_unstable();
        v
    }

    /// Approximate heap + inline footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.slots.len() * std::mem::size_of::<WindowSlot>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate_within_a_window() {
        let mut r = SeriesRing::new(100, 4);
        assert_eq!(r.apply(10, 5), WindowOutcome::Applied);
        assert_eq!(r.apply(90, 7), WindowOutcome::Applied);
        assert_eq!(r.apply(150, 1), WindowOutcome::Applied);
        assert_eq!(r.lifetime_total(), 13);
        assert_eq!(r.windowed_total(), 13);
        assert_eq!(r.windows(), vec![(0, 12), (100, 1)]);
    }

    #[test]
    fn old_windows_are_evicted_not_grown() {
        let mut r = SeriesRing::new(100, 2);
        r.apply(0, 1); // window 0
        r.apply(100, 2); // window 1
                         // Window 2 reuses slot 0 and evicts window 0.
        assert_eq!(r.apply(200, 4), WindowOutcome::Evicted);
        assert_eq!(r.windows(), vec![(100, 2), (200, 4)]);
        // Lifetime keeps the evicted value.
        assert_eq!(r.lifetime_total(), 7);
        assert_eq!(r.windowed_total(), 6);
    }

    #[test]
    fn frames_older_than_the_ring_are_stale_but_counted() {
        let mut r = SeriesRing::new(100, 2);
        r.apply(500, 10); // window 5
        assert_eq!(r.apply(0, 3), WindowOutcome::Stale);
        assert_eq!(r.lifetime_total(), 13);
        assert_eq!(r.windowed_total(), 10);
        // A window inside the horizon (window 4) still applies.
        assert_eq!(r.apply(400, 1), WindowOutcome::Applied);
        assert_eq!(r.windows(), vec![(400, 1), (500, 10)]);
    }

    #[test]
    fn reordered_deltas_commute() {
        let mut a = SeriesRing::new(100, 8);
        let mut b = SeriesRing::new(100, 8);
        let frames = [(10u64, 1u64), (250, 2), (120, 4), (30, 8), (700, 16)];
        for &(c, d) in &frames {
            a.apply(c, d);
        }
        for &(c, d) in frames.iter().rev() {
            b.apply(c, d);
        }
        assert_eq!(a.lifetime_total(), b.lifetime_total());
        assert_eq!(a.windows(), b.windows());
    }
}
