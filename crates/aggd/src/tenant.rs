//! Per-tenant aggregation state: series rings, histograms, sources, and
//! the exactly-once anti-replay window.
//!
//! Each source (one monitored session) stamps its frames with a gapless
//! sequence number starting at 0.  The daemon keeps, per (tenant, source),
//! the highest sequence seen plus a 64-bit bitmap of the window below it —
//! the IPsec anti-replay structure.  A duplicate (bit already set, or
//! older than the window) is dropped and counted; a late-but-new frame
//! inside the window is applied and counted as out-of-order.  Counter
//! deltas commute, so out-of-order application is exact, and "applied
//! count == claimed frame count" at close time proves the stream arrived
//! gaplessly exactly once.

use crate::bucket::{SeriesRing, WindowOutcome};
use papi_obs::histogram::NUM_BUCKETS;
use papi_obs::{Counter, LogHistogram, Obs};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

/// What ingestion did with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Applied in order.
    Applied,
    /// Applied, but arrived behind a higher sequence number.
    OutOfOrder,
    /// Dropped: already applied (retry/duplicate) or beyond the replay
    /// window where dup-detection is no longer possible.
    DupDropped,
    /// Dropped: per-tenant frame quota for the window was exhausted.
    QuotaDropped,
    /// Dropped: the tenant id was not bound on this connection.
    UnknownTenant,
}

/// Anti-replay window for one source stream.
#[derive(Debug, Default)]
struct SourceState {
    /// Highest sequence number applied (valid when `any`).
    top: u64,
    /// Bitmap of `top - i` for `i in 0..64`; bit 0 is `top` itself.
    bitmap: u64,
    /// Whether any frame was applied yet.
    any: bool,
    /// Frames applied exactly once from this source.
    applied: u64,
    /// Frames admitted (seq consumed) but shed by quota.
    shed: u64,
    /// Whether the source declared itself closed.
    closed: bool,
}

impl SourceState {
    /// Admit `seq` exactly once.  Returns `None` for a duplicate.
    fn admit(&mut self, seq: u64) -> Option<IngestOutcome> {
        if !self.any {
            self.any = true;
            self.top = seq;
            self.bitmap = 1;
            self.applied += 1;
            return Some(IngestOutcome::Applied);
        }
        if seq > self.top {
            let ahead = seq - self.top;
            self.bitmap = if ahead >= 64 { 0 } else { self.bitmap << ahead };
            self.bitmap |= 1;
            self.top = seq;
            self.applied += 1;
            return Some(IngestOutcome::Applied);
        }
        let behind = self.top - seq;
        if behind >= 64 {
            // Beyond the replay window: dup-detection is impossible, so
            // the frame is shed (counted, never silently double-applied).
            return None;
        }
        let bit = 1u64 << behind;
        if self.bitmap & bit != 0 {
            return None;
        }
        self.bitmap |= bit;
        self.applied += 1;
        Some(IngestOutcome::OutOfOrder)
    }
}

/// One named series: windowed counters plus a latency histogram.
#[derive(Debug)]
struct Series {
    name: String,
    ring: SeriesRing,
    hist: LogHistogram,
}

/// Per-window frame-quota tracker (a small ring parallel to the series
/// rings, whole-frame granularity).
#[derive(Debug)]
struct QuotaRing {
    window_cycles: u64,
    slots: Vec<(u64, u32)>,
}

impl QuotaRing {
    fn new(window_cycles: u64, windows: usize) -> Self {
        QuotaRing {
            window_cycles: window_cycles.max(1),
            slots: vec![(u64::MAX, 0); windows.max(1)],
        }
    }

    /// Count one frame against `cycles`'s window; `false` when the quota
    /// is exhausted.
    fn admit(&mut self, cycles: u64, quota: u32) -> bool {
        let w = cycles / self.window_cycles;
        let n = self.slots.len() as u64;
        let slot = &mut self.slots[(w % n) as usize];
        if slot.0 != w {
            *slot = (w, 0);
        }
        if slot.1 >= quota {
            return false;
        }
        slot.1 += 1;
        true
    }
}

/// Mutable tenant state behind the tenant mutex.
#[derive(Debug)]
struct TenantState {
    series: Vec<Series>,
    names: HashMap<String, u16>,
    sources: HashMap<u64, SourceState>,
    quota: QuotaRing,
}

/// Per-tenant ingest statistics (mirrored into the daemon's global
/// `aggd.*` observability counters; kept here so queries can report one
/// tenant's accounting in isolation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Frames received for this tenant (every outcome).
    pub frames_in: u64,
    /// Frames applied exactly once (includes out-of-order).
    pub applied: u64,
    /// Duplicate / beyond-window frames dropped.
    pub dup_dropped: u64,
    /// Applied frames that arrived out of order.
    pub out_of_order: u64,
    /// Frames shed by the per-window quota.
    pub dropped_frames: u64,
    /// Non-empty windows overwritten by newer ones.
    pub evicted_windows: u64,
    /// Applied deltas older than the ring horizon (lifetime-only).
    pub stale_windows: u64,
    /// Delta entries referencing an unbound series id.
    pub unknown_series: u64,
}

impl TenantStats {
    /// The zero-silent-drop identity: every frame is accounted for.
    pub fn accounted(&self) -> bool {
        self.frames_in == self.applied + self.dup_dropped + self.dropped_frames
    }
}

/// One tenant: named series, source streams, quotas, accounting.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    state: Mutex<TenantState>,
    stats: Mutex<TenantStats>,
    /// Activity stamp from the aggregator's logical clock (LRU eviction).
    pub(crate) last_active: AtomicU64,
    quota: u32,
}

impl Tenant {
    pub(crate) fn new(name: &str, window_cycles: u64, windows: usize, quota: u32) -> Tenant {
        Tenant {
            name: name.to_string(),
            state: Mutex::new(TenantState {
                series: Vec::new(),
                names: HashMap::new(),
                sources: HashMap::new(),
                quota: QuotaRing::new(window_cycles, windows),
            }),
            stats: Mutex::new(TenantStats::default()),
            last_active: AtomicU64::new(0),
            quota,
        }
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register (or look up) a series by name; returns its tenant-local
    /// index. `window_cycles`/`windows` shape comes from the aggregator
    /// config captured at tenant creation.
    pub fn register_series(&self, name: &str, window_cycles: u64, windows: usize) -> u16 {
        let mut st = self.state.lock().unwrap();
        if let Some(&idx) = st.names.get(name) {
            return idx;
        }
        let idx = st.series.len() as u16;
        st.series.push(Series {
            name: name.to_string(),
            ring: SeriesRing::new(window_cycles, windows),
            hist: LogHistogram::new(),
        });
        st.names.insert(name.to_string(), idx);
        idx
    }

    /// Ingest one snapshot frame. `map` translates connection-local series
    /// ids to tenant series indices (identity when the caller already holds
    /// tenant indices). Zero heap allocations once the source exists.
    pub fn ingest_snapshot(
        &self,
        obs: &Obs,
        source: u64,
        seq: u64,
        cycles: u64,
        deltas: impl Iterator<Item = (u16, u64)>,
        map: &[u16],
    ) -> IngestOutcome {
        let mut st = self.state.lock().unwrap();
        let mut stats = TenantStats {
            frames_in: 1,
            ..TenantStats::default()
        };
        obs.inc(Counter::AggdFramesIn);
        let outcome = match st.sources.entry(source).or_default().admit(seq) {
            None => {
                stats.dup_dropped = 1;
                obs.inc(Counter::AggdDupDropped);
                IngestOutcome::DupDropped
            }
            Some(admitted) => {
                if !st.quota.admit(cycles, self.quota) {
                    // Un-admit is unnecessary: quota drops are still
                    // exactly-once (the seq is consumed; a retry of a
                    // quota-dropped frame is a dup by design).
                    stats.dropped_frames = 1;
                    stats.applied = 0;
                    // The seq was admitted but the frame is shed; undo the
                    // applied count so close-time gapless checks reflect
                    // applied-to-series frames.
                    if let Some(src) = st.sources.get_mut(&source) {
                        src.applied -= 1;
                        src.shed += 1;
                    }
                    obs.inc(Counter::AggdDroppedFrames);
                    IngestOutcome::QuotaDropped
                } else {
                    stats.applied = 1;
                    if admitted == IngestOutcome::OutOfOrder {
                        stats.out_of_order = 1;
                        obs.inc(Counter::AggdOutOfOrder);
                    }
                    for (sid, delta) in deltas {
                        let Some(&idx) = map.get(sid as usize) else {
                            stats.unknown_series += 1;
                            obs.inc(Counter::AggdUnknownSeries);
                            continue;
                        };
                        let Some(series) = st.series.get_mut(idx as usize) else {
                            stats.unknown_series += 1;
                            obs.inc(Counter::AggdUnknownSeries);
                            continue;
                        };
                        match series.ring.apply(cycles, delta) {
                            WindowOutcome::Applied => {}
                            WindowOutcome::Evicted => {
                                stats.evicted_windows += 1;
                                obs.inc(Counter::AggdEvictedWindows);
                            }
                            WindowOutcome::Stale => {
                                stats.stale_windows += 1;
                                obs.inc(Counter::AggdStaleWindows);
                            }
                        }
                    }
                    admitted
                }
            }
        };
        drop(st);
        self.merge_stats(&stats);
        outcome
    }

    /// Ingest one histogram frame (sparse bucket counts for one series).
    #[allow(clippy::too_many_arguments)] // mirrors the wire frame's fields
    pub fn ingest_hist(
        &self,
        obs: &Obs,
        source: u64,
        seq: u64,
        cycles: u64,
        sid: u16,
        buckets: impl Iterator<Item = (u16, u64)>,
        map: &[u16],
    ) -> IngestOutcome {
        let mut st = self.state.lock().unwrap();
        let mut stats = TenantStats {
            frames_in: 1,
            ..TenantStats::default()
        };
        obs.inc(Counter::AggdFramesIn);
        let outcome = match st.sources.entry(source).or_default().admit(seq) {
            None => {
                stats.dup_dropped = 1;
                obs.inc(Counter::AggdDupDropped);
                IngestOutcome::DupDropped
            }
            Some(admitted) => {
                if !st.quota.admit(cycles, self.quota) {
                    stats.dropped_frames = 1;
                    if let Some(src) = st.sources.get_mut(&source) {
                        src.applied -= 1;
                        src.shed += 1;
                    }
                    obs.inc(Counter::AggdDroppedFrames);
                    IngestOutcome::QuotaDropped
                } else {
                    stats.applied = 1;
                    if admitted == IngestOutcome::OutOfOrder {
                        stats.out_of_order = 1;
                        obs.inc(Counter::AggdOutOfOrder);
                    }
                    let mapped = map.get(sid as usize).copied();
                    match mapped.and_then(|idx| st.series.get_mut(idx as usize)) {
                        Some(series) => {
                            for (b, n) in buckets {
                                if (b as usize) < NUM_BUCKETS {
                                    series.hist.merge_bucket(b as usize, n);
                                }
                            }
                        }
                        None => {
                            stats.unknown_series += 1;
                            obs.inc(Counter::AggdUnknownSeries);
                        }
                    }
                    admitted
                }
            }
        };
        drop(st);
        self.merge_stats(&stats);
        outcome
    }

    /// Close a source stream: `true` when every claimed frame was applied
    /// (gapless, exactly once).  A shortfall is reported, not hidden.
    pub fn close_source(&self, obs: &Obs, source: u64, frames_sent: u64, complete: bool) -> bool {
        let mut st = self.state.lock().unwrap();
        let src = st.sources.entry(source).or_default();
        src.closed = true;
        let clean = complete && src.applied + src.shed >= frames_sent;
        if clean {
            obs.inc(Counter::AggdSourcesClosed);
        } else {
            obs.inc(Counter::AggdSourcesIncomplete);
        }
        clean
    }

    /// This tenant's ingest accounting.
    pub fn stats(&self) -> TenantStats {
        *self.stats.lock().unwrap()
    }

    fn merge_stats(&self, d: &TenantStats) {
        let mut s = self.stats.lock().unwrap();
        s.frames_in += d.frames_in;
        s.applied += d.applied;
        s.dup_dropped += d.dup_dropped;
        s.out_of_order += d.out_of_order;
        s.dropped_frames += d.dropped_frames;
        s.evicted_windows += d.evicted_windows;
        s.stale_windows += d.stale_windows;
        s.unknown_series += d.unknown_series;
    }

    /// Visit every series as `(name, &ring, hist_snapshot_provider)`.
    pub(crate) fn visit_series<R>(
        &self,
        mut f: impl FnMut(&str, &SeriesRing, &LogHistogram) -> R,
    ) -> Vec<R> {
        let st = self.state.lock().unwrap();
        st.series
            .iter()
            .map(|s| f(&s.name, &s.ring, &s.hist))
            .collect()
    }

    /// Look up one series and project it through `f`.
    pub(crate) fn with_series<R>(
        &self,
        name: &str,
        f: impl FnOnce(&SeriesRing, &LogHistogram) -> R,
    ) -> Option<R> {
        let st = self.state.lock().unwrap();
        let &idx = st.names.get(name)?;
        let s = &st.series[idx as usize];
        Some(f(&s.ring, &s.hist))
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.state.lock().unwrap().series.len()
    }

    /// Number of source streams seen.
    pub fn source_count(&self) -> usize {
        self.state.lock().unwrap().sources.len()
    }

    /// Approximate resident bytes for this tenant.
    pub fn approx_bytes(&self) -> usize {
        let st = self.state.lock().unwrap();
        let series: usize = st
            .series
            .iter()
            .map(|s| {
                s.name.len()
                    + s.ring.approx_bytes()
                    + std::mem::size_of::<LogHistogram>()
                    + std::mem::size_of::<Series>()
            })
            .sum();
        let sources = st.sources.len()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<SourceState>() + 16);
        std::mem::size_of::<Self>() + series + sources + st.quota.slots.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant() -> Tenant {
        Tenant::new("t", 1000, 8, u32::MAX)
    }

    fn obs() -> papi_obs::ObsHandle {
        Obs::new()
    }

    #[test]
    fn duplicates_never_double_apply() {
        let t = tenant();
        let o = obs();
        let sid = t.register_series("s", 1000, 8);
        let map = [sid];
        for _ in 0..3 {
            t.ingest_snapshot(&o, 1, 0, 10, [(0u16, 5u64)].into_iter(), &map);
        }
        assert_eq!(t.with_series("s", |r, _| r.lifetime_total()), Some(5));
        let st = t.stats();
        assert_eq!(st.frames_in, 3);
        assert_eq!(st.applied, 1);
        assert_eq!(st.dup_dropped, 2);
        assert!(st.accounted());
        assert_eq!(o.get(Counter::AggdDupDropped), 2);
    }

    #[test]
    fn out_of_order_within_window_applies_once() {
        let t = tenant();
        let o = obs();
        let sid = t.register_series("s", 1000, 8);
        let map = [sid];
        // seqs arrive 2, 0, 1, then 1 again (dup).
        t.ingest_snapshot(&o, 7, 2, 10, [(0u16, 1u64)].into_iter(), &map);
        t.ingest_snapshot(&o, 7, 0, 10, [(0u16, 2u64)].into_iter(), &map);
        t.ingest_snapshot(&o, 7, 1, 10, [(0u16, 4u64)].into_iter(), &map);
        t.ingest_snapshot(&o, 7, 1, 10, [(0u16, 4u64)].into_iter(), &map);
        assert_eq!(t.with_series("s", |r, _| r.lifetime_total()), Some(7));
        let st = t.stats();
        assert_eq!(st.out_of_order, 2);
        assert_eq!(st.dup_dropped, 1);
        assert_eq!(st.applied, 3);
        assert!(st.accounted());
    }

    #[test]
    fn beyond_window_oldies_are_shed_not_applied() {
        let t = tenant();
        let o = obs();
        let sid = t.register_series("s", 1000, 8);
        let map = [sid];
        t.ingest_snapshot(&o, 1, 100, 10, [(0u16, 1u64)].into_iter(), &map);
        // 100 - 30 = 70 > 64: cannot prove it isn't a dup; shed.
        let out = t.ingest_snapshot(&o, 1, 30, 10, [(0u16, 1u64)].into_iter(), &map);
        assert_eq!(out, IngestOutcome::DupDropped);
        assert_eq!(t.with_series("s", |r, _| r.lifetime_total()), Some(1));
        assert!(t.stats().accounted());
    }

    #[test]
    fn quota_sheds_frames_and_accounts_them() {
        let t = Tenant::new("q", 1000, 4, 2);
        let o = obs();
        let sid = t.register_series("s", 1000, 4);
        let map = [sid];
        for seq in 0..5 {
            t.ingest_snapshot(&o, 1, seq, 10, [(0u16, 1u64)].into_iter(), &map);
        }
        let st = t.stats();
        assert_eq!(st.frames_in, 5);
        assert_eq!(st.applied, 2);
        assert_eq!(st.dropped_frames, 3);
        assert!(st.accounted());
        assert_eq!(t.with_series("s", |r, _| r.lifetime_total()), Some(2));
        // A later window admits frames again.
        t.ingest_snapshot(&o, 1, 5, 1500, [(0u16, 1u64)].into_iter(), &map);
        assert_eq!(t.stats().applied, 3);
    }

    #[test]
    fn hist_frames_merge_into_series_histogram() {
        let t = tenant();
        let o = obs();
        let sid = t.register_series("s", 1000, 8);
        let map = [sid];
        let src = LogHistogram::new();
        for v in [10u64, 10, 100, 10_000] {
            src.record(v);
        }
        let pairs = src.snapshot().nonzero_buckets();
        t.ingest_hist(&o, 1, 0, 10, 0, pairs.iter().copied(), &map);
        // Duplicate hist frame: dropped.
        t.ingest_hist(&o, 1, 0, 10, 0, pairs.iter().copied(), &map);
        let (count, p99) = t
            .with_series("s", |_, h| {
                let s = h.snapshot();
                (s.count, s.quantile(0.99))
            })
            .unwrap();
        assert_eq!(count, 4);
        assert!(p99 >= 10_000);
    }

    #[test]
    fn close_source_checks_gaplessness() {
        let t = tenant();
        let o = obs();
        let sid = t.register_series("s", 1000, 8);
        let map = [sid];
        for seq in 0..10 {
            t.ingest_snapshot(&o, 3, seq, 10, [(0u16, 1u64)].into_iter(), &map);
        }
        assert!(t.close_source(&o, 3, 10, true));
        assert_eq!(o.get(Counter::AggdSourcesClosed), 1);
        // A source that claims more frames than arrived is incomplete.
        t.ingest_snapshot(&o, 4, 0, 10, [(0u16, 1u64)].into_iter(), &map);
        assert!(!t.close_source(&o, 4, 5, true));
        assert_eq!(o.get(Counter::AggdSourcesIncomplete), 1);
        // An explicitly incomplete close is reported as such.
        assert!(!t.close_source(&o, 5, 0, false));
    }
}
