//! Seeded multi-tenant workload generator and exact reconciliation.
//!
//! The correctness claim of an aggregation daemon is not "numbers come
//! out" — it is *conservation*: the sum the daemon serves for every
//! (tenant, series) equals the sum of the unique frames the generators
//! produced, no matter how many threads pushed concurrently, how many
//! frames were duplicated or reordered on the way in, and whether the
//! monitored sessions themselves ran under fault injection.
//!
//! [`run_workload`] drives N writer threads over real sockets; every
//! thread records locally what it *actually pushed*, and the merged
//! record is the ground truth [`reconcile`] checks the daemon against.
//! In chaos mode the frames come from real `fault[chaos]:` PAPI sessions
//! (counter deltas measured by `read`), so retried operations and
//! gave-up sessions flow through the same accounting: a gave-up session
//! closes its source `complete=false` and must show up in
//! `aggd.sources_incomplete` — reported, never silently missing.

use crate::server::AggdClient;
use papi_core::{Papi, Preset, SubstrateRegistry};
use papi_obs::LogHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;

/// Workload shape.
#[derive(Debug, Clone)]
pub struct WorkloadCfg {
    /// Distinct tenants.
    pub tenants: usize,
    /// Source sessions (spread round-robin over tenants).
    pub sessions: usize,
    /// Writer OS threads (each with its own connection).
    pub threads: usize,
    /// Snapshot frames per session.
    pub frames_per_session: usize,
    /// Series per tenant.
    pub series_per_tenant: usize,
    /// Master seed; every session derives its own deterministic stream.
    pub seed: u64,
    /// Probability a frame is re-sent verbatim (retry simulation).
    pub dup_prob: f64,
    /// Shuffle frames within small batches before sending (stays inside
    /// the 64-frame anti-replay window).
    pub reorder: bool,
    /// Drive real `fault[chaos]:` PAPI sessions instead of synthetic
    /// streams.
    pub chaos: bool,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            tenants: 8,
            sessions: 64,
            threads: 4,
            frames_per_session: 32,
            series_per_tenant: 4,
            seed: 42,
            dup_prob: 0.10,
            reorder: true,
            chaos: false,
        }
    }
}

/// What the generators actually pushed (the reconciliation ground truth).
#[derive(Debug, Default)]
pub struct WorkloadReport {
    /// Expected lifetime total per (tenant, series) — unique frames only.
    pub expected: HashMap<(String, String), u64>,
    /// Expected histogram sample count per (tenant, series).
    pub expected_hist: HashMap<(String, String), u64>,
    /// Unique frames sent (dups excluded).
    pub unique_frames: u64,
    /// Duplicate frames injected.
    pub dups_injected: u64,
    /// Sessions that completed their stream.
    pub completed_sessions: u64,
    /// Sessions that gave up (chaos mode) and closed incomplete.
    pub incomplete_sessions: u64,
}

impl WorkloadReport {
    fn merge(&mut self, other: WorkloadReport) {
        for (k, v) in other.expected {
            *self.expected.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.expected_hist {
            *self.expected_hist.entry(k).or_insert(0) += v;
        }
        self.unique_frames += other.unique_frames;
        self.dups_injected += other.dups_injected;
        self.completed_sessions += other.completed_sessions;
        self.incomplete_sessions += other.incomplete_sessions;
    }
}

fn tenant_name(i: usize) -> String {
    format!("tenant-{i}")
}

fn series_name(i: usize) -> String {
    format!("series-{i}")
}

/// One synthetic session: emit `frames` snapshot frames plus one final
/// histogram frame, injecting duplicates and bounded reordering.
#[allow(clippy::too_many_arguments)]
fn run_synthetic_session(
    client: &mut AggdClient,
    report: &mut WorkloadReport,
    cfg: &WorkloadCfg,
    session: usize,
) -> io::Result<()> {
    let tenant_idx = session % cfg.tenants;
    let tid = tenant_idx as u16;
    let tenant = tenant_name(tenant_idx);
    let source = session as u64;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (0x9E37 + session as u64 * 0x1_0001));

    // Pre-encode the whole stream so reordering/duplication act on
    // exactly the bytes that would have been retried on a real wire.
    let mut frames: Vec<Vec<u8>> = Vec::with_capacity(cfg.frames_per_session + 1);
    let mut cycles = rng.gen_range(0u64..5_000);
    for seq in 0..cfg.frames_per_session as u64 {
        cycles += rng.gen_range(200u64..5_000);
        let n = rng.gen_range(1usize..=cfg.series_per_tenant.min(3));
        let mut deltas: Vec<(u16, u64)> = Vec::with_capacity(n);
        for _ in 0..n {
            let sid = rng.gen_range(0..cfg.series_per_tenant) as u16;
            let v = rng.gen_range(1u64..1_000);
            deltas.push((sid, v));
        }
        for &(sid, v) in &deltas {
            *report
                .expected
                .entry((tenant.clone(), series_name(sid as usize)))
                .or_insert(0) += v;
        }
        frames.push(client.encode_snapshot(tid, source, seq, cycles, &deltas));
    }
    // Final histogram frame for series 0: a known latency distribution.
    let hist = LogHistogram::new();
    let samples = rng.gen_range(4u64..40);
    for _ in 0..samples {
        hist.record(rng.gen_range(1u64..50_000));
    }
    let pairs = hist.snapshot().nonzero_buckets();
    {
        let mut fb = crate::proto::FrameBuf::new();
        let msg = fb.hist(
            tid,
            0,
            source,
            cfg.frames_per_session as u64,
            cycles,
            &pairs,
        );
        frames.push(msg.to_vec());
    }
    *report
        .expected_hist
        .entry((tenant.clone(), series_name(0)))
        .or_insert(0) += samples;
    report.unique_frames += frames.len() as u64;

    // Bounded reordering: shuffle inside batches well under the 64-frame
    // anti-replay window.
    let mut order: Vec<usize> = (0..frames.len()).collect();
    if cfg.reorder {
        for chunk in order.chunks_mut(16) {
            for i in (1..chunk.len()).rev() {
                let j = rng.gen_range(0..=i);
                chunk.swap(i, j);
            }
        }
    }
    for &idx in &order {
        client.send_raw(&frames[idx])?;
        if rng.gen_bool(cfg.dup_prob) {
            client.send_raw(&frames[idx])?;
            report.dups_injected += 1;
        }
    }
    client.close_source(tid, source, frames.len() as u64, true)?;
    report.completed_sessions += 1;
    Ok(())
}

/// One chaos session: a real PAPI session on a `fault[chaos]:` substrate;
/// every successful `read` becomes a frame, a gave-up session closes its
/// source incomplete.
fn run_chaos_session(
    client: &mut AggdClient,
    report: &mut WorkloadReport,
    cfg: &WorkloadCfg,
    session: usize,
) -> io::Result<()> {
    let tenant_idx = session % cfg.tenants;
    let tid = tenant_idx as u16;
    let tenant = tenant_name(tenant_idx);
    let source = session as u64;
    let seed = cfg.seed ^ (session as u64).wrapping_mul(0x9E37_79B9);

    let reg = SubstrateRegistry::with_builtin();
    // The chaos schedule derives from the init seed, so each session gets
    // its own deterministic fault pattern.
    let spec = "fault[chaos]:sim:x86";
    let events = [Preset::TotCyc, Preset::TotIns];
    let read_hist = LogHistogram::new();
    let mut seq = 0u64;
    let pushed = |client: &mut AggdClient,
                  report: &mut WorkloadReport,
                  seq: &mut u64,
                  cycles: u64,
                  deltas: &[(u16, u64)]|
     -> io::Result<()> {
        client.snapshot(tid, source, *seq, cycles, deltas)?;
        *seq += 1;
        report.unique_frames += 1;
        for &(sid, v) in deltas {
            *report
                .expected
                .entry((tenant.clone(), series_name(sid as usize)))
                .or_insert(0) += v;
        }
        Ok(())
    };

    let complete = (|| -> Result<(), papi_core::PapiError> {
        let mut papi = Papi::init_from_registry(&reg, spec, seed)?;
        papi.substrate_mut()
            .load_program(papi_workloads::dense_fp(2_000, 2, 1).program)?;
        // A third of the fleet runs with no transient-retry budget, so the
        // chaos plan's scheduled failures surface and those sessions give
        // up — exercising the explicit-incompleteness accounting.
        if session.is_multiple_of(3) {
            papi.set_transient_retry_budget(0);
        }
        let set = papi.create_eventset();
        for e in events {
            papi.add_event(set, e.code())?;
        }
        papi.start(set)?;
        let mut prev = vec![0i64; events.len()];
        let mut out = vec![0i64; events.len()];
        for _ in 0..cfg.frames_per_session {
            let exit = papi.run_for(2_000)?;
            let t0 = papi.substrate().real_cycles();
            papi.read_into(set, &mut out)?;
            let t1 = papi.substrate().real_cycles();
            read_hist.record(t1.saturating_sub(t0).max(1));
            let cycles = t1;
            let mut deltas: Vec<(u16, u64)> = Vec::with_capacity(events.len());
            for (i, (&cur, &was)) in out.iter().zip(prev.iter()).enumerate() {
                let d = cur.saturating_sub(was).max(0) as u64;
                if d > 0 {
                    deltas.push((i as u16, d));
                }
            }
            prev.copy_from_slice(&out);
            if !deltas.is_empty() {
                pushed(client, report, &mut seq, cycles, &deltas)
                    .map_err(|e| papi_core::PapiError::Substrate(e.to_string()))?;
            }
            if matches!(exit, papi_core::AppExit::Halted) {
                break;
            }
        }
        papi.stop(set)?;
        Ok(())
    })();

    // The read-latency distribution travels regardless of how the
    // session ended.
    let pairs = read_hist.snapshot().nonzero_buckets();
    if !pairs.is_empty() {
        let count = read_hist.count();
        client.hist(tid, 0, source, seq, 0, &pairs)?;
        seq += 1;
        report.unique_frames += 1;
        *report
            .expected_hist
            .entry((tenant.clone(), series_name(0)))
            .or_insert(0) += count;
    }
    match complete {
        Ok(()) => {
            client.close_source(tid, source, seq, true)?;
            report.completed_sessions += 1;
        }
        Err(_) => {
            // Gave up under fault injection: everything pushed so far
            // still reconciles; the stream is explicitly incomplete.
            client.close_source(tid, source, seq, false)?;
            report.incomplete_sessions += 1;
        }
    }
    Ok(())
}

/// Run the workload against a daemon at `addr`.  Deterministic for a
/// given `cfg` regardless of thread interleaving (per-session streams are
/// independent and counter deltas commute).
pub fn run_workload(addr: SocketAddr, cfg: &WorkloadCfg) -> io::Result<WorkloadReport> {
    let mut merged = WorkloadReport::default();
    let reports: Vec<io::Result<WorkloadReport>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for thread in 0..cfg.threads.max(1) {
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || -> io::Result<WorkloadReport> {
                let mut report = WorkloadReport::default();
                let mut client = AggdClient::connect(addr)?;
                // Bind every tenant and series once per connection.
                for t in 0..cfg.tenants {
                    client.bind_tenant(t as u16, &tenant_name(t))?;
                    for s in 0..cfg.series_per_tenant {
                        client.reg_series(t as u16, s as u16, &series_name(s))?;
                    }
                }
                let mut session = thread;
                while session < cfg.sessions {
                    if cfg.chaos {
                        run_chaos_session(&mut client, &mut report, &cfg, session)?;
                    } else {
                        run_synthetic_session(&mut client, &mut report, &cfg, session)?;
                    }
                    session += cfg.threads.max(1);
                }
                client.flush()?;
                Ok(report)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in reports {
        merged.merge(r?);
    }
    Ok(merged)
}

/// Outcome of checking the daemon against the generator's ground truth.
#[derive(Debug, Default)]
pub struct ReconcileReport {
    /// (tenant, series) pairs checked.
    pub checked: usize,
    /// Human-readable mismatch descriptions (empty = exact).
    pub mismatches: Vec<String>,
    /// Daemon accounting at reconcile time.
    pub stats: crate::AggdStats,
}

impl ReconcileReport {
    /// True when every total matched and every frame is accounted for.
    pub fn exact(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Compare the daemon's served totals against what the workload pushed.
pub fn reconcile(client: &mut AggdClient, report: &WorkloadReport) -> io::Result<ReconcileReport> {
    let mut rec = ReconcileReport::default();
    let mut keys: Vec<&(String, String)> = report.expected.keys().collect();
    keys.sort();
    for key in keys {
        let (tenant, series) = key;
        let want = report.expected[key];
        rec.checked += 1;
        match client.query_series(tenant, series)? {
            None => rec.mismatches.push(format!(
                "{tenant}/{series}: missing from daemon, want {want}"
            )),
            Some(sum) => {
                if sum.lifetime != want {
                    rec.mismatches.push(format!(
                        "{tenant}/{series}: daemon lifetime {} != pushed {want}",
                        sum.lifetime
                    ));
                }
            }
        }
    }
    let mut hkeys: Vec<&(String, String)> = report.expected_hist.keys().collect();
    hkeys.sort();
    for key in hkeys {
        let (tenant, series) = key;
        let want = report.expected_hist[key];
        rec.checked += 1;
        match client.query_quantiles(tenant, series)? {
            None => rec.mismatches.push(format!(
                "{tenant}/{series}: histogram missing, want {want} samples"
            )),
            Some(q) => {
                if q.count != want {
                    rec.mismatches.push(format!(
                        "{tenant}/{series}: histogram count {} != pushed {want}",
                        q.count
                    ));
                }
            }
        }
    }
    let doc = client.stats_json()?;
    let stat = |k: &str| crate::json_get_u64(&doc, k).unwrap_or(u64::MAX);
    rec.stats = crate::AggdStats {
        frames_in: stat("aggd.frames_in"),
        dup_dropped: stat("aggd.dup_dropped"),
        out_of_order: stat("aggd.out_of_order"),
        dropped_frames: stat("aggd.dropped_frames"),
        evicted_windows: stat("aggd.evicted_windows"),
        stale_windows: stat("aggd.stale_windows"),
        unknown_series: stat("aggd.unknown_series"),
        tenants_registered: stat("aggd.tenants_registered"),
        tenants_evicted: stat("aggd.tenants_evicted"),
        sources_closed: stat("aggd.sources_closed"),
        sources_incomplete: stat("aggd.sources_incomplete"),
        tenants_live: stat("aggd.tenants_live"),
        series_live: stat("aggd.series_live"),
        bytes_per_tenant: stat("aggd.bytes_per_tenant"),
    };
    // Zero silent drops: every frame in is applied or counted dropped.
    let accounted = rec.stats.frames_in
        == rec.stats.applied() + rec.stats.dup_dropped + rec.stats.dropped_frames;
    if !accounted {
        rec.mismatches.push(format!(
            "accounting identity broken: frames_in {} != applied {} + dup {} + dropped {}",
            rec.stats.frames_in,
            rec.stats.applied(),
            rec.stats.dup_dropped,
            rec.stats.dropped_frames
        ));
    }
    if rec.stats.frames_in != report.unique_frames + report.dups_injected {
        rec.mismatches.push(format!(
            "frames_in {} != sent {} (unique {} + dups {})",
            rec.stats.frames_in,
            report.unique_frames + report.dups_injected,
            report.unique_frames,
            report.dups_injected
        ));
    }
    if rec.stats.dup_dropped != report.dups_injected {
        rec.mismatches.push(format!(
            "dup_dropped {} != dups injected {}",
            rec.stats.dup_dropped, report.dups_injected
        ));
    }
    let closed = report.completed_sessions + report.incomplete_sessions;
    if rec.stats.sources_closed + rec.stats.sources_incomplete != closed {
        rec.mismatches.push(format!(
            "closed sources {}+{} != sessions {closed}",
            rec.stats.sources_closed, rec.stats.sources_incomplete
        ));
    }
    if rec.stats.sources_incomplete < report.incomplete_sessions {
        rec.mismatches.push(format!(
            "incomplete sources {} < gave-up sessions {}",
            rec.stats.sources_incomplete, report.incomplete_sessions
        ));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{AggdConfig, Aggregator};
    use crate::server::AggdServer;

    #[test]
    fn small_synthetic_workload_reconciles_exactly() {
        let server =
            AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).unwrap();
        let cfg = WorkloadCfg {
            tenants: 3,
            sessions: 12,
            threads: 3,
            frames_per_session: 20,
            ..WorkloadCfg::default()
        };
        let report = run_workload(server.local_addr(), &cfg).unwrap();
        assert!(report.dups_injected > 0, "workload should inject dups");
        let mut c = AggdClient::connect(server.local_addr()).unwrap();
        let rec = reconcile(&mut c, &report).unwrap();
        assert!(rec.exact(), "mismatches: {:#?}", rec.mismatches);
        assert!(rec.stats.out_of_order > 0, "reordering should be visible");
        server.shutdown();
    }

    #[test]
    fn chaos_workload_reconciles_or_reports_incompleteness() {
        let server =
            AggdServer::bind("127.0.0.1:0", Aggregator::new(AggdConfig::default())).unwrap();
        let cfg = WorkloadCfg {
            tenants: 2,
            sessions: 6,
            threads: 2,
            frames_per_session: 8,
            chaos: true,
            dup_prob: 0.0,
            ..WorkloadCfg::default()
        };
        let report = run_workload(server.local_addr(), &cfg).unwrap();
        assert!(report.unique_frames > 0);
        let mut c = AggdClient::connect(server.local_addr()).unwrap();
        let rec = reconcile(&mut c, &report).unwrap();
        assert!(rec.exact(), "mismatches: {:#?}", rec.mismatches);
        assert_eq!(
            report.completed_sessions + report.incomplete_sessions,
            6,
            "every session accounted"
        );
        server.shutdown();
    }
}
