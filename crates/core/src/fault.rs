//! Fault-injection substrate decorator.
//!
//! [`FaultSubstrate`] wraps any [`Substrate`] and perturbs it according to a
//! seeded, fully deterministic [`FaultPlan`]: transient `start`/`stop`/`read`
//! failures (the `EINTR`-style errors every real counter interface produces
//! under load), counter saturation at configurable register widths (the
//! paper's platforms ranged from 32-bit MIPS/UltraSPARC counters to 40-bit
//! Pentium MSRs and 47-bit Itanium PMDs), and delayed or jittered interrupt
//! delivery.
//!
//! The decorator exists to *prove the portable layer degrades gracefully*:
//! the conformance suite (`crates/conformance`) runs every spec check both
//! clean and faulted and requires identical counts — the retry loop must
//! absorb the transients, the widening layer must absorb the wraps, and the
//! overflow dispatcher must deliver exactly one callback per threshold
//! crossing even when the interrupt arrives late.
//!
//! Registered in the [`crate::registry::SubstrateRegistry`] as a name
//! prefix: `fault:sim:x86` wraps `sim:x86` with an empty (pass-through)
//! plan; `fault[read=5,bits=32]:sim:x86` parses a plan from the bracketed
//! `key=value` spec; `fault[chaos]:<inner>` derives a full fault schedule
//! from the instance seed.
//!
//! Everything here is allocation-free in steady state: fail decisions are
//! integer arithmetic on pre-seeded state, injected errors are
//! [`PapiError::SubstrateTransient`] carrying `&'static str`, and the
//! deferred-interrupt slot is a plain `Option`.
//!
//! Composition with the lock-free read path: the portable layer's
//! transient-retry loop (`retry_transient`) runs entirely *inside* the
//! owning session's exclusive sequence phase, while a seqlock snapshot
//! retry ([`crate::PublishedCounts`]) happens entirely *outside* it, on
//! the observer's thread. The two retry loops therefore never interleave
//! on shared state: an injected read failure reissues the substrate
//! crossing without republishing, and observers simply keep the previous
//! published snapshot until a read succeeds — a faulted read can never
//! tear or roll back what observers see.

use crate::error::{PapiError, Result};
use crate::substrate::{HwInfo, Substrate};
use simcpu::platform::GroupDef;
use simcpu::{
    Domain, MemInfo, NativeEventDesc, Program, RunExit, SampleConfig, SampleRecord, ThreadId,
};

/// A deterministic fault schedule.
///
/// All fields default to "off" ([`FaultPlan::default`] is a pure
/// pass-through, preserving the zero-allocation and exact-count guarantees
/// of the wrapped substrate). Periods count *calls*: `read_fail_period = 5`
/// makes every 5th read call begin a burst of `fail_burst` consecutive
/// transient failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the internal LCG driving jitter decisions.
    pub seed: u64,
    /// Every Nth `read`/`read_batch` call fails transiently (0 = never).
    pub read_fail_period: u32,
    /// Every Nth `start` call fails transiently (0 = never).
    pub start_fail_period: u32,
    /// Every Nth `stop` call fails transiently (0 = never).
    pub stop_fail_period: u32,
    /// Consecutive failures per episode (minimum 1). Must stay at or below
    /// the portable layer's retry budget for the faulted run to converge.
    pub fail_burst: u32,
    /// Counter width presented upward, in bits (64 = native width, no
    /// wrapping). Narrower widths mask read values modulo `2^bits`.
    pub counter_bits: u32,
    /// Bias added to every raw reading before masking, when
    /// `counter_bits < 64`. Preloading near `2^bits` makes modest workloads
    /// cross the wrap boundary without simulating billions of events.
    pub preload: u64,
    /// Delay overflow-interrupt delivery by roughly this many cycles
    /// (0 = deliver immediately). The monitored application keeps running
    /// during the delay, so the handler observes a skidded PC — exactly
    /// what the paper reports for interrupt-based overflow on real OSes.
    pub overflow_delay_cycles: u64,
    /// Jitter multiplex-timer delivery by up to this many cycles
    /// (0 = punctual). Estimates must stay within tolerance regardless.
    pub timer_jitter_cycles: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x5EED,
            read_fail_period: 0,
            start_fail_period: 0,
            stop_fail_period: 0,
            fail_burst: 1,
            counter_bits: 64,
            preload: 0,
            overflow_delay_cycles: 0,
            timer_jitter_cycles: 0,
        }
    }
}

impl FaultPlan {
    /// The pass-through plan: no faults injected.
    pub fn quiet() -> FaultPlan {
        FaultPlan::default()
    }

    /// A full fault schedule derived from `seed`: transient failures on
    /// every path, 32-bit counters preloaded near the wrap boundary, and
    /// delayed/jittered interrupt delivery. Different seeds shift the
    /// failure phases so a matrix of seeds exercises different interleavings.
    pub fn chaos(seed: u64) -> FaultPlan {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        FaultPlan {
            seed,
            read_fail_period: 3 + (next() % 5) as u32,
            start_fail_period: 2 + (next() % 3) as u32,
            stop_fail_period: 2 + (next() % 3) as u32,
            fail_burst: 1 + (next() % 2) as u32,
            counter_bits: 32,
            preload: (1u64 << 32) - 2_000 - next() % 3_000,
            overflow_delay_cycles: 100 + next() % 400,
            timer_jitter_cycles: 50 + next() % 250,
        }
    }

    /// Parse a bracketed registry spec: a comma-separated `key=value` list.
    ///
    /// Keys: `seed`, `read`, `start`, `stop`, `burst`, `bits`, `preload`,
    /// `ovfdelay`, `jitter`; the bare token `chaos` starts from
    /// [`FaultPlan::chaos`]`(default_seed)` and later keys override it.
    /// The empty string parses to [`FaultPlan::quiet`].
    pub fn parse(spec: &str, default_seed: u64) -> Result<FaultPlan> {
        let mut plan = FaultPlan {
            seed: default_seed,
            ..FaultPlan::default()
        };
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if item == "chaos" {
                plan = FaultPlan::chaos(default_seed);
                continue;
            }
            let (k, v) = item
                .split_once('=')
                .ok_or(PapiError::Inval("fault spec item is not key=value"))?;
            let v: u64 = v
                .parse()
                .map_err(|_| PapiError::Inval("fault spec value is not a number"))?;
            match k {
                "seed" => plan.seed = v,
                "read" => plan.read_fail_period = v as u32,
                "start" => plan.start_fail_period = v as u32,
                "stop" => plan.stop_fail_period = v as u32,
                "burst" => plan.fail_burst = (v as u32).max(1),
                "bits" => {
                    if !(1..=64).contains(&v) {
                        return Err(PapiError::Inval("fault counter bits out of range"));
                    }
                    plan.counter_bits = v as u32;
                }
                "preload" => plan.preload = v,
                "ovfdelay" => plan.overflow_delay_cycles = v,
                "jitter" => plan.timer_jitter_cycles = v,
                _ => return Err(PapiError::Inval("unknown fault spec key")),
            }
        }
        Ok(plan)
    }
}

/// Per-operation failure-schedule state: a call counter plus the remaining
/// length of the current failure burst.
#[derive(Debug, Default, Clone, Copy)]
struct FailState {
    calls: u64,
    burst_left: u32,
}

impl FailState {
    /// Advance the schedule by one call; true means this call fails.
    fn tick(&mut self, period: u32, burst: u32) -> bool {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return true;
        }
        self.calls += 1;
        if period > 0 && self.calls.is_multiple_of(period as u64) {
            self.burst_left = burst.saturating_sub(1);
            return true;
        }
        false
    }
}

/// A substrate decorator injecting deterministic faults per a [`FaultPlan`].
pub struct FaultSubstrate<S> {
    inner: S,
    plan: FaultPlan,
    /// `2^counter_bits - 1` (`u64::MAX` disables wrapping).
    mask: u64,
    rng: u64,
    read_fail: FailState,
    start_fail: FailState,
    stop_fail: FailState,
    /// An interrupt whose delivery was deferred while the application ran
    /// through the delay window; handed out on the next `run` call.
    deferred: Option<RunExit>,
    /// Total injected failures (all paths), for test assertions.
    injected: u64,
}

impl<S: Substrate> FaultSubstrate<S> {
    /// Wrap `inner` with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let mask = if plan.counter_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << plan.counter_bits) - 1
        };
        let rng = plan.seed | 1;
        FaultSubstrate {
            inner,
            plan,
            mask,
            rng,
            read_fail: FailState::default(),
            start_fail: FailState::default(),
            stop_fail: FailState::default(),
            deferred: None,
            injected: 0,
        }
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped substrate, mutably (e.g. to load programs).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total transient failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng >> 33
    }

    /// Present a raw reading at the plan's register width: bias by the
    /// preload and wrap. With 64-bit width this is the identity.
    fn narrow(&self, v: u64) -> u64 {
        if self.mask == u64::MAX {
            v
        } else {
            v.wrapping_add(self.plan.preload) & self.mask
        }
    }
}

impl<S: Substrate> Substrate for FaultSubstrate<S> {
    fn hw_info(&self) -> HwInfo {
        self.inner.hw_info()
    }

    fn num_counters(&self) -> usize {
        self.inner.num_counters()
    }

    fn native_events(&self) -> &[NativeEventDesc] {
        self.inner.native_events()
    }

    fn groups(&self) -> &[GroupDef] {
        self.inner.groups()
    }

    fn counter_width(&self) -> u32 {
        self.plan.counter_bits.min(self.inner.counter_width())
    }

    fn alloc_model(&self) -> crate::alloc::AllocModel {
        self.inner.alloc_model()
    }

    fn load_program(&mut self, program: Program) -> Result<()> {
        self.inner.load_program(program)
    }

    fn program(&mut self, assign: &[Option<(u32, Domain)>]) -> Result<()> {
        self.inner.program(assign)
    }

    fn start(&mut self) -> Result<()> {
        if self
            .start_fail
            .tick(self.plan.start_fail_period, self.plan.fail_burst)
        {
            self.injected += 1;
            return Err(PapiError::SubstrateTransient("injected start fault"));
        }
        self.inner.start()
    }

    fn stop(&mut self) -> Result<()> {
        if self
            .stop_fail
            .tick(self.plan.stop_fail_period, self.plan.fail_burst)
        {
            self.injected += 1;
            return Err(PapiError::SubstrateTransient("injected stop fault"));
        }
        self.inner.stop()
    }

    fn reset(&mut self) -> Result<()> {
        self.inner.reset()
    }

    fn read(&mut self, idx: usize) -> Result<u64> {
        if self
            .read_fail
            .tick(self.plan.read_fail_period, self.plan.fail_burst)
        {
            self.injected += 1;
            return Err(PapiError::SubstrateTransient("injected read fault"));
        }
        let v = self.inner.read(idx)?;
        Ok(self.narrow(v))
    }

    fn read_batch(&mut self, ctrs: &[usize], out: &mut Vec<u64>) -> Result<()> {
        // The whole batch is one kernel crossing: one schedule tick, and a
        // failure loses the entire crossing (no partial output).
        if self
            .read_fail
            .tick(self.plan.read_fail_period, self.plan.fail_burst)
        {
            self.injected += 1;
            return Err(PapiError::SubstrateTransient("injected read fault"));
        }
        let base = out.len();
        self.inner.read_batch(ctrs, out)?;
        if self.mask != u64::MAX {
            for v in &mut out[base..] {
                *v = v.wrapping_add(self.plan.preload) & self.mask;
            }
        }
        Ok(())
    }

    fn set_overflow(&mut self, idx: usize, threshold: Option<u64>) -> Result<()> {
        self.inner.set_overflow(idx, threshold)
    }

    fn configure_sampling(&mut self, cfg: Option<SampleConfig>) -> Result<()> {
        self.inner.configure_sampling(cfg)
    }

    fn drain_samples(&mut self) -> Vec<SampleRecord> {
        self.inner.drain_samples()
    }

    fn set_timer(&mut self, period_cycles: Option<u64>) {
        self.inner.set_timer(period_cycles)
    }

    fn set_granularity(&mut self, g: simcpu::Granularity) {
        self.inner.set_granularity(g)
    }

    fn run(&mut self, budget_cycles: Option<u64>) -> RunExit {
        // Deliver an interrupt deferred by a previous delay window first:
        // delivery is late, never dropped and never duplicated.
        if let Some(e) = self.deferred.take() {
            return e;
        }
        let exit = self.inner.run(budget_cycles);
        let delay = match exit {
            RunExit::Overflow { .. } if self.plan.overflow_delay_cycles > 0 => Some(
                self.plan.overflow_delay_cycles
                    + self.next_rand() % self.plan.overflow_delay_cycles,
            ),
            RunExit::Timer if self.plan.timer_jitter_cycles > 0 => {
                Some(1 + self.next_rand() % self.plan.timer_jitter_cycles)
            }
            _ => None,
        };
        if let Some(d) = delay {
            // Let the application run through the delay window before the
            // (now skidded) interrupt reaches software. Anything else that
            // happens during the window is queued behind it.
            match self.inner.run(Some(d)) {
                RunExit::CycleLimit => {}
                other => self.deferred = Some(other),
            }
        }
        exit
    }

    fn real_cycles(&self) -> u64 {
        self.inner.real_cycles()
    }

    fn real_ns(&self) -> u64 {
        self.inner.real_ns()
    }

    fn virt_ns(&self, thread: ThreadId) -> Result<u64> {
        self.inner.virt_ns(thread)
    }

    fn mem_info(&self, thread: ThreadId) -> Result<MemInfo> {
        self.inner.mem_info(thread)
    }

    fn read_attached(&mut self, thread: ThreadId, idx: usize) -> Result<u64> {
        // Per-thread reads model a kernel-virtualized 64-bit view (as real
        // kernels present), so no narrowing; the transient schedule still
        // applies — it is the same syscall path.
        if self
            .read_fail
            .tick(self.plan.read_fail_period, self.plan.fail_burst)
        {
            self.injected += 1;
            return Err(PapiError::SubstrateTransient("injected read fault"));
        }
        self.inner.read_attached(thread, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SimSubstrate;
    use simcpu::platform::sim_x86;

    fn sub() -> SimSubstrate {
        SimSubstrate::for_platform(sim_x86(), 1)
    }

    #[test]
    fn quiet_plan_is_pass_through() {
        let mut f = FaultSubstrate::new(sub(), FaultPlan::quiet());
        assert_eq!(f.counter_width(), 64);
        f.start().unwrap();
        assert_eq!(f.read(0).unwrap(), 0);
        let mut out = Vec::new();
        f.read_batch(&[0, 1], &mut out).unwrap();
        assert_eq!(out, vec![0, 0]);
        f.stop().unwrap();
        assert_eq!(f.injected_failures(), 0);
    }

    #[test]
    fn read_failures_follow_the_period() {
        let plan = FaultPlan {
            read_fail_period: 3,
            ..FaultPlan::default()
        };
        let mut f = FaultSubstrate::new(sub(), plan);
        let mut fails = 0;
        for _ in 0..12 {
            if f.read(0).is_err() {
                fails += 1;
            }
        }
        assert_eq!(fails, 4, "every 3rd of 12 calls fails");
        assert_eq!(f.injected_failures(), 4);
    }

    #[test]
    fn bursts_fail_consecutively() {
        let plan = FaultPlan {
            start_fail_period: 2,
            fail_burst: 3,
            ..FaultPlan::default()
        };
        let mut f = FaultSubstrate::new(sub(), plan);
        // Call 1 ok; call 2 starts a burst of 3; calls 3,4 continue it;
        // call 5 ok (schedule counter resumes at 3); call 6 (counter 4) fails.
        let pattern: Vec<bool> = (0..6).map(|_| f.start().is_err()).collect();
        assert_eq!(pattern, vec![false, true, true, true, false, true]);
    }

    #[test]
    fn injected_errors_are_transient() {
        let plan = FaultPlan {
            stop_fail_period: 1,
            ..FaultPlan::default()
        };
        let mut f = FaultSubstrate::new(sub(), plan);
        let e = f.stop().unwrap_err();
        assert!(e.is_transient());
    }

    #[test]
    fn narrow_width_wraps_and_preloads_reads() {
        let plan = FaultPlan {
            counter_bits: 32,
            preload: (1u64 << 32) - 10,
            ..FaultPlan::default()
        };
        let mut f = FaultSubstrate::new(sub(), plan);
        assert_eq!(f.counter_width(), 32);
        // Inner counter is 0, so the raw reading is the preload itself.
        assert_eq!(f.read(0).unwrap(), (1u64 << 32) - 10);
        let mut out = Vec::new();
        f.read_batch(&[0], &mut out).unwrap();
        assert_eq!(out, vec![(1u64 << 32) - 10]);
    }

    #[test]
    fn parse_round_trips_keys() {
        let p = FaultPlan::parse(
            "read=5,start=2,stop=3,burst=2,bits=40,preload=7,ovfdelay=100,jitter=50,seed=9",
            42,
        )
        .unwrap();
        assert_eq!(p.read_fail_period, 5);
        assert_eq!(p.start_fail_period, 2);
        assert_eq!(p.stop_fail_period, 3);
        assert_eq!(p.fail_burst, 2);
        assert_eq!(p.counter_bits, 40);
        assert_eq!(p.preload, 7);
        assert_eq!(p.overflow_delay_cycles, 100);
        assert_eq!(p.timer_jitter_cycles, 50);
        assert_eq!(p.seed, 9);
        assert_eq!(
            FaultPlan::parse("", 7).unwrap(),
            FaultPlan {
                seed: 7,
                ..FaultPlan::default()
            }
        );
        assert!(FaultPlan::parse("bits=0", 0).is_err());
        assert!(FaultPlan::parse("bogus=1", 0).is_err());
        assert!(FaultPlan::parse("read", 0).is_err());
    }

    #[test]
    fn chaos_is_deterministic_and_seed_sensitive() {
        assert_eq!(FaultPlan::chaos(3), FaultPlan::chaos(3));
        assert_ne!(FaultPlan::chaos(3), FaultPlan::chaos(4));
        let p = FaultPlan::chaos(1);
        assert_eq!(p.counter_bits, 32);
        assert!(p.read_fail_period > 0);
        assert!(p.preload > (1u64 << 32) - 5_000);
    }
}
