//! SVR4-compatible statistical profiling (`PAPI_profil`).
//!
//! On counter overflow of a chosen event, the program counter delivered to
//! the interrupt handler is hashed into a bucket histogram over the text
//! range. On out-of-order processors that PC has *skidded* several
//! instructions — or whole basic blocks — past the event-causing
//! instruction, which is precisely the inaccuracy §4 of the paper discusses
//! and the attribution experiment quantifies.

/// Configuration of one profiling histogram, in the spirit of
/// `PAPI_profil(buf, bufsiz, offset, scale, EventSet, EventCode, threshold)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilConfig {
    /// First text address covered.
    pub start: u64,
    /// One past the last text address covered.
    pub end: u64,
    /// Bytes of text per histogram bucket (SVR4 expresses this as the
    /// 16.16 fixed-point `scale`; see [`ProfilConfig::from_svr4_scale`]).
    pub bucket_bytes: u64,
    /// Overflow threshold: one histogram hit per `threshold` events.
    pub threshold: u64,
}

impl ProfilConfig {
    /// Build from the SVR4 `scale` convention: `scale` is a 16.16
    /// fixed-point fraction mapping text bytes to half-words of buffer;
    /// `0x10000` maps each 2 bytes of text to one 2-byte bucket.
    pub fn from_svr4_scale(start: u64, end: u64, scale: u32, threshold: u64) -> ProfilConfig {
        assert!(scale > 0, "scale must be positive");
        // bytes per bucket = 2 * 0x10000 / scale (clamped to >= 1)
        let bucket_bytes = ((2u64 << 16) / scale as u64).max(1);
        ProfilConfig {
            start,
            end,
            bucket_bytes,
            threshold,
        }
    }

    /// Number of buckets this configuration spans.
    pub fn num_buckets(&self) -> usize {
        ((self.end - self.start).div_ceil(self.bucket_bytes)) as usize
    }
}

/// A live profiling histogram.
///
/// ```
/// use papi_core::{Profil, ProfilConfig};
/// let mut p = Profil::new(ProfilConfig { start: 0x1000, end: 0x1100, bucket_bytes: 16, threshold: 100 });
/// p.hit(0x1004);
/// p.hit(0x1008);
/// p.hit(0x2000); // outside the covered range
/// assert_eq!(p.buckets()[0], 2);
/// assert_eq!(p.outside(), 1);
/// assert_eq!(p.estimated_events(), 300); // samples x threshold
/// ```
#[derive(Debug, Clone)]
pub struct Profil {
    pub cfg: ProfilConfig,
    buckets: Vec<u64>,
    /// Samples whose PC fell outside `[start, end)`.
    outside: u64,
}

impl Profil {
    pub fn new(cfg: ProfilConfig) -> Self {
        assert!(cfg.end > cfg.start, "empty profil range");
        assert!(cfg.bucket_bytes > 0);
        assert!(cfg.threshold > 0);
        let n = cfg.num_buckets();
        Profil {
            cfg,
            buckets: vec![0; n],
            outside: 0,
        }
    }

    /// Record one overflow sample at `pc`.
    pub fn hit(&mut self, pc: u64) {
        if pc >= self.cfg.start && pc < self.cfg.end {
            let b = ((pc - self.cfg.start) / self.cfg.bucket_bytes) as usize;
            self.buckets[b] += 1;
        } else {
            self.outside += 1;
        }
    }

    /// The histogram.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples that fell outside the covered range.
    pub fn outside(&self) -> u64 {
        self.outside
    }

    /// Total samples recorded (inside + outside).
    pub fn total_samples(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.outside
    }

    /// Estimated event count represented by the histogram
    /// (samples × threshold).
    pub fn estimated_events(&self) -> u64 {
        self.total_samples() * self.cfg.threshold
    }

    /// Address of the first byte covered by bucket `i`.
    pub fn bucket_addr(&self, i: usize) -> u64 {
        self.cfg.start + i as u64 * self.cfg.bucket_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProfilConfig {
        ProfilConfig {
            start: 0x1000,
            end: 0x1100,
            bucket_bytes: 16,
            threshold: 100,
        }
    }

    #[test]
    fn bucket_count_and_rounding() {
        assert_eq!(cfg().num_buckets(), 16);
        let odd = ProfilConfig {
            start: 0,
            end: 100,
            bucket_bytes: 16,
            threshold: 1,
        };
        assert_eq!(odd.num_buckets(), 7); // ceil(100/16)
    }

    #[test]
    fn hits_land_in_right_buckets() {
        let mut p = Profil::new(cfg());
        p.hit(0x1000);
        p.hit(0x100f);
        p.hit(0x1010);
        p.hit(0x10ff);
        assert_eq!(p.buckets()[0], 2);
        assert_eq!(p.buckets()[1], 1);
        assert_eq!(p.buckets()[15], 1);
        assert_eq!(p.outside(), 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut p = Profil::new(cfg());
        p.hit(0x0fff);
        p.hit(0x1100);
        assert_eq!(p.outside(), 2);
        assert_eq!(p.buckets().iter().sum::<u64>(), 0);
        assert_eq!(p.total_samples(), 2);
    }

    #[test]
    fn estimated_events_scales_by_threshold() {
        let mut p = Profil::new(cfg());
        for _ in 0..5 {
            p.hit(0x1000);
        }
        assert_eq!(p.estimated_events(), 500);
    }

    #[test]
    fn svr4_scale_conversion() {
        // scale 0x10000: one 2-byte bucket per 2 bytes of text.
        let c = ProfilConfig::from_svr4_scale(0, 0x1000, 0x10000, 1);
        assert_eq!(c.bucket_bytes, 2);
        // scale 0x8000: half density -> 4 bytes per bucket.
        let c = ProfilConfig::from_svr4_scale(0, 0x1000, 0x8000, 1);
        assert_eq!(c.bucket_bytes, 4);
        // tiny scale clamps to >= 1 byte per bucket
        let c = ProfilConfig::from_svr4_scale(0, 0x1000, u32::MAX, 1);
        assert_eq!(c.bucket_bytes, 1);
    }

    #[test]
    #[should_panic(expected = "empty profil range")]
    fn empty_range_panics() {
        Profil::new(ProfilConfig {
            start: 8,
            end: 8,
            bucket_bytes: 4,
            threshold: 1,
        });
    }

    #[test]
    fn bucket_addr_roundtrip() {
        let p = Profil::new(cfg());
        assert_eq!(p.bucket_addr(0), 0x1000);
        assert_eq!(p.bucket_addr(3), 0x1030);
    }
}
