//! The high-level interface: "the ability to start, stop, and read the
//! counters for a specified list of events", plus the rate calls
//! (`PAPI_flops`, and an IPC analogue) "intended for the acquisition of
//! simple but accurate measurements by application engineers".
//!
//! `PAPI_flops` is where the library *normalizes* counts (§4): FMA
//! instructions are counted as two floating-point operations, either through
//! a native operation-weighted event (`PAPI_FP_OPS`) or, where the platform
//! only counts FP *instructions*, by adding the FMA count in software. When
//! neither correction is possible the result is flagged `exact: false`.

use crate::error::{PapiError, Result};
use crate::eventset::EventSetId;
use crate::preset::Preset;
use crate::{Papi, Substrate};

/// Result of [`Papi::flops`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flops {
    /// Wall-clock microseconds since the first `flops` call.
    pub real_us: f64,
    /// Process (virtual) microseconds since the first `flops` call.
    pub proc_us: f64,
    /// Total floating-point operations since the first `flops` call.
    pub flpops: i64,
    /// MFLOP/s over the interval since the *previous* `flops` call.
    pub mflops: f64,
    /// False when the platform could not be corrected to true operation
    /// counts (e.g. converts included, FMA counted once).
    pub exact: bool,
    /// How the count was normalized: an operation-weighted event, a
    /// software FMA correction, or uncorrected instructions.
    pub method: &'static str,
}

/// Result of [`Papi::ipc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ipc {
    pub real_us: f64,
    pub proc_us: f64,
    /// Total instructions since the first `ipc` call.
    pub ins: i64,
    /// Instructions per cycle over the interval since the previous call.
    pub ipc: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlopMode {
    /// A native operation-weighted event exists (`PAPI_FP_OPS`).
    Ops,
    /// Software normalization: `PAPI_FP_INS + PAPI_FMA_INS`.
    InsPlusFma,
    /// Best effort: instructions only (inexact).
    InsOnly,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HlKind {
    Counters,
    Flops(FlopMode),
    Ipc,
}

/// Internal high-level state (one high-level "mode" may be active at once).
pub(crate) struct HlState {
    set: EventSetId,
    kind: HlKind,
    start_real_ns: u64,
    start_virt_ns: u64,
    last_real_ns: u64,
    last_value: i64,
}

fn method_name(mode: FlopMode) -> &'static str {
    match mode {
        FlopMode::Ops => "PAPI_FP_OPS",
        FlopMode::InsPlusFma => "PAPI_FP_INS + PAPI_FMA_INS",
        FlopMode::InsOnly => "PAPI_FP_INS (uncorrected)",
    }
}

impl<S: Substrate> Papi<S> {
    fn hl_begin(&mut self, events: &[u32], kind: HlKind) -> Result<()> {
        if self.hl.is_some() {
            return Err(PapiError::IsRun);
        }
        let set = self.create_eventset();
        if let Err(e) = self.add_events(set, events).and_then(|_| self.start(set)) {
            let _ = self.destroy_eventset(set);
            return Err(e);
        }
        let real = self.get_real_ns();
        let virt = self.get_virt_ns(0).unwrap_or(0);
        self.hl = Some(HlState {
            set,
            kind,
            start_real_ns: real,
            start_virt_ns: virt,
            last_real_ns: real,
            last_value: 0,
        });
        Ok(())
    }

    fn hl_state(&self) -> Result<&HlState> {
        self.hl.as_ref().ok_or(PapiError::NotRun)
    }

    /// `PAPI_start_counters`: start counting `events` with no EventSet
    /// bookkeeping on the caller's side.
    pub fn hl_start_counters(&mut self, events: &[u32]) -> Result<()> {
        self.hl_begin(events, HlKind::Counters)
    }

    /// `PAPI_read_counters`: copy current counts out and reset them.
    pub fn hl_read_counters(&mut self) -> Result<Vec<i64>> {
        let (set, kind) = {
            let h = self.hl_state()?;
            (h.set, h.kind)
        };
        if kind != HlKind::Counters {
            return Err(PapiError::Inval("high-level state is not in counter mode"));
        }
        let v = self.read(set)?;
        self.reset(set)?;
        Ok(v)
    }

    /// `PAPI_accum_counters`: add current counts into `values` and reset.
    pub fn hl_accum_counters(&mut self, values: &mut [i64]) -> Result<()> {
        let (set, kind) = {
            let h = self.hl_state()?;
            (h.set, h.kind)
        };
        if kind != HlKind::Counters {
            return Err(PapiError::Inval("high-level state is not in counter mode"));
        }
        self.accum(set, values)
    }

    /// `PAPI_stop_counters`: stop and return the final counts, releasing
    /// the high-level state (works for every high-level mode).
    pub fn hl_stop_counters(&mut self) -> Result<Vec<i64>> {
        let set = self.hl_state()?.set;
        let v = self.stop(set)?;
        let _ = self.destroy_eventset(set);
        self.hl = None;
        Ok(v)
    }

    /// `PAPI_flops`: the first call starts floating-point counting and
    /// returns zeros; each later call reports totals since the first call
    /// and the MFLOP rate since the previous call.
    pub fn flops(&mut self) -> Result<Flops> {
        if self.hl.is_none() {
            // Choose the best normalization the platform allows.
            let (events, mode) = if self.query_event(Preset::FpOps.code()) {
                (vec![Preset::FpOps.code()], FlopMode::Ops)
            } else if self.query_event(Preset::FpIns.code())
                && self.query_event(Preset::FmaIns.code())
            {
                (
                    vec![Preset::FpIns.code(), Preset::FmaIns.code()],
                    FlopMode::InsPlusFma,
                )
            } else if self.query_event(Preset::FpIns.code()) {
                (vec![Preset::FpIns.code()], FlopMode::InsOnly)
            } else {
                return Err(PapiError::NoEvnt(Preset::FpOps.code()));
            };
            self.hl_begin(&events, HlKind::Flops(mode))?;
            return Ok(Flops {
                real_us: 0.0,
                proc_us: 0.0,
                flpops: 0,
                mflops: 0.0,
                exact: mode != FlopMode::InsOnly,
                method: method_name(mode),
            });
        }
        let (set, kind) = {
            let h = self.hl_state()?;
            (h.set, h.kind)
        };
        let HlKind::Flops(mode) = kind else {
            return Err(PapiError::Inval("high-level state is not in flops mode"));
        };
        let v = self.read(set)?;
        let flpops = match mode {
            FlopMode::Ops | FlopMode::InsOnly => v[0],
            // FP_INS counts an FMA once; adding FMA_INS counts it twice.
            FlopMode::InsPlusFma => v[0] + v[1],
        };
        let real = self.get_real_ns();
        let virt = self.get_virt_ns(0).unwrap_or(0);
        let exact = {
            let fp_exact = !self
                .preset_table()
                .mapping(match mode {
                    FlopMode::Ops => Preset::FpOps.code(),
                    _ => Preset::FpIns.code(),
                })
                .map(|m| m.inexact)
                .unwrap_or(true);
            fp_exact && mode != FlopMode::InsOnly
        };
        let h = self.hl.as_mut().unwrap();
        let d_flpops = flpops - h.last_value;
        let d_real_us = (real - h.last_real_ns) as f64 / 1000.0;
        let mflops = if d_real_us > 0.0 {
            d_flpops as f64 / d_real_us
        } else {
            0.0
        };
        let out = Flops {
            real_us: (real - h.start_real_ns) as f64 / 1000.0,
            proc_us: (virt - h.start_virt_ns) as f64 / 1000.0,
            flpops,
            mflops,
            exact,
            method: method_name(mode),
        };
        h.last_value = flpops;
        h.last_real_ns = real;
        Ok(out)
    }

    /// Instructions-per-cycle rate call (the `PAPI_ipc` of later versions,
    /// a natural companion to `PAPI_flops`).
    pub fn ipc(&mut self) -> Result<Ipc> {
        if self.hl.is_none() {
            self.hl_begin(&[Preset::TotIns.code(), Preset::TotCyc.code()], HlKind::Ipc)?;
            return Ok(Ipc {
                real_us: 0.0,
                proc_us: 0.0,
                ins: 0,
                ipc: 0.0,
            });
        }
        let (set, kind) = {
            let h = self.hl_state()?;
            (h.set, h.kind)
        };
        if kind != HlKind::Ipc {
            return Err(PapiError::Inval("high-level state is not in ipc mode"));
        }
        let v = self.read(set)?;
        let (ins, cyc) = (v[0], v[1]);
        let real = self.get_real_ns();
        let virt = self.get_virt_ns(0).unwrap_or(0);
        let h = self.hl.as_mut().unwrap();
        let d_ins = ins - h.last_value;
        let out = Ipc {
            real_us: (real - h.start_real_ns) as f64 / 1000.0,
            proc_us: (virt - h.start_virt_ns) as f64 / 1000.0,
            ins,
            ipc: if cyc > 0 {
                d_ins as f64 / cyc as f64
            } else {
                0.0
            },
        };
        h.last_value = ins;
        h.last_real_ns = real;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::substrate::SimSubstrate;
    use crate::{Papi, PapiError, Preset};
    use simcpu::platform::{sim_alpha, sim_generic, sim_t3e, sim_x86};
    use simcpu::{Machine, PlatformSpec, Program, ProgramBuilder};

    fn fp_prog(iters: u32) -> Program {
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(iters, |f| {
                f.ffma(2);
                f.fadd(1);
            });
        });
        b.build("main")
    }

    fn papi_on(spec: PlatformSpec, prog: Program) -> Papi<SimSubstrate> {
        let mut m = Machine::new(spec, 7);
        m.load(prog);
        Papi::init(SimSubstrate::new(m)).unwrap()
    }

    #[test]
    fn hl_counters_roundtrip() {
        let mut p = papi_on(sim_generic(), fp_prog(1000));
        p.hl_start_counters(&[Preset::FmaIns.code(), Preset::TotIns.code()])
            .unwrap();
        p.run_app().unwrap();
        let v = p.hl_read_counters().unwrap();
        assert_eq!(v[0], 2000);
        // read_counters resets: immediately reading again gives ~0.
        let v2 = p.hl_read_counters().unwrap();
        assert_eq!(v2[0], 0);
        let _ = p.hl_stop_counters().unwrap();
        // After stop the high-level state is gone.
        assert!(matches!(p.hl_read_counters(), Err(PapiError::NotRun)));
    }

    #[test]
    fn hl_accum() {
        let mut p = papi_on(sim_generic(), fp_prog(500));
        p.hl_start_counters(&[Preset::FmaIns.code()]).unwrap();
        p.run_app().unwrap();
        let mut acc = vec![100i64];
        p.hl_accum_counters(&mut acc).unwrap();
        assert_eq!(acc[0], 100 + 1000);
        p.hl_stop_counters().unwrap();
    }

    #[test]
    fn flops_normalizes_fma_on_ops_platform() {
        let mut p = papi_on(sim_generic(), fp_prog(1000));
        let f0 = p.flops().unwrap();
        assert_eq!(f0.flpops, 0);
        assert!(f0.exact);
        p.run_app().unwrap();
        let f = p.flops().unwrap();
        // 1000 iters x (2 FMA x 2 + 1 add) = 5000 FLOPs.
        assert_eq!(f.flpops, 5000);
        assert!(f.exact);
        assert!(f.mflops > 0.0);
        assert!(f.real_us > 0.0);
        assert!(f.proc_us > 0.0 && f.proc_us <= f.real_us);
    }

    #[test]
    fn flops_exact_on_x86_via_fp_ops() {
        let mut p = papi_on(sim_x86(), fp_prog(200));
        p.flops().unwrap();
        p.run_app().unwrap();
        let f = p.flops().unwrap();
        assert_eq!(f.flpops, 1000);
        assert!(f.exact);
    }

    #[test]
    fn flops_inexact_on_alpha() {
        // sim-alpha has only retinst_fp (includes converts, FMA once):
        // FP_OPS is unavailable, FMA_INS is unavailable -> InsOnly, inexact.
        let mut p = papi_on(sim_alpha(), fp_prog(200));
        let f0 = p.flops().unwrap();
        assert!(!f0.exact);
        p.run_app().unwrap();
        let f = p.flops().unwrap();
        // Counts FP instructions: 200 * 3 = 600, not 1000 operations.
        assert_eq!(f.flpops, 600);
        assert!(!f.exact);
    }

    #[test]
    fn flops_on_t3e_uses_ops_event() {
        let mut p = papi_on(sim_t3e(), fp_prog(100));
        p.flops().unwrap();
        p.run_app().unwrap();
        let f = p.flops().unwrap();
        assert_eq!(f.flpops, 500);
    }

    #[test]
    fn ipc_rates() {
        let mut p = papi_on(sim_generic(), fp_prog(5000));
        p.ipc().unwrap();
        p.run_app().unwrap();
        let r = p.ipc().unwrap();
        assert!(r.ins > 0);
        assert!(r.ipc > 0.0 && r.ipc <= 1.0, "ipc = {}", r.ipc);
    }

    #[test]
    fn hl_modes_are_exclusive() {
        let mut p = papi_on(sim_generic(), fp_prog(10));
        p.flops().unwrap();
        assert!(matches!(p.ipc(), Err(PapiError::Inval(_))));
        assert!(matches!(p.hl_read_counters(), Err(PapiError::Inval(_))));
        assert!(matches!(
            p.hl_start_counters(&[Preset::TotCyc.code()]),
            Err(PapiError::IsRun)
        ));
        // stop_counters releases any mode.
        p.hl_stop_counters().unwrap();
        p.ipc().unwrap();
        p.hl_stop_counters().unwrap();
    }

    #[test]
    fn hl_and_lowlevel_share_one_running_set() {
        let mut p = papi_on(sim_generic(), fp_prog(10));
        p.hl_start_counters(&[Preset::TotCyc.code()]).unwrap();
        let set = p.create_eventset();
        p.add_event(set, Preset::TotIns.code()).unwrap();
        assert!(matches!(p.start(set), Err(PapiError::IsRun)));
        p.hl_stop_counters().unwrap();
        p.start(set).unwrap();
        p.stop(set).unwrap();
    }
}
