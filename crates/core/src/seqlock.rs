//! Sequence-stamped synchronization for the lock-free read path.
//!
//! Two primitives live here, both built on one even/odd sequence word:
//!
//! * [`SeqCell`] — exclusive access for the *owning* thread (and the rare
//!   cross-thread inspector) signalled through the stamp itself. The
//!   owner's acquire is one uncontended compare-exchange (even → odd); the
//!   release is one store (odd → even). There is no OS mutex anywhere on
//!   the path: nothing parks, nothing is poisoned, and a session operation
//!   can never be blocked by any number of concurrent observers, because
//!   observers never touch the exclusive word at all — they read the
//!   [`PublishedCounts`] snapshot area instead.
//! * [`PublishedCounts`] — a classic seqlock publication area. The owner
//!   writes counter state under the odd phase of its own stamp; readers
//!   copy the values and retry if the stamp moved (a torn read), so they
//!   *never block* and never observe a mix of two generations.
//!
//! ## Memory model
//!
//! The exclusive side is a spinlock in the C++11 sense: `compare_exchange
//! (Acquire)` to enter, `store (Release)` to leave, so everything written
//! inside the critical section happens-before the next acquirer. The
//! publication side keeps every slot an individual atomic (`AtomicI64` /
//! `AtomicU64`) with `Relaxed` element accesses bracketed by
//! `Acquire`/`Release` stamp accesses: readers that observe an even,
//! unchanged stamp on both sides of the copy are guaranteed a consistent
//! snapshot, and ThreadSanitizer sees no data race because no non-atomic
//! location is ever read concurrently with a write.
//!
//! Spin waits yield to the scheduler after a short burst
//! ([`SPINS_BEFORE_YIELD`]) so a single-core host (CI containers) makes
//! progress even when an inspector collides with a long-running owner
//! operation such as `run_app`.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Spin iterations before the loser of a stamp race yields its timeslice.
const SPINS_BEFORE_YIELD: u32 = 64;

/// Exclusive-access cell whose lock word is an even/odd sequence stamp.
///
/// Even = quiescent, odd = an exclusive section is in progress. The stamp
/// is monotone: every exclusive section advances it by 2, so an observer
/// can detect "the state changed while I looked" by comparing stamps.
pub struct SeqCell<T> {
    seq: AtomicU64,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is mediated by the even→odd compare-exchange:
// at most one thread holds the odd phase, giving it a unique &mut. T must
// be Send for the value to be mutated from whichever thread wins.
unsafe impl<T: Send> Send for SeqCell<T> {}
unsafe impl<T: Send> Sync for SeqCell<T> {}

impl<T> SeqCell<T> {
    /// A quiescent cell holding `value` (stamp 0).
    pub fn new(value: T) -> Self {
        SeqCell {
            seq: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the cell and return the value (no synchronization needed:
    /// ownership proves exclusivity).
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// The current stamp. Odd means an exclusive section is in progress;
    /// two equal even readings with unchanged data in between certify a
    /// consistent observation.
    #[inline]
    pub fn sequence(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Enter the exclusive (odd) phase, spinning until the cell is
    /// quiescent. For the owning thread this is a single uncontended
    /// compare-exchange: the owner is the only frequent writer, and pure
    /// observers never acquire.
    #[inline]
    pub fn lock(&self) -> SeqGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            let cur = self.seq.load(Ordering::Relaxed);
            if cur & 1 == 0
                && self
                    .seq
                    .compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return SeqGuard { cell: self };
            }
            spins += 1;
            if spins >= SPINS_BEFORE_YIELD {
                spins = 0;
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SeqCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqCell")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Exclusive access to a [`SeqCell`]'s value; releasing advances the stamp
/// to the next even value.
pub struct SeqGuard<'a, T> {
    cell: &'a SeqCell<T>,
}

impl<T> std::ops::Deref for SeqGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the odd phase was won by compare-exchange; no other
        // guard can exist until Drop stores the next even value.
        unsafe { &*self.cell.data.get() }
    }
}

impl<T> std::ops::DerefMut for SeqGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above — the odd phase grants unique access.
        unsafe { &mut *self.cell.data.get() }
    }
}

impl<T> Drop for SeqGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // odd → next even; Release publishes the critical section.
        let cur = self.cell.seq.load(Ordering::Relaxed);
        debug_assert!(cur & 1 == 1, "guard dropped outside the odd phase");
        self.cell.seq.store(cur + 1, Ordering::Release);
    }
}

/// Upper bound on events a session publishes for non-blocking observers.
///
/// Sixteen covers every platform model in the tree (the widest has 8
/// counters) with room for derived-event fan-out; sets larger than this
/// are still fully readable through the exclusive path, they just aren't
/// published for lock-free observation.
pub const MAX_PUBLISHED_EVENTS: usize = 16;

/// One seqlock-published counter snapshot: the owning thread's latest
/// `read_into` results plus the programming generation they belong to.
///
/// Single writer (the session's owning thread), any number of wait-free
/// readers. All fields are atomics so a racing read is *torn*, never UB:
/// the stamp check rejects torn copies and the reader retries.
pub struct PublishedCounts {
    /// Even/odd stamp for the publication area (independent of the
    /// session cell's stamp so observers never interact with the
    /// exclusive word).
    seq: AtomicU64,
    /// Programming generation: bumped by start/reset/stop/reprogram, so a
    /// reader can tell "the counters restarted" from "the counters
    /// advanced". Mixed-generation values can never be observed — the
    /// stamp brackets generation and values together.
    generation: AtomicU64,
    /// Number of live values (0 = nothing published, e.g. set too wide).
    len: AtomicUsize,
    values: [AtomicI64; MAX_PUBLISHED_EVENTS],
}

impl Default for PublishedCounts {
    fn default() -> Self {
        PublishedCounts {
            seq: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            values: std::array::from_fn(|_| AtomicI64::new(0)),
        }
    }
}

/// A consistent observation of a [`PublishedCounts`] area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountSnapshot {
    /// Programming generation the values belong to.
    pub generation: u64,
    /// Number of valid entries in `values`.
    pub len: usize,
    /// The published counter values (entries past `len` are zero).
    pub values: [i64; MAX_PUBLISHED_EVENTS],
}

impl PublishedCounts {
    /// Publish `values` under `generation`. Called only by the owning
    /// thread; the odd phase is entered with plain stores because there is
    /// exactly one writer.
    #[inline]
    pub fn publish(&self, generation: u64, values: &[i64]) {
        let n = values.len().min(MAX_PUBLISHED_EVENTS);
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Release);
        // Element stores may be reordered among themselves (Relaxed) —
        // the bracketing stamp stores are what readers validate against.
        self.generation.store(generation, Ordering::Relaxed);
        self.len.store(n, Ordering::Relaxed);
        for (slot, &v) in self.values.iter().zip(values.iter().take(n)) {
            slot.store(v, Ordering::Relaxed);
        }
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Mark the publication area empty (set stopped / nothing published).
    pub fn clear(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Release);
        self.len.store(0, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Copy out a consistent snapshot, spin-retrying torn reads. Never
    /// blocks: an in-progress publication (odd stamp) or a stamp that
    /// moved during the copy just retries the copy loop.
    ///
    /// Returns `None` when nothing is published (len 0).
    #[inline]
    pub fn snapshot(&self) -> Option<CountSnapshot> {
        let mut spins = 0u32;
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let generation = self.generation.load(Ordering::Relaxed);
                let len = self.len.load(Ordering::Relaxed);
                let mut values = [0i64; MAX_PUBLISHED_EVENTS];
                if len <= MAX_PUBLISHED_EVENTS {
                    for (out, slot) in values.iter_mut().zip(self.values.iter()).take(len) {
                        *out = slot.load(Ordering::Relaxed);
                    }
                    // Acquire so the element loads cannot drift past the
                    // validation load.
                    let s2 = self.seq.load(Ordering::Acquire);
                    if s1 == s2 {
                        if len == 0 {
                            return None;
                        }
                        return Some(CountSnapshot {
                            generation,
                            len,
                            values,
                        });
                    }
                }
            }
            spins += 1;
            if spins >= SPINS_BEFORE_YIELD {
                spins = 0;
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl std::fmt::Debug for PublishedCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishedCounts")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn seqcell_exclusive_roundtrip_advances_stamp() {
        let cell = SeqCell::new(7u64);
        assert_eq!(cell.sequence(), 0);
        {
            let mut g = cell.lock();
            *g += 1;
            assert_eq!(cell.sequence() & 1, 1, "odd while held");
        }
        assert_eq!(cell.sequence(), 2);
        assert_eq!(*cell.lock(), 8);
        assert_eq!(cell.into_inner(), 8);
    }

    #[test]
    fn seqcell_serializes_concurrent_increments() {
        let cell = Arc::new(SeqCell::new(0u64));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *cell.lock() += 1;
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*cell.lock(), 40_000);
        // 4 * 10_000 sections + this lock's own (held) odd increment.
        assert!(cell.sequence() >= 80_000);
    }

    #[test]
    fn published_counts_snapshot_roundtrip() {
        let p = PublishedCounts::default();
        assert!(p.snapshot().is_none(), "nothing published yet");
        p.publish(3, &[10, 20, 30]);
        let s = p.snapshot().unwrap();
        assert_eq!(s.generation, 3);
        assert_eq!(s.len, 3);
        assert_eq!(&s.values[..3], &[10, 20, 30]);
        p.clear();
        assert!(p.snapshot().is_none());
    }

    #[test]
    fn published_counts_truncates_past_capacity() {
        let p = PublishedCounts::default();
        let wide: Vec<i64> = (0..MAX_PUBLISHED_EVENTS as i64 + 8).collect();
        p.publish(1, &wide);
        let s = p.snapshot().unwrap();
        assert_eq!(s.len, MAX_PUBLISHED_EVENTS);
        assert_eq!(s.values[MAX_PUBLISHED_EVENTS - 1], 15);
    }

    #[test]
    fn snapshot_never_observes_mixed_generations() {
        // Writer publishes (g, [g, 2g]) in a tight loop; readers must only
        // ever see pairs satisfying the invariant values == [g, 2*g].
        let p = Arc::new(PublishedCounts::default());
        let done = Arc::new(AtomicBool::new(false));
        let seen_total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let p = p.clone();
            let done = done.clone();
            let seen_total = seen_total.clone();
            readers.push(std::thread::spawn(move || {
                let mut seen = 0u64;
                while !done.load(Ordering::Relaxed) {
                    if let Some(s) = p.snapshot() {
                        let g = s.generation as i64;
                        assert_eq!(s.len, 2);
                        assert_eq!(s.values[0], g, "torn snapshot");
                        assert_eq!(s.values[1], 2 * g, "torn snapshot");
                        seen += 1;
                        seen_total.fetch_add(1, Ordering::Relaxed);
                    }
                }
                seen
            }));
        }
        // Publish until both readers have demonstrably observed snapshots;
        // yield periodically so single-core hosts schedule the readers.
        let mut g = 0i64;
        while seen_total.load(Ordering::Relaxed) < 200 && g < 50_000_000 {
            g += 1;
            p.publish(g as u64, &[g, 2 * g]);
            if g % 512 == 0 {
                std::thread::yield_now();
            }
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            // At least one reader must have seen snapshots (both usually
            // do, but a heavily loaded host may starve one).
            let _ = r.join().unwrap();
        }
        assert!(
            seen_total.load(Ordering::Relaxed) > 0,
            "no reader ever saw a snapshot"
        );
    }
}
