//! Session lifecycle: library initialization, hardware discovery, timers,
//! precise sampling, and the self-instrumentation attachment points.
//!
//! The [`Papi`] struct lives here; its start/stop/read machinery is in
//! [`crate::dispatch`] and its event/EventSet bookkeeping in
//! [`crate::events`].

use crate::alloc::{AllocCache, AllocModel};
use crate::dispatch::{OvfHandler, ReadScratch, Running};
use crate::error::Result;
use crate::eventset::EventSetData;
use crate::highlevel;
use crate::preset::PresetTable;
use crate::profile::{Profil, ProfilConfig};
use crate::registry::SubstrateRegistry;
use crate::sampling;
use crate::substrate::{BoxSubstrate, HwInfo, SimSubstrate, Substrate};
use crate::PapiError;
use simcpu::{Granularity, SampleConfig, SampleRecord, ThreadId};

/// The library handle: one per monitored machine, like `PAPI_library_init`.
///
/// Generic over the substrate for static dispatch (`Papi<SimSubstrate>` is
/// the default); sessions built through [`Papi::init_named`] hold a
/// [`BoxSubstrate`] selected from the [`SubstrateRegistry`] at runtime.
pub struct Papi<S: Substrate = SimSubstrate> {
    // The first four fields are the complete working set of the fast-path
    // `read_into` (dispatch.rs destructures them into disjoint borrows):
    // keeping them adjacent keeps the steady-state read inside the
    // struct's leading cache lines.
    pub(crate) sub: S,
    pub(crate) running: Option<Running>,
    /// Reusable hot-path buffers (native counts, multiplex estimates,
    /// staged values, programming table): the zero-allocation read path.
    pub(crate) scratch: ReadScratch,
    /// How many times a transient ([`PapiError::SubstrateTransient`])
    /// substrate failure is retried before surfacing to the caller.
    pub(crate) retry_budget: u32,
    /// Self-instrumentation sink. `None` (the default) disables the layer:
    /// every hook is a cheap `Option` check and no state is kept.
    pub(crate) obs: Option<papi_obs::ObsHandle>,
    pub(crate) presets: PresetTable,
    pub(crate) sets: Vec<Option<EventSetData>>,
    pub(crate) handlers: Vec<OvfHandler>,
    pub(crate) profils: Vec<Profil>,
    pub(crate) sampling_cfg: Option<SampleConfig>,
    pub(crate) sampling_buf: Vec<SampleRecord>,
    pub(crate) hl: Option<highlevel::HlState>,
    /// The substrate's allocation-translation model, materialized once at
    /// init so start/partition paths never rebuild it per call.
    pub(crate) alloc_model: AllocModel,
    /// Memoized allocator solutions keyed by native-code signature.
    pub(crate) alloc_memo: AllocCache,
}

/// Default bound on transient-error retries per substrate operation.
pub const DEFAULT_TRANSIENT_RETRY_BUDGET: u32 = 4;

impl<S: Substrate> std::fmt::Debug for Papi<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Papi")
            .field("sets", &self.sets.iter().filter(|s| s.is_some()).count())
            .field("running", &self.running.is_some())
            .finish_non_exhaustive()
    }
}

impl Papi<BoxSubstrate> {
    /// Initialize the library on a substrate selected by registry name
    /// (e.g. `"sim:x86"`, `"sim-power3"`, `"perfctr"` once registered),
    /// with the default deterministic seed.
    ///
    /// The dynamic-dispatch twin of [`Papi::init`]: the session holds a
    /// [`BoxSubstrate`], so one binary can serve any registered backend.
    pub fn init_named(name: &str) -> Result<Papi<BoxSubstrate>> {
        Papi::init_named_seeded(name, 42)
    }

    /// [`Papi::init_named`] with an explicit machine seed.
    pub fn init_named_seeded(name: &str, seed: u64) -> Result<Papi<BoxSubstrate>> {
        Papi::init_from_registry(&SubstrateRegistry::with_builtin(), name, seed)
    }

    /// [`Papi::init_named`] against a caller-supplied registry (one that
    /// other crates have added their backends to).
    pub fn init_from_registry(
        reg: &SubstrateRegistry,
        name: &str,
        seed: u64,
    ) -> Result<Papi<BoxSubstrate>> {
        Papi::init(reg.create(name, seed)?)
    }
}

impl<S: Substrate> Papi<S> {
    /// Initialize the library on a substrate: builds the preset table by
    /// mapping every standard event onto this platform's native events,
    /// using the substrate's allocation model for feasibility checks.
    pub fn init(sub: S) -> Result<Self> {
        let alloc_model = sub.alloc_model();
        let presets = PresetTable::build_with(sub.native_events(), &alloc_model);
        Ok(Papi {
            sub,
            presets,
            sets: Vec::new(),
            running: None,
            handlers: Vec::new(),
            profils: Vec::new(),
            sampling_cfg: None,
            sampling_buf: Vec::new(),
            hl: None,
            obs: None,
            alloc_model,
            alloc_memo: AllocCache::new(),
            scratch: ReadScratch::default(),
            retry_budget: DEFAULT_TRANSIENT_RETRY_BUDGET,
        })
    }

    /// Bound the transient-error retry loop: a substrate operation that
    /// keeps failing with [`PapiError::SubstrateTransient`] is reissued at
    /// most `budget` times before the error surfaces to the caller
    /// (`PAPI_EMISC`). Zero disables retrying entirely.
    pub fn set_transient_retry_budget(&mut self, budget: u32) {
        self.retry_budget = budget;
    }

    /// The configured transient-error retry budget.
    pub fn transient_retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Attach a self-instrumentation context: from here on, API traffic,
    /// multiplex rotations, overflow dispatches and allocator effort are
    /// accounted into `obs`'s registry (and journal, when enabled).
    ///
    /// The instrumentation performs no costed substrate operations, so
    /// attaching it never perturbs virtual-time measurements.
    pub fn attach_obs(&mut self, obs: papi_obs::ObsHandle) {
        self.obs = Some(obs);
    }

    /// Detach and return the self-instrumentation context, if any.
    pub fn detach_obs(&mut self) -> Option<papi_obs::ObsHandle> {
        self.obs.take()
    }

    /// The attached self-instrumentation context, if any.
    pub fn obs(&self) -> Option<&papi_obs::ObsHandle> {
        self.obs.as_ref()
    }

    /// The substrate (read-only).
    pub fn substrate(&self) -> &S {
        &self.sub
    }

    /// The substrate (e.g. to load programs on a [`SimSubstrate`]).
    pub fn substrate_mut(&mut self) -> &mut S {
        &mut self.sub
    }

    /// `PAPI_get_hardware_info`.
    pub fn hw_info(&self) -> HwInfo {
        self.sub.hw_info()
    }

    /// `PAPI_num_counters`.
    pub fn num_counters(&self) -> usize {
        self.sub.num_counters()
    }

    /// The preset table built for this platform.
    pub fn preset_table(&self) -> &PresetTable {
        &self.presets
    }

    /// `PAPI_set_granularity` (machine-wide or per-thread counting).
    pub fn set_granularity(&mut self, g: Granularity) {
        self.sub.set_granularity(g);
    }

    // --- precise sampling ---------------------------------------------------

    /// Enable hardware precise sampling (ProfileMe/EAR). Samples accumulate
    /// while the application runs under [`Papi::run_app`]/[`Papi::next_event`];
    /// collect them with [`Papi::take_samples`] or [`Papi::stop_sampling`].
    ///
    /// Sampling hardware observes retirement only while the PMU is running,
    /// i.e. while an EventSet is started.
    pub fn start_sampling(&mut self, cfg: SampleConfig) -> Result<()> {
        self.sub.configure_sampling(Some(cfg))?;
        self.sampling_cfg = Some(cfg);
        self.sampling_buf.clear();
        Ok(())
    }

    /// Disable sampling and return every sample collected since
    /// [`Papi::start_sampling`].
    pub fn stop_sampling(&mut self) -> Result<Vec<SampleRecord>> {
        if self.sampling_cfg.is_none() {
            return Err(PapiError::NotRun);
        }
        let tail = self.sub.drain_samples();
        self.sampling_buf.extend(tail);
        self.sub.configure_sampling(None)?;
        self.sampling_cfg = None;
        Ok(std::mem::take(&mut self.sampling_buf))
    }

    /// Drain the samples collected so far (sampling stays enabled).
    pub fn take_samples(&mut self) -> Vec<SampleRecord> {
        let tail = self.sub.drain_samples();
        self.sampling_buf.extend(tail);
        std::mem::take(&mut self.sampling_buf)
    }

    /// The configured sampling period, if sampling is active.
    pub fn sampling_period(&self) -> Option<u64> {
        self.sampling_cfg.map(|c| c.period)
    }

    /// Pull hardware-buffered samples into the session buffer without
    /// consuming them.
    fn sync_samples(&mut self) {
        let tail = self.sub.drain_samples();
        self.sampling_buf.extend(tail);
    }

    /// PAPI-3 "hardware assisted profiling": build a profiling histogram for
    /// `kind` from the precise samples collected so far (the samples stay in
    /// the session). Attribution is exact — no skid.
    pub fn sampled_histogram(
        &mut self,
        kind: simcpu::EventKind,
        cfg: ProfilConfig,
    ) -> Result<Profil> {
        if self.sampling_cfg.is_none() {
            return Err(PapiError::NotRun);
        }
        self.sync_samples();
        Ok(sampling::profile_from_samples(
            &self.sampling_buf,
            kind,
            cfg,
        ))
    }

    /// PAPI-3 "option for estimating counts from samples": aggregate-count
    /// estimates for `kinds` from the samples collected so far.
    pub fn estimate_counts_from_samples(
        &mut self,
        kinds: &[simcpu::EventKind],
    ) -> Result<Vec<u64>> {
        let Some(cfg) = self.sampling_cfg else {
            return Err(PapiError::NotRun);
        };
        self.sync_samples();
        Ok(sampling::estimate_counts(
            &self.sampling_buf,
            cfg.period,
            kinds,
        ))
    }

    // --- timers (the "most popular feature") --------------------------------

    /// `PAPI_get_real_cyc`.
    pub fn get_real_cyc(&self) -> u64 {
        self.sub.real_cycles()
    }

    /// `PAPI_get_real_usec`.
    pub fn get_real_usec(&self) -> u64 {
        self.sub.real_ns() / 1000
    }

    /// Wall-clock nanoseconds (finer than the C API offered).
    pub fn get_real_ns(&self) -> u64 {
        self.sub.real_ns()
    }

    /// `PAPI_get_virt_usec`: user-mode time of a thread.
    pub fn get_virt_usec(&self, thread: ThreadId) -> Result<u64> {
        Ok(self.sub.virt_ns(thread)? / 1000)
    }

    /// Virtual nanoseconds.
    pub fn get_virt_ns(&self, thread: ThreadId) -> Result<u64> {
        self.sub.virt_ns(thread)
    }

    /// `PAPI_get_mem_info`-style memory utilization (PAPI-3 extension).
    pub fn get_mem_info(&self, thread: ThreadId) -> Result<simcpu::MemInfo> {
        self.sub.mem_info(thread)
    }
}
