//! Thread-scalable counting: a sharded session table with per-thread
//! EventSets.
//!
//! The paper's low-level interface is explicitly built for threaded
//! runtimes: "PAPI supports measurements per-thread" via
//! `PAPI_thread_init`, with each thread owning its own counter context so
//! the substrate virtualizes the hardware per thread of execution. This
//! module is that model's portable-layer half:
//!
//! * [`ThreadedPapi`] is the shareable library handle (`Arc<ThreadedPapi>`
//!   is usable from N threads). It holds a fixed array of [`NUM_SHARDS`]
//!   shards; each shard owns a slot table of registered per-thread
//!   sessions, so id lookups touch only the owning shard and registration
//!   traffic on one shard never contends with another.
//! * [`ThreadedPapi::register_thread`] mirrors `PAPI_register_thread`:
//!   the calling OS thread receives a [`PapiThread`] token wrapping a
//!   complete private [`Papi`] session — its **own substrate context** —
//!   so two threads' counts cannot bleed by construction.
//! * EventSet ids handed out through a token are [`TaggedSetId`]s carrying
//!   the owning `(shard, slot)` tag; using another thread's id is detected
//!   arithmetically and rejected with [`PapiError::Inval`] (counted as
//!   `threads.cross_thread_denied` when observability is attached), never
//!   a panic or a silent read of foreign counters.
//!
//! ## Hot path
//!
//! A [`PapiThread`] caches the `Arc` of its own session cell, so
//! `start`/`read_into`/`accum`/`stop` take exactly one uncontended
//! per-thread mutex — no shared table lock, no allocation (the PR 3
//! zero-allocation read path is preserved per thread). The shared
//! structures ([`ThreadedPapi::by_thread`] map, shard slot tables) are
//! touched only by cold registration/unregistration and by explicit
//! cross-shard lookups.
//!
//! Overflow dispatch is safe under concurrency for the same reason: each
//! session's handlers and `profil` histograms live inside that session's
//! mutex, so a handler only ever runs on the thread driving its own
//! session.

use crate::error::{PapiError, Result};
use crate::eventset::{EventSetId, SetState};
use crate::registry::SubstrateRegistry;
use crate::session::Papi;
use crate::substrate::{BoxSubstrate, Substrate};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId as OsThreadId;

/// Number of shards in the session table. Fixed so shard indices fit the
/// [`TaggedSetId`] tag and lookups are a mask away.
pub const NUM_SHARDS: usize = 16;

const LOCAL_BITS: u32 = 32;
const SLOT_BITS: u32 = 24;
const SHARD_SHIFT: u32 = LOCAL_BITS + SLOT_BITS;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
const LOCAL_MASK: u64 = (1 << LOCAL_BITS) - 1;

/// A thread-tagged EventSet id: `shard (8 bits) | slot (24 bits) |
/// session-local id (32 bits)`.
///
/// The tag routes the id to the one shard slot whose session owns it, and
/// lets any API entry point prove cheaply that an id belongs to the
/// calling thread's session before touching counter state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaggedSetId(u64);

impl TaggedSetId {
    /// Pack a `(shard, slot, local)` triple into a tagged id.
    ///
    /// Panics if a component exceeds its field width (shards are bounded
    /// by [`NUM_SHARDS`]; 2^24 registrations per shard and 2^32 sets per
    /// session are far beyond any real session table).
    pub fn new(shard: usize, slot: usize, local: EventSetId) -> Self {
        assert!(shard < NUM_SHARDS, "shard {shard} out of range");
        assert!((slot as u64) <= SLOT_MASK, "slot {slot} out of range");
        assert!(
            (local as u64) <= LOCAL_MASK,
            "local id {local} out of range"
        );
        TaggedSetId(
            ((shard as u64) << SHARD_SHIFT) | ((slot as u64) << LOCAL_BITS) | (local as u64),
        )
    }

    /// Shard component of the tag.
    pub fn shard(self) -> usize {
        (self.0 >> SHARD_SHIFT) as usize
    }

    /// Slot component of the tag.
    pub fn slot(self) -> usize {
        ((self.0 >> LOCAL_BITS) & SLOT_MASK) as usize
    }

    /// Session-local [`EventSetId`].
    pub fn local(self) -> EventSetId {
        (self.0 & LOCAL_MASK) as EventSetId
    }

    /// Raw packed representation (e.g. for FFI transport).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw packed representation.
    pub fn from_raw(raw: u64) -> Self {
        TaggedSetId(raw)
    }
}

/// One registered thread's session cell. The mutex is per-thread and
/// therefore uncontended in correct use; it exists so the owning token is
/// `Send` and so cross-shard lookups stay memory-safe even under misuse.
struct ThreadCell<S: Substrate + Send> {
    session: Mutex<Papi<S>>,
}

struct Shard<S: Substrate + Send> {
    slots: Mutex<Vec<Option<Arc<ThreadCell<S>>>>>,
}

type SessionFactory<S> = Box<dyn Fn(u64) -> Result<Papi<S>> + Send + Sync>;

/// The thread-shareable library handle: a sharded table of per-thread
/// [`Papi`] sessions plus the factory that builds each registered
/// thread's private substrate context.
///
/// `ThreadedPapi` is `Send + Sync`; wrap it in an `Arc` and clone the
/// handle into every thread that should count.
pub struct ThreadedPapi<S: Substrate + Send = BoxSubstrate> {
    shards: [Shard<S>; NUM_SHARDS],
    /// OS-thread → (shard, slot) of its registered session. Cold-path
    /// only: consulted at register/unregister time to reject double
    /// registration, never on the counting hot path.
    by_thread: Mutex<HashMap<OsThreadId, (usize, usize)>>,
    factory: SessionFactory<S>,
    next_seed: AtomicU64,
    obs: Option<papi_obs::ObsHandle>,
}

impl<S: Substrate + Send> ThreadedPapi<S> {
    /// A session table whose registered threads get sessions built by
    /// `factory`, seeded `base_seed`, `base_seed + 1`, ... in registration
    /// order. Factory errors surface from [`ThreadedPapi::register_thread`].
    pub fn new(
        base_seed: u64,
        factory: impl Fn(u64) -> Result<Papi<S>> + Send + Sync + 'static,
    ) -> Self {
        ThreadedPapi {
            shards: std::array::from_fn(|_| Shard {
                slots: Mutex::new(Vec::new()),
            }),
            by_thread: Mutex::new(HashMap::new()),
            factory: Box::new(factory),
            next_seed: AtomicU64::new(base_seed),
            obs: None,
        }
    }

    /// Attach a shared self-instrumentation context. Sessions registered
    /// from here on feed the same registry and journal (both are safe
    /// under concurrent writers). Call before sharing the table.
    pub fn attach_obs(&mut self, obs: papi_obs::ObsHandle) {
        self.obs = Some(obs);
    }

    /// The attached self-instrumentation context, if any.
    pub fn obs(&self) -> Option<&papi_obs::ObsHandle> {
        self.obs.as_ref()
    }

    /// Number of currently registered threads.
    pub fn registered_threads(&self) -> usize {
        self.by_thread.lock().unwrap().len()
    }

    /// Whether the calling OS thread is currently registered.
    pub fn is_registered(&self) -> bool {
        self.by_thread
            .lock()
            .unwrap()
            .contains_key(&std::thread::current().id())
    }

    fn shard_of(tid: OsThreadId) -> usize {
        let mut h = DefaultHasher::new();
        tid.hash(&mut h);
        (h.finish() as usize) % NUM_SHARDS
    }

    /// `PAPI_register_thread`: give the calling OS thread its own private
    /// session (fresh substrate context) and return the token that owns
    /// it. The session seed is drawn from the table's counter.
    pub fn register_thread(self: &Arc<Self>) -> Result<PapiThread<S>> {
        let seed = self.next_seed.fetch_add(1, Ordering::Relaxed);
        self.register_thread_seeded(seed)
    }

    /// [`ThreadedPapi::register_thread`] with an explicit substrate seed,
    /// for deterministic tests that replay a thread's workload
    /// single-threadedly.
    ///
    /// Registering a thread that is already registered fails with
    /// [`PapiError::Cnflct`] without building a session.
    pub fn register_thread_seeded(self: &Arc<Self>, seed: u64) -> Result<PapiThread<S>> {
        let tid = std::thread::current().id();
        // Hold the thread map for the whole (cold) registration so
        // check-then-insert is atomic.
        let mut map = self.by_thread.lock().unwrap();
        if map.contains_key(&tid) {
            return Err(PapiError::Cnflct);
        }
        let mut session = (self.factory)(seed)?;
        if let Some(obs) = &self.obs {
            session.attach_obs(obs.clone());
        }
        let now = session.get_real_cyc();
        let shard_i = Self::shard_of(tid);
        let cell = Arc::new(ThreadCell {
            session: Mutex::new(session),
        });
        let mut slots = self.shards[shard_i].slots.lock().unwrap();
        let slot_i = match slots.iter().position(Option::is_none) {
            Some(i) => {
                slots[i] = Some(cell.clone());
                i
            }
            None => {
                slots.push(Some(cell.clone()));
                slots.len() - 1
            }
        };
        drop(slots);
        map.insert(tid, (shard_i, slot_i));
        drop(map);
        if let Some(obs) = &self.obs {
            obs.inc(papi_obs::Counter::ThreadsRegistered);
            obs.record(now, || papi_obs::JournalEvent::ThreadRegistered {
                shard: shard_i,
                slot: slot_i,
            });
        }
        Ok(PapiThread {
            cell,
            shard: shard_i,
            slot: slot_i,
            tid,
            obs: self.obs.clone(),
        })
    }

    /// `PAPI_unregister_thread`: retire `token`'s session slot and hand
    /// the private [`Papi`] session back to the caller.
    ///
    /// Rejected (returning the token so the thread can clean up and
    /// retry) when the session still owns live EventSets — mirroring real
    /// PAPI, which refuses to unregister a thread with active counting
    /// state — or when the token belongs to a different session table.
    #[allow(clippy::result_large_err)]
    pub fn unregister_thread(
        &self,
        token: PapiThread<S>,
    ) -> std::result::Result<Papi<S>, (PapiThread<S>, PapiError)> {
        let live = {
            let session = token.cell.session.lock().unwrap();
            session.sets.iter().any(Option::is_some)
        };
        if live {
            return Err((
                token,
                PapiError::Inval("thread still owns live EventSets; destroy them first"),
            ));
        }
        let mut slots = self.shards[token.shard].slots.lock().unwrap();
        match slots.get(token.slot) {
            Some(Some(cell)) if Arc::ptr_eq(cell, &token.cell) => {}
            _ => {
                return Err((
                    token,
                    PapiError::Inval("token does not belong to this session table"),
                ));
            }
        }
        let cell = slots[token.slot].take().expect("slot checked occupied");
        drop(slots);
        self.by_thread.lock().unwrap().remove(&token.tid);
        let obs = token.obs.clone();
        let (shard_i, slot_i) = (token.shard, token.slot);
        drop(token);
        let session = Arc::try_unwrap(cell)
            .ok()
            .expect("token and slot held the only references")
            .session
            .into_inner()
            .unwrap();
        if let Some(obs) = &obs {
            obs.inc(papi_obs::Counter::ThreadsUnregistered);
            let now = session.get_real_cyc();
            obs.record(now, || papi_obs::JournalEvent::ThreadUnregistered {
                shard: shard_i,
                slot: slot_i,
            });
        }
        Ok(session)
    }

    /// Run `f` against the session owning `id`, from any thread. The
    /// lookup locks only `id`'s shard (and then the session itself);
    /// other shards are untouched. Fails with [`PapiError::NoEvst`] when
    /// the slot is vacant.
    ///
    /// This is the cross-shard escape hatch (inspection, third-party
    /// reads); threads counting on their own session should go through
    /// their [`PapiThread`] token, which skips the shard lookup entirely.
    pub fn with_session_of<R>(
        &self,
        id: TaggedSetId,
        f: impl FnOnce(&mut Papi<S>) -> R,
    ) -> Result<R> {
        if id.shard() >= NUM_SHARDS {
            return Err(PapiError::Inval("tagged id has an out-of-range shard"));
        }
        let slots = self.shards[id.shard()].slots.lock().unwrap();
        let cell = slots
            .get(id.slot())
            .and_then(Option::as_ref)
            .ok_or(PapiError::NoEvst(id.local()))?
            .clone();
        drop(slots);
        let mut session = cell.session.lock().unwrap();
        Ok(f(&mut session))
    }
}

/// A registered thread's handle to its own private session.
///
/// Obtained from [`ThreadedPapi::register_thread`]; the token caches the
/// session cell, so every operation is tag-check + one uncontended mutex.
/// All EventSet ids it hands out are [`TaggedSetId`]s; passing an id
/// minted by another thread's token is rejected with
/// [`PapiError::Inval`].
pub struct PapiThread<S: Substrate + Send> {
    cell: Arc<ThreadCell<S>>,
    shard: usize,
    slot: usize,
    tid: OsThreadId,
    obs: Option<papi_obs::ObsHandle>,
}

impl<S: Substrate + Send> std::fmt::Debug for PapiThread<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PapiThread")
            .field("shard", &self.shard)
            .field("slot", &self.slot)
            .field("tid", &self.tid)
            .finish_non_exhaustive()
    }
}

impl<S: Substrate + Send> std::fmt::Debug for ThreadedPapi<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedPapi")
            .field("registered_threads", &self.registered_threads())
            .finish_non_exhaustive()
    }
}

impl<S: Substrate + Send> PapiThread<S> {
    /// Shard this thread's session slot lives in.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Slot index within the shard.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Tag a session-local id with this thread's `(shard, slot)`.
    fn tag(&self, local: EventSetId) -> TaggedSetId {
        TaggedSetId::new(self.shard, self.slot, local)
    }

    /// Untag `id`, proving it belongs to this thread's session.
    fn check(&self, id: TaggedSetId) -> Result<EventSetId> {
        if id.shard() == self.shard && id.slot() == self.slot {
            Ok(id.local())
        } else {
            if let Some(obs) = &self.obs {
                obs.inc(papi_obs::Counter::CrossThreadDenied);
            }
            Err(PapiError::Inval(
                "EventSet id is tagged for a different thread's session",
            ))
        }
    }

    /// Full access to the underlying session, for the parts of the API
    /// not mirrored here (sampling, profil, timers, substrate access).
    /// EventSet ids inside the closure are session-local.
    pub fn with<R>(&self, f: impl FnOnce(&mut Papi<S>) -> R) -> R {
        f(&mut self.cell.session.lock().unwrap())
    }

    /// `PAPI_create_eventset`, returning a thread-tagged id.
    pub fn create_eventset(&self) -> TaggedSetId {
        self.tag(self.cell.session.lock().unwrap().create_eventset())
    }

    /// `PAPI_destroy_eventset`.
    pub fn destroy_eventset(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().destroy_eventset(local)
    }

    /// `PAPI_add_event`.
    pub fn add_event(&self, id: TaggedSetId, code: u32) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().add_event(local, code)
    }

    /// `PAPI_add_events`.
    pub fn add_events(&self, id: TaggedSetId, codes: &[u32]) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().add_events(local, codes)
    }

    /// `PAPI_remove_event`.
    pub fn remove_event(&self, id: TaggedSetId, code: u32) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().remove_event(local, code)
    }

    /// `PAPI_num_events`.
    pub fn num_events(&self, id: TaggedSetId) -> Result<usize> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().num_events(local)
    }

    /// `PAPI_state`.
    pub fn state(&self, id: TaggedSetId) -> Result<SetState> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().state(local)
    }

    /// `PAPI_set_multiplex` (the multiplex timer is per-session, hence
    /// per-thread: one thread's rotations never touch another's
    /// hardware).
    pub fn set_multiplex(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().set_multiplex(local)
    }

    /// `PAPI_start`.
    pub fn start(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().start(local)
    }

    /// `PAPI_read` into a caller buffer — the per-thread zero-allocation
    /// hot path: tag check (arithmetic), one uncontended mutex, then the
    /// cached read plan.
    pub fn read_into(&self, id: TaggedSetId, out: &mut [i64]) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().read_into(local, out)
    }

    /// `PAPI_read`, allocating the result vector.
    pub fn read(&self, id: TaggedSetId) -> Result<Vec<i64>> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().read(local)
    }

    /// `PAPI_accum`.
    pub fn accum(&self, id: TaggedSetId, values: &mut [i64]) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().accum(local, values)
    }

    /// `PAPI_reset`.
    pub fn reset(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().reset(local)
    }

    /// `PAPI_stop`.
    pub fn stop(&self, id: TaggedSetId) -> Result<Vec<i64>> {
        let local = self.check(id)?;
        self.cell.session.lock().unwrap().stop(local)
    }

    /// Run this thread's application to completion (see
    /// [`Papi::run_app`]).
    pub fn run_app(&self) -> Result<()> {
        self.cell.session.lock().unwrap().run_app()
    }

    /// Run this thread's application for `budget` cycles (see
    /// [`Papi::run_for`]).
    pub fn run_for(&self, budget: u64) -> Result<crate::dispatch::AppExit> {
        self.cell.session.lock().unwrap().run_for(budget)
    }
}

impl ThreadedPapi<BoxSubstrate> {
    /// A session table whose threads get registry-selected substrates
    /// (e.g. `"sim:x86"`), seeded from `base_seed`.
    pub fn named(name: &str, base_seed: u64) -> Self {
        Self::from_registry(Arc::new(SubstrateRegistry::with_builtin()), name, base_seed)
    }

    /// [`ThreadedPapi::named`] against a caller-supplied registry (one
    /// that other crates have added their backends to). Unknown names
    /// surface as errors from [`ThreadedPapi::register_thread`].
    pub fn from_registry(reg: Arc<SubstrateRegistry>, name: &str, base_seed: u64) -> Self {
        let name = name.to_string();
        Self::new(base_seed, move |seed| {
            Papi::init_from_registry(&reg, &name, seed)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SimSubstrate;
    use crate::Preset;
    use simcpu::{platform, Machine, ProgramBuilder};

    fn pool() -> Arc<ThreadedPapi<SimSubstrate>> {
        Arc::new(ThreadedPapi::new(100, |seed| {
            let mut m = Machine::new(platform::sim_generic(), seed);
            let mut b = ProgramBuilder::new();
            b.func("main", |f| {
                f.loop_(1000, |f| {
                    f.ffma(4);
                });
            });
            m.load(b.build("main"));
            Papi::init(SimSubstrate::new(m))
        }))
    }

    #[test]
    fn tagged_id_roundtrip() {
        for &(shard, slot, local) in &[
            (0usize, 0usize, 0usize),
            (NUM_SHARDS - 1, (SLOT_MASK as usize), LOCAL_MASK as usize),
            (3, 7, 11),
        ] {
            let id = TaggedSetId::new(shard, slot, local);
            assert_eq!(id.shard(), shard);
            assert_eq!(id.slot(), slot);
            assert_eq!(id.local(), local);
            assert_eq!(TaggedSetId::from_raw(id.raw()), id);
        }
    }

    #[test]
    fn threaded_papi_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThreadedPapi<SimSubstrate>>();
        assert_send_sync::<ThreadedPapi<BoxSubstrate>>();
        fn assert_send<T: Send>() {}
        assert_send::<PapiThread<SimSubstrate>>();
        assert_send::<Papi<BoxSubstrate>>();
    }

    #[test]
    fn register_count_and_unregister() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        assert!(pool.is_registered());
        assert_eq!(pool.registered_threads(), 1);

        let set = token.create_eventset();
        token.add_event(set, Preset::FpOps.code()).unwrap();
        token.start(set).unwrap();
        token.run_app().unwrap();
        let counts = token.stop(set).unwrap();
        assert_eq!(counts[0], 8000);

        token.destroy_eventset(set).unwrap();
        let session = pool.unregister_thread(token).expect("no live sets");
        assert!(session.get_real_cyc() > 0);
        assert!(!pool.is_registered());
        assert_eq!(pool.registered_threads(), 0);
    }

    #[test]
    fn double_register_rejected() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        assert!(matches!(pool.register_thread(), Err(PapiError::Cnflct)));
        // After unregistering, the same thread may register again.
        let session = pool.unregister_thread(token).unwrap();
        drop(session);
        let token2 = pool.register_thread().unwrap();
        drop(token2);
    }

    #[test]
    fn unregister_with_live_eventsets_rejected_and_returns_token() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        token.add_event(set, Preset::TotCyc.code()).unwrap();
        let (token, err) = pool.unregister_thread(token).unwrap_err();
        assert!(matches!(err, PapiError::Inval(_)));
        // The token still works; cleanup and retry succeeds.
        token.destroy_eventset(set).unwrap();
        pool.unregister_thread(token).expect("retry after cleanup");
    }

    #[test]
    fn cross_thread_id_rejected_not_panicking() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        // Forge an id tagged for a different slot in a different shard.
        let foreign = TaggedSetId::new((set.shard() + 1) % NUM_SHARDS, set.slot() + 1, set.local());
        for err in [
            token.start(foreign).unwrap_err(),
            token.read_into(foreign, &mut [0i64; 4]).unwrap_err(),
            token.destroy_eventset(foreign).unwrap_err(),
        ] {
            assert!(matches!(err, PapiError::Inval(_)));
        }
        // The legitimate id still works.
        token.add_event(set, Preset::TotCyc.code()).unwrap();
    }

    #[test]
    fn cross_thread_denials_are_counted() {
        let pool = {
            let mut p = ThreadedPapi::new(7, |seed| {
                let m = Machine::new(platform::sim_generic(), seed);
                Papi::init(SimSubstrate::new(m))
            });
            p.attach_obs(papi_obs::Obs::new());
            Arc::new(p)
        };
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        let foreign = TaggedSetId::new((set.shard() + 1) % NUM_SHARDS, set.slot(), set.local());
        assert!(token.start(foreign).is_err());
        let obs = pool.obs().unwrap();
        assert_eq!(obs.get(papi_obs::Counter::CrossThreadDenied), 1);
        assert_eq!(obs.get(papi_obs::Counter::ThreadsRegistered), 1);
    }

    #[test]
    fn registration_from_many_threads_lands_in_shards() {
        let pool = pool();
        let mut joins = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            joins.push(std::thread::spawn(move || {
                let token = pool.register_thread().unwrap();
                let set = token.create_eventset();
                token.add_event(set, Preset::TotIns.code()).unwrap();
                token.start(set).unwrap();
                token.run_app().unwrap();
                let counts = token.stop(set).unwrap();
                token.destroy_eventset(set).unwrap();
                pool.unregister_thread(token).unwrap();
                counts[0]
            }));
        }
        let counts: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        // Every thread ran its own identical program on its own machine.
        assert!(counts.iter().all(|&c| c == counts[0] && c > 0));
        assert_eq!(pool.registered_threads(), 0);
    }

    #[test]
    fn with_session_of_routes_by_tag() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        token.add_event(set, Preset::TotCyc.code()).unwrap();
        let n = pool
            .with_session_of(set, |papi| papi.num_events(set.local()).unwrap())
            .unwrap();
        assert_eq!(n, 1);
        // A vacant slot is a NoEvst error, not a panic.
        let vacant = TaggedSetId::new(set.shard(), set.slot() + 1, 0);
        assert!(pool.with_session_of(vacant, |_| ()).is_err());
    }
}
