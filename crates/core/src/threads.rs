//! Thread-scalable counting: a read-mostly session table with per-thread
//! EventSets and a lock-free steady-state read path.
//!
//! The paper's low-level interface is explicitly built for threaded
//! runtimes: "PAPI supports measurements per-thread" via
//! `PAPI_thread_init`, with each thread owning its own counter context so
//! the substrate virtualizes the hardware per thread of execution. This
//! module is that model's portable-layer half:
//!
//! * [`ThreadedPapi`] is the shareable library handle (`Arc<ThreadedPapi>`
//!   is usable from N threads). It publishes an RCU-style slot table:
//!   readers follow one atomic pointer load to the current table, while
//!   register/unregister clone-and-publish a replacement under a cold-path
//!   mutex. No lock is ever taken to *find* a session.
//! * [`ThreadedPapi::register_thread`] mirrors `PAPI_register_thread`:
//!   the calling OS thread receives a [`PapiThread`] token wrapping a
//!   complete private [`Papi`] session — its **own substrate context** —
//!   so two threads' counts cannot bleed by construction.
//! * EventSet ids handed out through a token are [`TaggedSetId`]s carrying
//!   the owning `(shard, slot)` tag; using another thread's id is detected
//!   arithmetically and rejected with [`PapiError::Inval`] (counted as
//!   `threads.cross_thread_denied` when observability is attached), never
//!   a panic or a silent read of foreign counters.
//!
//! ## Hot path (lock-free)
//!
//! A [`PapiThread`] caches the `Arc` of its own session cell. The cell is
//! a [`SeqCell`], not a mutex: `start`/`read_into`/`accum`/`stop` enter
//! the cell's odd sequence phase with a single uncontended
//! compare-exchange and leave it with a single store — no OS mutex, no
//! parking, no poisoning. Observers on *other* threads never touch that
//! word at all: every successful `read_into` also publishes its values
//! into the cell's [`PublishedCounts`] seqlock area, which
//! [`ThreadedPapi::snapshot_counts`] reads wait-free from any thread
//! (spin-retrying torn copies, never blocking the owner). Reprogramming
//! operations (`start`/`reset`/`stop`/`accum`) bump the published
//! *generation*, so an observer can always tell "the counters restarted"
//! from "the counters advanced" and can never see a mix of two
//! programming epochs.
//!
//! See DESIGN.md "Memory model of the read path" for the full invariant
//! list (who writes each stamp, why torn derived-event terms are
//! unobservable, and how this orders against papi-obs journal sequence
//! numbers).
//!
//! Overflow dispatch is safe under concurrency for the same reason as
//! before: each session's handlers and `profil` histograms live inside
//! that session's exclusive phase, so a handler only ever runs on the
//! thread driving its own session.

use crate::error::{PapiError, Result};
use crate::eventset::{EventSetId, SetState};
use crate::registry::SubstrateRegistry;
use crate::seqlock::{CountSnapshot, PublishedCounts, SeqCell};
use crate::session::Papi;
use crate::substrate::{BoxSubstrate, Substrate};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId as OsThreadId;

/// Number of shards in the session table. Fixed so shard indices fit the
/// [`TaggedSetId`] tag and lookups are a mask away.
pub const NUM_SHARDS: usize = 16;

const LOCAL_BITS: u32 = 32;
const SLOT_BITS: u32 = 24;
const SHARD_SHIFT: u32 = LOCAL_BITS + SLOT_BITS;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
const LOCAL_MASK: u64 = (1 << LOCAL_BITS) - 1;

/// A thread-tagged EventSet id: `shard (8 bits) | slot (24 bits) |
/// session-local id (32 bits)`.
///
/// The tag routes the id to the one shard slot whose session owns it, and
/// lets any API entry point prove cheaply that an id belongs to the
/// calling thread's session before touching counter state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaggedSetId(u64);

impl TaggedSetId {
    /// Pack a `(shard, slot, local)` triple into a tagged id.
    ///
    /// Panics if a component exceeds its field width (shards are bounded
    /// by [`NUM_SHARDS`]; 2^24 registrations per shard and 2^32 sets per
    /// session are far beyond any real session table).
    pub fn new(shard: usize, slot: usize, local: EventSetId) -> Self {
        assert!(shard < NUM_SHARDS, "shard {shard} out of range");
        assert!((slot as u64) <= SLOT_MASK, "slot {slot} out of range");
        assert!(
            (local as u64) <= LOCAL_MASK,
            "local id {local} out of range"
        );
        TaggedSetId(
            ((shard as u64) << SHARD_SHIFT) | ((slot as u64) << LOCAL_BITS) | (local as u64),
        )
    }

    /// Shard component of the tag.
    pub fn shard(self) -> usize {
        (self.0 >> SHARD_SHIFT) as usize
    }

    /// Slot component of the tag.
    pub fn slot(self) -> usize {
        ((self.0 >> LOCAL_BITS) & SLOT_MASK) as usize
    }

    /// Session-local [`EventSetId`].
    pub fn local(self) -> EventSetId {
        (self.0 & LOCAL_MASK) as EventSetId
    }

    /// Raw packed representation (e.g. for FFI transport).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw packed representation.
    pub fn from_raw(raw: u64) -> Self {
        TaggedSetId(raw)
    }
}

/// One registered thread's session cell.
///
/// `session` holds the private [`Papi`] behind a [`SeqCell`]: exclusive
/// access is one uncontended compare-exchange for the owning token (and a
/// spin for the rare cross-thread inspector). `Option` so unregistration
/// can move the session out while stale RCU tables still reference the
/// cell shell — a vacated cell answers [`PapiError::NoEvst`], never
/// dangles.
///
/// `published` is the seqlock snapshot area observers read without ever
/// touching the exclusive word; `generation` stamps which programming
/// epoch the published values belong to.
struct ThreadCell<S: Substrate + Send> {
    session: SeqCell<Option<Papi<S>>>,
    published: PublishedCounts,
    generation: AtomicU64,
}

/// The RCU-published slot table: registration traffic replaces the whole
/// table (clone-and-publish), readers follow one atomic pointer. Shards
/// exist for the [`TaggedSetId`] tag space, not for locking — the table
/// has no locks at all.
struct SlotTable<S: Substrate + Send> {
    shards: [Vec<Option<Arc<ThreadCell<S>>>>; NUM_SHARDS],
}

impl<S: Substrate + Send> SlotTable<S> {
    fn empty() -> Self {
        SlotTable {
            shards: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// A structural clone (the `Arc` slot entries are refcount bumps).
    fn clone_shards(&self) -> Self {
        SlotTable {
            shards: std::array::from_fn(|i| self.shards[i].clone()),
        }
    }

    fn cell(&self, shard: usize, slot: usize) -> Option<&Arc<ThreadCell<S>>> {
        self.shards.get(shard)?.get(slot)?.as_ref()
    }
}

type SessionFactory<S> = Box<dyn Fn(u64) -> Result<Papi<S>> + Send + Sync>;

/// The thread-shareable library handle: an RCU-published table of
/// per-thread [`Papi`] sessions plus the factory that builds each
/// registered thread's private substrate context.
///
/// `ThreadedPapi` is `Send + Sync`; wrap it in an `Arc` and clone the
/// handle into every thread that should count.
pub struct ThreadedPapi<S: Substrate + Send = BoxSubstrate> {
    /// The current slot table. Readers load this pointer (Acquire) and
    /// index it; writers swap in a freshly built table under `reg`.
    ///
    /// Safety invariant: every pointer ever stored here remains valid for
    /// the lifetime of `self` — superseded tables move to `retired`
    /// instead of being freed, so a reader holding `&self` can never
    /// observe a dangling table (the RCU grace period is the handle's
    /// lifetime; registration is cold and tables are small).
    table: AtomicPtr<SlotTable<S>>,
    /// Superseded tables, kept alive until drop (see `table`). The `Box`
    /// is load-bearing, not indirection for its own sake: lock-free
    /// readers may still hold references into a superseded table, so it
    /// must keep the exact heap address the `AtomicPtr` once pointed at —
    /// a `Vec<SlotTable>` would relocate it on push.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<SlotTable<S>>>>,
    /// Registration state and the writer lock for `table`: OS-thread →
    /// (shard, slot) of its registered session. Cold-path only — never on
    /// the counting or snapshot hot paths.
    reg: Mutex<HashMap<OsThreadId, (usize, usize)>>,
    factory: SessionFactory<S>,
    next_seed: AtomicU64,
    obs: Option<papi_obs::ObsHandle>,
}

impl<S: Substrate + Send> Drop for ThreadedPapi<S> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no readers remain; the published
        // table was allocated by Box::into_raw in `publish_table`/`new`.
        let cur = self.table.load(Ordering::Acquire);
        drop(unsafe { Box::from_raw(cur) });
        // `retired` drops its boxes normally.
    }
}

impl<S: Substrate + Send> ThreadedPapi<S> {
    /// A session table whose registered threads get sessions built by
    /// `factory`, seeded `base_seed`, `base_seed + 1`, ... in registration
    /// order. Factory errors surface from [`ThreadedPapi::register_thread`].
    pub fn new(
        base_seed: u64,
        factory: impl Fn(u64) -> Result<Papi<S>> + Send + Sync + 'static,
    ) -> Self {
        ThreadedPapi {
            table: AtomicPtr::new(Box::into_raw(Box::new(SlotTable::empty()))),
            retired: Mutex::new(Vec::new()),
            reg: Mutex::new(HashMap::new()),
            factory: Box::new(factory),
            next_seed: AtomicU64::new(base_seed),
            obs: None,
        }
    }

    /// Attach a shared self-instrumentation context. Sessions registered
    /// from here on feed the same registry and journal (both are safe
    /// under concurrent writers). Call before sharing the table.
    pub fn attach_obs(&mut self, obs: papi_obs::ObsHandle) {
        self.obs = Some(obs);
    }

    /// The attached self-instrumentation context, if any.
    pub fn obs(&self) -> Option<&papi_obs::ObsHandle> {
        self.obs.as_ref()
    }

    /// Number of currently registered threads.
    pub fn registered_threads(&self) -> usize {
        self.reg.lock().unwrap().len()
    }

    /// Whether the calling OS thread is currently registered.
    pub fn is_registered(&self) -> bool {
        self.reg
            .lock()
            .unwrap()
            .contains_key(&std::thread::current().id())
    }

    /// The currently published slot table.
    #[inline]
    fn current(&self) -> &SlotTable<S> {
        // SAFETY: pointers published to `table` stay alive until `self`
        // drops (superseded tables are retired, not freed), and the
        // returned borrow is tied to `&self`.
        unsafe { &*self.table.load(Ordering::Acquire) }
    }

    /// Swap `new` in as the published table; the superseded table is
    /// retired (kept alive) so in-flight readers stay valid. Callers must
    /// hold the `reg` lock — it is the writer lock for the table.
    fn publish_table(&self, new: SlotTable<S>) {
        let fresh = Box::into_raw(Box::new(new));
        let old = self.table.swap(fresh, Ordering::AcqRel);
        // SAFETY: `old` came from Box::into_raw and is no longer
        // published; boxing it into `retired` defers the free to drop.
        self.retired
            .lock()
            .unwrap()
            .push(unsafe { Box::from_raw(old) });
    }

    fn shard_of(tid: OsThreadId) -> usize {
        let mut h = DefaultHasher::new();
        tid.hash(&mut h);
        (h.finish() as usize) % NUM_SHARDS
    }

    /// `PAPI_register_thread`: give the calling OS thread its own private
    /// session (fresh substrate context) and return the token that owns
    /// it. The session seed is drawn from the table's counter.
    pub fn register_thread(self: &Arc<Self>) -> Result<PapiThread<S>> {
        let seed = self.next_seed.fetch_add(1, Ordering::Relaxed);
        self.register_thread_seeded(seed)
    }

    /// [`ThreadedPapi::register_thread`] with an explicit substrate seed,
    /// for deterministic tests that replay a thread's workload
    /// single-threadedly.
    ///
    /// Registering a thread that is already registered fails with
    /// [`PapiError::Cnflct`] without building a session.
    pub fn register_thread_seeded(self: &Arc<Self>, seed: u64) -> Result<PapiThread<S>> {
        let tid = std::thread::current().id();
        // Hold the registration map for the whole (cold) registration so
        // check-then-insert is atomic; it doubles as the table writer
        // lock.
        let mut map = self.reg.lock().unwrap();
        if map.contains_key(&tid) {
            return Err(PapiError::Cnflct);
        }
        let mut session = (self.factory)(seed)?;
        if let Some(obs) = &self.obs {
            session.attach_obs(obs.clone());
        }
        let now = session.get_real_cyc();
        let shard_i = Self::shard_of(tid);
        let cell = Arc::new(ThreadCell {
            session: SeqCell::new(Some(session)),
            published: PublishedCounts::default(),
            generation: AtomicU64::new(0),
        });
        // Clone-and-publish: the new table differs only in one slot.
        let mut next = self.current().clone_shards();
        let slots = &mut next.shards[shard_i];
        let slot_i = match slots.iter().position(Option::is_none) {
            Some(i) => {
                slots[i] = Some(cell.clone());
                i
            }
            None => {
                slots.push(Some(cell.clone()));
                slots.len() - 1
            }
        };
        self.publish_table(next);
        map.insert(tid, (shard_i, slot_i));
        drop(map);
        if let Some(obs) = &self.obs {
            obs.inc(papi_obs::Counter::ThreadsRegistered);
            obs.record(now, || papi_obs::JournalEvent::ThreadRegistered {
                shard: shard_i,
                slot: slot_i,
            });
        }
        Ok(PapiThread {
            cell,
            shard: shard_i,
            slot: slot_i,
            tid,
            obs: self.obs.clone(),
        })
    }

    /// `PAPI_unregister_thread`: retire `token`'s session slot and hand
    /// the private [`Papi`] session back to the caller.
    ///
    /// Rejected (returning the token so the thread can clean up and
    /// retry) when the session still owns live EventSets — mirroring real
    /// PAPI, which refuses to unregister a thread with active counting
    /// state — or when the token belongs to a different session table.
    #[allow(clippy::result_large_err)]
    pub fn unregister_thread(
        &self,
        token: PapiThread<S>,
    ) -> std::result::Result<Papi<S>, (PapiThread<S>, PapiError)> {
        {
            let guard = token.cell.session.lock();
            match guard.as_ref() {
                Some(session) if session.sets.iter().any(Option::is_some) => {
                    drop(guard);
                    return Err((
                        token,
                        PapiError::Inval("thread still owns live EventSets; destroy them first"),
                    ));
                }
                Some(_) => {}
                None => {
                    drop(guard);
                    return Err((
                        token,
                        PapiError::Inval("token's session was already unregistered"),
                    ));
                }
            }
        }
        let mut map = self.reg.lock().unwrap();
        match self.current().cell(token.shard, token.slot) {
            Some(cell) if Arc::ptr_eq(cell, &token.cell) => {}
            _ => {
                return Err((
                    token,
                    PapiError::Inval("token does not belong to this session table"),
                ));
            }
        }
        // Vacate the slot in a fresh table; stale tables keep the cell
        // shell alive, but the session itself moves out below.
        let mut next = self.current().clone_shards();
        next.shards[token.shard][token.slot] = None;
        self.publish_table(next);
        map.remove(&token.tid);
        drop(map);
        token.cell.published.clear();
        let session = token
            .cell
            .session
            .lock()
            .take()
            .expect("liveness was checked above under the same cell");
        let obs = token.obs.clone();
        let (shard_i, slot_i) = (token.shard, token.slot);
        drop(token);
        if let Some(obs) = &obs {
            obs.inc(papi_obs::Counter::ThreadsUnregistered);
            let now = session.get_real_cyc();
            obs.record(now, || papi_obs::JournalEvent::ThreadUnregistered {
                shard: shard_i,
                slot: slot_i,
            });
        }
        Ok(session)
    }

    /// Run `f` against the session owning `id`, from any thread. The
    /// lookup is lock-free (one atomic table load); entering the session
    /// spins on its sequence stamp until the owner is quiescent. Fails
    /// with [`PapiError::NoEvst`] when the slot is vacant.
    ///
    /// This is the cross-thread escape hatch (inspection, third-party
    /// mutation); it *excludes* the owner while `f` runs. Pure observers
    /// should prefer [`ThreadedPapi::snapshot_counts`], which never
    /// disturbs the owner at all.
    pub fn with_session_of<R>(
        &self,
        id: TaggedSetId,
        f: impl FnOnce(&mut Papi<S>) -> R,
    ) -> Result<R> {
        if id.shard() >= NUM_SHARDS {
            return Err(PapiError::Inval("tagged id has an out-of-range shard"));
        }
        let cell = self
            .current()
            .cell(id.shard(), id.slot())
            .ok_or(PapiError::NoEvst(id.local()))?;
        let mut guard = cell.session.lock();
        let session = guard.as_mut().ok_or(PapiError::NoEvst(id.local()))?;
        Ok(f(session))
    }

    /// Wait-free observation of the latest counter values the owning
    /// thread published for `id`'s session: one atomic table load plus a
    /// seqlock snapshot copy. Never blocks the owner and is never blocked
    /// *by* the owner — a torn copy (owner mid-publish) retries the copy,
    /// not the session.
    ///
    /// The snapshot's `generation` changes whenever the owner reprograms
    /// (`start`/`reset`/`accum`/`stop`), so values from two programming
    /// epochs can never be compared as if continuous. Within one
    /// generation, successive snapshots are monotone non-decreasing for
    /// monotone events.
    ///
    /// Fails with [`PapiError::NoEvst`] for a vacant slot and
    /// [`PapiError::NotRun`] when the owner has not published since the
    /// last reprogram (e.g. the set is stopped).
    pub fn snapshot_counts(&self, id: TaggedSetId) -> Result<CountSnapshot> {
        if id.shard() >= NUM_SHARDS {
            return Err(PapiError::Inval("tagged id has an out-of-range shard"));
        }
        let cell = self
            .current()
            .cell(id.shard(), id.slot())
            .ok_or(PapiError::NoEvst(id.local()))?;
        cell.published.snapshot().ok_or(PapiError::NotRun)
    }
}

/// A registered thread's handle to its own private session.
///
/// Obtained from [`ThreadedPapi::register_thread`]; the token caches the
/// session cell, so every operation is tag-check + one uncontended
/// sequence-stamp compare-exchange (no OS mutex anywhere). All EventSet
/// ids it hands out are [`TaggedSetId`]s; passing an id minted by another
/// thread's token is rejected with [`PapiError::Inval`].
pub struct PapiThread<S: Substrate + Send> {
    cell: Arc<ThreadCell<S>>,
    shard: usize,
    slot: usize,
    tid: OsThreadId,
    obs: Option<papi_obs::ObsHandle>,
}

impl<S: Substrate + Send> std::fmt::Debug for PapiThread<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PapiThread")
            .field("shard", &self.shard)
            .field("slot", &self.slot)
            .field("tid", &self.tid)
            .finish_non_exhaustive()
    }
}

impl<S: Substrate + Send> std::fmt::Debug for ThreadedPapi<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedPapi")
            .field("registered_threads", &self.registered_threads())
            .finish_non_exhaustive()
    }
}

impl<S: Substrate + Send> PapiThread<S> {
    /// Shard this thread's session slot lives in.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Slot index within the shard.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Tag a session-local id with this thread's `(shard, slot)`.
    fn tag(&self, local: EventSetId) -> TaggedSetId {
        TaggedSetId::new(self.shard, self.slot, local)
    }

    /// Untag `id`, proving it belongs to this thread's session.
    fn check(&self, id: TaggedSetId) -> Result<EventSetId> {
        if id.shard() == self.shard && id.slot() == self.slot {
            Ok(id.local())
        } else {
            if let Some(obs) = &self.obs {
                obs.inc(papi_obs::Counter::CrossThreadDenied);
            }
            Err(PapiError::Inval(
                "EventSet id is tagged for a different thread's session",
            ))
        }
    }

    /// Enter the session's exclusive phase and run `f`. One uncontended
    /// compare-exchange on the owner path.
    #[inline]
    fn session<R>(&self, f: impl FnOnce(&mut Papi<S>) -> R) -> R {
        let mut guard = self.cell.session.lock();
        let papi = guard
            .as_mut()
            .expect("a live token's cell always holds its session");
        f(papi)
    }

    /// Advance the published programming generation (the counters were
    /// rebased or reprogrammed) and empty the publication area.
    fn republish_epoch(&self) {
        self.cell.generation.fetch_add(1, Ordering::Relaxed);
        self.cell.published.clear();
    }

    /// Full access to the underlying session, for the parts of the API
    /// not mirrored here (sampling, profil, timers, substrate access).
    /// EventSet ids inside the closure are session-local.
    ///
    /// Conservatively bumps the published generation: the closure may
    /// have reprogrammed or rebased counters, and observers must never
    /// interpret post-closure values as continuous with pre-closure ones.
    pub fn with<R>(&self, f: impl FnOnce(&mut Papi<S>) -> R) -> R {
        let r = self.session(f);
        self.cell.generation.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// `PAPI_create_eventset`, returning a thread-tagged id.
    pub fn create_eventset(&self) -> TaggedSetId {
        self.tag(self.session(|p| p.create_eventset()))
    }

    /// `PAPI_destroy_eventset`.
    pub fn destroy_eventset(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        self.session(|p| p.destroy_eventset(local))
    }

    /// `PAPI_add_event`.
    pub fn add_event(&self, id: TaggedSetId, code: u32) -> Result<()> {
        let local = self.check(id)?;
        self.session(|p| p.add_event(local, code))
    }

    /// `PAPI_add_events`.
    pub fn add_events(&self, id: TaggedSetId, codes: &[u32]) -> Result<()> {
        let local = self.check(id)?;
        self.session(|p| p.add_events(local, codes))
    }

    /// `PAPI_remove_event`.
    pub fn remove_event(&self, id: TaggedSetId, code: u32) -> Result<()> {
        let local = self.check(id)?;
        self.session(|p| p.remove_event(local, code))
    }

    /// `PAPI_num_events`.
    pub fn num_events(&self, id: TaggedSetId) -> Result<usize> {
        let local = self.check(id)?;
        self.session(|p| p.num_events(local))
    }

    /// `PAPI_state`.
    pub fn state(&self, id: TaggedSetId) -> Result<SetState> {
        let local = self.check(id)?;
        self.session(|p| p.state(local))
    }

    /// `PAPI_set_multiplex` (the multiplex timer is per-session, hence
    /// per-thread: one thread's rotations never touch another's
    /// hardware).
    pub fn set_multiplex(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        self.session(|p| p.set_multiplex(local))
    }

    /// `PAPI_start`. Opens a fresh published generation: observers see
    /// the restart as a generation bump, never as counts going backwards.
    pub fn start(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        let r = self.session(|p| p.start(local));
        if r.is_ok() {
            self.republish_epoch();
        }
        r
    }

    /// `PAPI_read` into a caller buffer — the per-thread lock-free hot
    /// path: tag check (arithmetic), one uncontended sequence-stamp
    /// compare-exchange, the vectorized cached read plan, then a seqlock
    /// publication of the fresh values for wait-free observers.
    pub fn read_into(&self, id: TaggedSetId, out: &mut [i64]) -> Result<()> {
        let local = self.check(id)?;
        self.session(|p| p.read_into(local, out))?;
        self.cell
            .published
            .publish(self.cell.generation.load(Ordering::Relaxed), out);
        Ok(())
    }

    /// `PAPI_read`, allocating the result vector.
    pub fn read(&self, id: TaggedSetId) -> Result<Vec<i64>> {
        let local = self.check(id)?;
        let values = self.session(|p| p.read(local))?;
        self.cell
            .published
            .publish(self.cell.generation.load(Ordering::Relaxed), &values);
        Ok(values)
    }

    /// `PAPI_accum`. Resets the counters, so the published generation
    /// advances.
    pub fn accum(&self, id: TaggedSetId, values: &mut [i64]) -> Result<()> {
        let local = self.check(id)?;
        let r = self.session(|p| p.accum(local, values));
        if r.is_ok() {
            self.republish_epoch();
        }
        r
    }

    /// `PAPI_reset`. Advances the published generation.
    pub fn reset(&self, id: TaggedSetId) -> Result<()> {
        let local = self.check(id)?;
        let r = self.session(|p| p.reset(local));
        if r.is_ok() {
            self.republish_epoch();
        }
        r
    }

    /// `PAPI_stop`. Advances the published generation and empties the
    /// publication area (there is no running counter state to observe).
    pub fn stop(&self, id: TaggedSetId) -> Result<Vec<i64>> {
        let local = self.check(id)?;
        let r = self.session(|p| p.stop(local));
        if r.is_ok() {
            self.republish_epoch();
        }
        r
    }

    /// Run this thread's application to completion (see
    /// [`Papi::run_app`]).
    pub fn run_app(&self) -> Result<()> {
        self.session(|p| p.run_app())
    }

    /// Run this thread's application for `budget` cycles (see
    /// [`Papi::run_for`]).
    pub fn run_for(&self, budget: u64) -> Result<crate::dispatch::AppExit> {
        self.session(|p| p.run_for(budget))
    }
}

impl ThreadedPapi<BoxSubstrate> {
    /// A session table whose threads get registry-selected substrates
    /// (e.g. `"sim:x86"`), seeded from `base_seed`.
    pub fn named(name: &str, base_seed: u64) -> Self {
        Self::from_registry(Arc::new(SubstrateRegistry::with_builtin()), name, base_seed)
    }

    /// [`ThreadedPapi::named`] against a caller-supplied registry (one
    /// that other crates have added their backends to). Unknown names
    /// surface as errors from [`ThreadedPapi::register_thread`].
    pub fn from_registry(reg: Arc<SubstrateRegistry>, name: &str, base_seed: u64) -> Self {
        let name = name.to_string();
        Self::new(base_seed, move |seed| {
            Papi::init_from_registry(&reg, &name, seed)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::SimSubstrate;
    use crate::Preset;
    use simcpu::{platform, Machine, ProgramBuilder};

    fn pool() -> Arc<ThreadedPapi<SimSubstrate>> {
        Arc::new(ThreadedPapi::new(100, |seed| {
            let mut m = Machine::new(platform::sim_generic(), seed);
            let mut b = ProgramBuilder::new();
            b.func("main", |f| {
                f.loop_(1000, |f| {
                    f.ffma(4);
                });
            });
            m.load(b.build("main"));
            Papi::init(SimSubstrate::new(m))
        }))
    }

    #[test]
    fn tagged_id_roundtrip() {
        for &(shard, slot, local) in &[
            (0usize, 0usize, 0usize),
            (NUM_SHARDS - 1, (SLOT_MASK as usize), LOCAL_MASK as usize),
            (3, 7, 11),
        ] {
            let id = TaggedSetId::new(shard, slot, local);
            assert_eq!(id.shard(), shard);
            assert_eq!(id.slot(), slot);
            assert_eq!(id.local(), local);
            assert_eq!(TaggedSetId::from_raw(id.raw()), id);
        }
    }

    #[test]
    fn threaded_papi_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThreadedPapi<SimSubstrate>>();
        assert_send_sync::<ThreadedPapi<BoxSubstrate>>();
        fn assert_send<T: Send>() {}
        assert_send::<PapiThread<SimSubstrate>>();
        assert_send::<Papi<BoxSubstrate>>();
    }

    #[test]
    fn register_count_and_unregister() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        assert!(pool.is_registered());
        assert_eq!(pool.registered_threads(), 1);

        let set = token.create_eventset();
        token.add_event(set, Preset::FpOps.code()).unwrap();
        token.start(set).unwrap();
        token.run_app().unwrap();
        let counts = token.stop(set).unwrap();
        assert_eq!(counts[0], 8000);

        token.destroy_eventset(set).unwrap();
        let session = pool.unregister_thread(token).expect("no live sets");
        assert!(session.get_real_cyc() > 0);
        assert!(!pool.is_registered());
        assert_eq!(pool.registered_threads(), 0);
    }

    #[test]
    fn double_register_rejected() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        assert!(matches!(pool.register_thread(), Err(PapiError::Cnflct)));
        // After unregistering, the same thread may register again.
        let session = pool.unregister_thread(token).unwrap();
        drop(session);
        let token2 = pool.register_thread().unwrap();
        drop(token2);
    }

    #[test]
    fn unregister_with_live_eventsets_rejected_and_returns_token() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        token.add_event(set, Preset::TotCyc.code()).unwrap();
        let (token, err) = pool.unregister_thread(token).unwrap_err();
        assert!(matches!(err, PapiError::Inval(_)));
        // The token still works; cleanup and retry succeeds.
        token.destroy_eventset(set).unwrap();
        pool.unregister_thread(token).expect("retry after cleanup");
    }

    #[test]
    fn cross_thread_id_rejected_not_panicking() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        // Forge an id tagged for a different slot in a different shard.
        let foreign = TaggedSetId::new((set.shard() + 1) % NUM_SHARDS, set.slot() + 1, set.local());
        for err in [
            token.start(foreign).unwrap_err(),
            token.read_into(foreign, &mut [0i64; 4]).unwrap_err(),
            token.destroy_eventset(foreign).unwrap_err(),
        ] {
            assert!(matches!(err, PapiError::Inval(_)));
        }
        // The legitimate id still works.
        token.add_event(set, Preset::TotCyc.code()).unwrap();
    }

    #[test]
    fn cross_thread_denials_are_counted() {
        let pool = {
            let mut p = ThreadedPapi::new(7, |seed| {
                let m = Machine::new(platform::sim_generic(), seed);
                Papi::init(SimSubstrate::new(m))
            });
            p.attach_obs(papi_obs::Obs::new());
            Arc::new(p)
        };
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        let foreign = TaggedSetId::new((set.shard() + 1) % NUM_SHARDS, set.slot(), set.local());
        assert!(token.start(foreign).is_err());
        let obs = pool.obs().unwrap();
        assert_eq!(obs.get(papi_obs::Counter::CrossThreadDenied), 1);
        assert_eq!(obs.get(papi_obs::Counter::ThreadsRegistered), 1);
    }

    #[test]
    fn registration_from_many_threads_lands_in_shards() {
        let pool = pool();
        let mut joins = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            joins.push(std::thread::spawn(move || {
                let token = pool.register_thread().unwrap();
                let set = token.create_eventset();
                token.add_event(set, Preset::TotIns.code()).unwrap();
                token.start(set).unwrap();
                token.run_app().unwrap();
                let counts = token.stop(set).unwrap();
                token.destroy_eventset(set).unwrap();
                pool.unregister_thread(token).unwrap();
                counts[0]
            }));
        }
        let counts: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        // Every thread ran its own identical program on its own machine.
        assert!(counts.iter().all(|&c| c == counts[0] && c > 0));
        assert_eq!(pool.registered_threads(), 0);
    }

    #[test]
    fn with_session_of_routes_by_tag() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        token.add_event(set, Preset::TotCyc.code()).unwrap();
        let n = pool
            .with_session_of(set, |papi| papi.num_events(set.local()).unwrap())
            .unwrap();
        assert_eq!(n, 1);
        // A vacant slot is a NoEvst error, not a panic.
        let vacant = TaggedSetId::new(set.shard(), set.slot() + 1, 0);
        assert!(pool.with_session_of(vacant, |_| ()).is_err());
    }

    #[test]
    fn snapshot_counts_sees_published_reads_and_generations() {
        let pool = pool();
        let token = pool.register_thread().unwrap();
        let set = token.create_eventset();
        token.add_event(set, Preset::TotIns.code()).unwrap();
        // Nothing published before the first read.
        assert!(matches!(pool.snapshot_counts(set), Err(PapiError::NotRun)));
        token.start(set).unwrap();
        token.run_for(10_000).unwrap();
        let mut out = [0i64; 1];
        token.read_into(set, &mut out).unwrap();
        let s1 = pool.snapshot_counts(set).unwrap();
        assert_eq!(s1.len, 1);
        assert_eq!(s1.values[0], out[0]);
        // More work: same generation, monotone values.
        token.run_for(10_000).unwrap();
        token.read_into(set, &mut out).unwrap();
        let s2 = pool.snapshot_counts(set).unwrap();
        assert_eq!(s2.generation, s1.generation);
        assert!(s2.values[0] >= s1.values[0]);
        // Reset opens a new generation and empties the publication until
        // the next read.
        token.reset(set).unwrap();
        assert!(matches!(pool.snapshot_counts(set), Err(PapiError::NotRun)));
        token.read_into(set, &mut out).unwrap();
        let s3 = pool.snapshot_counts(set).unwrap();
        assert!(s3.generation > s2.generation);
        token.stop(set).unwrap();
        assert!(matches!(pool.snapshot_counts(set), Err(PapiError::NotRun)));
        token.destroy_eventset(set).unwrap();
        pool.unregister_thread(token).unwrap();
        // Vacated slot: NoEvst, not NotRun.
        assert!(matches!(
            pool.snapshot_counts(set),
            Err(PapiError::NoEvst(_))
        ));
    }

    #[test]
    fn rcu_table_survives_register_unregister_churn() {
        // Readers traverse the table while other threads register and
        // unregister; every load must see a coherent table (no dangling
        // slots, no partially built shards).
        let pool = pool();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let pool = pool.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut looked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for shard in 0..NUM_SHARDS {
                        let id = TaggedSetId::new(shard, 0, 0);
                        // Any answer is fine; the point is no panic/UB.
                        let _ = pool.snapshot_counts(id);
                        looked += 1;
                    }
                }
                looked
            })
        };
        let mut churners = Vec::new();
        for t in 0..4u64 {
            let pool = pool.clone();
            churners.push(std::thread::spawn(move || {
                for round in 0..10 {
                    let token = pool.register_thread_seeded(t * 31 + round).unwrap();
                    let set = token.create_eventset();
                    token.add_event(set, Preset::TotIns.code()).unwrap();
                    token.start(set).unwrap();
                    token.run_for(5_000).unwrap();
                    let mut out = [0i64; 1];
                    token.read_into(set, &mut out).unwrap();
                    token.stop(set).unwrap();
                    token.destroy_eventset(set).unwrap();
                    pool.unregister_thread(token).unwrap();
                }
            }));
        }
        for c in churners {
            c.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0);
        assert_eq!(pool.registered_threads(), 0);
    }
}
