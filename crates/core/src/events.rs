//! Event queries, name/code translation, and EventSet bookkeeping
//! (create/destroy, add/remove, multiplex/domain/attach options).

use crate::error::{PapiError, Result};
use crate::eventset::{EventSetData, EventSetId, SetState};
use crate::preset::{is_preset_code, Preset};
use crate::session::Papi;
use crate::substrate::Substrate;
use papi_obs::{Counter as ObsCounter, JournalEvent as ObsEvent};
use simcpu::{Domain, NativeEventDesc, ThreadId};

impl<S: Substrate> Papi<S> {
    // --- event queries ------------------------------------------------------

    /// `PAPI_query_event`: can this event (preset or native) be counted?
    pub fn query_event(&self, code: u32) -> bool {
        self.presets.resolve(code, self.sub.native_events()).is_ok()
    }

    /// Translate an event name (either `PAPI_*` or a native mnemonic) to a
    /// code.
    pub fn event_name_to_code(&self, name: &str) -> Result<u32> {
        if let Some(p) = Preset::from_name(name) {
            return Ok(p.code());
        }
        self.sub
            .native_events()
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.code)
            .ok_or(PapiError::Inval("unknown event name"))
    }

    /// Translate an event code to its name.
    pub fn event_code_to_name(&self, code: u32) -> Result<String> {
        if is_preset_code(code) {
            return Preset::from_code(code)
                .map(|p| p.name().to_string())
                .ok_or(PapiError::NotPreset(code));
        }
        self.sub
            .native_events()
            .iter()
            .find(|e| e.code == code)
            .map(|e| e.name.to_string())
            .ok_or(PapiError::NoEvnt(code))
    }

    /// The native events this platform exposes (`PAPI_enum_event` over the
    /// native space).
    pub fn native_events(&self) -> &[NativeEventDesc] {
        self.sub.native_events()
    }

    // --- EventSet lifecycle -------------------------------------------------

    /// `PAPI_create_eventset`.
    pub fn create_eventset(&mut self) -> EventSetId {
        self.sets.push(Some(EventSetData::new()));
        let id = self.sets.len() - 1;
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::EventsetCreated);
            obs.record(self.sub.real_cycles(), || ObsEvent::EventsetCreated {
                set: id,
            });
        }
        id
    }

    /// `PAPI_destroy_eventset` (must be stopped).
    pub fn destroy_eventset(&mut self, id: EventSetId) -> Result<()> {
        let s = self.set_ref(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        self.sets[id] = None;
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::EventsetDestroyed);
            obs.record(self.sub.real_cycles(), || ObsEvent::EventsetDestroyed {
                set: id,
            });
        }
        Ok(())
    }

    pub(crate) fn set_ref(&self, id: EventSetId) -> Result<&EventSetData> {
        self.sets
            .get(id)
            .and_then(|s| s.as_ref())
            .ok_or(PapiError::NoEvst(id))
    }

    pub(crate) fn set_mut(&mut self, id: EventSetId) -> Result<&mut EventSetData> {
        self.sets
            .get_mut(id)
            .and_then(|s| s.as_mut())
            .ok_or(PapiError::NoEvst(id))
    }

    /// `PAPI_add_event`: add a preset or native event to a stopped set.
    pub fn add_event(&mut self, id: EventSetId, code: u32) -> Result<()> {
        // Validate availability first (immutable borrows).
        self.presets.resolve(code, self.sub.native_events())?;
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if s.events.contains(&code) {
            return Err(PapiError::Inval("event already in set"));
        }
        s.events.push(code);
        Ok(())
    }

    /// Add several events at once.
    pub fn add_events(&mut self, id: EventSetId, codes: &[u32]) -> Result<()> {
        for &c in codes {
            self.add_event(id, c)?;
        }
        Ok(())
    }

    /// `PAPI_remove_event`.
    pub fn remove_event(&mut self, id: EventSetId, code: u32) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        let pos = s
            .events
            .iter()
            .position(|&e| e == code)
            .ok_or(PapiError::NoEvnt(code))?;
        s.events.remove(pos);
        s.overflow.retain(|o| o.code != code);
        Ok(())
    }

    /// `PAPI_list_events`.
    pub fn list_events(&self, id: EventSetId) -> Result<Vec<u32>> {
        Ok(self.set_ref(id)?.events.clone())
    }

    /// `PAPI_num_events`.
    pub fn num_events(&self, id: EventSetId) -> Result<usize> {
        Ok(self.set_ref(id)?.events.len())
    }

    /// `PAPI_state`.
    pub fn state(&self, id: EventSetId) -> Result<SetState> {
        Ok(self.set_ref(id)?.state)
    }

    /// `PAPI_set_multiplex`: opt this set into software multiplexing.
    /// Deliberately *not* the default — see the module docs of
    /// [`crate::multiplex`].
    pub fn set_multiplex(&mut self, id: EventSetId) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if !s.overflow.is_empty() {
            return Err(PapiError::Cnflct);
        }
        s.multiplex = true;
        Ok(())
    }

    /// Override the multiplex switching period for a set (cycles). Shorter
    /// periods converge faster but cost more reprogramming overhead — the
    /// trade-off the E5 ablation sweeps.
    pub fn set_multiplex_period(&mut self, id: EventSetId, cycles: u64) -> Result<()> {
        if cycles == 0 {
            return Err(PapiError::Inval("zero multiplex period"));
        }
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        s.mpx_period = Some(cycles);
        Ok(())
    }

    /// `PAPI_set_domain` for a set.
    pub fn set_domain(&mut self, id: EventSetId, domain: Domain) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        s.domain = domain;
        Ok(())
    }

    /// `PAPI_attach`: bind a stopped EventSet to a specific thread; reads
    /// and stop() then return counts attributed to that thread only.
    /// Requires per-thread counter virtualization
    /// ([`simcpu::Granularity::Thread`]); incompatible with multiplexing.
    pub fn attach(&mut self, id: EventSetId, thread: ThreadId) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if s.multiplex {
            return Err(PapiError::Cnflct);
        }
        s.attached = Some(thread);
        Ok(())
    }

    /// `PAPI_detach`.
    pub fn detach(&mut self, id: EventSetId) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        s.attached = None;
        Ok(())
    }
}
