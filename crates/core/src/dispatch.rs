//! Counting machinery: start/stop/read/accum/reset, counter allocation,
//! overflow and profil arming, multiplex rotation, and the application run
//! loop that services substrate events.

use crate::alloc;
use crate::error::{PapiError, Result};
use crate::eventset::{EventSetId, OvfRoute, SetState};
use crate::multiplex::{self, partition_events_with, MpxState, DEFAULT_MPX_PERIOD_CYCLES};
use crate::profile::{Profil, ProfilConfig};
use crate::session::Papi;
use crate::substrate::Substrate;
use papi_obs::{Counter as ObsCounter, JournalEvent as ObsEvent};
use simcpu::{Domain, NativeEventDesc, RunExit, ThreadId};

/// Identifies a profiling histogram registered with [`Papi::profil`].
pub type ProfilId = usize;

/// Information delivered to a user overflow callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowInfo {
    /// The EventSet whose event overflowed.
    pub set: EventSetId,
    /// PAPI event code that overflowed.
    pub code: u32,
    /// Program counter delivered with the interrupt (skidded on OoO cores).
    pub pc: u64,
    /// Thread that was running.
    pub thread: ThreadId,
}

/// Why [`Papi::next_event`] returned control to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppExit {
    /// The monitored application finished.
    Halted,
    /// An instrumentation probe trapped (dynaprof-style tools handle it and
    /// resume).
    Probe { id: u32, thread: ThreadId, pc: u64 },
    /// The cycle budget passed to [`Papi::run_for`] elapsed (the
    /// application is still runnable).
    Paused,
}

/// How the running set's natives are being counted.
pub(crate) enum RunMode {
    /// `assign[i]` is the physical counter holding native `i`.
    Direct { assign: Vec<usize> },
    /// Time-sliced multiplexing.
    Mpx(MpxState),
}

/// Resolution + allocation state of the running EventSet.
pub(crate) struct Running {
    pub(crate) set: EventSetId,
    /// Thread this run is attached to (PAPI_attach).
    pub(crate) attached: Option<ThreadId>,
    /// Unique native codes in use.
    pub(crate) natives: Vec<u32>,
    /// Per PAPI event: `(index into natives, coefficient)` terms.
    pub(crate) terms: Vec<Vec<(usize, i64)>>,
    pub(crate) mode: RunMode,
    /// Armed overflow routes: `(physical counter, papi code, route)`.
    pub(crate) routes: Vec<(usize, u32, OvfRoute)>,
}

/// Overflow callbacks must be `Send`: like the C library's signal-based
/// handlers, they may run on whichever thread drives the event loop, and a
/// global session (the C API) moves across threads.
pub type OvfHandler = Box<dyn FnMut(OverflowInfo) + Send>;

impl<S: Substrate> Papi<S> {
    // --- overflow & profil registration -------------------------------------

    /// `PAPI_overflow`: call `handler` every `threshold` occurrences of
    /// `code` while the set runs. The handler receives the (possibly
    /// skidded) interrupt PC.
    pub fn overflow(
        &mut self,
        id: EventSetId,
        code: u32,
        threshold: u64,
        handler: OvfHandler,
    ) -> Result<()> {
        if threshold == 0 {
            return Err(PapiError::Inval("zero overflow threshold"));
        }
        let route = OvfRoute::Handler(self.handlers.len());
        self.arm_overflow_route(id, code, threshold, route)?;
        self.handlers.push(handler);
        Ok(())
    }

    /// `PAPI_profil`: statistical profiling of `code` over a text range.
    /// Returns a handle to retrieve the histogram with
    /// [`Papi::profil_histogram`].
    pub fn profil(&mut self, id: EventSetId, code: u32, cfg: ProfilConfig) -> Result<ProfilId> {
        let pid = self.profils.len();
        let route = OvfRoute::Profil(pid);
        self.arm_overflow_route(id, code, cfg.threshold, route)?;
        self.profils.push(Profil::new(cfg));
        Ok(pid)
    }

    /// Shared validation for [`Papi::overflow`] and [`Papi::profil`]
    /// registrations.
    fn arm_overflow_route(
        &mut self,
        id: EventSetId,
        code: u32,
        threshold: u64,
        route: OvfRoute,
    ) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if s.multiplex {
            return Err(PapiError::Cnflct);
        }
        if !s.events.contains(&code) {
            return Err(PapiError::NoEvnt(code));
        }
        if s.overflow.iter().any(|o| o.code == code) {
            return Err(PapiError::Cnflct);
        }
        s.overflow.push(crate::eventset::OverflowReg {
            code,
            threshold,
            route,
        });
        Ok(())
    }

    /// The histogram collected by a [`Papi::profil`] registration.
    pub fn profil_histogram(&self, pid: ProfilId) -> Option<&Profil> {
        self.profils.get(pid)
    }

    // --- resolution & allocation --------------------------------------------

    /// Resolve the set's PAPI events to unique natives + per-event terms.
    #[allow(clippy::type_complexity)]
    fn resolve_set(&self, id: EventSetId) -> Result<(Vec<u32>, Vec<Vec<(usize, i64)>>)> {
        let s = self.set_ref(id)?;
        if s.events.is_empty() {
            return Err(PapiError::Inval("EventSet is empty"));
        }
        let mut natives: Vec<u32> = Vec::new();
        let mut terms: Vec<Vec<(usize, i64)>> = Vec::with_capacity(s.events.len());
        for &code in &s.events {
            let m = self.presets.resolve(code, self.sub.native_events())?;
            let mut t = Vec::with_capacity(m.terms.len());
            for (ncode, coeff) in m.terms {
                let idx = match natives.iter().position(|&n| n == ncode) {
                    Some(i) => i,
                    None => {
                        natives.push(ncode);
                        natives.len() - 1
                    }
                };
                t.push((idx, coeff));
            }
            terms.push(t);
        }
        Ok((natives, terms))
    }

    /// Solve counter allocation for `natives` through the PAPI-3 split: the
    /// substrate translates its constraint scheme into solver instances
    /// ([`Substrate::alloc_model`]); the hardware-independent matcher does
    /// the rest. No group special-casing here.
    fn allocate(&self, natives: &[u32]) -> Option<Vec<usize>> {
        let mut stats = alloc::AllocStats::default();
        let model = self.sub.alloc_model();
        let assign = alloc::allocate_with(&model, natives, self.sub.native_events(), &mut stats);
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::AllocAttempts);
            obs.inc(if assign.is_some() {
                ObsCounter::AllocSuccesses
            } else {
                ObsCounter::AllocFailures
            });
            obs.add(ObsCounter::AllocAugmentSteps, stats.augment_steps);
            obs.add(ObsCounter::AllocBacktracks, stats.backtracks);
            obs.record(self.sub.real_cycles(), || ObsEvent::AllocAttempt {
                events: natives.len(),
                success: assign.is_some(),
                augment_steps: stats.augment_steps,
                backtracks: stats.backtracks,
            });
        }
        assign
    }

    // --- start / stop / read ------------------------------------------------

    /// `PAPI_start`: resolve, allocate, program and start the counters.
    pub fn start(&mut self, id: EventSetId) -> Result<()> {
        let begin_cycles = self.sub.real_cycles();
        let r = self.start_inner(id);
        if let Some(obs) = &self.obs {
            match &r {
                Ok(()) => {
                    obs.inc(ObsCounter::Starts);
                    let now = self.sub.real_cycles();
                    obs.add(
                        ObsCounter::CyclesInStartStop,
                        now.saturating_sub(begin_cycles),
                    );
                    let (natives, multiplexed) = self
                        .running
                        .as_ref()
                        .map(|run| (run.natives.len(), matches!(run.mode, RunMode::Mpx(_))))
                        .unwrap_or((0, false));
                    obs.record(now, || ObsEvent::Start {
                        set: id,
                        natives,
                        multiplexed,
                    });
                }
                Err(_) => obs.inc(ObsCounter::StartErrors),
            }
        }
        r
    }

    fn start_inner(&mut self, id: EventSetId) -> Result<()> {
        if self.running.is_some() {
            return Err(PapiError::IsRun);
        }
        let (natives, terms) = self.resolve_set(id)?;
        let (domain, multiplex, mpx_period, attached, overflow) = {
            let s = self.set_ref(id)?;
            (
                s.domain,
                s.multiplex,
                s.mpx_period,
                s.attached,
                s.overflow.clone(),
            )
        };
        if attached.is_some() && multiplex {
            return Err(PapiError::Cnflct);
        }

        let mode = match self.allocate(&natives) {
            Some(assign) => RunMode::Direct { assign },
            None if multiplex => {
                let descs: Vec<&NativeEventDesc> = natives
                    .iter()
                    .map(|&c| {
                        self.sub
                            .native_events()
                            .iter()
                            .find(|e| e.code == c)
                            .unwrap()
                    })
                    .collect();
                let parts = partition_events_with(&descs, &self.sub.alloc_model())
                    .ok_or(PapiError::Cnflct)?;
                let now = self.sub.real_cycles();
                let period = mpx_period.unwrap_or(DEFAULT_MPX_PERIOD_CYCLES);
                RunMode::Mpx(MpxState::new(parts, natives.len(), period, now))
            }
            None => return Err(PapiError::Cnflct),
        };

        // Program the hardware for the initial configuration.
        let mut routes = Vec::new();
        match &mode {
            RunMode::Direct { assign } => {
                let mut prog: Vec<Option<(u32, Domain)>> = vec![None; self.sub.num_counters()];
                for (i, &ctr) in assign.iter().enumerate() {
                    prog[ctr] = Some((natives[i], domain));
                }
                self.sub.program(&prog)?;
                // Arm overflow registrations on the counter of each event's
                // first native term.
                for reg in &overflow {
                    let ev_pos = {
                        let s = self.set_ref(id)?;
                        s.events
                            .iter()
                            .position(|&e| e == reg.code)
                            .ok_or(PapiError::NoEvnt(reg.code))?
                    };
                    let (nidx, _) = terms[ev_pos][0];
                    let ctr = assign[nidx];
                    self.sub.set_overflow(ctr, Some(reg.threshold))?;
                    routes.push((ctr, reg.code, reg.route));
                }
            }
            RunMode::Mpx(mpx) => {
                self.program_partition(&natives, domain, &mpx.partitions[0])?;
                self.sub.set_timer(Some(mpx.period));
            }
        }

        // Re-anchor the mpx clock after programming costs.
        let mut mode = mode;
        if let RunMode::Mpx(m) = &mut mode {
            m.switched_at = self.sub.real_cycles();
        }

        self.running = Some(Running {
            set: id,
            attached,
            natives,
            terms,
            mode,
            routes,
        });
        self.set_mut(id)?.state = SetState::Running;
        self.sub.start()?;
        Ok(())
    }

    fn program_partition(
        &mut self,
        natives: &[u32],
        domain: Domain,
        part: &multiplex::Partition,
    ) -> Result<()> {
        let mut prog: Vec<Option<(u32, Domain)>> = vec![None; self.sub.num_counters()];
        for (slot, &nidx) in part.natives.iter().enumerate() {
            prog[part.counters[slot]] = Some((natives[nidx], domain));
        }
        self.sub.program(&prog)
    }

    /// Read the live values of the running set's natives.
    fn read_native_counts(&mut self) -> Result<Vec<u64>> {
        let obs = self.obs.clone();
        let run = self.running.as_mut().ok_or(PapiError::NotRun)?;
        match &mut run.mode {
            RunMode::Direct { assign } => {
                let assign = assign.clone();
                let attached = run.attached;
                let mut counts = Vec::with_capacity(assign.len());
                if let Some(obs) = &obs {
                    obs.add(ObsCounter::CounterReads, assign.len() as u64);
                }
                for ctr in assign {
                    let v = match attached {
                        Some(t) => self.sub.read_attached(t, ctr)?,
                        None => self.sub.read(ctr)?,
                    };
                    counts.push(v);
                }
                Ok(counts)
            }
            RunMode::Mpx(_) => {
                // Flush the live partition, then return estimates.
                let now = self.sub.real_cycles();
                let (counters, current, switched_at) = {
                    let RunMode::Mpx(m) = &run.mode else {
                        unreachable!()
                    };
                    (
                        m.partitions[m.current].counters.clone(),
                        m.current,
                        m.switched_at,
                    )
                };
                let mut live = Vec::with_capacity(counters.len());
                for &c in &counters {
                    live.push(self.sub.read(c)?);
                }
                self.sub.reset()?; // avoid double counting on the next flush
                if let Some(obs) = &obs {
                    obs.add(ObsCounter::CounterReads, counters.len() as u64);
                    obs.inc(ObsCounter::MpxFlushes);
                    obs.record(now, || ObsEvent::MpxFlush {
                        partition: current,
                        live_cycles: now.saturating_sub(switched_at),
                    });
                }
                let run = self.running.as_mut().ok_or(PapiError::NotRun)?;
                let RunMode::Mpx(m) = &mut run.mode else {
                    unreachable!()
                };
                m.flush(now, &live);
                Ok(m.estimates())
            }
        }
    }

    fn values_from_counts(&self, counts: &[u64]) -> Result<Vec<i64>> {
        let run = self.running.as_ref().ok_or(PapiError::NotRun)?;
        Ok(run
            .terms
            .iter()
            .map(|t| t.iter().map(|&(i, c)| c * counts[i] as i64).sum())
            .collect())
    }

    /// `PAPI_read`: current values (the set keeps running).
    pub fn read(&mut self, id: EventSetId) -> Result<Vec<i64>> {
        match &self.running {
            Some(r) if r.set == id => {}
            _ => return Err(PapiError::NotRun),
        }
        let begin_cycles = self.sub.real_cycles();
        let counts = self.read_native_counts()?;
        let values = self.values_from_counts(&counts)?;
        if let Some(obs) = &self.obs {
            let now = self.sub.real_cycles();
            let cost_cycles = now.saturating_sub(begin_cycles);
            obs.inc(ObsCounter::Reads);
            obs.add(ObsCounter::CyclesInRead, cost_cycles);
            obs.record(now, || ObsEvent::Read {
                set: id,
                cost_cycles,
            });
        }
        Ok(values)
    }

    /// `PAPI_accum`: add current values into `values` and reset the
    /// counters.
    pub fn accum(&mut self, id: EventSetId, values: &mut [i64]) -> Result<()> {
        let v = self.read(id)?;
        if values.len() != v.len() {
            return Err(PapiError::Inval("accum buffer length mismatch"));
        }
        for (acc, x) in values.iter_mut().zip(&v) {
            *acc += x;
        }
        let r = self.reset(id);
        if r.is_ok() {
            if let Some(obs) = &self.obs {
                obs.inc(ObsCounter::Accums);
                obs.record(self.sub.real_cycles(), || ObsEvent::Accum { set: id });
            }
        }
        r
    }

    /// `PAPI_reset`: zero the running counters (and multiplex accumulators).
    pub fn reset(&mut self, id: EventSetId) -> Result<()> {
        let now = self.sub.real_cycles();
        match &mut self.running {
            Some(r) if r.set == id => {
                if let RunMode::Mpx(m) = &mut r.mode {
                    m.raw.iter_mut().for_each(|r| *r = 0);
                    m.active_cycles.iter_mut().for_each(|a| *a = 0);
                    m.switched_at = now;
                }
            }
            _ => return Err(PapiError::NotRun),
        }
        let r = self.sub.reset();
        if r.is_ok() {
            if let Some(obs) = &self.obs {
                obs.inc(ObsCounter::Resets);
                obs.record(self.sub.real_cycles(), || ObsEvent::Reset { set: id });
            }
        }
        r
    }

    /// `PAPI_stop`: stop counting and return the final values.
    pub fn stop(&mut self, id: EventSetId) -> Result<Vec<i64>> {
        match &self.running {
            Some(r) if r.set == id => {}
            _ => return Err(PapiError::NotRun),
        }
        let begin_cycles = self.sub.real_cycles();
        let counts = self.read_native_counts()?;
        let values = self.values_from_counts(&counts)?;
        // Disarm machinery.
        let routes = self
            .running
            .as_ref()
            .map(|r| r.routes.clone())
            .unwrap_or_default();
        for (ctr, _, _) in routes {
            self.sub.set_overflow(ctr, None)?;
        }
        if matches!(
            self.running.as_ref().map(|r| &r.mode),
            Some(RunMode::Mpx(_))
        ) {
            self.sub.set_timer(None);
        }
        self.sub.stop()?;
        self.running = None;
        self.set_mut(id)?.state = SetState::Stopped;
        if let Some(obs) = &self.obs {
            let now = self.sub.real_cycles();
            obs.inc(ObsCounter::Stops);
            obs.add(
                ObsCounter::CyclesInStartStop,
                now.saturating_sub(begin_cycles),
            );
            obs.record(now, || ObsEvent::Stop { set: id });
        }
        Ok(values)
    }

    // --- the application run loop -------------------------------------------

    /// Let the monitored application execute until it halts or hits an
    /// instrumentation probe, servicing overflow interrupts (user handlers
    /// and profil histograms), multiplex rotation and sample-buffer drains
    /// along the way.
    pub fn next_event(&mut self) -> Result<AppExit> {
        self.next_event_until(None)
    }

    /// Like [`Papi::next_event`] but stops after `budget` cycles if nothing
    /// else happened first, returning [`AppExit::Paused`]. The perfometer
    /// tool samples metrics on this boundary.
    pub fn run_for(&mut self, budget: u64) -> Result<AppExit> {
        let deadline = self.sub.real_cycles().saturating_add(budget);
        self.next_event_until(Some(deadline))
    }

    fn next_event_until(&mut self, deadline: Option<u64>) -> Result<AppExit> {
        loop {
            let budget = match deadline {
                Some(d) => {
                    let now = self.sub.real_cycles();
                    if now >= d {
                        return Ok(AppExit::Paused);
                    }
                    Some(d - now)
                }
                None => None,
            };
            match self.sub.run(budget) {
                RunExit::Halted => {
                    if self.sampling_cfg.is_some() {
                        let tail = self.sub.drain_samples();
                        self.sampling_buf.extend(tail);
                    }
                    return Ok(AppExit::Halted);
                }
                RunExit::Probe { id, thread, pc } => {
                    return Ok(AppExit::Probe { id, thread, pc });
                }
                RunExit::Overflow {
                    counter,
                    thread,
                    pc,
                } => {
                    self.dispatch_overflow(counter, thread, pc);
                }
                RunExit::Timer => {
                    self.rotate_mpx()?;
                }
                RunExit::SampleBufferFull => {
                    let recs = self.sub.drain_samples();
                    self.sampling_buf.extend(recs);
                }
                RunExit::CycleLimit => return Ok(AppExit::Paused),
                RunExit::Deadlock => {
                    return Err(PapiError::Substrate(
                        "application deadlocked on message receive".into(),
                    ))
                }
            }
        }
    }

    /// Run the application to completion, ignoring probes.
    pub fn run_app(&mut self) -> Result<()> {
        loop {
            if let AppExit::Halted = self.next_event()? {
                return Ok(());
            }
        }
    }

    fn dispatch_overflow(&mut self, counter: usize, thread: ThreadId, pc: u64) {
        let Some(run) = &self.running else { return };
        let set = run.set;
        let hits: Vec<(u32, OvfRoute)> = run
            .routes
            .iter()
            .filter(|(c, _, _)| *c == counter)
            .map(|(_, code, r)| (*code, *r))
            .collect();
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::OverflowInterrupts);
        }
        let mut profil_hits = 0u64;
        for (code, route) in hits {
            match route {
                OvfRoute::Profil(p) => {
                    if let Some(prof) = self.profils.get_mut(p) {
                        prof.hit(pc);
                        profil_hits += 1;
                    }
                }
                OvfRoute::Handler(h) => {
                    if let Some(obs) = &self.obs {
                        obs.inc(ObsCounter::OverflowHandlerDispatches);
                        obs.record(self.sub.real_cycles(), || ObsEvent::OverflowFired {
                            counter,
                            code,
                            pc,
                            to_handler: true,
                        });
                    }
                    let info = OverflowInfo {
                        set,
                        code,
                        pc,
                        thread,
                    };
                    if let Some(cb) = self.handlers.get_mut(h) {
                        cb(info);
                    }
                }
            }
        }
        if profil_hits > 0 {
            if let Some(obs) = &self.obs {
                obs.add(ObsCounter::ProfilHits, profil_hits);
                obs.record(self.sub.real_cycles(), || ObsEvent::ProfilHitBatch {
                    hits: profil_hits,
                    pc,
                });
            }
        }
    }

    /// Multiplex rotation on a timer tick: fold the live partition's counts
    /// into the accumulators and program the next partition.
    fn rotate_mpx(&mut self) -> Result<()> {
        let Some(run) = &self.running else {
            return Ok(());
        };
        let RunMode::Mpx(m) = &run.mode else {
            return Ok(());
        };
        let counters = m.partitions[m.current].counters.clone();
        let from_partition = m.current;
        let switched_at = m.switched_at;
        let begin_cycles = self.sub.real_cycles();
        let now = begin_cycles;
        let mut live = Vec::with_capacity(counters.len());
        for &c in &counters {
            live.push(self.sub.read(c)?);
        }
        // Fold and advance.
        let (natives, domain, next_part, to_partition) = {
            let run = self.running.as_mut().unwrap();
            let set = run.set;
            let RunMode::Mpx(m) = &mut run.mode else {
                unreachable!()
            };
            m.flush(now, &live);
            m.rotate();
            let part = m.partitions[m.current].clone();
            let domain = self.sets[set].as_ref().unwrap().domain;
            (run.natives.clone(), domain, part, m.current)
        };
        self.program_partition(&natives, domain, &next_part)?;
        // Counting restarts now; don't charge programming time to the slice.
        let run = self.running.as_mut().unwrap();
        let RunMode::Mpx(m) = &mut run.mode else {
            unreachable!()
        };
        m.switched_at = self.sub.real_cycles();
        if let Some(obs) = &self.obs {
            let end_cycles = self.sub.real_cycles();
            let cost_cycles = end_cycles.saturating_sub(begin_cycles);
            obs.inc(ObsCounter::MpxRotations);
            obs.inc(ObsCounter::MpxFlushes);
            obs.inc(ObsCounter::MpxProgramOps);
            obs.add(ObsCounter::CounterReads, counters.len() as u64);
            obs.add(ObsCounter::CyclesInMpxRotate, cost_cycles);
            obs.record(now, || ObsEvent::MpxFlush {
                partition: from_partition,
                live_cycles: now.saturating_sub(switched_at),
            });
            obs.record(end_cycles, || ObsEvent::MpxRotate {
                from_partition,
                to_partition,
                cost_cycles,
            });
        }
        Ok(())
    }
}
