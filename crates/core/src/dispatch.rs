//! Counting machinery: start/stop/read/accum/reset, counter allocation,
//! overflow and profil arming, multiplex rotation, and the application run
//! loop that services substrate events.
//!
//! Thread safety: everything here takes `&mut Papi`, so a single session is
//! never entered concurrently — concurrency lives one layer up, in
//! [`crate::threads`], which gives every registered thread its *own*
//! session (and thus its own overflow routes, multiplex timers and scratch
//! buffers). Overflow dispatch in particular never crosses threads: a
//! callback fires on the thread driving its session's run loop.

use crate::alloc;
use crate::error::{PapiError, Result};
use crate::eventset::{EventSetId, OvfRoute, SetState};
use crate::multiplex::{self, partition_events_with, MpxState, DEFAULT_MPX_PERIOD_CYCLES};
use crate::profile::{Profil, ProfilConfig};
use crate::session::Papi;
use crate::substrate::Substrate;
use papi_obs::{Counter as ObsCounter, JournalEvent as ObsEvent};
use simcpu::{Domain, NativeEventDesc, RunExit, ThreadId};

/// Identifies a profiling histogram registered with [`Papi::profil`].
pub type ProfilId = usize;

/// Information delivered to a user overflow callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowInfo {
    /// The EventSet whose event overflowed.
    pub set: EventSetId,
    /// PAPI event code that overflowed.
    pub code: u32,
    /// Program counter delivered with the interrupt (skidded on OoO cores).
    pub pc: u64,
    /// Thread that was running.
    pub thread: ThreadId,
}

/// Why [`Papi::next_event`] returned control to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppExit {
    /// The monitored application finished.
    Halted,
    /// An instrumentation probe trapped (dynaprof-style tools handle it and
    /// resume).
    Probe { id: u32, thread: ThreadId, pc: u64 },
    /// The cycle budget passed to [`Papi::run_for`] elapsed (the
    /// application is still runnable).
    Paused,
}

/// How the running set's natives are being counted.
pub(crate) enum RunMode {
    /// `assign[i]` is the physical counter holding native `i`.
    Direct { assign: Vec<usize> },
    /// Time-sliced multiplexing.
    Mpx(MpxState),
}

/// The precomputed read route of a started EventSet: resolved native codes
/// and the derived-event term table, flattened into structure-of-arrays
/// form — native indices and coefficients in separate contiguous vectors.
///
/// Built once by `start()` and owned by the runtime for the set's whole run,
/// so the steady-state read path walks cache-friendly slices and never
/// clones or rebuilds per call (the paper's §4: the cost of counting must
/// stay near the hardware floor for per-call instrumentation to be viable).
/// The SoA layout lets [`ReadPlan::apply`] run as tight loops over
/// homogeneous slices the compiler can autovectorize, instead of a per-term
/// tuple walk; the common no-derived-events case collapses to a widening
/// cast-copy.
pub(crate) struct ReadPlan {
    /// Unique native codes in use.
    pub(crate) natives: Vec<u32>,
    /// Flattened native index of every term, all events concatenated.
    term_native: Vec<u32>,
    /// Coefficient of every term, parallel to `term_native`.
    term_coeff: Vec<i64>,
    /// Event `i`'s terms are the `term_bounds[i]..term_bounds[i+1]` range
    /// of the two term arrays.
    term_bounds: Vec<u32>,
    /// True when every event is exactly `1 * natives[event]` — no derived
    /// events, no shared natives. The dominant layout for preset sets; the
    /// delta application is then a straight cast-copy of the counts.
    identity: bool,
}

impl ReadPlan {
    /// Number of PAPI events the plan covers.
    pub(crate) fn n_events(&self) -> usize {
        self.term_bounds.len() - 1
    }

    /// The native index of event `ev`'s first term (the counter overflow
    /// registrations arm on).
    pub(crate) fn first_native(&self, ev: usize) -> u32 {
        self.term_native[self.term_bounds[ev] as usize]
    }

    /// Fold native `counts` through the term table into per-event values.
    ///
    /// The hot half of every read: identity plans take the vectorizable
    /// cast-copy lane; general plans run the SoA dot-product per event, a
    /// contiguous multiply-accumulate over `term_coeff`/`term_native`
    /// slices with no tuple destructuring in the inner loop.
    pub(crate) fn apply(&self, counts: &[u64], out: &mut [i64]) -> Result<()> {
        let n = self.n_events();
        if out.len() != n {
            return Err(PapiError::Inval("value buffer length mismatch"));
        }
        if self.identity {
            // counts.len() == n by construction of identity plans.
            for (slot, &c) in out.iter_mut().zip(counts.iter()) {
                *slot = c as i64;
            }
            return Ok(());
        }
        for (ev, slot) in out.iter_mut().enumerate() {
            let lo = self.term_bounds[ev] as usize;
            let hi = self.term_bounds[ev + 1] as usize;
            let idxs = &self.term_native[lo..hi];
            let coeffs = &self.term_coeff[lo..hi];
            let mut acc = 0i64;
            for (&i, &c) in idxs.iter().zip(coeffs.iter()) {
                acc += c * counts[i as usize] as i64;
            }
            *slot = acc;
        }
        Ok(())
    }
}

/// Resolution + allocation state of the running EventSet.
pub(crate) struct Running {
    pub(crate) set: EventSetId,
    /// Thread this run is attached to (PAPI_attach).
    pub(crate) attached: Option<ThreadId>,
    /// Cached read route: natives + derived-event term table.
    pub(crate) plan: ReadPlan,
    pub(crate) mode: RunMode,
    /// Armed overflow routes: `(physical counter, papi code, route)`.
    pub(crate) routes: Vec<(usize, u32, OvfRoute)>,
    /// Wraparound-widening state, engaged when the substrate's counters are
    /// narrower than 64 bits ([`Substrate::counter_width`]); `None` on
    /// full-width substrates, where raw readings are used verbatim.
    pub(crate) widen: Option<WidenState>,
}

/// Wraparound widening for substrates with counters narrower than 64 bits.
///
/// Raw readings are values modulo `2^width` with an arbitrary bias (real
/// registers are rarely zeroed; the fault substrate deliberately preloads
/// them near saturation). The portable layer therefore never interprets a
/// raw reading directly: it baselines every counter when counting (re)starts
/// and accumulates `(raw - last) mod 2^width` deltas into full 64-bit
/// counts, so API-visible values never go backwards across a hardware wrap.
///
/// All buffers are sized once at `start`; the steady-state widening path
/// allocates nothing.
pub(crate) struct WidenState {
    /// `2^width - 1`.
    mask: u64,
    /// Last raw reading per physical counter.
    last: Vec<u64>,
    /// Widened cumulative count per physical counter (direct mode).
    acc: Vec<u64>,
    /// Every physical counter index, for baseline batch reads.
    all: Vec<usize>,
    /// Baseline-read staging buffer.
    tmp: Vec<u64>,
    /// Wraps observed since the last [`WidenState::take_wraps`].
    wraps: u64,
}

impl WidenState {
    pub(crate) fn new(width: u32, num_counters: usize) -> Self {
        debug_assert!(width < 64);
        WidenState {
            mask: (1u64 << width) - 1,
            last: vec![0; num_counters],
            acc: vec![0; num_counters],
            all: (0..num_counters).collect(),
            tmp: Vec::with_capacity(num_counters),
            wraps: 0,
        }
    }

    /// Re-read every counter's raw value as the new delta baseline (after
    /// counting starts, after a reset, or after reprogramming — anything
    /// that rebases the hardware registers).
    pub(crate) fn rebaseline<S: Substrate>(&mut self, sub: &mut S) -> Result<()> {
        self.tmp.clear();
        sub.read_batch(&self.all, &mut self.tmp)?;
        self.last.copy_from_slice(&self.tmp);
        Ok(())
    }

    /// Zero the accumulated counts (the baseline is re-read separately).
    pub(crate) fn reset_acc(&mut self) {
        self.acc.iter_mut().for_each(|a| *a = 0);
    }

    /// Width-aware delta of counter `ctr` since its last reading.
    pub(crate) fn delta(&mut self, ctr: usize, raw: u64) -> u64 {
        if raw < self.last[ctr] {
            self.wraps += 1;
        }
        let d = raw.wrapping_sub(self.last[ctr]) & self.mask;
        self.last[ctr] = raw;
        d
    }

    /// Fold a raw reading into counter `ctr`'s widened cumulative count.
    pub(crate) fn widen(&mut self, ctr: usize, raw: u64) -> u64 {
        let d = self.delta(ctr, raw);
        self.acc[ctr] += d;
        self.acc[ctr]
    }

    /// Drain the wrap counter (for `fault.wraps` accounting).
    pub(crate) fn take_wraps(&mut self) -> u64 {
        std::mem::take(&mut self.wraps)
    }
}

/// Reissue `f` while it fails transiently, up to `budget` retries; count
/// and journal each retry and the final give-up through `obs`.
///
/// A free function over disjoint borrows (the obs handle is never captured
/// by `f`), so call sites can retry substrate operations that mutably
/// borrow other session fields. `now` is the virtual time when the
/// operation began — retries are journaled against it, since the substrate
/// clock is unreachable while `f` borrows the substrate.
///
/// Allocation-free: injected transient errors carry `&'static str`
/// payloads, and the journal closure only runs when journaling is enabled.
pub(crate) fn retry_transient<T>(
    obs: &Option<papi_obs::ObsHandle>,
    now: u64,
    budget: u32,
    op: &'static str,
    mut f: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt: u32 = 0;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => {
                if attempt < budget {
                    attempt += 1;
                    if let Some(obs) = obs {
                        obs.inc(ObsCounter::FaultRetries);
                        obs.record(now, || ObsEvent::TransientRetried { op, attempt });
                    }
                } else {
                    if let Some(obs) = obs {
                        obs.inc(ObsCounter::FaultGaveUp);
                        obs.record(now, || ObsEvent::TransientGaveUp {
                            op,
                            attempts: attempt + 1,
                        });
                    }
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Per-session reusable buffers for the hot read/accum/rotate paths.  Sized
/// on first use, then reused forever: the steady state performs no heap
/// allocation.
#[derive(Default)]
pub(crate) struct ReadScratch {
    /// Per-native counts (direct readouts, or multiplex estimates).
    counts: Vec<u64>,
    /// Live-partition counter readouts during a multiplex flush.
    live: Vec<u64>,
    /// Derived values staging area for `accum`.
    values: Vec<i64>,
    /// Hardware programming image for multiplex partition switches.
    prog: Vec<Option<(u32, Domain)>>,
}

/// Overflow callbacks must be `Send`: like the C library's signal-based
/// handlers, they may run on whichever thread drives the event loop, and a
/// global session (the C API) moves across threads.
pub type OvfHandler = Box<dyn FnMut(OverflowInfo) + Send>;

impl<S: Substrate> Papi<S> {
    // --- overflow & profil registration -------------------------------------

    /// `PAPI_overflow`: call `handler` every `threshold` occurrences of
    /// `code` while the set runs. The handler receives the (possibly
    /// skidded) interrupt PC.
    pub fn overflow(
        &mut self,
        id: EventSetId,
        code: u32,
        threshold: u64,
        handler: OvfHandler,
    ) -> Result<()> {
        if threshold == 0 {
            return Err(PapiError::Inval("zero overflow threshold"));
        }
        let route = OvfRoute::Handler(self.handlers.len());
        self.arm_overflow_route(id, code, threshold, route)?;
        self.handlers.push(handler);
        Ok(())
    }

    /// `PAPI_profil`: statistical profiling of `code` over a text range.
    /// Returns a handle to retrieve the histogram with
    /// [`Papi::profil_histogram`].
    pub fn profil(&mut self, id: EventSetId, code: u32, cfg: ProfilConfig) -> Result<ProfilId> {
        let pid = self.profils.len();
        let route = OvfRoute::Profil(pid);
        self.arm_overflow_route(id, code, cfg.threshold, route)?;
        self.profils.push(Profil::new(cfg));
        Ok(pid)
    }

    /// Shared validation for [`Papi::overflow`] and [`Papi::profil`]
    /// registrations.
    fn arm_overflow_route(
        &mut self,
        id: EventSetId,
        code: u32,
        threshold: u64,
        route: OvfRoute,
    ) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if s.multiplex {
            return Err(PapiError::Cnflct);
        }
        if !s.events.contains(&code) {
            return Err(PapiError::NoEvnt(code));
        }
        if s.overflow.iter().any(|o| o.code == code) {
            return Err(PapiError::Cnflct);
        }
        s.overflow.push(crate::eventset::OverflowReg {
            code,
            threshold,
            route,
        });
        Ok(())
    }

    /// The histogram collected by a [`Papi::profil`] registration.
    pub fn profil_histogram(&self, pid: ProfilId) -> Option<&Profil> {
        self.profils.get(pid)
    }

    // --- resolution & allocation --------------------------------------------

    /// Resolve the set's PAPI events into a [`ReadPlan`]: unique natives +
    /// the flattened per-event term table.
    fn resolve_set(&self, id: EventSetId) -> Result<ReadPlan> {
        let s = self.set_ref(id)?;
        if s.events.is_empty() {
            return Err(PapiError::Inval("EventSet is empty"));
        }
        let mut natives: Vec<u32> = Vec::new();
        let mut term_native: Vec<u32> = Vec::new();
        let mut term_coeff: Vec<i64> = Vec::new();
        let mut term_bounds: Vec<u32> = Vec::with_capacity(s.events.len() + 1);
        term_bounds.push(0);
        for &code in &s.events {
            let m = self.presets.resolve(code, self.sub.native_events())?;
            for (ncode, coeff) in m.terms {
                let idx = match natives.iter().position(|&n| n == ncode) {
                    Some(i) => i,
                    None => {
                        natives.push(ncode);
                        natives.len() - 1
                    }
                };
                term_native.push(idx as u32);
                term_coeff.push(coeff);
            }
            term_bounds.push(term_native.len() as u32);
        }
        // Identity plan: event i is exactly 1 * natives[i]. Then delta
        // application is a cast-copy and the apply loop vectorizes.
        let identity = term_native.len() == s.events.len()
            && natives.len() == s.events.len()
            && term_coeff.iter().all(|&c| c == 1)
            && term_native
                .iter()
                .enumerate()
                .all(|(i, &t)| t as usize == i);
        Ok(ReadPlan {
            natives,
            term_native,
            term_coeff,
            term_bounds,
            identity,
        })
    }

    /// Solve counter allocation for `natives` through the PAPI-3 split: the
    /// substrate translates its constraint scheme into solver instances
    /// ([`Substrate::alloc_model`]); the hardware-independent matcher does
    /// the rest. No group special-casing here.  Solutions are memoized by
    /// sorted-signature, so re-`start` of an unchanged set skips the search.
    fn allocate(&mut self, natives: &[u32]) -> Option<Vec<usize>> {
        let mut stats = alloc::AllocStats::default();
        let (assign, memo_hit) = self.alloc_memo.allocate(
            &self.alloc_model,
            natives,
            self.sub.native_events(),
            &mut stats,
        );
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::AllocAttempts);
            obs.inc(if assign.is_some() {
                ObsCounter::AllocSuccesses
            } else {
                ObsCounter::AllocFailures
            });
            obs.inc(if memo_hit {
                ObsCounter::AllocMemoHits
            } else {
                ObsCounter::AllocMemoMisses
            });
            obs.add(ObsCounter::AllocAugmentSteps, stats.augment_steps);
            obs.add(ObsCounter::AllocBacktracks, stats.backtracks);
            obs.record(self.sub.real_cycles(), || ObsEvent::AllocAttempt {
                events: natives.len(),
                success: assign.is_some(),
                augment_steps: stats.augment_steps,
                backtracks: stats.backtracks,
            });
        }
        assign
    }

    // --- start / stop / read ------------------------------------------------

    /// `PAPI_start`: resolve, allocate, program and start the counters.
    pub fn start(&mut self, id: EventSetId) -> Result<()> {
        let begin_cycles = self.sub.real_cycles();
        let r = self.start_inner(id);
        if let Some(obs) = &self.obs {
            match &r {
                Ok(()) => {
                    obs.inc(ObsCounter::Starts);
                    let now = self.sub.real_cycles();
                    obs.observe_cycles(
                        ObsCounter::CyclesInStartStop,
                        now.saturating_sub(begin_cycles),
                    );
                    let (natives, multiplexed) = self
                        .running
                        .as_ref()
                        .map(|run| (run.plan.natives.len(), matches!(run.mode, RunMode::Mpx(_))))
                        .unwrap_or((0, false));
                    obs.record(now, || ObsEvent::Start {
                        set: id,
                        natives,
                        multiplexed,
                    });
                }
                Err(_) => obs.inc(ObsCounter::StartErrors),
            }
        }
        r
    }

    fn start_inner(&mut self, id: EventSetId) -> Result<()> {
        if self.running.is_some() {
            return Err(PapiError::IsRun);
        }
        let plan = self.resolve_set(id)?;
        let (domain, multiplex, mpx_period, attached, overflow) = {
            let s = self.set_ref(id)?;
            (
                s.domain,
                s.multiplex,
                s.mpx_period,
                s.attached,
                s.overflow.clone(),
            )
        };
        if attached.is_some() && multiplex {
            return Err(PapiError::Cnflct);
        }

        let mode = match self.allocate(&plan.natives) {
            Some(assign) => RunMode::Direct { assign },
            None if multiplex => {
                let descs: Vec<&NativeEventDesc> = plan
                    .natives
                    .iter()
                    .map(|&c| {
                        self.sub
                            .native_events()
                            .iter()
                            .find(|e| e.code == c)
                            .unwrap()
                    })
                    .collect();
                let parts =
                    partition_events_with(&descs, &self.alloc_model).ok_or(PapiError::Cnflct)?;
                let now = self.sub.real_cycles();
                let period = mpx_period.unwrap_or(DEFAULT_MPX_PERIOD_CYCLES);
                RunMode::Mpx(MpxState::new(parts, plan.natives.len(), period, now))
            }
            None => return Err(PapiError::Cnflct),
        };

        // Program the hardware for the initial configuration.
        let mut routes = Vec::new();
        match &mode {
            RunMode::Direct { assign } => {
                let mut prog: Vec<Option<(u32, Domain)>> = vec![None; self.sub.num_counters()];
                for (i, &ctr) in assign.iter().enumerate() {
                    prog[ctr] = Some((plan.natives[i], domain));
                }
                self.sub.program(&prog)?;
                // Arm overflow registrations on the counter of each event's
                // first native term.
                for reg in &overflow {
                    let ev_pos = {
                        let s = self.set_ref(id)?;
                        s.events
                            .iter()
                            .position(|&e| e == reg.code)
                            .ok_or(PapiError::NoEvnt(reg.code))?
                    };
                    let nidx = plan.first_native(ev_pos);
                    let ctr = assign[nidx as usize];
                    self.sub.set_overflow(ctr, Some(reg.threshold))?;
                    routes.push((ctr, reg.code, reg.route));
                }
            }
            RunMode::Mpx(mpx) => {
                self.program_partition(&plan.natives, domain, &mpx.partitions[0])?;
                self.sub.set_timer(Some(mpx.period));
            }
        }

        // Re-anchor the mpx clock after programming costs.
        let mut mode = mode;
        if let RunMode::Mpx(m) = &mut mode {
            m.switched_at = self.sub.real_cycles();
        }

        let width = self.sub.counter_width();
        let widen = (width < 64).then(|| WidenState::new(width, self.sub.num_counters()));
        self.running = Some(Running {
            set: id,
            attached,
            plan,
            mode,
            routes,
            widen,
        });
        self.set_mut(id)?.state = SetState::Running;
        let now = self.sub.real_cycles();
        let budget = self.retry_budget;
        if let Err(e) = retry_transient(&self.obs, now, budget, "start", || self.sub.start()) {
            // A failed start must leave the session stopped, not
            // half-running: disarm what was programmed and restore state.
            self.rollback_failed_start(id)?;
            return Err(e);
        }
        // Baseline for wraparound widening: the raw register values at the
        // instant counting begins carry the hardware's arbitrary bias, so
        // they are recorded now and only deltas are trusted from here on.
        if let Some(run) = self.running.as_mut() {
            if let Some(w) = run.widen.as_mut() {
                let r = retry_transient(&self.obs, now, budget, "read", || {
                    w.rebaseline(&mut self.sub)
                });
                if let Err(e) = r {
                    let _ = self.sub.stop();
                    self.rollback_failed_start(id)?;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Undo the side effects of a partially performed `start`.
    fn rollback_failed_start(&mut self, id: EventSetId) -> Result<()> {
        if let Some(run) = self.running.take() {
            for (ctr, _, _) in run.routes {
                let _ = self.sub.set_overflow(ctr, None);
            }
            if matches!(run.mode, RunMode::Mpx(_)) {
                self.sub.set_timer(None);
            }
        }
        self.set_mut(id)?.state = SetState::Stopped;
        Ok(())
    }

    fn program_partition(
        &mut self,
        natives: &[u32],
        domain: Domain,
        part: &multiplex::Partition,
    ) -> Result<()> {
        let mut prog: Vec<Option<(u32, Domain)>> = vec![None; self.sub.num_counters()];
        for (slot, &nidx) in part.natives.iter().enumerate() {
            prog[part.counters[slot]] = Some((natives[nidx], domain));
        }
        self.sub.program(&prog)
    }

    /// Read the running set's native counts into `self.scratch.counts`.
    ///
    /// Allocation-free in steady state: the scratch buffers reach capacity
    /// on the first call and are reused thereafter, and the cached
    /// [`ReadPlan`]/assignment are borrowed in place (disjoint fields), never
    /// cloned per call.
    fn read_native_counts_into(&mut self) -> Result<()> {
        let budget = self.retry_budget;
        let now = self.sub.real_cycles();
        let run = self.running.as_mut().ok_or(PapiError::NotRun)?;
        let Running {
            attached,
            mode,
            widen,
            ..
        } = run;
        match mode {
            RunMode::Direct { assign } => {
                if let Some(obs) = &self.obs {
                    obs.add(ObsCounter::CounterReads, assign.len() as u64);
                }
                match *attached {
                    Some(t) => {
                        self.scratch.counts.clear();
                        for &ctr in assign.iter() {
                            let v = retry_transient(&self.obs, now, budget, "read", || {
                                self.sub.read_attached(t, ctr)
                            })?;
                            self.scratch.counts.push(v);
                        }
                    }
                    // One kernel crossing for the whole counter state. The
                    // buffer is cleared inside the closure so a retried
                    // crossing never leaves partial values behind.
                    None => {
                        retry_transient(&self.obs, now, budget, "read", || {
                            self.scratch.counts.clear();
                            self.sub.read_batch(assign, &mut self.scratch.counts)
                        })?;
                        if let Some(w) = widen.as_mut() {
                            for (i, &ctr) in assign.iter().enumerate() {
                                self.scratch.counts[i] = w.widen(ctr, self.scratch.counts[i]);
                            }
                            if let Some(obs) = &self.obs {
                                obs.add(ObsCounter::FaultWraps, w.take_wraps());
                            }
                        }
                    }
                }
            }
            RunMode::Mpx(m) => {
                // Flush the live partition, then leave estimates in scratch.
                retry_transient(&self.obs, now, budget, "read", || {
                    self.scratch.live.clear();
                    self.sub
                        .read_batch(&m.partitions[m.current].counters, &mut self.scratch.live)
                })?;
                if let Some(w) = widen.as_mut() {
                    for (slot, &ctr) in m.partitions[m.current].counters.iter().enumerate() {
                        self.scratch.live[slot] = w.delta(ctr, self.scratch.live[slot]);
                    }
                    if let Some(obs) = &self.obs {
                        obs.add(ObsCounter::FaultWraps, w.take_wraps());
                    }
                }
                // Avoid double counting on the next flush.
                retry_transient(&self.obs, now, budget, "reset", || self.sub.reset())?;
                if let Some(w) = widen.as_mut() {
                    retry_transient(&self.obs, now, budget, "read", || {
                        w.rebaseline(&mut self.sub)
                    })?;
                }
                if let Some(obs) = &self.obs {
                    obs.add(ObsCounter::CounterReads, self.scratch.live.len() as u64);
                    obs.inc(ObsCounter::MpxFlushes);
                    let partition = m.current;
                    let live_cycles = now.saturating_sub(m.switched_at);
                    obs.record(now, || ObsEvent::MpxFlush {
                        partition,
                        live_cycles,
                    });
                }
                m.flush(now, &self.scratch.live);
                m.estimates_into(&mut self.scratch.counts);
            }
        }
        Ok(())
    }

    /// Fold `self.scratch.counts` through the plan's term table into `out`.
    fn values_into(&self, out: &mut [i64]) -> Result<()> {
        let run = self.running.as_ref().ok_or(PapiError::NotRun)?;
        run.plan.apply(&self.scratch.counts, out)
    }

    /// `PAPI_read` into a caller-owned buffer: current values (the set keeps
    /// running).  `out.len()` must equal the set's event count.
    ///
    /// This is the allocation-free form of [`Papi::read`] — on a started,
    /// non-multiplexed set the steady-state call performs **zero heap
    /// allocations** (asserted by papi-bench's counting-allocator test).
    ///
    /// The dominant configuration (direct mode, no observability, no
    /// attach, full-width counters) takes a dedicated fast path: the
    /// session fields are destructured once into disjoint borrows, so the
    /// cached plan, assignment and scratch are each derived exactly once
    /// per call — one batch kernel crossing, then the vectorized
    /// [`ReadPlan::apply`]. This is what closed the boxed-vs-static gap:
    /// the boxed-substrate path previously re-derived the `running` record
    /// (and with it the plan pointer) three times per read, which the
    /// optimizer could not fold across virtual-dispatch boundaries.
    /// Transient-fault retries still compose — the retry loop wraps only
    /// the substrate crossing, never the plan application.
    pub fn read_into(&mut self, id: EventSetId, out: &mut [i64]) -> Result<()> {
        if self.obs.is_none() {
            let Papi {
                sub,
                running,
                scratch,
                retry_budget,
                ..
            } = self;
            if let Some(run) = running.as_mut() {
                if run.set == id && run.attached.is_none() && run.widen.is_none() {
                    if let RunMode::Direct { assign } = &run.mode {
                        retry_transient(&None, 0, *retry_budget, "read", || {
                            scratch.counts.clear();
                            sub.read_batch(assign, &mut scratch.counts)
                        })?;
                        return run.plan.apply(&scratch.counts, out);
                    }
                }
            }
        }
        match &self.running {
            Some(r) if r.set == id => {}
            _ => return Err(PapiError::NotRun),
        }
        let begin_cycles = self.sub.real_cycles();
        self.read_native_counts_into()?;
        self.values_into(out)?;
        if let Some(obs) = &self.obs {
            let now = self.sub.real_cycles();
            let cost_cycles = now.saturating_sub(begin_cycles);
            obs.inc(ObsCounter::Reads);
            obs.observe_cycles(ObsCounter::CyclesInRead, cost_cycles);
            obs.record(now, || ObsEvent::Read {
                set: id,
                cost_cycles,
            });
        }
        Ok(())
    }

    /// `PAPI_read`: current values (the set keeps running).  Allocates only
    /// the returned vector; use [`Papi::read_into`] to avoid even that.
    pub fn read(&mut self, id: EventSetId) -> Result<Vec<i64>> {
        let n = match &self.running {
            Some(r) if r.set == id => r.plan.n_events(),
            _ => return Err(PapiError::NotRun),
        };
        let mut out = vec![0i64; n];
        self.read_into(id, &mut out)?;
        Ok(out)
    }

    /// `PAPI_accum`: add current values into `values` and reset the
    /// counters.  Allocation-free in steady state (delegates to
    /// [`Papi::read_into`] through a per-session staging buffer).
    pub fn accum(&mut self, id: EventSetId, values: &mut [i64]) -> Result<()> {
        let n = match &self.running {
            Some(r) if r.set == id => r.plan.n_events(),
            _ => return Err(PapiError::NotRun),
        };
        if values.len() != n {
            return Err(PapiError::Inval("accum buffer length mismatch"));
        }
        // Stage the read in the session scratch (taken to appease the
        // borrow checker; putting it back preserves its capacity).
        let mut staged = std::mem::take(&mut self.scratch.values);
        staged.resize(n, 0);
        let read_r = self.read_into(id, &mut staged);
        if let Ok(()) = read_r {
            for (acc, x) in values.iter_mut().zip(staged.iter()) {
                *acc += x;
            }
        }
        self.scratch.values = staged;
        read_r?;
        let r = self.reset(id);
        if r.is_ok() {
            if let Some(obs) = &self.obs {
                obs.inc(ObsCounter::Accums);
                obs.record(self.sub.real_cycles(), || ObsEvent::Accum { set: id });
            }
        }
        r
    }

    /// `PAPI_reset`: zero the running counters (and multiplex accumulators).
    pub fn reset(&mut self, id: EventSetId) -> Result<()> {
        let now = self.sub.real_cycles();
        match &mut self.running {
            Some(r) if r.set == id => {
                if let RunMode::Mpx(m) = &mut r.mode {
                    m.raw.iter_mut().for_each(|r| *r = 0);
                    m.active_cycles.iter_mut().for_each(|a| *a = 0);
                    m.switched_at = now;
                }
            }
            _ => return Err(PapiError::NotRun),
        }
        let budget = self.retry_budget;
        let r = retry_transient(&self.obs, now, budget, "reset", || self.sub.reset());
        if r.is_ok() {
            // The hardware registers were rebased: re-read the widening
            // baseline and zero the accumulated counts.
            if let Some(run) = self.running.as_mut() {
                if let Some(w) = run.widen.as_mut() {
                    w.reset_acc();
                    retry_transient(&self.obs, now, budget, "read", || {
                        w.rebaseline(&mut self.sub)
                    })?;
                }
            }
            if let Some(obs) = &self.obs {
                obs.inc(ObsCounter::Resets);
                obs.record(self.sub.real_cycles(), || ObsEvent::Reset { set: id });
            }
        }
        r
    }

    /// `PAPI_stop`: stop counting and return the final values.
    pub fn stop(&mut self, id: EventSetId) -> Result<Vec<i64>> {
        match &self.running {
            Some(r) if r.set == id => {}
            _ => return Err(PapiError::NotRun),
        }
        let begin_cycles = self.sub.real_cycles();
        self.read_native_counts_into()?;
        let n = self
            .running
            .as_ref()
            .map(|r| r.plan.n_events())
            .unwrap_or(0);
        let mut values = vec![0i64; n];
        self.values_into(&mut values)?;
        // Disarm machinery.  Stop is off the hot path, so taking the route
        // table out of the dying Running is free (it is discarded below).
        let (routes, was_mpx) = {
            let run = self.running.as_mut().ok_or(PapiError::NotRun)?;
            (
                std::mem::take(&mut run.routes),
                matches!(run.mode, RunMode::Mpx(_)),
            )
        };
        for (ctr, _, _) in routes {
            self.sub.set_overflow(ctr, None)?;
        }
        if was_mpx {
            self.sub.set_timer(None);
        }
        let budget = self.retry_budget;
        retry_transient(&self.obs, begin_cycles, budget, "stop", || self.sub.stop())?;
        self.running = None;
        self.set_mut(id)?.state = SetState::Stopped;
        if let Some(obs) = &self.obs {
            let now = self.sub.real_cycles();
            obs.inc(ObsCounter::Stops);
            obs.observe_cycles(
                ObsCounter::CyclesInStartStop,
                now.saturating_sub(begin_cycles),
            );
            obs.record(now, || ObsEvent::Stop { set: id });
        }
        Ok(values)
    }

    // --- the application run loop -------------------------------------------

    /// Let the monitored application execute until it halts or hits an
    /// instrumentation probe, servicing overflow interrupts (user handlers
    /// and profil histograms), multiplex rotation and sample-buffer drains
    /// along the way.
    pub fn next_event(&mut self) -> Result<AppExit> {
        self.next_event_until(None)
    }

    /// Like [`Papi::next_event`] but stops after `budget` cycles if nothing
    /// else happened first, returning [`AppExit::Paused`]. The perfometer
    /// tool samples metrics on this boundary.
    pub fn run_for(&mut self, budget: u64) -> Result<AppExit> {
        let deadline = self.sub.real_cycles().saturating_add(budget);
        self.next_event_until(Some(deadline))
    }

    fn next_event_until(&mut self, deadline: Option<u64>) -> Result<AppExit> {
        loop {
            let budget = match deadline {
                Some(d) => {
                    let now = self.sub.real_cycles();
                    if now >= d {
                        return Ok(AppExit::Paused);
                    }
                    Some(d - now)
                }
                None => None,
            };
            match self.sub.run(budget) {
                RunExit::Halted => {
                    if self.sampling_cfg.is_some() {
                        let tail = self.sub.drain_samples();
                        self.sampling_buf.extend(tail);
                    }
                    return Ok(AppExit::Halted);
                }
                RunExit::Probe { id, thread, pc } => {
                    return Ok(AppExit::Probe { id, thread, pc });
                }
                RunExit::Overflow {
                    counter,
                    thread,
                    pc,
                } => {
                    self.dispatch_overflow(counter, thread, pc);
                }
                RunExit::Timer => {
                    self.rotate_mpx()?;
                }
                RunExit::SampleBufferFull => {
                    let recs = self.sub.drain_samples();
                    self.sampling_buf.extend(recs);
                }
                RunExit::CycleLimit => return Ok(AppExit::Paused),
                RunExit::Deadlock => {
                    return Err(PapiError::Substrate(
                        "application deadlocked on message receive".into(),
                    ))
                }
            }
        }
    }

    /// Run the application to completion, ignoring probes.
    pub fn run_app(&mut self) -> Result<()> {
        loop {
            if let AppExit::Halted = self.next_event()? {
                return Ok(());
            }
        }
    }

    fn dispatch_overflow(&mut self, counter: usize, thread: ThreadId, pc: u64) {
        let Some(run) = &self.running else { return };
        let set = run.set;
        let hits: Vec<(u32, OvfRoute)> = run
            .routes
            .iter()
            .filter(|(c, _, _)| *c == counter)
            .map(|(_, code, r)| (*code, *r))
            .collect();
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::OverflowInterrupts);
        }
        let mut profil_hits = 0u64;
        for (code, route) in hits {
            match route {
                OvfRoute::Profil(p) => {
                    if let Some(prof) = self.profils.get_mut(p) {
                        prof.hit(pc);
                        profil_hits += 1;
                    }
                }
                OvfRoute::Handler(h) => {
                    if let Some(obs) = &self.obs {
                        obs.inc(ObsCounter::OverflowHandlerDispatches);
                        obs.record(self.sub.real_cycles(), || ObsEvent::OverflowFired {
                            counter,
                            code,
                            pc,
                            to_handler: true,
                        });
                    }
                    let info = OverflowInfo {
                        set,
                        code,
                        pc,
                        thread,
                    };
                    if let Some(cb) = self.handlers.get_mut(h) {
                        cb(info);
                    }
                }
            }
        }
        if profil_hits > 0 {
            if let Some(obs) = &self.obs {
                obs.add(ObsCounter::ProfilHits, profil_hits);
                obs.record(self.sub.real_cycles(), || ObsEvent::ProfilHitBatch {
                    hits: profil_hits,
                    pc,
                });
            }
        }
    }

    /// Multiplex rotation on a timer tick: fold the live partition's counts
    /// into the accumulators and program the next partition.
    ///
    /// Like the read path, this borrows the cached plan and the session
    /// scratch buffers in place: a steady-state rotation clones nothing and
    /// allocates nothing.
    fn rotate_mpx(&mut self) -> Result<()> {
        let begin_cycles = self.sub.real_cycles();
        let now = begin_cycles;
        let budget = self.retry_budget;
        let Some(run) = self.running.as_mut() else {
            return Ok(());
        };
        // Disjoint borrows of the Running record so the plan, mode and
        // scratch can be used simultaneously with substrate calls.
        let Running {
            set,
            plan,
            mode,
            widen,
            ..
        } = run;
        let set = *set;
        let RunMode::Mpx(m) = mode else {
            return Ok(());
        };
        let from_partition = m.current;
        let switched_at = m.switched_at;
        retry_transient(&self.obs, now, budget, "read", || {
            self.scratch.live.clear();
            self.sub
                .read_batch(&m.partitions[m.current].counters, &mut self.scratch.live)
        })?;
        if let Some(w) = widen.as_mut() {
            for (slot, &ctr) in m.partitions[m.current].counters.iter().enumerate() {
                self.scratch.live[slot] = w.delta(ctr, self.scratch.live[slot]);
            }
            if let Some(obs) = &self.obs {
                obs.add(ObsCounter::FaultWraps, w.take_wraps());
            }
        }
        // Fold and advance.
        m.flush(now, &self.scratch.live);
        m.rotate();
        let to_partition = m.current;
        let domain = self.sets[set].as_ref().unwrap().domain;
        // Program the next partition through the prog scratch (the
        // allocation-free unrolling of `program_partition`).
        let part = &m.partitions[m.current];
        self.scratch.prog.clear();
        self.scratch.prog.resize(self.sub.num_counters(), None);
        for (slot, &nidx) in part.natives.iter().enumerate() {
            self.scratch.prog[part.counters[slot]] = Some((plan.natives[nidx], domain));
        }
        self.sub.program(&self.scratch.prog)?;
        // Programming rebased the registers; re-read the widening baseline.
        if let Some(w) = widen.as_mut() {
            retry_transient(&self.obs, now, budget, "read", || {
                w.rebaseline(&mut self.sub)
            })?;
        }
        // Counting restarts now; don't charge programming time to the slice.
        m.switched_at = self.sub.real_cycles();
        if let Some(obs) = &self.obs {
            let end_cycles = self.sub.real_cycles();
            let cost_cycles = end_cycles.saturating_sub(begin_cycles);
            obs.inc(ObsCounter::MpxRotations);
            obs.inc(ObsCounter::MpxFlushes);
            obs.inc(ObsCounter::MpxProgramOps);
            obs.add(ObsCounter::CounterReads, self.scratch.live.len() as u64);
            obs.observe_cycles(ObsCounter::CyclesInMpxRotate, cost_cycles);
            obs.record(now, || ObsEvent::MpxFlush {
                partition: from_partition,
                live_cycles: now.saturating_sub(switched_at),
            });
            obs.record(end_cycles, || ObsEvent::MpxRotate {
                from_partition,
                to_partition,
                cost_cycles,
            });
        }
        Ok(())
    }
}
