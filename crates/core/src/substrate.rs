//! The substrate boundary — the machine-dependent layer of Figure 1.
//!
//! Everything above this trait is portable; implementing [`Substrate`] for a
//! new platform is all that is needed to port the library, exactly as the
//! paper describes ("the machine-dependent part of the implementation,
//! called the substrate, is all that needs to be rewritten"). The crate
//! ships [`SimSubstrate`], which drives a [`simcpu::Machine`]; a
//! `perf_event`-based substrate for real Linux hosts would implement the
//! same trait.

use crate::alloc::AllocModel;
use crate::error::Result;
use simcpu::platform::GroupDef;
use simcpu::{
    Domain, Machine, MemInfo, NativeEventDesc, PlatformSpec, Program, RunExit, SampleConfig,
    SampleRecord, ThreadId,
};

/// Static description of the hardware, returned by [`Substrate::hw_info`]
/// (the equivalent of `PAPI_get_hardware_info`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwInfo {
    pub vendor: String,
    pub model: String,
    pub mhz: u64,
    pub num_counters: usize,
    pub precise_sampling: bool,
    pub group_based: bool,
}

/// The machine-dependent layer.
///
/// All mutating operations are *costed*: on a real machine they cross into
/// the kernel; on the simulated substrate they consume simulated cycles and
/// perturb the caches, which is what makes overhead measurable.
pub trait Substrate {
    /// Hardware description.
    fn hw_info(&self) -> HwInfo;

    /// Number of physical counters.
    fn num_counters(&self) -> usize;

    /// The native events this platform exposes.
    fn native_events(&self) -> &[NativeEventDesc];

    /// Counter groups, non-empty on group-allocated platforms (POWER style).
    fn groups(&self) -> &[GroupDef];

    /// Width, in bits, of the counter values this substrate's `read` path
    /// returns.  64 (the default) means values never wrap in practice and
    /// the portable layer reads them verbatim.  Anything narrower — the
    /// paper's platforms ranged from 32-bit MIPS/UltraSPARC counters to
    /// 40-bit Pentium MSRs — makes the portable layer run its wraparound
    /// widening: raw readings are treated as values modulo `2^width` and
    /// deltas are accumulated into full 64-bit counts, so API-visible
    /// values never go backwards across a hardware wrap.
    fn counter_width(&self) -> u32 {
        64
    }

    /// The hardware-dependent half of the PAPI-3 allocation split: how this
    /// platform's counter constraints translate into instances for the
    /// hardware-independent solver. The default derives a mask- or
    /// group-based model from `num_counters`/`groups`; substrates with a
    /// different constraint language override this.
    fn alloc_model(&self) -> AllocModel {
        AllocModel::for_platform(self.num_counters(), self.groups())
    }

    /// Load a program onto the monitored "application" carrier, for
    /// substrates that own one (the simulated machines do; a real
    /// `perf_event` substrate monitors an existing process and would keep
    /// the default).
    fn load_program(&mut self, _program: Program) -> Result<()> {
        Err(crate::error::PapiError::NoSupp(
            "substrate cannot load programs",
        ))
    }

    /// Program the full counter configuration: `assign[i]` is the native
    /// event code (and domain) for counter `i`, or `None` to clear it.
    fn program(&mut self, assign: &[Option<(u32, Domain)>]) -> Result<()>;

    /// Start the counters.
    fn start(&mut self) -> Result<()>;

    /// Stop the counters.
    fn stop(&mut self) -> Result<()>;

    /// Zero the counters.
    fn reset(&mut self) -> Result<()>;

    /// Read one counter.
    fn read(&mut self, idx: usize) -> Result<u64>;

    /// Read several counters in one substrate call, appending their values
    /// to `out` in `ctrs` order.
    ///
    /// Real counter interfaces return the full counter state per kernel
    /// crossing (one ioctl/syscall), so the portable layer's `read` of an
    /// n-event set should cost one crossing, not n.  Substrates with a
    /// batched native interface override this; the default falls back to
    /// per-counter [`Substrate::read`].
    fn read_batch(&mut self, ctrs: &[usize], out: &mut Vec<u64>) -> Result<()> {
        for &c in ctrs {
            let v = self.read(c)?;
            out.push(v);
        }
        Ok(())
    }

    /// Arm (`Some(threshold)`) or disarm (`None`) overflow interrupts.
    fn set_overflow(&mut self, idx: usize, threshold: Option<u64>) -> Result<()>;

    /// Configure precise sampling, if the hardware has it.
    fn configure_sampling(&mut self, cfg: Option<SampleConfig>) -> Result<()>;

    /// Drain buffered precise samples.
    fn drain_samples(&mut self) -> Vec<SampleRecord>;

    /// Set (or clear) the programmable timer, period in cycles.
    fn set_timer(&mut self, period_cycles: Option<u64>);

    /// Counting granularity: machine-wide or virtualized per thread.
    fn set_granularity(&mut self, g: simcpu::Granularity);

    /// Let the monitored application execute until the next event requiring
    /// software attention.
    fn run(&mut self, budget_cycles: Option<u64>) -> RunExit;

    /// Cycle clock (for `PAPI_get_real_cyc`).
    fn real_cycles(&self) -> u64;

    /// Wall-clock nanoseconds (for `PAPI_get_real_usec`).
    fn real_ns(&self) -> u64;

    /// Virtual (user-mode) nanoseconds of a thread (for
    /// `PAPI_get_virt_usec`).
    fn virt_ns(&self, thread: ThreadId) -> Result<u64>;

    /// Memory-utilization info (the PAPI-3 extension).
    fn mem_info(&self, thread: ThreadId) -> Result<MemInfo>;

    /// Read a counter as attributed to a specific thread (requires
    /// per-thread counter virtualization — `PAPI_attach` support).
    /// Substrates without the capability keep the default.
    fn read_attached(&mut self, _thread: ThreadId, _idx: usize) -> Result<u64> {
        Err(crate::error::PapiError::NoSupp(
            "substrate cannot read per-thread counters",
        ))
    }
}

/// A substrate selected at runtime (e.g. through
/// [`crate::registry::SubstrateRegistry`]). `Send` so a global session (the
/// C API) can move across threads.
pub type BoxSubstrate = Box<dyn Substrate + Send>;

/// Boxed substrates are substrates: every call delegates to the inner
/// implementation (including the methods with defaults, so a box never
/// masks an override).
impl<T: Substrate + ?Sized> Substrate for Box<T> {
    fn hw_info(&self) -> HwInfo {
        (**self).hw_info()
    }
    fn num_counters(&self) -> usize {
        (**self).num_counters()
    }
    fn native_events(&self) -> &[NativeEventDesc] {
        (**self).native_events()
    }
    fn groups(&self) -> &[GroupDef] {
        (**self).groups()
    }
    fn counter_width(&self) -> u32 {
        (**self).counter_width()
    }
    fn alloc_model(&self) -> crate::alloc::AllocModel {
        (**self).alloc_model()
    }
    fn load_program(&mut self, program: Program) -> Result<()> {
        (**self).load_program(program)
    }
    fn program(&mut self, assign: &[Option<(u32, Domain)>]) -> Result<()> {
        (**self).program(assign)
    }
    fn start(&mut self) -> Result<()> {
        (**self).start()
    }
    fn stop(&mut self) -> Result<()> {
        (**self).stop()
    }
    fn reset(&mut self) -> Result<()> {
        (**self).reset()
    }
    fn read(&mut self, idx: usize) -> Result<u64> {
        (**self).read(idx)
    }
    fn read_batch(&mut self, ctrs: &[usize], out: &mut Vec<u64>) -> Result<()> {
        (**self).read_batch(ctrs, out)
    }
    fn set_overflow(&mut self, idx: usize, threshold: Option<u64>) -> Result<()> {
        (**self).set_overflow(idx, threshold)
    }
    fn configure_sampling(&mut self, cfg: Option<SampleConfig>) -> Result<()> {
        (**self).configure_sampling(cfg)
    }
    fn drain_samples(&mut self) -> Vec<SampleRecord> {
        (**self).drain_samples()
    }
    fn set_timer(&mut self, period_cycles: Option<u64>) {
        (**self).set_timer(period_cycles)
    }
    fn set_granularity(&mut self, g: simcpu::Granularity) {
        (**self).set_granularity(g)
    }
    fn run(&mut self, budget_cycles: Option<u64>) -> RunExit {
        (**self).run(budget_cycles)
    }
    fn real_cycles(&self) -> u64 {
        (**self).real_cycles()
    }
    fn real_ns(&self) -> u64 {
        (**self).real_ns()
    }
    fn virt_ns(&self, thread: ThreadId) -> Result<u64> {
        (**self).virt_ns(thread)
    }
    fn mem_info(&self, thread: ThreadId) -> Result<MemInfo> {
        (**self).mem_info(thread)
    }
    fn read_attached(&mut self, thread: ThreadId, idx: usize) -> Result<u64> {
        (**self).read_attached(thread, idx)
    }
}

/// The reference substrate: a simulated machine.
pub struct SimSubstrate {
    machine: Machine,
}

impl SimSubstrate {
    /// Wrap a machine (programs should already be loaded, or load them later
    /// through [`SimSubstrate::machine_mut`]).
    pub fn new(machine: Machine) -> Self {
        SimSubstrate { machine }
    }

    /// Build a machine for `spec` with a deterministic seed.
    pub fn for_platform(spec: PlatformSpec, seed: u64) -> Self {
        SimSubstrate {
            machine: Machine::new(spec, seed),
        }
    }

    /// The underlying machine (read-only).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The underlying machine (e.g. to load programs or enable ground-truth
    /// recording).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The platform spec.
    pub fn spec(&self) -> &PlatformSpec {
        self.machine.spec()
    }
}

impl Substrate for SimSubstrate {
    fn hw_info(&self) -> HwInfo {
        let s = self.machine.spec();
        HwInfo {
            vendor: s.vendor.to_string(),
            model: s.model.to_string(),
            mhz: s.clock_mhz,
            num_counters: s.num_counters,
            precise_sampling: s.precise_sampling,
            group_based: s.group_based(),
        }
    }

    fn num_counters(&self) -> usize {
        self.machine.spec().num_counters
    }

    fn native_events(&self) -> &[NativeEventDesc] {
        &self.machine.spec().events
    }

    fn groups(&self) -> &[GroupDef] {
        &self.machine.spec().groups
    }

    fn counter_width(&self) -> u32 {
        self.machine.spec().counter_bits
    }

    fn load_program(&mut self, program: Program) -> Result<()> {
        self.machine.load(program);
        Ok(())
    }

    fn program(&mut self, assign: &[Option<(u32, Domain)>]) -> Result<()> {
        self.machine.costed_program(assign)?;
        Ok(())
    }

    fn start(&mut self) -> Result<()> {
        self.machine.costed_start();
        Ok(())
    }

    fn stop(&mut self) -> Result<()> {
        self.machine.costed_stop();
        Ok(())
    }

    fn reset(&mut self) -> Result<()> {
        self.machine.costed_reset();
        Ok(())
    }

    fn read(&mut self, idx: usize) -> Result<u64> {
        Ok(self.machine.costed_read(idx)?)
    }

    fn read_batch(&mut self, ctrs: &[usize], out: &mut Vec<u64>) -> Result<()> {
        self.machine.costed_read_batch(ctrs, out)?;
        Ok(())
    }

    fn set_overflow(&mut self, idx: usize, threshold: Option<u64>) -> Result<()> {
        self.machine.costed_set_overflow(idx, threshold)?;
        Ok(())
    }

    fn configure_sampling(&mut self, cfg: Option<SampleConfig>) -> Result<()> {
        self.machine.costed_configure_sampling(cfg)?;
        Ok(())
    }

    fn drain_samples(&mut self) -> Vec<SampleRecord> {
        self.machine.costed_drain_samples()
    }

    fn set_timer(&mut self, period_cycles: Option<u64>) {
        self.machine.set_timer(period_cycles);
    }

    fn set_granularity(&mut self, g: simcpu::Granularity) {
        self.machine.set_granularity(g);
    }

    fn run(&mut self, budget_cycles: Option<u64>) -> RunExit {
        self.machine.run(budget_cycles)
    }

    fn real_cycles(&self) -> u64 {
        self.machine.cycles()
    }

    fn real_ns(&self) -> u64 {
        self.machine.real_ns()
    }

    fn virt_ns(&self, thread: ThreadId) -> Result<u64> {
        Ok(self.machine.virt_ns(thread)?)
    }

    fn mem_info(&self, thread: ThreadId) -> Result<MemInfo> {
        Ok(self.machine.mem_info(thread)?)
    }

    fn read_attached(&mut self, thread: ThreadId, idx: usize) -> Result<u64> {
        Ok(self.machine.costed_read_thread(thread, idx)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::{sim_alpha, sim_power3, sim_x86};

    #[test]
    fn hw_info_reflects_platform() {
        let s = SimSubstrate::for_platform(sim_x86(), 1);
        let hi = s.hw_info();
        assert_eq!(hi.num_counters, 4);
        assert!(!hi.precise_sampling);
        assert!(!hi.group_based);
        let s = SimSubstrate::for_platform(sim_power3(), 1);
        assert!(s.hw_info().group_based);
        let s = SimSubstrate::for_platform(sim_alpha(), 1);
        assert!(s.hw_info().precise_sampling);
    }

    #[test]
    fn read_costs_cycles() {
        let mut s = SimSubstrate::for_platform(sim_x86(), 1);
        let c0 = s.real_cycles();
        let _ = s.read(0).unwrap();
        assert_eq!(s.real_cycles() - c0, s.spec().costs.read_cycles);
    }

    #[test]
    fn sampling_rejected_without_hardware() {
        let mut s = SimSubstrate::for_platform(sim_x86(), 1);
        assert!(s.configure_sampling(Some(SampleConfig::default())).is_err());
    }

    #[test]
    fn program_unknown_code_fails() {
        let mut s = SimSubstrate::for_platform(sim_x86(), 1);
        let r = s.program(&[Some((0x4fff_ffff, Domain::USER))]);
        assert!(r.is_err());
    }
}
