//! Software multiplexing of hardware counters.
//!
//! Multiplexing time-slices the physical counters over partitions of the
//! requested events and *estimates* full-run counts by scaling each event's
//! raw count by the fraction of time its partition was live:
//!
//! ```text
//! estimate = raw * (total_active_time / partition_active_time)
//! ```
//!
//! As §2 of the paper stresses, estimates converge to true counts only when
//! the run is long relative to the switching period and the workload is
//! statistically stationary across slices — "naive use of multiplexing could
//! lead to erroneous results". That is why multiplexing must be explicitly
//! enabled per EventSet ([`crate::Papi::set_multiplex`]) and is never on by
//! default.
//!
//! The rotation timer and accumulators live inside the owning session's
//! running state, so under [`crate::threads::ThreadedPapi`] each registered
//! thread multiplexes on its own virtual clock — one thread's rotations
//! never perturb another's estimates.

use crate::alloc::{allocate_with, AllocModel, AllocStats, AllocTranslation};
use simcpu::platform::GroupDef;
use simcpu::NativeEventDesc;

/// Default switching period, in cycles (~0.1 ms at 1 GHz — a fast OS timer;
/// the real library used the ~10 ms SVR4 interval timer, proportionally
/// slower hardware).
pub const DEFAULT_MPX_PERIOD_CYCLES: u64 = 100_000;

/// One time-slice partition: a subset of the set's native events that fits
/// on the hardware simultaneously.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Indices into the running set's native list.
    pub natives: Vec<usize>,
    /// Counter assignment, parallel to `natives`.
    pub counters: Vec<usize>,
}

/// Live multiplexing state for a running EventSet.
#[derive(Debug)]
pub struct MpxState {
    pub partitions: Vec<Partition>,
    pub current: usize,
    /// Raw accumulated counts per native event.
    pub raw: Vec<u64>,
    /// Cycles each partition has been live.
    pub active_cycles: Vec<u64>,
    /// Cycle timestamp of the last switch (or flush).
    pub switched_at: u64,
    pub period: u64,
    /// `part_of[native] = partition index` — precomputed at construction so
    /// estimate computation never rebuilds it per read.
    part_of: Vec<usize>,
}

/// Partition `natives` (with per-platform constraints) into the minimum
/// practical number of simultaneously-countable subsets, greedily.
///
/// Returns `None` only if some single event cannot be counted at all.
pub fn partition_events(
    natives: &[&NativeEventDesc],
    num_counters: usize,
    groups: &[GroupDef],
) -> Option<Vec<Partition>> {
    partition_events_with(natives, &AllocModel::for_platform(num_counters, groups))
}

/// [`partition_events`] against an explicit allocation-translation model
/// (the PAPI-3 split: the partitioner probes feasibility through the
/// substrate's model + the abstract solver, never inspecting masks or
/// groups itself).
pub fn partition_events_with(
    natives: &[&NativeEventDesc],
    model: &dyn AllocTranslation,
) -> Option<Vec<Partition>> {
    let mut parts: Vec<Vec<usize>> = Vec::new();
    for idx in 0..natives.len() {
        let mut placed = false;
        for part in &mut parts {
            let mut candidate: Vec<usize> = part.clone();
            candidate.push(idx);
            if solve(&candidate, natives, model).is_some() {
                part.push(idx);
                placed = true;
                break;
            }
        }
        if !placed {
            // None: event not countable even alone.
            solve(&[idx], natives, model)?;
            parts.push(vec![idx]);
        }
    }
    // Solve the final assignment for each partition.
    let mut out = Vec::with_capacity(parts.len());
    for part in parts {
        let counters = solve(&part, natives, model).expect("partition was validated as feasible");
        out.push(Partition {
            natives: part,
            counters,
        });
    }
    Some(out)
}

fn solve(
    part: &[usize],
    natives: &[&NativeEventDesc],
    model: &dyn AllocTranslation,
) -> Option<Vec<usize>> {
    let codes: Vec<u32> = part.iter().map(|&i| natives[i].code).collect();
    let descs: Vec<NativeEventDesc> = part.iter().map(|&i| natives[i].clone()).collect();
    allocate_with(model, &codes, &descs, &mut AllocStats::default())
}

impl MpxState {
    pub fn new(partitions: Vec<Partition>, num_natives: usize, period: u64, now: u64) -> Self {
        let n_parts = partitions.len();
        let mut part_of = vec![0usize; num_natives];
        for (pi, p) in partitions.iter().enumerate() {
            for &n in &p.natives {
                part_of[n] = pi;
            }
        }
        MpxState {
            partitions,
            current: 0,
            raw: vec![0; num_natives],
            active_cycles: vec![0; n_parts],
            switched_at: now,
            period,
            part_of,
        }
    }

    /// Fold counter readings of the live partition into the raw totals.
    /// `read` maps a physical counter index to its current value.
    pub fn flush(&mut self, now: u64, counts: &[u64]) {
        let part = &self.partitions[self.current];
        for (slot, &native_idx) in part.natives.iter().enumerate() {
            self.raw[native_idx] += counts[slot];
        }
        self.active_cycles[self.current] += now.saturating_sub(self.switched_at);
        self.switched_at = now;
    }

    /// Advance to the next partition (call after `flush`).
    pub fn rotate(&mut self) {
        self.current = (self.current + 1) % self.partitions.len();
    }

    /// Estimated full-run count per native event.
    ///
    /// ```
    /// use papi_core::multiplex::{MpxState, Partition};
    /// let parts = vec![
    ///     Partition { natives: vec![0], counters: vec![0] },
    ///     Partition { natives: vec![1], counters: vec![0] },
    /// ];
    /// let mut m = MpxState::new(parts, 2, 100, 0);
    /// m.flush(100, &[50]); // native 0 live for 100 cycles, counted 50
    /// m.rotate();
    /// m.flush(200, &[10]); // native 1 live for 100 cycles, counted 10
    /// // Each event was live half the 200-cycle run: estimates double the raw counts.
    /// assert_eq!(m.estimates(), vec![100, 20]);
    /// ```
    pub fn estimates(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.raw.len());
        self.estimates_into(&mut out);
        out
    }

    /// [`MpxState::estimates`] into a caller-owned buffer, which is cleared
    /// and refilled — the allocation-free form the steady-state read path
    /// uses with a per-session scratch vector.
    pub fn estimates_into(&self, out: &mut Vec<u64>) {
        let total: u64 = self.active_cycles.iter().sum();
        out.clear();
        for (i, &raw) in self.raw.iter().enumerate() {
            let active = self.active_cycles[self.part_of[i]];
            out.push(if active == 0 {
                0
            } else {
                // Scale by the fraction of run time this event was live.
                ((raw as u128) * (total as u128) / (active as u128)) as u64
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::{sim_power3, sim_x86};

    fn x86_natives(names: &[&str]) -> Vec<NativeEventDesc> {
        let p = sim_x86();
        names
            .iter()
            .map(|n| p.event_by_name(n).unwrap().clone())
            .collect()
    }

    #[test]
    fn partition_fits_everything_in_one_when_possible() {
        let evs = x86_natives(&["CPU_CLK_UNHALTED", "INST_RETIRED", "LD_INS", "SR_INS"]);
        let refs: Vec<&NativeEventDesc> = evs.iter().collect();
        let parts = partition_events(&refs, 4, &[]).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].natives.len(), 4);
    }

    #[test]
    fn partition_splits_conflicting_events() {
        // Three memory events only fit counters 2-3: needs two partitions.
        let evs = x86_natives(&["LD_INS", "SR_INS", "DCU_LINES_IN"]);
        let refs: Vec<&NativeEventDesc> = evs.iter().collect();
        let parts = partition_events(&refs, 4, &[]).unwrap();
        assert_eq!(parts.len(), 2);
        let covered: usize = parts.iter().map(|p| p.natives.len()).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn partition_group_platform() {
        let p = sim_power3();
        // PM_LD_MISS_L1 (mem/cache groups) and PM_BR_TAKEN (branch group)
        // cannot share a group: two partitions.
        let evs: Vec<&NativeEventDesc> = ["PM_LD_MISS_L1", "PM_BR_TAKEN"]
            .iter()
            .map(|n| p.event_by_name(n).unwrap())
            .collect();
        let parts = partition_events(&evs, p.num_counters, &p.groups).unwrap();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn estimates_scale_by_live_fraction() {
        let parts = vec![
            Partition {
                natives: vec![0],
                counters: vec![0],
            },
            Partition {
                natives: vec![1],
                counters: vec![0],
            },
        ];
        let mut m = MpxState::new(parts, 2, 100, 0);
        // Partition 0 live from 0..100 counting 50 events.
        m.flush(100, &[50]);
        m.rotate();
        // Partition 1 live from 100..200 counting 10 events.
        m.flush(200, &[10]);
        m.rotate();
        // Partition 0 live again 200..300 counting 50.
        m.flush(300, &[50]);
        let est = m.estimates();
        // native 0: raw 100 over 200 active of 300 total -> 150
        assert_eq!(est[0], 150);
        // native 1: raw 10 over 100 active of 300 total -> 30
        assert_eq!(est[1], 30);
    }

    #[test]
    fn estimate_zero_when_never_live() {
        let parts = vec![
            Partition {
                natives: vec![0],
                counters: vec![0],
            },
            Partition {
                natives: vec![1],
                counters: vec![0],
            },
        ];
        let m = MpxState::new(parts, 2, 100, 0);
        assert_eq!(m.estimates(), vec![0, 0]);
    }
}
