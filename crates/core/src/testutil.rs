//! A scripted, simulator-free [`Substrate`] implementation.
//!
//! The paper's central architectural claim (Figure 1) is that everything
//! above the substrate boundary is machine-independent. [`MockSubstrate`]
//! backs that claim operationally: the entire portable layer — presets,
//! allocation, EventSets, multiplexing, overflow routing — runs against
//! this hand-scripted fake with no `simcpu::Machine` behind it, and the
//! tests in this module verify the exact sequence of substrate calls the
//! portable layer makes.
//!
//! It is also the template for porting: a `perf_event_open` substrate would
//! fill in the same dozen methods.

use crate::error::Result;
use crate::substrate::{HwInfo, Substrate};
use simcpu::platform::GroupDef;
use simcpu::pmu::NativeEventDesc;
use simcpu::{
    Domain, EventKind, Granularity, MemInfo, RunExit, SampleConfig, SampleRecord, ThreadId,
};
use std::collections::VecDeque;

/// True when `serde_json` is the offline build stub rather than the real
/// crate (the stub fails every serialization).
///
/// Tests that exercise JSON round-trips call this once and skip their
/// JSON assertions when it returns `true`, so the suite passes identically
/// against the vendored stub and the real dependency. This is the single
/// shared probe — don't re-derive it per test file.
pub fn stub_json() -> bool {
    serde_json::to_string(&42u32).is_err()
}

/// A call observed at the substrate boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    Program(Vec<Option<(u32, Domain)>>),
    Start,
    Stop,
    Reset,
    Read(usize),
    SetOverflow(usize, Option<u64>),
    SetTimer(Option<u64>),
    ConfigureSampling(bool),
}

/// Scripted substrate: counters are plain accumulators the test advances,
/// and `run` pops pre-scripted exits.
pub struct MockSubstrate {
    events: Vec<NativeEventDesc>,
    num_counters: usize,
    counts: Vec<u64>,
    programmed: Vec<Option<(u32, Domain)>>,
    running: bool,
    cycles: u64,
    /// Exits `run` will return, in order; empty => `Halted`.
    pub script: VecDeque<RunExit>,
    /// Every substrate call, in order.
    pub log: Vec<Call>,
    /// Counts added to each programmed counter on every `run` call,
    /// simulating application progress between exits.
    pub per_run_increment: u64,
}

impl MockSubstrate {
    /// Four unconstrained counters and a tiny cycles/instructions/FP event
    /// list.
    pub fn new() -> Self {
        let mk = |idx: u32, name: &'static str, kinds: Vec<(EventKind, u32)>| NativeEventDesc {
            code: 0x4000_0000 | idx,
            name,
            descr: "mock",
            kinds,
            counter_mask: 0b1111,
            group: None,
        };
        MockSubstrate {
            events: vec![
                mk(0, "M_CYC", vec![(EventKind::Cycles, 1)]),
                mk(1, "M_INS", vec![(EventKind::Instructions, 1)]),
                mk(
                    2,
                    "M_FP",
                    vec![
                        (EventKind::FpAdd, 1),
                        (EventKind::FpMul, 1),
                        (EventKind::FpFma, 1),
                        (EventKind::FpDiv, 1),
                    ],
                ),
                mk(3, "M_LD", vec![(EventKind::Loads, 1)]),
            ],
            num_counters: 4,
            counts: vec![0; 4],
            programmed: vec![None; 4],
            running: false,
            cycles: 0,
            script: VecDeque::new(),
            log: Vec::new(),
            per_run_increment: 100,
        }
    }

    /// Set the value of a physical counter directly (test hook).
    pub fn set_count(&mut self, idx: usize, v: u64) {
        self.counts[idx] = v;
    }

    /// What is currently programmed on a counter (test hook).
    pub fn programmed(&self, idx: usize) -> Option<(u32, Domain)> {
        self.programmed[idx]
    }
}

impl Default for MockSubstrate {
    fn default() -> Self {
        Self::new()
    }
}

impl Substrate for MockSubstrate {
    fn hw_info(&self) -> HwInfo {
        HwInfo {
            vendor: "Mock".into(),
            model: "scripted substrate".into(),
            mhz: 1000,
            num_counters: self.num_counters,
            precise_sampling: false,
            group_based: false,
        }
    }

    fn num_counters(&self) -> usize {
        self.num_counters
    }

    fn native_events(&self) -> &[NativeEventDesc] {
        &self.events
    }

    fn groups(&self) -> &[GroupDef] {
        &[]
    }

    fn program(&mut self, assign: &[Option<(u32, Domain)>]) -> Result<()> {
        self.log.push(Call::Program(assign.to_vec()));
        for (i, slot) in assign.iter().enumerate() {
            self.programmed[i] = *slot;
            self.counts[i] = 0;
        }
        Ok(())
    }

    fn start(&mut self) -> Result<()> {
        self.log.push(Call::Start);
        self.running = true;
        Ok(())
    }

    fn stop(&mut self) -> Result<()> {
        self.log.push(Call::Stop);
        self.running = false;
        Ok(())
    }

    fn reset(&mut self) -> Result<()> {
        self.log.push(Call::Reset);
        self.counts.iter_mut().for_each(|c| *c = 0);
        Ok(())
    }

    fn read(&mut self, idx: usize) -> Result<u64> {
        self.log.push(Call::Read(idx));
        Ok(self.counts[idx])
    }

    fn set_overflow(&mut self, idx: usize, threshold: Option<u64>) -> Result<()> {
        self.log.push(Call::SetOverflow(idx, threshold));
        Ok(())
    }

    fn configure_sampling(&mut self, cfg: Option<SampleConfig>) -> Result<()> {
        self.log.push(Call::ConfigureSampling(cfg.is_some()));
        if cfg.is_some() {
            Err(crate::PapiError::NoSupp("mock has no sampling hardware"))
        } else {
            Ok(())
        }
    }

    fn drain_samples(&mut self) -> Vec<SampleRecord> {
        Vec::new()
    }

    fn set_timer(&mut self, period_cycles: Option<u64>) {
        self.log.push(Call::SetTimer(period_cycles));
    }

    fn set_granularity(&mut self, _g: Granularity) {}

    fn run(&mut self, _budget: Option<u64>) -> RunExit {
        self.cycles += 1000;
        if self.running {
            for (i, p) in self.programmed.iter().enumerate() {
                if p.is_some() {
                    self.counts[i] += self.per_run_increment;
                }
            }
        }
        self.script.pop_front().unwrap_or(RunExit::Halted)
    }

    fn real_cycles(&self) -> u64 {
        self.cycles
    }

    fn real_ns(&self) -> u64 {
        self.cycles
    }

    fn virt_ns(&self, _thread: ThreadId) -> Result<u64> {
        Ok(self.cycles / 2)
    }

    fn mem_info(&self, _thread: ThreadId) -> Result<MemInfo> {
        Ok(MemInfo {
            page_size: 4096,
            resident_pages: 1,
            peak_pages: 1,
            text_pages: 1,
            system_pages: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Papi, PapiError, Preset};

    #[test]
    fn portable_layer_runs_on_a_foreign_substrate() {
        // No simcpu machine anywhere: the full EventSet lifecycle works
        // against the mock, proving the layering boundary.
        let mut papi = Papi::init(MockSubstrate::new()).unwrap();
        assert!(papi.query_event(Preset::TotCyc.code()));
        assert!(papi.query_event(Preset::FpIns.code()));
        assert!(!papi.query_event(Preset::L1Dcm.code())); // mock has no cache events
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotCyc.code()).unwrap();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        let v = papi.stop(set).unwrap();
        assert_eq!(v, vec![100, 100]); // one run() tick of progress
    }

    #[test]
    fn start_programs_then_starts_in_order() {
        let mut papi = Papi::init(MockSubstrate::new()).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        papi.start(set).unwrap();
        let log = &papi.substrate().log;
        let prog_pos = log
            .iter()
            .position(|c| matches!(c, Call::Program(_)))
            .unwrap();
        let start_pos = log.iter().position(|c| matches!(c, Call::Start)).unwrap();
        assert!(
            prog_pos < start_pos,
            "must program before starting: {log:?}"
        );
        // The instruction event landed on some counter with USER domain.
        let programmed: Vec<_> = (0..4)
            .filter_map(|i| papi.substrate().programmed(i))
            .collect();
        assert_eq!(programmed, vec![(0x4000_0001, Domain::USER)]);
    }

    #[test]
    fn overflow_registration_arms_and_disarms_hardware() {
        let mut papi = Papi::init(MockSubstrate::new()).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        papi.overflow(set, Preset::TotIns.code(), 500, Box::new(|_| {}))
            .unwrap();
        papi.start(set).unwrap();
        papi.stop(set).unwrap();
        let arms: Vec<&Call> = papi
            .substrate()
            .log
            .iter()
            .filter(|c| matches!(c, Call::SetOverflow(_, _)))
            .collect();
        assert_eq!(arms.len(), 2, "{arms:?}");
        assert!(matches!(arms[0], Call::SetOverflow(_, Some(500))));
        assert!(matches!(arms[1], Call::SetOverflow(_, None)));
    }

    #[test]
    fn overflow_exit_routes_to_handler_with_pc() {
        use std::sync::{Arc, Mutex};
        let mut sub = MockSubstrate::new();
        // Script: one overflow on counter 0, then halt.
        sub.script.push_back(RunExit::Overflow {
            counter: 0,
            thread: 0,
            pc: 0xBEEF,
        });
        let mut papi = Papi::init(sub).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotIns.code()).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        papi.overflow(
            set,
            Preset::TotIns.code(),
            10,
            Box::new(move |i| s2.lock().unwrap().push(i)),
        )
        .unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        papi.stop(set).unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].pc, 0xBEEF);
        assert_eq!(seen[0].code, Preset::TotIns.code());
    }

    #[test]
    fn sampling_error_propagates_cleanly() {
        let mut papi = Papi::init(MockSubstrate::new()).unwrap();
        assert!(matches!(
            papi.start_sampling(SampleConfig::default()),
            Err(PapiError::NoSupp(_))
        ));
    }

    #[test]
    fn timers_and_meminfo_delegate() {
        let mut papi = Papi::init(MockSubstrate::new()).unwrap();
        let set = papi.create_eventset();
        papi.add_event(set, Preset::TotCyc.code()).unwrap();
        papi.start(set).unwrap();
        papi.run_app().unwrap();
        papi.stop(set).unwrap();
        assert!(papi.get_real_cyc() > 0);
        assert_eq!(papi.get_virt_ns(0).unwrap(), papi.get_real_ns() / 2);
        assert_eq!(papi.get_mem_info(0).unwrap().resident_pages, 1);
    }
}
