//! # papi-core — a portable interface to hardware performance counters
//!
//! Rust reproduction of the system described in *"Experiences and Lessons
//! Learned with a Portable Interface to Hardware Performance Counters"*
//! (Dongarra et al., IPPS 2003): the PAPI library.
//!
//! The implementation is layered exactly as the paper's Figure 1:
//!
//! ```text
//!   high-level interface   (start/stop/read counters, PAPI_flops)   highlevel
//!   low-level interface    (EventSets, overflow, profil, multiplex) Papi
//!   portable machinery     (presets, allocation, estimation)        preset/alloc/…
//!   ─────────── Substrate trait (machine-dependent layer) ───────────
//!   platform substrate     (SimSubstrate over simcpu::Machine)      substrate
//! ```
//!
//! ## Quick start
//!
//! ```
//! use papi_core::{Papi, Preset};
//! use papi_core::substrate::SimSubstrate;
//! use simcpu::{platform, Machine, ProgramBuilder};
//!
//! // Build a tiny workload on the generic simulated platform.
//! let mut machine = Machine::new(platform::sim_generic(), 42);
//! let mut b = ProgramBuilder::new();
//! b.func("kernel", |f| { f.loop_(1000, |f| { f.ffma(4); }); });
//! machine.load(b.build("kernel"));
//!
//! // Initialize the library and count FLOPs the low-level way.
//! let mut papi = Papi::init(SimSubstrate::new(machine)).unwrap();
//! let set = papi.create_eventset();
//! papi.add_event(set, Preset::FpOps.code()).unwrap();
//! papi.start(set).unwrap();
//! papi.run_app().unwrap();
//! let counts = papi.stop(set).unwrap();
//! assert_eq!(counts[0], 8000); // 4000 FMAs x 2 FLOPs
//! ```

pub mod alloc;
pub mod error;
pub mod eventset;
pub mod highlevel;
pub mod multiplex;
pub mod preset;
pub mod profile;
pub mod sampling;
pub mod substrate;
pub mod testutil;

pub use error::{PapiError, Result};
pub use eventset::{EventSetId, SetState};
pub use preset::{is_preset_code, Mapping, Preset, PresetTable, PRESET_MASK};
pub use profile::{Profil, ProfilConfig};
pub use substrate::{HwInfo, SimSubstrate, Substrate};

use eventset::{EventSetData, OverflowReg, OvfRoute};
use multiplex::{partition_events, MpxState, DEFAULT_MPX_PERIOD_CYCLES};
use papi_obs::{Counter as ObsCounter, JournalEvent as ObsEvent};
use simcpu::{Domain, Granularity, NativeEventDesc, RunExit, SampleConfig, SampleRecord, ThreadId};

/// Identifies a profiling histogram registered with [`Papi::profil`].
pub type ProfilId = usize;

/// Information delivered to a user overflow callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowInfo {
    /// The EventSet whose event overflowed.
    pub set: EventSetId,
    /// PAPI event code that overflowed.
    pub code: u32,
    /// Program counter delivered with the interrupt (skidded on OoO cores).
    pub pc: u64,
    /// Thread that was running.
    pub thread: ThreadId,
}

/// Why [`Papi::next_event`] returned control to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppExit {
    /// The monitored application finished.
    Halted,
    /// An instrumentation probe trapped (dynaprof-style tools handle it and
    /// resume).
    Probe { id: u32, thread: ThreadId, pc: u64 },
    /// The cycle budget passed to [`Papi::run_for`] elapsed (the
    /// application is still runnable).
    Paused,
}

/// How the running set's natives are being counted.
enum RunMode {
    /// `assign[i]` is the physical counter holding native `i`.
    Direct { assign: Vec<usize> },
    /// Time-sliced multiplexing.
    Mpx(MpxState),
}

/// Resolution + allocation state of the running EventSet.
struct Running {
    set: EventSetId,
    /// Thread this run is attached to (PAPI_attach).
    attached: Option<ThreadId>,
    /// Unique native codes in use.
    natives: Vec<u32>,
    /// Per PAPI event: `(index into natives, coefficient)` terms.
    terms: Vec<Vec<(usize, i64)>>,
    mode: RunMode,
    /// Armed overflow routes: `(physical counter, papi code, route)`.
    routes: Vec<(usize, u32, OvfRoute)>,
}

/// Overflow callbacks must be `Send`: like the C library's signal-based
/// handlers, they may run on whichever thread drives the event loop, and a
/// global session (the C API) moves across threads.
type OvfHandler = Box<dyn FnMut(OverflowInfo) + Send>;

/// The library handle: one per monitored machine, like `PAPI_library_init`.
pub struct Papi<S: Substrate = SimSubstrate> {
    sub: S,
    presets: PresetTable,
    sets: Vec<Option<EventSetData>>,
    running: Option<Running>,
    handlers: Vec<OvfHandler>,
    profils: Vec<Profil>,
    sampling_cfg: Option<SampleConfig>,
    sampling_buf: Vec<SampleRecord>,
    pub(crate) hl: Option<highlevel::HlState>,
    /// Self-instrumentation sink. `None` (the default) disables the layer:
    /// every hook is a cheap `Option` check and no state is kept.
    obs: Option<papi_obs::ObsHandle>,
}

impl<S: Substrate> Papi<S> {
    /// Initialize the library on a substrate: builds the preset table by
    /// mapping every standard event onto this platform's native events.
    pub fn init(sub: S) -> Result<Self> {
        let presets = PresetTable::build(sub.native_events(), sub.num_counters(), sub.groups());
        Ok(Papi {
            sub,
            presets,
            sets: Vec::new(),
            running: None,
            handlers: Vec::new(),
            profils: Vec::new(),
            sampling_cfg: None,
            sampling_buf: Vec::new(),
            hl: None,
            obs: None,
        })
    }

    /// Attach a self-instrumentation context: from here on, API traffic,
    /// multiplex rotations, overflow dispatches and allocator effort are
    /// accounted into `obs`'s registry (and journal, when enabled).
    ///
    /// The instrumentation performs no costed substrate operations, so
    /// attaching it never perturbs virtual-time measurements.
    pub fn attach_obs(&mut self, obs: papi_obs::ObsHandle) {
        self.obs = Some(obs);
    }

    /// Detach and return the self-instrumentation context, if any.
    pub fn detach_obs(&mut self) -> Option<papi_obs::ObsHandle> {
        self.obs.take()
    }

    /// The attached self-instrumentation context, if any.
    pub fn obs(&self) -> Option<&papi_obs::ObsHandle> {
        self.obs.as_ref()
    }

    /// The substrate (read-only).
    pub fn substrate(&self) -> &S {
        &self.sub
    }

    /// The substrate (e.g. to load programs on a [`SimSubstrate`]).
    pub fn substrate_mut(&mut self) -> &mut S {
        &mut self.sub
    }

    /// `PAPI_get_hardware_info`.
    pub fn hw_info(&self) -> HwInfo {
        self.sub.hw_info()
    }

    /// `PAPI_num_counters`.
    pub fn num_counters(&self) -> usize {
        self.sub.num_counters()
    }

    /// The preset table built for this platform.
    pub fn preset_table(&self) -> &PresetTable {
        &self.presets
    }

    // --- event queries ------------------------------------------------------

    /// `PAPI_query_event`: can this event (preset or native) be counted?
    pub fn query_event(&self, code: u32) -> bool {
        self.presets.resolve(code, self.sub.native_events()).is_ok()
    }

    /// Translate an event name (either `PAPI_*` or a native mnemonic) to a
    /// code.
    pub fn event_name_to_code(&self, name: &str) -> Result<u32> {
        if let Some(p) = Preset::from_name(name) {
            return Ok(p.code());
        }
        self.sub
            .native_events()
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.code)
            .ok_or(PapiError::Inval("unknown event name"))
    }

    /// Translate an event code to its name.
    pub fn event_code_to_name(&self, code: u32) -> Result<String> {
        if is_preset_code(code) {
            return Preset::from_code(code)
                .map(|p| p.name().to_string())
                .ok_or(PapiError::NotPreset(code));
        }
        self.sub
            .native_events()
            .iter()
            .find(|e| e.code == code)
            .map(|e| e.name.to_string())
            .ok_or(PapiError::NoEvnt(code))
    }

    /// The native events this platform exposes (`PAPI_enum_event` over the
    /// native space).
    pub fn native_events(&self) -> &[NativeEventDesc] {
        self.sub.native_events()
    }

    // --- EventSet lifecycle -------------------------------------------------

    /// `PAPI_create_eventset`.
    pub fn create_eventset(&mut self) -> EventSetId {
        self.sets.push(Some(EventSetData::new()));
        let id = self.sets.len() - 1;
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::EventsetCreated);
            obs.record(self.sub.real_cycles(), || ObsEvent::EventsetCreated {
                set: id,
            });
        }
        id
    }

    /// `PAPI_destroy_eventset` (must be stopped).
    pub fn destroy_eventset(&mut self, id: EventSetId) -> Result<()> {
        let s = self.set_ref(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        self.sets[id] = None;
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::EventsetDestroyed);
            obs.record(self.sub.real_cycles(), || ObsEvent::EventsetDestroyed {
                set: id,
            });
        }
        Ok(())
    }

    fn set_ref(&self, id: EventSetId) -> Result<&EventSetData> {
        self.sets
            .get(id)
            .and_then(|s| s.as_ref())
            .ok_or(PapiError::NoEvst(id))
    }

    fn set_mut(&mut self, id: EventSetId) -> Result<&mut EventSetData> {
        self.sets
            .get_mut(id)
            .and_then(|s| s.as_mut())
            .ok_or(PapiError::NoEvst(id))
    }

    /// `PAPI_add_event`: add a preset or native event to a stopped set.
    pub fn add_event(&mut self, id: EventSetId, code: u32) -> Result<()> {
        // Validate availability first (immutable borrows).
        self.presets.resolve(code, self.sub.native_events())?;
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if s.events.contains(&code) {
            return Err(PapiError::Inval("event already in set"));
        }
        s.events.push(code);
        Ok(())
    }

    /// Add several events at once.
    pub fn add_events(&mut self, id: EventSetId, codes: &[u32]) -> Result<()> {
        for &c in codes {
            self.add_event(id, c)?;
        }
        Ok(())
    }

    /// `PAPI_remove_event`.
    pub fn remove_event(&mut self, id: EventSetId, code: u32) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        let pos = s
            .events
            .iter()
            .position(|&e| e == code)
            .ok_or(PapiError::NoEvnt(code))?;
        s.events.remove(pos);
        s.overflow.retain(|o| o.code != code);
        Ok(())
    }

    /// `PAPI_list_events`.
    pub fn list_events(&self, id: EventSetId) -> Result<Vec<u32>> {
        Ok(self.set_ref(id)?.events.clone())
    }

    /// `PAPI_num_events`.
    pub fn num_events(&self, id: EventSetId) -> Result<usize> {
        Ok(self.set_ref(id)?.events.len())
    }

    /// `PAPI_state`.
    pub fn state(&self, id: EventSetId) -> Result<SetState> {
        Ok(self.set_ref(id)?.state)
    }

    /// `PAPI_set_multiplex`: opt this set into software multiplexing.
    /// Deliberately *not* the default — see the module docs of
    /// [`multiplex`].
    pub fn set_multiplex(&mut self, id: EventSetId) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if !s.overflow.is_empty() {
            return Err(PapiError::Cnflct);
        }
        s.multiplex = true;
        Ok(())
    }

    /// Override the multiplex switching period for a set (cycles). Shorter
    /// periods converge faster but cost more reprogramming overhead — the
    /// trade-off the E5 ablation sweeps.
    pub fn set_multiplex_period(&mut self, id: EventSetId, cycles: u64) -> Result<()> {
        if cycles == 0 {
            return Err(PapiError::Inval("zero multiplex period"));
        }
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        s.mpx_period = Some(cycles);
        Ok(())
    }

    /// `PAPI_set_domain` for a set.
    pub fn set_domain(&mut self, id: EventSetId, domain: Domain) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        s.domain = domain;
        Ok(())
    }

    /// `PAPI_set_granularity` (machine-wide or per-thread counting).
    pub fn set_granularity(&mut self, g: Granularity) {
        self.sub.set_granularity(g);
    }

    /// `PAPI_attach`: bind a stopped EventSet to a specific thread; reads
    /// and stop() then return counts attributed to that thread only.
    /// Requires per-thread counter virtualization
    /// ([`Granularity::Thread`]); incompatible with multiplexing.
    pub fn attach(&mut self, id: EventSetId, thread: ThreadId) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        if s.multiplex {
            return Err(PapiError::Cnflct);
        }
        s.attached = Some(thread);
        Ok(())
    }

    /// `PAPI_detach`.
    pub fn detach(&mut self, id: EventSetId) -> Result<()> {
        let s = self.set_mut(id)?;
        if s.state == SetState::Running {
            return Err(PapiError::IsRun);
        }
        s.attached = None;
        Ok(())
    }

    // --- overflow & profil registration --------------------------------------

    /// `PAPI_overflow`: call `handler` every `threshold` occurrences of
    /// `code` while the set runs. The handler receives the (possibly
    /// skidded) interrupt PC.
    pub fn overflow(
        &mut self,
        id: EventSetId,
        code: u32,
        threshold: u64,
        handler: OvfHandler,
    ) -> Result<()> {
        if threshold == 0 {
            return Err(PapiError::Inval("zero overflow threshold"));
        }
        let route = OvfRoute::Handler(self.handlers.len());
        {
            let s = self.set_mut(id)?;
            if s.state == SetState::Running {
                return Err(PapiError::IsRun);
            }
            if s.multiplex {
                return Err(PapiError::Cnflct);
            }
            if !s.events.contains(&code) {
                return Err(PapiError::NoEvnt(code));
            }
            if s.overflow.iter().any(|o| o.code == code) {
                return Err(PapiError::Cnflct);
            }
            s.overflow.push(OverflowReg {
                code,
                threshold,
                route,
            });
        }
        self.handlers.push(handler);
        Ok(())
    }

    /// `PAPI_profil`: statistical profiling of `code` over a text range.
    /// Returns a handle to retrieve the histogram with
    /// [`Papi::profil_histogram`].
    pub fn profil(&mut self, id: EventSetId, code: u32, cfg: ProfilConfig) -> Result<ProfilId> {
        let pid = self.profils.len();
        let route = OvfRoute::Profil(pid);
        {
            let s = self.set_mut(id)?;
            if s.state == SetState::Running {
                return Err(PapiError::IsRun);
            }
            if s.multiplex {
                return Err(PapiError::Cnflct);
            }
            if !s.events.contains(&code) {
                return Err(PapiError::NoEvnt(code));
            }
            if s.overflow.iter().any(|o| o.code == code) {
                return Err(PapiError::Cnflct);
            }
            s.overflow.push(OverflowReg {
                code,
                threshold: cfg.threshold,
                route,
            });
        }
        self.profils.push(Profil::new(cfg));
        Ok(pid)
    }

    /// The histogram collected by a [`Papi::profil`] registration.
    pub fn profil_histogram(&self, pid: ProfilId) -> Option<&Profil> {
        self.profils.get(pid)
    }

    // --- resolution & allocation ---------------------------------------------

    /// Resolve the set's PAPI events to unique natives + per-event terms.
    #[allow(clippy::type_complexity)]
    fn resolve_set(&self, id: EventSetId) -> Result<(Vec<u32>, Vec<Vec<(usize, i64)>>)> {
        let s = self.set_ref(id)?;
        if s.events.is_empty() {
            return Err(PapiError::Inval("EventSet is empty"));
        }
        let mut natives: Vec<u32> = Vec::new();
        let mut terms: Vec<Vec<(usize, i64)>> = Vec::with_capacity(s.events.len());
        for &code in &s.events {
            let m = self.presets.resolve(code, self.sub.native_events())?;
            let mut t = Vec::with_capacity(m.terms.len());
            for (ncode, coeff) in m.terms {
                let idx = match natives.iter().position(|&n| n == ncode) {
                    Some(i) => i,
                    None => {
                        natives.push(ncode);
                        natives.len() - 1
                    }
                };
                t.push((idx, coeff));
            }
            terms.push(t);
        }
        Ok((natives, terms))
    }

    /// Solve counter allocation for `natives` on this platform.
    fn allocate(&self, natives: &[u32]) -> Option<Vec<usize>> {
        let groups = self.sub.groups();
        let mut stats = alloc::AllocStats::default();
        let assign = if groups.is_empty() {
            let masks: Vec<u32> = natives
                .iter()
                .map(|&c| {
                    self.sub
                        .native_events()
                        .iter()
                        .find(|e| e.code == c)
                        .map(|e| e.counter_mask)
                        .unwrap_or(0)
                })
                .collect();
            alloc::optimal_assign_stats(&masks, self.sub.num_counters(), &mut stats)
        } else {
            alloc::allocate_in_group(natives, groups).map(|(_, a)| a)
        };
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::AllocAttempts);
            obs.inc(if assign.is_some() {
                ObsCounter::AllocSuccesses
            } else {
                ObsCounter::AllocFailures
            });
            obs.add(ObsCounter::AllocAugmentSteps, stats.augment_steps);
            obs.add(ObsCounter::AllocBacktracks, stats.backtracks);
            obs.record(self.sub.real_cycles(), || ObsEvent::AllocAttempt {
                events: natives.len(),
                success: assign.is_some(),
                augment_steps: stats.augment_steps,
                backtracks: stats.backtracks,
            });
        }
        assign
    }

    // --- start / stop / read ---------------------------------------------------

    /// `PAPI_start`: resolve, allocate, program and start the counters.
    pub fn start(&mut self, id: EventSetId) -> Result<()> {
        let begin_cycles = self.sub.real_cycles();
        let r = self.start_inner(id);
        if let Some(obs) = &self.obs {
            match &r {
                Ok(()) => {
                    obs.inc(ObsCounter::Starts);
                    let now = self.sub.real_cycles();
                    obs.add(
                        ObsCounter::CyclesInStartStop,
                        now.saturating_sub(begin_cycles),
                    );
                    let (natives, multiplexed) = self
                        .running
                        .as_ref()
                        .map(|run| (run.natives.len(), matches!(run.mode, RunMode::Mpx(_))))
                        .unwrap_or((0, false));
                    obs.record(now, || ObsEvent::Start {
                        set: id,
                        natives,
                        multiplexed,
                    });
                }
                Err(_) => obs.inc(ObsCounter::StartErrors),
            }
        }
        r
    }

    fn start_inner(&mut self, id: EventSetId) -> Result<()> {
        if self.running.is_some() {
            return Err(PapiError::IsRun);
        }
        let (natives, terms) = self.resolve_set(id)?;
        let (domain, multiplex, mpx_period, attached, overflow) = {
            let s = self.set_ref(id)?;
            (
                s.domain,
                s.multiplex,
                s.mpx_period,
                s.attached,
                s.overflow.clone(),
            )
        };
        if attached.is_some() && multiplex {
            return Err(PapiError::Cnflct);
        }

        let mode = match self.allocate(&natives) {
            Some(assign) => RunMode::Direct { assign },
            None if multiplex => {
                let descs: Vec<&NativeEventDesc> = natives
                    .iter()
                    .map(|&c| {
                        self.sub
                            .native_events()
                            .iter()
                            .find(|e| e.code == c)
                            .unwrap()
                    })
                    .collect();
                let parts = partition_events(&descs, self.sub.num_counters(), self.sub.groups())
                    .ok_or(PapiError::Cnflct)?;
                let now = self.sub.real_cycles();
                let period = mpx_period.unwrap_or(DEFAULT_MPX_PERIOD_CYCLES);
                RunMode::Mpx(MpxState::new(parts, natives.len(), period, now))
            }
            None => return Err(PapiError::Cnflct),
        };

        // Program the hardware for the initial configuration.
        let mut routes = Vec::new();
        match &mode {
            RunMode::Direct { assign } => {
                let mut prog: Vec<Option<(u32, Domain)>> = vec![None; self.sub.num_counters()];
                for (i, &ctr) in assign.iter().enumerate() {
                    prog[ctr] = Some((natives[i], domain));
                }
                self.sub.program(&prog)?;
                // Arm overflow registrations on the counter of each event's
                // first native term.
                for reg in &overflow {
                    let ev_pos = {
                        let s = self.set_ref(id)?;
                        s.events
                            .iter()
                            .position(|&e| e == reg.code)
                            .ok_or(PapiError::NoEvnt(reg.code))?
                    };
                    let (nidx, _) = terms[ev_pos][0];
                    let ctr = assign[nidx];
                    self.sub.set_overflow(ctr, Some(reg.threshold))?;
                    routes.push((ctr, reg.code, reg.route));
                }
            }
            RunMode::Mpx(mpx) => {
                self.program_partition(&natives, domain, &mpx.partitions[0])?;
                self.sub.set_timer(Some(mpx.period));
            }
        }

        // Re-anchor the mpx clock after programming costs.
        let mut mode = mode;
        if let RunMode::Mpx(m) = &mut mode {
            m.switched_at = self.sub.real_cycles();
        }

        self.running = Some(Running {
            set: id,
            attached,
            natives,
            terms,
            mode,
            routes,
        });
        self.set_mut(id)?.state = SetState::Running;
        self.sub.start()?;
        Ok(())
    }

    fn program_partition(
        &mut self,
        natives: &[u32],
        domain: Domain,
        part: &multiplex::Partition,
    ) -> Result<()> {
        let mut prog: Vec<Option<(u32, Domain)>> = vec![None; self.sub.num_counters()];
        for (slot, &nidx) in part.natives.iter().enumerate() {
            prog[part.counters[slot]] = Some((natives[nidx], domain));
        }
        self.sub.program(&prog)
    }

    /// Read the live values of the running set's natives.
    fn read_native_counts(&mut self) -> Result<Vec<u64>> {
        let obs = self.obs.clone();
        let run = self.running.as_mut().ok_or(PapiError::NotRun)?;
        match &mut run.mode {
            RunMode::Direct { assign } => {
                let assign = assign.clone();
                let attached = run.attached;
                let mut counts = Vec::with_capacity(assign.len());
                if let Some(obs) = &obs {
                    obs.add(ObsCounter::CounterReads, assign.len() as u64);
                }
                for ctr in assign {
                    let v = match attached {
                        Some(t) => self.sub.read_attached(t, ctr)?,
                        None => self.sub.read(ctr)?,
                    };
                    counts.push(v);
                }
                Ok(counts)
            }
            RunMode::Mpx(_) => {
                // Flush the live partition, then return estimates.
                let now = self.sub.real_cycles();
                let (counters, current, switched_at) = {
                    let RunMode::Mpx(m) = &run.mode else {
                        unreachable!()
                    };
                    (
                        m.partitions[m.current].counters.clone(),
                        m.current,
                        m.switched_at,
                    )
                };
                let mut live = Vec::with_capacity(counters.len());
                for &c in &counters {
                    live.push(self.sub.read(c)?);
                }
                self.sub.reset()?; // avoid double counting on the next flush
                if let Some(obs) = &obs {
                    obs.add(ObsCounter::CounterReads, counters.len() as u64);
                    obs.inc(ObsCounter::MpxFlushes);
                    obs.record(now, || ObsEvent::MpxFlush {
                        partition: current,
                        live_cycles: now.saturating_sub(switched_at),
                    });
                }
                let run = self.running.as_mut().ok_or(PapiError::NotRun)?;
                let RunMode::Mpx(m) = &mut run.mode else {
                    unreachable!()
                };
                m.flush(now, &live);
                Ok(m.estimates())
            }
        }
    }

    fn values_from_counts(&self, counts: &[u64]) -> Result<Vec<i64>> {
        let run = self.running.as_ref().ok_or(PapiError::NotRun)?;
        Ok(run
            .terms
            .iter()
            .map(|t| t.iter().map(|&(i, c)| c * counts[i] as i64).sum())
            .collect())
    }

    /// `PAPI_read`: current values (the set keeps running).
    pub fn read(&mut self, id: EventSetId) -> Result<Vec<i64>> {
        match &self.running {
            Some(r) if r.set == id => {}
            _ => return Err(PapiError::NotRun),
        }
        let begin_cycles = self.sub.real_cycles();
        let counts = self.read_native_counts()?;
        let values = self.values_from_counts(&counts)?;
        if let Some(obs) = &self.obs {
            let now = self.sub.real_cycles();
            let cost_cycles = now.saturating_sub(begin_cycles);
            obs.inc(ObsCounter::Reads);
            obs.add(ObsCounter::CyclesInRead, cost_cycles);
            obs.record(now, || ObsEvent::Read {
                set: id,
                cost_cycles,
            });
        }
        Ok(values)
    }

    /// `PAPI_accum`: add current values into `values` and reset the
    /// counters.
    pub fn accum(&mut self, id: EventSetId, values: &mut [i64]) -> Result<()> {
        let v = self.read(id)?;
        if values.len() != v.len() {
            return Err(PapiError::Inval("accum buffer length mismatch"));
        }
        for (acc, x) in values.iter_mut().zip(&v) {
            *acc += x;
        }
        let r = self.reset(id);
        if r.is_ok() {
            if let Some(obs) = &self.obs {
                obs.inc(ObsCounter::Accums);
                obs.record(self.sub.real_cycles(), || ObsEvent::Accum { set: id });
            }
        }
        r
    }

    /// `PAPI_reset`: zero the running counters (and multiplex accumulators).
    pub fn reset(&mut self, id: EventSetId) -> Result<()> {
        let now = self.sub.real_cycles();
        match &mut self.running {
            Some(r) if r.set == id => {
                if let RunMode::Mpx(m) = &mut r.mode {
                    m.raw.iter_mut().for_each(|r| *r = 0);
                    m.active_cycles.iter_mut().for_each(|a| *a = 0);
                    m.switched_at = now;
                }
            }
            _ => return Err(PapiError::NotRun),
        }
        let r = self.sub.reset();
        if r.is_ok() {
            if let Some(obs) = &self.obs {
                obs.inc(ObsCounter::Resets);
                obs.record(self.sub.real_cycles(), || ObsEvent::Reset { set: id });
            }
        }
        r
    }

    /// `PAPI_stop`: stop counting and return the final values.
    pub fn stop(&mut self, id: EventSetId) -> Result<Vec<i64>> {
        match &self.running {
            Some(r) if r.set == id => {}
            _ => return Err(PapiError::NotRun),
        }
        let begin_cycles = self.sub.real_cycles();
        let counts = self.read_native_counts()?;
        let values = self.values_from_counts(&counts)?;
        // Disarm machinery.
        let routes = self
            .running
            .as_ref()
            .map(|r| r.routes.clone())
            .unwrap_or_default();
        for (ctr, _, _) in routes {
            self.sub.set_overflow(ctr, None)?;
        }
        if matches!(
            self.running.as_ref().map(|r| &r.mode),
            Some(RunMode::Mpx(_))
        ) {
            self.sub.set_timer(None);
        }
        self.sub.stop()?;
        self.running = None;
        self.set_mut(id)?.state = SetState::Stopped;
        if let Some(obs) = &self.obs {
            let now = self.sub.real_cycles();
            obs.inc(ObsCounter::Stops);
            obs.add(
                ObsCounter::CyclesInStartStop,
                now.saturating_sub(begin_cycles),
            );
            obs.record(now, || ObsEvent::Stop { set: id });
        }
        Ok(values)
    }

    // --- precise sampling -------------------------------------------------------

    /// Enable hardware precise sampling (ProfileMe/EAR). Samples accumulate
    /// while the application runs under [`Papi::run_app`]/[`Papi::next_event`];
    /// collect them with [`Papi::take_samples`] or [`Papi::stop_sampling`].
    ///
    /// Sampling hardware observes retirement only while the PMU is running,
    /// i.e. while an EventSet is started.
    pub fn start_sampling(&mut self, cfg: SampleConfig) -> Result<()> {
        self.sub.configure_sampling(Some(cfg))?;
        self.sampling_cfg = Some(cfg);
        self.sampling_buf.clear();
        Ok(())
    }

    /// Disable sampling and return every sample collected since
    /// [`Papi::start_sampling`].
    pub fn stop_sampling(&mut self) -> Result<Vec<SampleRecord>> {
        if self.sampling_cfg.is_none() {
            return Err(PapiError::NotRun);
        }
        let tail = self.sub.drain_samples();
        self.sampling_buf.extend(tail);
        self.sub.configure_sampling(None)?;
        self.sampling_cfg = None;
        Ok(std::mem::take(&mut self.sampling_buf))
    }

    /// Drain the samples collected so far (sampling stays enabled).
    pub fn take_samples(&mut self) -> Vec<SampleRecord> {
        let tail = self.sub.drain_samples();
        self.sampling_buf.extend(tail);
        std::mem::take(&mut self.sampling_buf)
    }

    /// The configured sampling period, if sampling is active.
    pub fn sampling_period(&self) -> Option<u64> {
        self.sampling_cfg.map(|c| c.period)
    }

    /// Pull hardware-buffered samples into the session buffer without
    /// consuming them.
    fn sync_samples(&mut self) {
        let tail = self.sub.drain_samples();
        self.sampling_buf.extend(tail);
    }

    /// PAPI-3 "hardware assisted profiling": build a profiling histogram for
    /// `kind` from the precise samples collected so far (the samples stay in
    /// the session). Attribution is exact — no skid.
    pub fn sampled_histogram(
        &mut self,
        kind: simcpu::EventKind,
        cfg: ProfilConfig,
    ) -> Result<Profil> {
        if self.sampling_cfg.is_none() {
            return Err(PapiError::NotRun);
        }
        self.sync_samples();
        Ok(sampling::profile_from_samples(
            &self.sampling_buf,
            kind,
            cfg,
        ))
    }

    /// PAPI-3 "option for estimating counts from samples": aggregate-count
    /// estimates for `kinds` from the samples collected so far.
    pub fn estimate_counts_from_samples(
        &mut self,
        kinds: &[simcpu::EventKind],
    ) -> Result<Vec<u64>> {
        let Some(cfg) = self.sampling_cfg else {
            return Err(PapiError::NotRun);
        };
        self.sync_samples();
        Ok(sampling::estimate_counts(
            &self.sampling_buf,
            cfg.period,
            kinds,
        ))
    }

    // --- the application run loop --------------------------------------------

    /// Let the monitored application execute until it halts or hits an
    /// instrumentation probe, servicing overflow interrupts (user handlers
    /// and profil histograms), multiplex rotation and sample-buffer drains
    /// along the way.
    pub fn next_event(&mut self) -> Result<AppExit> {
        self.next_event_until(None)
    }

    /// Like [`Papi::next_event`] but stops after `budget` cycles if nothing
    /// else happened first, returning [`AppExit::Paused`]. The perfometer
    /// tool samples metrics on this boundary.
    pub fn run_for(&mut self, budget: u64) -> Result<AppExit> {
        let deadline = self.sub.real_cycles().saturating_add(budget);
        self.next_event_until(Some(deadline))
    }

    fn next_event_until(&mut self, deadline: Option<u64>) -> Result<AppExit> {
        loop {
            let budget = match deadline {
                Some(d) => {
                    let now = self.sub.real_cycles();
                    if now >= d {
                        return Ok(AppExit::Paused);
                    }
                    Some(d - now)
                }
                None => None,
            };
            match self.sub.run(budget) {
                RunExit::Halted => {
                    if self.sampling_cfg.is_some() {
                        let tail = self.sub.drain_samples();
                        self.sampling_buf.extend(tail);
                    }
                    return Ok(AppExit::Halted);
                }
                RunExit::Probe { id, thread, pc } => {
                    return Ok(AppExit::Probe { id, thread, pc });
                }
                RunExit::Overflow {
                    counter,
                    thread,
                    pc,
                } => {
                    self.dispatch_overflow(counter, thread, pc);
                }
                RunExit::Timer => {
                    self.rotate_mpx()?;
                }
                RunExit::SampleBufferFull => {
                    let recs = self.sub.drain_samples();
                    self.sampling_buf.extend(recs);
                }
                RunExit::CycleLimit => return Ok(AppExit::Paused),
                RunExit::Deadlock => {
                    return Err(PapiError::Substrate(
                        "application deadlocked on message receive".into(),
                    ))
                }
            }
        }
    }

    /// Run the application to completion, ignoring probes.
    pub fn run_app(&mut self) -> Result<()> {
        loop {
            if let AppExit::Halted = self.next_event()? {
                return Ok(());
            }
        }
    }

    fn dispatch_overflow(&mut self, counter: usize, thread: ThreadId, pc: u64) {
        let Some(run) = &self.running else { return };
        let set = run.set;
        let hits: Vec<(u32, OvfRoute)> = run
            .routes
            .iter()
            .filter(|(c, _, _)| *c == counter)
            .map(|(_, code, r)| (*code, *r))
            .collect();
        if let Some(obs) = &self.obs {
            obs.inc(ObsCounter::OverflowInterrupts);
        }
        let mut profil_hits = 0u64;
        for (code, route) in hits {
            match route {
                OvfRoute::Profil(p) => {
                    if let Some(prof) = self.profils.get_mut(p) {
                        prof.hit(pc);
                        profil_hits += 1;
                    }
                }
                OvfRoute::Handler(h) => {
                    if let Some(obs) = &self.obs {
                        obs.inc(ObsCounter::OverflowHandlerDispatches);
                        obs.record(self.sub.real_cycles(), || ObsEvent::OverflowFired {
                            counter,
                            code,
                            pc,
                            to_handler: true,
                        });
                    }
                    let info = OverflowInfo {
                        set,
                        code,
                        pc,
                        thread,
                    };
                    if let Some(cb) = self.handlers.get_mut(h) {
                        cb(info);
                    }
                }
            }
        }
        if profil_hits > 0 {
            if let Some(obs) = &self.obs {
                obs.add(ObsCounter::ProfilHits, profil_hits);
                obs.record(self.sub.real_cycles(), || ObsEvent::ProfilHitBatch {
                    hits: profil_hits,
                    pc,
                });
            }
        }
    }

    /// Multiplex rotation on a timer tick: fold the live partition's counts
    /// into the accumulators and program the next partition.
    fn rotate_mpx(&mut self) -> Result<()> {
        let Some(run) = &self.running else {
            return Ok(());
        };
        let RunMode::Mpx(m) = &run.mode else {
            return Ok(());
        };
        let counters = m.partitions[m.current].counters.clone();
        let from_partition = m.current;
        let switched_at = m.switched_at;
        let begin_cycles = self.sub.real_cycles();
        let now = begin_cycles;
        let mut live = Vec::with_capacity(counters.len());
        for &c in &counters {
            live.push(self.sub.read(c)?);
        }
        // Fold and advance.
        let (natives, domain, next_part, to_partition) = {
            let run = self.running.as_mut().unwrap();
            let set = run.set;
            let RunMode::Mpx(m) = &mut run.mode else {
                unreachable!()
            };
            m.flush(now, &live);
            m.rotate();
            let part = m.partitions[m.current].clone();
            let domain = self.sets[set].as_ref().unwrap().domain;
            (run.natives.clone(), domain, part, m.current)
        };
        self.program_partition(&natives, domain, &next_part)?;
        // Counting restarts now; don't charge programming time to the slice.
        let run = self.running.as_mut().unwrap();
        let RunMode::Mpx(m) = &mut run.mode else {
            unreachable!()
        };
        m.switched_at = self.sub.real_cycles();
        if let Some(obs) = &self.obs {
            let end_cycles = self.sub.real_cycles();
            let cost_cycles = end_cycles.saturating_sub(begin_cycles);
            obs.inc(ObsCounter::MpxRotations);
            obs.inc(ObsCounter::MpxFlushes);
            obs.inc(ObsCounter::MpxProgramOps);
            obs.add(ObsCounter::CounterReads, counters.len() as u64);
            obs.add(ObsCounter::CyclesInMpxRotate, cost_cycles);
            obs.record(now, || ObsEvent::MpxFlush {
                partition: from_partition,
                live_cycles: now.saturating_sub(switched_at),
            });
            obs.record(end_cycles, || ObsEvent::MpxRotate {
                from_partition,
                to_partition,
                cost_cycles,
            });
        }
        Ok(())
    }

    // --- timers (the "most popular feature") ------------------------------------

    /// `PAPI_get_real_cyc`.
    pub fn get_real_cyc(&self) -> u64 {
        self.sub.real_cycles()
    }

    /// `PAPI_get_real_usec`.
    pub fn get_real_usec(&self) -> u64 {
        self.sub.real_ns() / 1000
    }

    /// Wall-clock nanoseconds (finer than the C API offered).
    pub fn get_real_ns(&self) -> u64 {
        self.sub.real_ns()
    }

    /// `PAPI_get_virt_usec`: user-mode time of a thread.
    pub fn get_virt_usec(&self, thread: ThreadId) -> Result<u64> {
        Ok(self.sub.virt_ns(thread)? / 1000)
    }

    /// Virtual nanoseconds.
    pub fn get_virt_ns(&self, thread: ThreadId) -> Result<u64> {
        self.sub.virt_ns(thread)
    }

    /// `PAPI_get_mem_info`-style memory utilization (PAPI-3 extension).
    pub fn get_mem_info(&self, thread: ThreadId) -> Result<simcpu::MemInfo> {
        self.sub.mem_info(thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::{sim_alpha, sim_generic, sim_power3, sim_t3e, sim_x86};
    use simcpu::{AddrGen, Machine, PlatformSpec, Program, ProgramBuilder};
    use std::sync::{Arc, Mutex};

    fn fma_loop(iters: u32, fmas: usize) -> Program {
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(iters, |f| {
                f.ffma(fmas);
            });
        });
        b.build("main")
    }

    fn papi_on(spec: PlatformSpec, prog: Program) -> Papi<SimSubstrate> {
        let mut m = Machine::new(spec, 42);
        m.load(prog);
        Papi::init(SimSubstrate::new(m)).unwrap()
    }

    #[test]
    fn lowlevel_count_fp_ops() {
        let mut p = papi_on(sim_generic(), fma_loop(1000, 4));
        let set = p.create_eventset();
        p.add_event(set, Preset::FpOps.code()).unwrap();
        p.add_event(set, Preset::TotIns.code()).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        assert_eq!(v[0], 8000);
        assert_eq!(v[1] as u64, 1000 * 5 + 2);
    }

    #[test]
    fn derived_sub_preset_values() {
        let mut p = papi_on(sim_x86(), fma_loop(500, 1));
        let set = p.create_eventset();
        p.add_event(set, Preset::BrNtk.code()).unwrap();
        p.add_event(set, Preset::BrIns.code()).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        assert_eq!(v[1], 500); // branches
        assert_eq!(v[0], 1); // not taken once (loop exit)
    }

    #[test]
    fn eventset_state_machine_errors() {
        let mut p = papi_on(sim_generic(), fma_loop(10, 1));
        let set = p.create_eventset();
        assert!(matches!(p.start(set), Err(PapiError::Inval(_)))); // empty
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        assert!(matches!(p.read(set), Err(PapiError::NotRun)));
        assert!(matches!(p.stop(set), Err(PapiError::NotRun)));
        p.start(set).unwrap();
        assert_eq!(p.state(set).unwrap(), SetState::Running);
        assert!(matches!(
            p.add_event(set, Preset::TotIns.code()),
            Err(PapiError::IsRun)
        ));
        // v3 semantics: a second running set is refused.
        let set2 = p.create_eventset();
        p.add_event(set2, Preset::TotIns.code()).unwrap();
        assert!(matches!(p.start(set2), Err(PapiError::IsRun)));
        p.stop(set).unwrap();
        p.start(set2).unwrap();
        p.stop(set2).unwrap();
    }

    #[test]
    fn duplicate_and_unknown_events_rejected() {
        let mut p = papi_on(sim_generic(), fma_loop(10, 1));
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        assert!(matches!(
            p.add_event(set, Preset::TotCyc.code()),
            Err(PapiError::Inval(_))
        ));
        assert!(matches!(
            p.add_event(set, 0x4abc_0000),
            Err(PapiError::NoEvnt(_))
        ));
        assert!(matches!(
            p.add_event(99, Preset::TotCyc.code()),
            Err(PapiError::NoEvst(99))
        ));
    }

    #[test]
    fn unavailable_preset_rejected_at_add() {
        // sim-t3e has no TLB events.
        let mut p = papi_on(sim_t3e(), fma_loop(10, 1));
        let set = p.create_eventset();
        assert!(matches!(
            p.add_event(set, Preset::TlbDm.code()),
            Err(PapiError::NoEvnt(_))
        ));
    }

    #[test]
    fn conflicting_events_cnflct_without_multiplex() {
        // sim-x86: four FP-class events exceed the two FP-capable counters.
        let mut p = papi_on(sim_x86(), fma_loop(10, 1));
        let set = p.create_eventset();
        p.add_event(set, Preset::FdvIns.code()).unwrap();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.add_event(set, Preset::FpOps.code()).unwrap();
        assert!(matches!(p.start(set), Err(PapiError::Cnflct)));
        // The set is still usable after the failed start.
        assert_eq!(p.state(set).unwrap(), SetState::Stopped);
    }

    #[test]
    fn multiplex_counts_many_events() {
        let mut p = papi_on(sim_x86(), fma_loop(200_000, 4));
        let set = p.create_eventset();
        p.add_event(set, Preset::FdvIns.code()).unwrap();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.add_event(set, Preset::FpOps.code()).unwrap();
        p.add_event(set, Preset::TotIns.code()).unwrap();
        p.set_multiplex(set).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        // True counts: fdv 0, fma 800k, fp_ops 1.6M, ins 1M+2.
        assert_eq!(v[0], 0);
        let fma_err = (v[1] - 800_000).abs() as f64 / 800_000.0;
        assert!(fma_err < 0.15, "fma estimate off by {fma_err}: {}", v[1]);
        let ops_err = (v[2] - 1_600_000).abs() as f64 / 1_600_000.0;
        assert!(ops_err < 0.15, "fp_ops estimate off by {ops_err}: {}", v[2]);
    }

    #[test]
    fn accum_and_reset() {
        let mut p = papi_on(sim_generic(), fma_loop(100, 2));
        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let mut acc = vec![0i64];
        p.accum(set, &mut acc).unwrap();
        assert_eq!(acc[0], 200);
        // After accum the live counter is reset.
        let v = p.read(set).unwrap();
        assert_eq!(v[0], 0);
        p.stop(set).unwrap();
    }

    #[test]
    fn overflow_callback_fires() {
        let mut p = papi_on(sim_generic(), fma_loop(10_000, 4));
        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        let hits = Arc::new(Mutex::new(Vec::new()));
        let h2 = Arc::clone(&hits);
        p.overflow(
            set,
            Preset::FmaIns.code(),
            1000,
            Box::new(move |info| h2.lock().unwrap().push(info)),
        )
        .unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        let hits = hits.lock().unwrap();
        assert!(
            (38..=40).contains(&hits.len()),
            "got {} overflows",
            hits.len()
        );
        assert!(hits.iter().all(|i| i.code == Preset::FmaIns.code()));
    }

    #[test]
    fn overflow_on_multiplexed_set_rejected() {
        let mut p = papi_on(sim_generic(), fma_loop(10, 1));
        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.set_multiplex(set).unwrap();
        assert!(matches!(
            p.overflow(set, Preset::FmaIns.code(), 100, Box::new(|_| {})),
            Err(PapiError::Cnflct)
        ));
    }

    #[test]
    fn profil_histogram_collects() {
        let mut p = papi_on(sim_generic(), fma_loop(50_000, 4));
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        let text_end = Program::pc_of(64);
        let pid = p
            .profil(
                set,
                Preset::TotCyc.code(),
                ProfilConfig {
                    start: simcpu::TEXT_BASE,
                    end: text_end,
                    bucket_bytes: 4,
                    threshold: 5000,
                },
            )
            .unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        let prof = p.profil_histogram(pid).unwrap();
        assert!(prof.total_samples() > 20, "got {}", prof.total_samples());
        assert!(prof.buckets().iter().sum::<u64>() > 0);
    }

    #[test]
    fn two_profils_on_different_events_simultaneously() {
        // §2: "SVR4-compatible code profiling based on any hardware counter
        // metric" — two metrics profiled in the same run.
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(40_000, |f| {
                f.ffma(2);
                f.load(AddrGen::Chase {
                    base: 0x40_0000,
                    len: 1 << 21,
                });
            });
        });
        let mut p = papi_on(sim_generic(), b.build("main"));
        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.add_event(set, Preset::L1Dcm.code()).unwrap();
        let cfg = ProfilConfig {
            start: simcpu::TEXT_BASE,
            end: Program::pc_of(16),
            bucket_bytes: 4,
            threshold: 2_000,
        };
        let pid_fma = p.profil(set, Preset::FmaIns.code(), cfg).unwrap();
        let pid_mis = p.profil(set, Preset::L1Dcm.code(), cfg).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        let fma = p.profil_histogram(pid_fma).unwrap();
        let mis = p.profil_histogram(pid_mis).unwrap();
        assert!(
            fma.total_samples() > 20,
            "fma samples {}",
            fma.total_samples()
        );
        assert!(
            mis.total_samples() > 10,
            "miss samples {}",
            mis.total_samples()
        );
        // ~80k FMAs vs ~40k misses at the same threshold: the FMA profile
        // must have roughly twice the samples.
        let ratio = fma.total_samples() as f64 / mis.total_samples() as f64;
        assert!(ratio > 1.4 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn duplicate_profil_on_same_event_rejected() {
        let mut p = papi_on(sim_generic(), fma_loop(100, 1));
        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        let cfg = ProfilConfig {
            start: simcpu::TEXT_BASE,
            end: Program::pc_of(8),
            bucket_bytes: 4,
            threshold: 10,
        };
        p.profil(set, Preset::FmaIns.code(), cfg).unwrap();
        assert!(matches!(
            p.profil(set, Preset::FmaIns.code(), cfg),
            Err(PapiError::Cnflct)
        ));
        assert!(matches!(
            p.overflow(set, Preset::FmaIns.code(), 5, Box::new(|_| {})),
            Err(PapiError::Cnflct)
        ));
    }

    #[test]
    fn multiplex_on_group_platform() {
        // Group platforms multiplex across groups: branch-group and
        // mem-group events in one (explicitly multiplexed) set.
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(400_000, |f| {
                f.load(AddrGen::Stride {
                    base: 0x30_0000,
                    stride: 64,
                    len: 1 << 19,
                });
                f.int(1);
            });
        });
        let mut p = papi_on(sim_power3(), b.build("main"));
        let tkn = p.event_name_to_code("PM_BR_TAKEN").unwrap();
        let ldm = p.event_name_to_code("PM_LD_MISS_L1").unwrap();
        let set = p.create_eventset();
        p.add_event(set, tkn).unwrap();
        p.add_event(set, ldm).unwrap();
        assert!(matches!(p.start(set), Err(PapiError::Cnflct)));
        p.set_multiplex(set).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        // Taken branches ~= 400k - 1; every load misses (512 KiB stream,
        // 8192 lines, 400k accesses wrap ~48 times... all within cache? No:
        // 1<<19 = 512 KiB > 16 KiB L1, streaming -> miss per line visit).
        let tkn_err = (v[0] - 399_999).abs() as f64 / 399_999.0;
        assert!(tkn_err < 0.1, "taken estimate off: {} ({tkn_err})", v[0]);
        assert!(v[1] > 300_000, "expected streaming misses, got {}", v[1]);
    }

    #[test]
    fn timers_move_forward() {
        let mut p = papi_on(sim_generic(), fma_loop(100_000, 1));
        let c0 = p.get_real_cyc();
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        assert!(p.get_real_cyc() > c0);
        assert!(p.get_real_usec() > 0);
        assert!(p.get_virt_usec(0).unwrap() > 0);
        assert!(p.get_virt_usec(0).unwrap() <= p.get_real_usec());
    }

    #[test]
    fn event_name_lookups() {
        let p = papi_on(sim_x86(), fma_loop(1, 1));
        assert_eq!(
            p.event_name_to_code("PAPI_TOT_CYC").unwrap(),
            Preset::TotCyc.code()
        );
        let c = p.event_name_to_code("INST_RETIRED").unwrap();
        assert_eq!(p.event_code_to_name(c).unwrap(), "INST_RETIRED");
        assert!(p.event_name_to_code("NOPE").is_err());
        assert_eq!(
            p.event_code_to_name(Preset::FpOps.code()).unwrap(),
            "PAPI_FP_OPS"
        );
    }

    #[test]
    fn native_event_counting() {
        let mut p = papi_on(sim_x86(), fma_loop(100, 3));
        let fml = p.event_name_to_code("FML_INS").unwrap();
        let set = p.create_eventset();
        p.add_event(set, fml).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        assert_eq!(v[0], 0); // FMAs are not plain multiplies on sim-x86
    }

    #[test]
    fn group_platform_allocation_and_conflict() {
        let mut p = papi_on(sim_power3(), fma_loop(100, 2));
        // PM_CYC + PM_INST_CMPL live in every group: fine.
        let set = p.create_eventset();
        let cyc = p.event_name_to_code("PM_CYC").unwrap();
        let inst = p.event_name_to_code("PM_INST_CMPL").unwrap();
        p.add_event(set, cyc).unwrap();
        p.add_event(set, inst).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        assert!(v[0] > 0 && v[1] > 0);
        // PM_BR_TAKEN (branch group) + PM_LD_MISS_L1 (mem/cache groups)
        // span groups: conflict.
        let set2 = p.create_eventset();
        let tkn = p.event_name_to_code("PM_BR_TAKEN").unwrap();
        let ldm = p.event_name_to_code("PM_LD_MISS_L1").unwrap();
        p.add_event(set2, tkn).unwrap();
        p.add_event(set2, ldm).unwrap();
        assert!(matches!(p.start(set2), Err(PapiError::Cnflct)));
    }

    #[test]
    fn power3_rounding_quirk_shows_in_counts() {
        // A workload with converts: FP_INS over-counts on sim-power3.
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(1000, |f| {
                f.fadd(2);
                f.fcvt(1);
            });
        });
        let mut p = papi_on(sim_power3(), b.build("main"));
        let set = p.create_eventset();
        p.add_event(set, Preset::FpIns.code()).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        // Analytic FP instructions = 2000; PM_FPU_CMPL also counts the 1000
        // converts — the paper's calibration discrepancy.
        assert_eq!(v[0], 3000);
        let m = p.preset_table().mapping(Preset::FpIns.code()).unwrap();
        assert!(m.inexact);
    }

    #[test]
    fn sampling_through_papi() {
        let mut p = papi_on(sim_alpha(), fma_loop(20_000, 4));
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        p.start_sampling(SampleConfig {
            period: 200,
            jitter: 20,
            buffer_capacity: 128,
        })
        .unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        let samples = p.stop_sampling().unwrap();
        assert!(samples.len() > 100, "got {}", samples.len());
        // Estimation from samples tracks the FMA-heavy mix.
        let est = sampling::estimate_count(&samples, 200, simcpu::EventKind::FpFma);
        let err = (est as f64 - 80_000.0).abs() / 80_000.0;
        assert!(err < 0.2, "estimate {est} off by {err}");
    }

    #[test]
    fn mpx_period_configurable_and_validated() {
        let mut p = papi_on(sim_x86(), fma_loop(300_000, 4));
        let set = p.create_eventset();
        for pr in [Preset::FdvIns, Preset::FmaIns, Preset::FpOps] {
            p.add_event(set, pr.code()).unwrap();
        }
        p.set_multiplex(set).unwrap();
        assert!(matches!(
            p.set_multiplex_period(set, 0),
            Err(PapiError::Inval(_))
        ));
        p.set_multiplex_period(set, 20_000).unwrap(); // 5x faster switching
        p.start(set).unwrap();
        assert!(matches!(
            p.set_multiplex_period(set, 1),
            Err(PapiError::IsRun)
        ));
        p.run_app().unwrap();
        let v = p.stop(set).unwrap();
        let err = (v[1] - 1_200_000).abs() as f64 / 1_200_000.0;
        assert!(err < 0.1, "fast-switching mpx should converge, err {err}");
    }

    #[test]
    fn sampled_histogram_and_estimates() {
        let mut p = papi_on(sim_alpha(), fma_loop(30_000, 4));
        // Not running a sampling session -> NotRun.
        assert!(matches!(
            p.sampled_histogram(
                simcpu::EventKind::FpFma,
                ProfilConfig {
                    start: simcpu::TEXT_BASE,
                    end: Program::pc_of(16),
                    bucket_bytes: 4,
                    threshold: 1
                }
            ),
            Err(PapiError::NotRun)
        ));
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        p.start_sampling(SampleConfig {
            period: 300,
            jitter: 30,
            buffer_capacity: 128,
        })
        .unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        let hist = p
            .sampled_histogram(
                simcpu::EventKind::FpFma,
                ProfilConfig {
                    start: simcpu::TEXT_BASE,
                    end: Program::pc_of(16),
                    bucket_bytes: 4,
                    threshold: 1,
                },
            )
            .unwrap();
        // FMA samples land exactly on the 4 FMA instruction buckets.
        let nonzero: Vec<usize> = hist
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !nonzero.is_empty() && nonzero.iter().all(|&i| i < 4),
            "buckets {nonzero:?}"
        );
        let est = p
            .estimate_counts_from_samples(&[simcpu::EventKind::FpFma])
            .unwrap();
        let err = (est[0] as f64 - 120_000.0).abs() / 120_000.0;
        assert!(err < 0.15, "estimate {} off by {err}", est[0]);
        // The session still owns its samples afterwards.
        let all = p.stop_sampling().unwrap();
        assert!(!all.is_empty());
    }

    #[test]
    fn sampling_unsupported_on_x86() {
        let mut p = papi_on(sim_x86(), fma_loop(10, 1));
        assert!(matches!(
            p.start_sampling(SampleConfig::default()),
            Err(PapiError::NoSupp(_))
        ));
    }

    #[test]
    fn meminfo_through_papi() {
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(32, |f| {
                f.store(AddrGen::Stride {
                    base: 0x200_0000,
                    stride: 4096,
                    len: 32 * 4096,
                });
            });
        });
        let mut p = papi_on(sim_generic(), b.build("main"));
        p.run_app().unwrap();
        let mi = p.get_mem_info(0).unwrap();
        assert_eq!(mi.resident_pages, 32);
    }

    #[test]
    fn destroy_eventset_lifecycle() {
        let mut p = papi_on(sim_generic(), fma_loop(10, 1));
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        p.start(set).unwrap();
        assert!(matches!(p.destroy_eventset(set), Err(PapiError::IsRun)));
        p.stop(set).unwrap();
        p.destroy_eventset(set).unwrap();
        assert!(matches!(p.state(set), Err(PapiError::NoEvst(_))));
    }

    #[test]
    fn remove_event_updates_set() {
        let mut p = papi_on(sim_generic(), fma_loop(10, 1));
        let set = p.create_eventset();
        p.add_events(set, &[Preset::TotCyc.code(), Preset::TotIns.code()])
            .unwrap();
        assert_eq!(p.num_events(set).unwrap(), 2);
        p.remove_event(set, Preset::TotCyc.code()).unwrap();
        assert_eq!(p.list_events(set).unwrap(), vec![Preset::TotIns.code()]);
        assert!(matches!(
            p.remove_event(set, Preset::TotCyc.code()),
            Err(PapiError::NoEvnt(_))
        ));
    }

    #[test]
    fn attach_reads_one_threads_counts() {
        // Two threads with disjoint work; an attached set sees only its
        // thread's share (PAPI_attach over per-thread virtualization).
        let build = || {
            let mut m = Machine::new(sim_generic(), 14);
            m.load(fma_loop(30_000, 4)); // t0: FP
            let mut b = ProgramBuilder::new();
            b.func("main", |f| {
                f.loop_(30_000, |f| {
                    f.int(4);
                });
            });
            m.load(b.build("main")); // t1: integer
            m.set_granularity(simcpu::Granularity::Thread);
            Papi::init(SimSubstrate::new(m)).unwrap()
        };
        let measure_thread = |tid: u32| -> i64 {
            let mut p = build();
            let set = p.create_eventset();
            p.add_event(set, Preset::FmaIns.code()).unwrap();
            p.attach(set, tid).unwrap();
            p.start(set).unwrap();
            p.run_app().unwrap();
            p.stop(set).unwrap()[0]
        };
        assert_eq!(measure_thread(0), 120_000, "t0 owns all FMAs");
        assert_eq!(measure_thread(1), 0, "integer thread has no FMAs");
    }

    #[test]
    fn attach_state_machine_rules() {
        let mut p = papi_on(sim_generic(), fma_loop(10, 1));
        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.attach(set, 0).unwrap();
        p.detach(set).unwrap();
        p.set_multiplex(set).unwrap();
        assert!(matches!(p.attach(set, 0), Err(PapiError::Cnflct)));
        let set2 = p.create_eventset();
        p.add_event(set2, Preset::TotCyc.code()).unwrap();
        p.start(set2).unwrap();
        assert!(matches!(p.attach(set2, 0), Err(PapiError::IsRun)));
        p.stop(set2).unwrap();
    }

    #[test]
    fn domain_filters_kernel_overhead() {
        // USER-domain cycles exclude measurement overhead; ALL includes it.
        let prog = fma_loop(10_000, 2);
        let count_with = |domain: Domain| -> i64 {
            let mut p = papi_on(sim_x86(), prog.clone());
            let set = p.create_eventset();
            p.add_event(set, Preset::TotCyc.code()).unwrap();
            p.set_domain(set, domain).unwrap();
            p.start(set).unwrap();
            // Extra reads generate kernel-mode cycles mid-run.
            for _ in 0..50 {
                let _ = p.read(set).unwrap();
            }
            p.run_app().unwrap();
            p.stop(set).unwrap()[0]
        };
        let user = count_with(Domain::USER);
        let all = count_with(Domain::ALL);
        assert!(all > user, "ALL {all} must exceed USER {user}");
    }

    #[test]
    fn obs_counts_api_traffic_and_journal() {
        let mut p = papi_on(sim_generic(), fma_loop(10_000, 4));
        let obs = papi_obs::Obs::new();
        obs.enable_journal(1024);
        p.attach_obs(obs.clone());

        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.overflow(set, Preset::FmaIns.code(), 1000, Box::new(|_| {}))
            .unwrap();
        p.start(set).unwrap();
        let mut acc = vec![0i64];
        while !matches!(p.run_for(50_000).unwrap(), AppExit::Halted) {
            let _ = p.read(set).unwrap();
        }
        p.accum(set, &mut acc).unwrap();
        p.stop(set).unwrap();
        p.destroy_eventset(set).unwrap();

        use papi_obs::Counter as C;
        assert_eq!(obs.get(C::EventsetCreated), 1);
        assert_eq!(obs.get(C::EventsetDestroyed), 1);
        assert_eq!(obs.get(C::Starts), 1);
        assert_eq!(obs.get(C::Stops), 1);
        assert!(obs.get(C::Reads) >= 2); // explicit reads + accum's read
        assert!(obs.get(C::CounterReads) >= obs.get(C::Reads));
        assert_eq!(obs.get(C::Accums), 1);
        assert_eq!(obs.get(C::Resets), 1); // accum's reset
        assert_eq!(obs.get(C::AllocAttempts), 1);
        assert_eq!(obs.get(C::AllocSuccesses), 1);
        assert!(obs.get(C::AllocAugmentSteps) >= 1);
        assert!(
            obs.get(C::OverflowInterrupts) >= 30,
            "interrupts {}",
            obs.get(C::OverflowInterrupts)
        );
        assert_eq!(
            obs.get(C::OverflowHandlerDispatches),
            obs.get(C::OverflowInterrupts)
        );
        // Reads cost kernel cycles; the span accounting must have seen them.
        assert!(obs.get(C::CyclesInRead) > 0);
        assert!(obs.get(C::CyclesInStartStop) > 0);

        // The journal saw the lifecycle in virtual-time order.
        let recs = obs.journal_records();
        assert!(!recs.is_empty());
        assert!(recs.windows(2).all(|w| w[0].cycles <= w[1].cycles));
        assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
        let kinds: Vec<&str> = recs.iter().map(|r| r.event.kind()).collect();
        for expected in [
            "obs.eventset_created",
            "obs.alloc",
            "obs.start",
            "obs.read",
            "obs.overflow",
            "obs.accum",
            "obs.reset",
            "obs.stop",
            "obs.eventset_destroyed",
        ] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
        assert_eq!(obs.get(C::JournalRecords), recs.len() as u64);
    }

    #[test]
    fn obs_counts_mpx_rotations_and_profil_hits() {
        let mut p = papi_on(sim_x86(), fma_loop(200_000, 4));
        let obs = papi_obs::Obs::new();
        p.attach_obs(obs.clone());
        let set = p.create_eventset();
        p.add_event(set, Preset::FdvIns.code()).unwrap();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.add_event(set, Preset::FpOps.code()).unwrap();
        p.add_event(set, Preset::TotIns.code()).unwrap();
        p.set_multiplex(set).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();

        use papi_obs::Counter as C;
        assert!(
            obs.get(C::MpxRotations) >= 5,
            "rotations {}",
            obs.get(C::MpxRotations)
        );
        // Every rotation flushes; the final stop() flushes once more.
        assert!(obs.get(C::MpxFlushes) > obs.get(C::MpxRotations));
        assert_eq!(obs.get(C::MpxProgramOps), obs.get(C::MpxRotations));
        assert!(obs.get(C::CyclesInMpxRotate) > 0);
        // One failed direct allocation attempt preceded the mpx fallback.
        assert_eq!(obs.get(C::AllocAttempts), 1);
        assert_eq!(obs.get(C::AllocFailures), 1);

        // Profil hits route through the same dispatcher.
        let mut p = papi_on(sim_generic(), fma_loop(50_000, 4));
        let obs = papi_obs::Obs::new();
        p.attach_obs(obs.clone());
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        p.profil(
            set,
            Preset::TotCyc.code(),
            ProfilConfig {
                start: simcpu::TEXT_BASE,
                end: Program::pc_of(64),
                bucket_bytes: 4,
                threshold: 5000,
            },
        )
        .unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        assert!(obs.get(C::ProfilHits) > 20);
        assert_eq!(obs.get(C::ProfilHits), obs.get(C::OverflowInterrupts));
        assert_eq!(obs.get(C::OverflowHandlerDispatches), 0);
    }

    #[test]
    fn obs_never_perturbs_measurements() {
        // Identical runs with and without the observer (journal on) must
        // produce identical counts and identical virtual end times: the
        // instrumentation issues no costed substrate operations.
        let run = |with_obs: bool| -> (Vec<i64>, u64) {
            let mut p = papi_on(sim_x86(), fma_loop(30_000, 2));
            if with_obs {
                let obs = papi_obs::Obs::new();
                obs.enable_journal(256);
                p.attach_obs(obs);
            }
            let set = p.create_eventset();
            p.add_event(set, Preset::FpOps.code()).unwrap();
            p.add_event(set, Preset::TotCyc.code()).unwrap();
            p.start(set).unwrap();
            while !matches!(p.run_for(25_000).unwrap(), AppExit::Halted) {
                let _ = p.read(set).unwrap();
            }
            let v = p.stop(set).unwrap();
            (v, p.get_real_cyc())
        };
        let (vals_plain, cyc_plain) = run(false);
        let (vals_obs, cyc_obs) = run(true);
        assert_eq!(vals_plain, vals_obs);
        assert_eq!(cyc_plain, cyc_obs);
    }

    #[test]
    fn obs_detach_and_reuse() {
        let mut p = papi_on(sim_generic(), fma_loop(100, 1));
        let obs = papi_obs::Obs::new();
        p.attach_obs(obs.clone());
        assert!(p.obs().is_some());
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        let detached = p.detach_obs().unwrap();
        assert!(p.obs().is_none());
        // Detached: no further accounting.
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap();
        assert_eq!(detached.get(papi_obs::Counter::Starts), 0);
        assert_eq!(detached.get(papi_obs::Counter::EventsetCreated), 1);
    }
}
