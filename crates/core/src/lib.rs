//! # papi-core — a portable interface to hardware performance counters
//!
//! Rust reproduction of the system described in *"Experiences and Lessons
//! Learned with a Portable Interface to Hardware Performance Counters"*
//! (Dongarra et al., IPPS 2003): the PAPI library, in its PAPI-3 layered
//! shape.
//!
//! ```text
//!   high-level interface   (start/stop/read counters, PAPI_flops)    highlevel
//!   low-level interface    (EventSets, overflow, profil, multiplex)  Papi
//!     · session lifecycle, timers, sampling                          session
//!     · start/stop/read/accum, overflow & mpx dispatch               dispatch
//!     · event queries + EventSet bookkeeping                         events
//!   portable machinery     (presets, estimation)                     preset/…
//!   allocation solver      (bipartite matching over abstract rows)   alloc::solver
//!   ───────────────── Substrate trait (machine-dependent) ─────────────────
//!   allocation translation (masks / POWER groups → solver rows)      alloc model
//!   platform substrates    (8 simulated machines, perfctr emulation) registry
//! ```
//!
//! Two axes of the architecture are split along the machine-(in)dependent
//! boundary, exactly as PAPI 3 did:
//!
//! * **Allocation** — the hardware-independent solver
//!   ([`alloc::solver`]) matches abstract constraint rows; each substrate
//!   supplies the hardware-dependent translation
//!   ([`Substrate::alloc_model`]) from its constraint scheme (per-event
//!   counter masks, or POWER-style fixed groups) into those rows. The
//!   portable layer contains no group special cases.
//! * **Substrate selection** — [`Papi`] is generic over [`Substrate`] for
//!   static dispatch, and the trait is object-safe: a
//!   [`registry::SubstrateRegistry`] maps names (`sim:x86`, `perfctr`) to
//!   boxed substrate factories so tools pick their backend at runtime
//!   ([`Papi::init_named`] / `--substrate NAME`).
//!
//! ## Quick start
//!
//! ```
//! use papi_core::{Papi, Preset};
//! use papi_core::substrate::SimSubstrate;
//! use simcpu::{platform, Machine, ProgramBuilder};
//!
//! // Build a tiny workload on the generic simulated platform.
//! let mut machine = Machine::new(platform::sim_generic(), 42);
//! let mut b = ProgramBuilder::new();
//! b.func("kernel", |f| { f.loop_(1000, |f| { f.ffma(4); }); });
//! machine.load(b.build("kernel"));
//!
//! // Initialize the library and count FLOPs the low-level way.
//! let mut papi = Papi::init(SimSubstrate::new(machine)).unwrap();
//! let set = papi.create_eventset();
//! papi.add_event(set, Preset::FpOps.code()).unwrap();
//! papi.start(set).unwrap();
//! papi.run_app().unwrap();
//! let counts = papi.stop(set).unwrap();
//! assert_eq!(counts[0], 8000); // 4000 FMAs x 2 FLOPs
//! ```
//!
//! Or select the platform by name through the registry (dynamic dispatch —
//! the session holds a [`BoxSubstrate`]):
//!
//! ```
//! use papi_core::{Papi, Preset};
//!
//! let mut papi = Papi::init_named("sim:generic").unwrap();
//! assert!(papi.query_event(Preset::TotCyc.code()));
//! ```

pub mod alloc;
pub mod error;
pub mod eventset;
pub mod fault;
pub mod highlevel;
pub mod multiplex;
pub mod preset;
pub mod profile;
pub mod registry;
pub mod sampling;
pub mod seqlock;
pub mod substrate;
pub mod testutil;
pub mod threads;

mod dispatch;
mod events;
mod session;

#[cfg(test)]
mod core_tests;

pub use dispatch::{AppExit, OverflowInfo, OvfHandler, ProfilId};
pub use error::{PapiError, Result};
pub use eventset::{EventSetId, SetState};
pub use fault::{FaultPlan, FaultSubstrate};
pub use preset::{is_preset_code, Mapping, Preset, PresetTable, PRESET_MASK};
pub use profile::{Profil, ProfilConfig};
pub use registry::{Provenance, SubstrateFactory, SubstrateInfo, SubstrateRegistry};
pub use seqlock::{CountSnapshot, PublishedCounts, SeqCell, MAX_PUBLISHED_EVENTS};
pub use session::{Papi, DEFAULT_TRANSIENT_RETRY_BUDGET};
pub use substrate::{BoxSubstrate, HwInfo, SimSubstrate, Substrate};
pub use threads::{PapiThread, TaggedSetId, ThreadedPapi, NUM_SHARDS};
