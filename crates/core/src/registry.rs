//! Runtime substrate selection — the component layer.
//!
//! Later PAPI work generalized substrates into runtime-selectable components
//! so one binary can serve heterogeneous platforms. This module is that
//! mechanism for the reproduction: a [`SubstrateRegistry`] maps names like
//! `sim:x86` or `perfctr` to factories producing boxed [`Substrate`]s, and
//! tools select a backend with `--substrate NAME` instead of being
//! monomorphized over one at compile time.
//!
//! The registry ships with the eight simulated platforms pre-registered
//! under `sim:<suffix>` (each aliased to its `sim-<suffix>` platform name);
//! other crates add their backends via [`SubstrateRegistry::register`] — the
//! perfctr emulation crate does exactly that.
//!
//! Factories must be `Send + Sync`: a registry behind an `Arc` is the
//! natural way for [`crate::threads::ThreadedPapi`] to mint an independent
//! substrate per registered thread, so registry lookups may happen from
//! any thread.

use crate::error::{PapiError, Result};
use crate::substrate::{BoxSubstrate, SimSubstrate, Substrate};
use simcpu::PlatformSpec;

/// Where a registered backend's definition lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// A built-in platform parsed from an embedded `platforms/*.toml` file.
    BuiltinData,
    /// A backend implemented in Rust (perfctr emulation, test doubles).
    Code,
    /// A platform-model file loaded at runtime via
    /// [`SubstrateRegistry::register_platform_file`] or a `file:` name.
    DataFile,
}

impl Provenance {
    /// Short label for listings (`papi_avail` provenance column).
    pub fn label(self) -> &'static str {
        match self {
            Provenance::BuiltinData => "builtin-data",
            Provenance::Code => "code",
            Provenance::DataFile => "data-file",
        }
    }
}

/// One row of `papirun --list-substrates`: the registry's description of a
/// backend, probed from a throwaway instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstrateInfo {
    /// Canonical registry name (`sim:x86`, `perfctr`, …).
    pub name: String,
    /// Alternate names accepted by [`SubstrateRegistry::create`].
    pub aliases: Vec<String>,
    /// Human description (vendor/model).
    pub description: String,
    /// Physical counters.
    pub counters: usize,
    /// Counter groups (0 on mask-allocated platforms).
    pub groups: usize,
    /// Precise-sampling hardware present.
    pub sampling: bool,
    /// Where the backend's definition lives.
    pub provenance: Provenance,
}

/// Builds one substrate instance from a deterministic seed.
pub type SubstrateFactory = Box<dyn Fn(u64) -> Result<BoxSubstrate> + Send + Sync>;

struct Entry {
    name: String,
    aliases: Vec<String>,
    description: String,
    factory: SubstrateFactory,
    provenance: Provenance,
    /// The platform model backing this entry, when there is one. `None` for
    /// code backends like perfctr whose definition is not a `PlatformSpec`.
    spec: Option<PlatformSpec>,
}

/// Name → substrate factory table.
pub struct SubstrateRegistry {
    entries: Vec<Entry>,
}

impl SubstrateRegistry {
    /// An empty registry (no backends).
    pub fn new() -> SubstrateRegistry {
        SubstrateRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with the eight simulated platforms pre-registered.
    pub fn with_builtin() -> SubstrateRegistry {
        let mut reg = SubstrateRegistry::new();
        for spec in simcpu::platform::all_platforms() {
            let canonical = spec
                .name
                .strip_prefix("sim-")
                .map(|s| format!("sim:{s}"))
                .unwrap_or_else(|| spec.name.to_string());
            let description = format!("{} {} (simulated)", spec.vendor, spec.model);
            let aliases = vec![spec.name.to_string()];
            reg.register_spec(
                &canonical,
                &aliases,
                &description,
                spec,
                Provenance::BuiltinData,
            );
        }
        reg
    }

    /// Register a backend under `name`.
    pub fn register(&mut self, name: &str, description: &str, factory: SubstrateFactory) {
        self.register_with_aliases(name, &[], description, factory);
    }

    /// Register a backend reachable by `name` or any of `aliases`.
    pub fn register_with_aliases(
        &mut self,
        name: &str,
        aliases: &[String],
        description: &str,
        factory: SubstrateFactory,
    ) {
        // Last registration of a name wins, like component overrides.
        self.entries.retain(|e| !e.name.eq_ignore_ascii_case(name));
        self.entries.push(Entry {
            name: name.to_string(),
            aliases: aliases.to_vec(),
            description: description.to_string(),
            factory,
            provenance: Provenance::Code,
            spec: None,
        });
    }

    /// Register a simulated platform backed by a known [`PlatformSpec`].
    fn register_spec(
        &mut self,
        name: &str,
        aliases: &[String],
        description: &str,
        spec: PlatformSpec,
        provenance: Provenance,
    ) {
        let spec_for_factory = spec.clone();
        self.register_with_aliases(
            name,
            aliases,
            description,
            Box::new(move |seed| {
                Ok(
                    Box::new(SimSubstrate::for_platform(spec_for_factory.clone(), seed))
                        as BoxSubstrate,
                )
            }),
        );
        let entry = self.entries.last_mut().unwrap();
        entry.provenance = provenance;
        entry.spec = Some(spec);
    }

    /// Load a platform-model file and register it as a substrate.
    ///
    /// The file is parsed and validated *before* the registry is touched: a
    /// malformed or semantics-violating file returns the parser's named
    /// check and line number and leaves the registry exactly as it was. On
    /// success the platform is registered under `file:<name>` (aliased to
    /// its bare `[platform].name`) with [`Provenance::DataFile`], and gets
    /// the full substrate treatment — allocation models, fault decoration,
    /// conformance. Returns the canonical registered name.
    pub fn register_platform_file(&mut self, path: &std::path::Path) -> Result<String> {
        let spec = simcpu::load_platform_file(path)
            .map_err(|e| PapiError::Substrate(format!("platform file {}: {e}", path.display())))?;
        Ok(self.register_loaded_spec(spec))
    }

    /// Load every `*.toml` platform-model file in `dir`, atomically: all
    /// files are parsed and validated first, and the registry is only
    /// mutated if every one of them is valid. Returns the canonical names
    /// registered, in filename order.
    pub fn register_platform_dir(&mut self, dir: &std::path::Path) -> Result<Vec<String>> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| PapiError::Substrate(format!("platform dir {}: {e}", dir.display())))?
            .filter_map(|ent| ent.ok().map(|ent| ent.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect();
        paths.sort();
        let mut specs = Vec::with_capacity(paths.len());
        for path in &paths {
            specs.push(simcpu::load_platform_file(path).map_err(|e| {
                PapiError::Substrate(format!("platform file {}: {e}", path.display()))
            })?);
        }
        Ok(specs
            .into_iter()
            .map(|spec| self.register_loaded_spec(spec))
            .collect())
    }

    fn register_loaded_spec(&mut self, spec: PlatformSpec) -> String {
        let canonical = format!("file:{}", spec.name);
        let description = format!("{} {} (platform file)", spec.vendor, spec.model);
        let aliases = vec![spec.name.to_string()];
        self.register_spec(
            &canonical,
            &aliases,
            &description,
            spec,
            Provenance::DataFile,
        );
        canonical
    }

    /// Does `name` denote an on-the-fly platform-file load (`file:` followed
    /// by something path-shaped rather than a registered platform name)?
    fn file_path_name(name: &str) -> Option<&std::path::Path> {
        let rest = name.strip_prefix("file:")?;
        if rest.contains('/') || rest.ends_with(".toml") {
            Some(std::path::Path::new(rest))
        } else {
            None
        }
    }

    fn entry(&self, name: &str) -> Result<&Entry> {
        // Case-insensitive over canonical names and aliases — the one place
        // in the workspace that resolves substrate/platform names. A query
        // in colon form (`sim:rv64`) falls back to the dashed platform name
        // (`sim-rv64`), so data-file platforms are reachable the same two
        // ways the builtins are.
        let hit = self.entries.iter().find(|e| {
            e.name.eq_ignore_ascii_case(name)
                || e.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
        });
        let hit = hit.or_else(|| {
            let dashed = name.replace(':', "-");
            self.entries.iter().find(|e| {
                e.name.eq_ignore_ascii_case(&dashed)
                    || e.aliases.iter().any(|a| a.eq_ignore_ascii_case(&dashed))
            })
        });
        hit.ok_or_else(|| PapiError::Substrate(format!("unknown substrate '{name}'")))
    }

    /// Instantiate the backend registered under `name` (canonical or alias)
    /// with a deterministic `seed`.
    ///
    /// Names may carry a fault-injection prefix wrapping any registered
    /// backend in a [`crate::fault::FaultSubstrate`]:
    ///
    /// * `fault:<inner>` — empty (pass-through) plan;
    /// * `fault[<spec>]:<inner>` — plan parsed by
    ///   [`crate::fault::FaultPlan::parse`] (e.g.
    ///   `fault[read=5,bits=32]:sim:x86`, `fault[chaos]:perfctr`), with
    ///   `seed` as the plan's default seed.
    pub fn create(&self, name: &str, seed: u64) -> Result<BoxSubstrate> {
        if let Some((plan, inner)) = Self::parse_fault_name(name, seed)? {
            let inner_sub = self.create(inner, seed)?;
            return Ok(Box::new(crate::fault::FaultSubstrate::new(inner_sub, plan)));
        }
        // `file:<path>` loads a platform-model file on the fly (no prior
        // registration needed), so fault prefixes compose over it:
        // `fault[chaos]:file:platforms/sim-rv64.toml`.
        if let Some(path) = Self::file_path_name(name) {
            let spec = simcpu::load_platform_file(path).map_err(|e| {
                PapiError::Substrate(format!("platform file {}: {e}", path.display()))
            })?;
            return Ok(Box::new(SimSubstrate::for_platform(spec, seed)));
        }
        (self.entry(name)?.factory)(seed)
    }

    /// Split a `fault:`/`fault[spec]:` prefixed name into its plan and the
    /// inner backend name; `Ok(None)` for ordinary names.
    fn parse_fault_name(name: &str, seed: u64) -> Result<Option<(crate::fault::FaultPlan, &str)>> {
        let Some(rest) = name.strip_prefix("fault") else {
            return Ok(None);
        };
        if let Some(inner) = rest.strip_prefix(':') {
            return Ok(Some((crate::fault::FaultPlan::parse("", seed)?, inner)));
        }
        if let Some(rest) = rest.strip_prefix('[') {
            if let Some((spec, inner)) = rest.split_once("]:") {
                return Ok(Some((crate::fault::FaultPlan::parse(spec, seed)?, inner)));
            }
            return Err(PapiError::Substrate(format!(
                "malformed fault substrate name '{name}' (expected fault[spec]:inner)"
            )));
        }
        Ok(None)
    }

    /// Where the backend behind `name` is defined. Fault prefixes are
    /// transparent (they decorate, not define); `file:<path>` names are
    /// [`Provenance::DataFile`].
    pub fn provenance(&self, name: &str) -> Result<Provenance> {
        if let Some((_, inner)) = Self::parse_fault_name(name, 0)? {
            return self.provenance(inner);
        }
        if Self::file_path_name(name).is_some() {
            return Ok(Provenance::DataFile);
        }
        Ok(self.entry(name)?.provenance)
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Is `name` (canonical or alias) registered?  Fault-prefixed names are
    /// resolvable when their inner name is.
    pub fn contains(&self, name: &str) -> bool {
        match Self::parse_fault_name(name, 0) {
            Ok(Some((_, inner))) => self.contains(inner),
            Ok(None) => match Self::file_path_name(name) {
                Some(path) => simcpu::load_platform_file(path).is_ok(),
                None => self.entry(name).is_ok(),
            },
            Err(_) => false,
        }
    }

    /// Resolve `name` to the [`PlatformSpec`] backing it, if any: fault
    /// prefixes are stripped (they decorate the substrate, not the model),
    /// `file:<path>` names are loaded from disk, and registered names —
    /// builtin or data-file, canonical or alias, any case — return their
    /// stored spec. Code backends (perfctr) have no spec and error.
    pub fn platform_spec(&self, name: &str) -> Result<PlatformSpec> {
        if let Some((_, inner)) = Self::parse_fault_name(name, 0)? {
            return self.platform_spec(inner);
        }
        if let Some(path) = Self::file_path_name(name) {
            return simcpu::load_platform_file(path).map_err(|e| {
                PapiError::Substrate(format!("platform file {}: {e}", path.display()))
            });
        }
        self.entry(name)?.spec.clone().ok_or_else(|| {
            PapiError::Substrate(format!(
                "substrate '{name}' is a code backend with no platform model"
            ))
        })
    }

    /// Describe every backend by probing a throwaway instance of each.
    /// Backends whose factory fails are skipped.
    pub fn list(&self) -> Vec<SubstrateInfo> {
        self.entries
            .iter()
            .filter_map(|e| {
                let sub = (e.factory)(0).ok()?;
                let hw = sub.hw_info();
                Some(SubstrateInfo {
                    name: e.name.clone(),
                    aliases: e.aliases.clone(),
                    description: e.description.clone(),
                    counters: hw.num_counters,
                    groups: sub.groups().len(),
                    sampling: hw.precise_sampling,
                    provenance: e.provenance,
                })
            })
            .collect()
    }
}

impl Default for SubstrateRegistry {
    fn default() -> Self {
        SubstrateRegistry::with_builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_every_sim_platform_by_both_names() {
        let reg = SubstrateRegistry::with_builtin();
        assert_eq!(reg.names().len(), 8);
        for spec in simcpu::platform::all_platforms() {
            let suffix = spec.name.strip_prefix("sim-").unwrap();
            for name in [format!("sim:{suffix}"), spec.name.to_string()] {
                let sub = reg.create(&name, 7).unwrap();
                assert_eq!(sub.hw_info().model, spec.model, "{name}");
                assert_eq!(sub.num_counters(), spec.num_counters);
            }
        }
    }

    #[test]
    fn registry_is_send_and_sync() {
        // The thread layer shares one registry behind an Arc and creates a
        // substrate per registered thread from arbitrary threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SubstrateRegistry>();

        let reg = std::sync::Arc::new(SubstrateRegistry::with_builtin());
        let joins: Vec<_> = (0..4)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || reg.create("sim:x86", t).unwrap().num_counters())
            })
            .collect();
        for j in joins {
            assert_eq!(j.join().unwrap(), 4);
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let reg = SubstrateRegistry::with_builtin();
        assert!(matches!(
            reg.create("sim:pdp11", 0),
            Err(PapiError::Substrate(_))
        ));
        assert!(!reg.contains("sim:pdp11"));
        assert!(reg.contains("sim:power3"));
        assert!(reg.contains("sim-power3"));
    }

    #[test]
    fn list_reports_counters_groups_and_sampling() {
        let infos = SubstrateRegistry::with_builtin().list();
        assert_eq!(infos.len(), 8);
        let p3 = infos.iter().find(|i| i.name == "sim:power3").unwrap();
        assert!(p3.groups > 0, "POWER3 is group-allocated");
        let alpha = infos.iter().find(|i| i.name == "sim:alpha").unwrap();
        assert!(alpha.sampling, "Alpha has ProfileMe sampling");
        let x86 = infos.iter().find(|i| i.name == "sim:x86").unwrap();
        assert_eq!(x86.groups, 0);
        assert!(!x86.sampling);
    }

    #[test]
    fn custom_registration_and_override() {
        let mut reg = SubstrateRegistry::new();
        reg.register(
            "mine",
            "custom backend",
            Box::new(|seed| {
                Ok(Box::new(SimSubstrate::for_platform(
                    simcpu::platform::sim_generic(),
                    seed,
                )) as BoxSubstrate)
            }),
        );
        assert_eq!(reg.names(), vec!["mine"]);
        let sub = reg.create("mine", 1).unwrap();
        assert!(sub.groups().is_empty());
        // Re-registering the same name replaces the entry.
        reg.register(
            "mine",
            "replacement",
            Box::new(|seed| {
                Ok(Box::new(SimSubstrate::for_platform(
                    simcpu::platform::sim_power3(),
                    seed,
                )) as BoxSubstrate)
            }),
        );
        assert_eq!(reg.names().len(), 1);
        assert!(!reg.create("mine", 1).unwrap().groups().is_empty());
    }

    #[test]
    fn fault_prefix_wraps_any_backend() {
        let reg = SubstrateRegistry::with_builtin();
        let sub = reg.create("fault:sim:x86", 7).unwrap();
        assert_eq!(
            sub.hw_info().model,
            reg.create("sim:x86", 7).unwrap().hw_info().model
        );
        assert_eq!(sub.counter_width(), 64, "empty plan keeps native width");
        let sub = reg.create("fault[bits=32,read=5]:sim:x86", 7).unwrap();
        assert_eq!(sub.counter_width(), 32);
        let sub = reg.create("fault[chaos]:sim:power3", 7).unwrap();
        assert_eq!(sub.counter_width(), 32);
        assert!(!sub.groups().is_empty(), "inner POWER3 groups visible");
        assert!(reg.contains("fault:sim:x86"));
        assert!(reg.contains("fault[chaos]:sim-alpha"));
        assert!(!reg.contains("fault:sim:pdp11"));
        assert!(!reg.contains("fault[oops:sim:x86"));
        assert!(matches!(
            reg.create("fault:sim:pdp11", 0),
            Err(PapiError::Substrate(_))
        ));
        assert!(matches!(
            reg.create("fault[read:sim:x86", 0),
            Err(PapiError::Substrate(_))
        ));
        assert!(reg.create("fault[bogus=1]:sim:x86", 0).is_err());
    }

    fn rv64_path() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../platforms/sim-rv64.toml")
    }

    #[test]
    fn lookup_is_case_insensitive_and_colon_dash_agnostic() {
        let reg = SubstrateRegistry::with_builtin();
        for name in ["SIM:X86", "Sim-X86", "sim:x86", "sim-x86", "SIM-POWER3"] {
            assert!(reg.contains(name), "{name}");
            reg.create(name, 0).unwrap();
        }
        // Every platform name round-trips through both the registry and
        // simcpu's platform_by_name.
        for spec in simcpu::platform::all_platforms() {
            let suffix = spec.name.strip_prefix("sim-").unwrap();
            for query in [
                spec.name.to_string(),
                spec.name.to_uppercase(),
                format!("sim:{suffix}"),
                format!("SIM:{}", suffix.to_uppercase()),
            ] {
                assert!(reg.contains(&query), "{query}");
                assert_eq!(reg.platform_spec(&query).unwrap().name, spec.name);
                assert_eq!(
                    simcpu::platform_by_name(&query).unwrap().name,
                    spec.name,
                    "{query}"
                );
            }
        }
    }

    #[test]
    fn register_platform_file_gets_full_substrate_treatment() {
        let mut reg = SubstrateRegistry::with_builtin();
        let canonical = reg.register_platform_file(&rv64_path()).unwrap();
        assert_eq!(canonical, "file:sim-rv64");
        assert!(reg.names().contains(&"file:sim-rv64"));
        // Reachable by canonical name, bare alias, colon form, and
        // case-insensitively.
        for name in ["file:sim-rv64", "sim-rv64", "SIM-RV64", "sim:rv64"] {
            let sub = reg.create(name, 7).unwrap();
            assert_eq!(sub.num_counters(), 6, "{name}");
        }
        // Fault decoration composes like for any other backend.
        let sub = reg.create("fault[bits=32]:sim-rv64", 7).unwrap();
        assert_eq!(sub.counter_width(), 32);
        // Provenance is reported in listings.
        let infos = reg.list();
        let rv = infos.iter().find(|i| i.name == "file:sim-rv64").unwrap();
        assert_eq!(rv.provenance, Provenance::DataFile);
        assert!(infos
            .iter()
            .filter(|i| i.name.starts_with("sim:"))
            .all(|i| i.provenance == Provenance::BuiltinData));
        // The spec is resolvable, including through a fault prefix.
        assert_eq!(reg.platform_spec("sim-rv64").unwrap().num_counters, 6);
        assert_eq!(
            reg.platform_spec("fault[chaos]:file:sim-rv64")
                .unwrap()
                .name,
            "sim-rv64"
        );
    }

    #[test]
    fn file_path_names_load_on_the_fly() {
        let reg = SubstrateRegistry::with_builtin();
        let name = format!("file:{}", rv64_path().display());
        assert!(reg.contains(&name));
        let sub = reg.create(&name, 7).unwrap();
        assert_eq!(sub.num_counters(), 6);
        // Fault prefixes compose over on-the-fly file loads.
        let sub = reg.create(&format!("fault[bits=32]:{name}"), 7).unwrap();
        assert_eq!(sub.counter_width(), 32);
        // A missing file is a structured error, and contains() says no.
        assert!(!reg.contains("file:no/such/platform.toml"));
        assert!(matches!(
            reg.create("file:no/such/platform.toml", 0),
            Err(PapiError::Substrate(_))
        ));
    }

    #[test]
    fn bad_platform_file_leaves_registry_unchanged() {
        let dir = std::env::temp_dir().join(format!("papi-registry-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.toml");
        std::fs::write(&bad, "schema = 1\n[platform]\nname = \"oops\"\n").unwrap();
        let mut reg = SubstrateRegistry::with_builtin();
        let before = reg
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>();
        let err = reg.register_platform_file(&bad).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("missing-key"), "named check in: {msg}");
        assert_eq!(reg.names(), before, "failed load must not mutate registry");
        // Directory registration is atomic: one bad file poisons the batch.
        std::fs::copy(rv64_path(), dir.join("sim-rv64.toml")).unwrap();
        let err = reg.register_platform_dir(&dir).unwrap_err();
        assert!(format!("{err}").contains("bad.toml"));
        assert_eq!(reg.names(), before, "atomic dir load");
        // With the bad file gone the directory loads fine.
        std::fs::remove_file(&bad).unwrap();
        let names = reg.register_platform_dir(&dir).unwrap();
        assert_eq!(names, vec!["file:sim-rv64".to_string()]);
        assert!(reg.contains("sim-rv64"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn platform_spec_errors_on_code_backends() {
        let mut reg = SubstrateRegistry::with_builtin();
        reg.register(
            "codeonly",
            "no model behind this",
            Box::new(|seed| {
                Ok(Box::new(SimSubstrate::for_platform(
                    simcpu::platform::sim_generic(),
                    seed,
                )) as BoxSubstrate)
            }),
        );
        assert!(matches!(
            reg.platform_spec("codeonly"),
            Err(PapiError::Substrate(_))
        ));
        let infos = reg.list();
        let code = infos.iter().find(|i| i.name == "codeonly").unwrap();
        assert_eq!(code.provenance, Provenance::Code);
        assert_eq!(code.provenance.label(), "code");
    }

    #[test]
    fn boxed_substrate_preserves_alloc_model() {
        use crate::alloc::AllocModel;
        let reg = SubstrateRegistry::with_builtin();
        let boxed = reg.create("sim:power3", 3).unwrap();
        assert!(matches!(boxed.alloc_model(), AllocModel::Groups(_)));
        let boxed = reg.create("sim:x86", 3).unwrap();
        assert!(matches!(boxed.alloc_model(), AllocModel::Masks(_)));
    }
}
