//! Runtime substrate selection — the component layer.
//!
//! Later PAPI work generalized substrates into runtime-selectable components
//! so one binary can serve heterogeneous platforms. This module is that
//! mechanism for the reproduction: a [`SubstrateRegistry`] maps names like
//! `sim:x86` or `perfctr` to factories producing boxed [`Substrate`]s, and
//! tools select a backend with `--substrate NAME` instead of being
//! monomorphized over one at compile time.
//!
//! The registry ships with the eight simulated platforms pre-registered
//! under `sim:<suffix>` (each aliased to its `sim-<suffix>` platform name);
//! other crates add their backends via [`SubstrateRegistry::register`] — the
//! perfctr emulation crate does exactly that.
//!
//! Factories must be `Send + Sync`: a registry behind an `Arc` is the
//! natural way for [`crate::threads::ThreadedPapi`] to mint an independent
//! substrate per registered thread, so registry lookups may happen from
//! any thread.

use crate::error::{PapiError, Result};
use crate::substrate::{BoxSubstrate, SimSubstrate, Substrate};

/// One row of `papirun --list-substrates`: the registry's description of a
/// backend, probed from a throwaway instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstrateInfo {
    /// Canonical registry name (`sim:x86`, `perfctr`, …).
    pub name: String,
    /// Alternate names accepted by [`SubstrateRegistry::create`].
    pub aliases: Vec<String>,
    /// Human description (vendor/model).
    pub description: String,
    /// Physical counters.
    pub counters: usize,
    /// Counter groups (0 on mask-allocated platforms).
    pub groups: usize,
    /// Precise-sampling hardware present.
    pub sampling: bool,
}

/// Builds one substrate instance from a deterministic seed.
pub type SubstrateFactory = Box<dyn Fn(u64) -> Result<BoxSubstrate> + Send + Sync>;

struct Entry {
    name: String,
    aliases: Vec<String>,
    description: String,
    factory: SubstrateFactory,
}

/// Name → substrate factory table.
pub struct SubstrateRegistry {
    entries: Vec<Entry>,
}

impl SubstrateRegistry {
    /// An empty registry (no backends).
    pub fn new() -> SubstrateRegistry {
        SubstrateRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry with the eight simulated platforms pre-registered.
    pub fn with_builtin() -> SubstrateRegistry {
        let mut reg = SubstrateRegistry::new();
        for spec in simcpu::platform::all_platforms() {
            let canonical = spec
                .name
                .strip_prefix("sim-")
                .map(|s| format!("sim:{s}"))
                .unwrap_or_else(|| spec.name.to_string());
            let description = format!("{} {} (simulated)", spec.vendor, spec.model);
            let aliases = vec![spec.name.to_string()];
            let spec_for_factory = spec.clone();
            reg.register_with_aliases(
                &canonical,
                &aliases,
                &description,
                Box::new(move |seed| {
                    Ok(
                        Box::new(SimSubstrate::for_platform(spec_for_factory.clone(), seed))
                            as BoxSubstrate,
                    )
                }),
            );
        }
        reg
    }

    /// Register a backend under `name`.
    pub fn register(&mut self, name: &str, description: &str, factory: SubstrateFactory) {
        self.register_with_aliases(name, &[], description, factory);
    }

    /// Register a backend reachable by `name` or any of `aliases`.
    pub fn register_with_aliases(
        &mut self,
        name: &str,
        aliases: &[String],
        description: &str,
        factory: SubstrateFactory,
    ) {
        // Last registration of a name wins, like component overrides.
        self.entries.retain(|e| e.name != name);
        self.entries.push(Entry {
            name: name.to_string(),
            aliases: aliases.to_vec(),
            description: description.to_string(),
            factory,
        });
    }

    fn entry(&self, name: &str) -> Result<&Entry> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.iter().any(|a| a == name))
            .ok_or_else(|| PapiError::Substrate(format!("unknown substrate '{name}'")))
    }

    /// Instantiate the backend registered under `name` (canonical or alias)
    /// with a deterministic `seed`.
    ///
    /// Names may carry a fault-injection prefix wrapping any registered
    /// backend in a [`crate::fault::FaultSubstrate`]:
    ///
    /// * `fault:<inner>` — empty (pass-through) plan;
    /// * `fault[<spec>]:<inner>` — plan parsed by
    ///   [`crate::fault::FaultPlan::parse`] (e.g.
    ///   `fault[read=5,bits=32]:sim:x86`, `fault[chaos]:perfctr`), with
    ///   `seed` as the plan's default seed.
    pub fn create(&self, name: &str, seed: u64) -> Result<BoxSubstrate> {
        if let Some((plan, inner)) = Self::parse_fault_name(name, seed)? {
            let inner_sub = self.create(inner, seed)?;
            return Ok(Box::new(crate::fault::FaultSubstrate::new(inner_sub, plan)));
        }
        (self.entry(name)?.factory)(seed)
    }

    /// Split a `fault:`/`fault[spec]:` prefixed name into its plan and the
    /// inner backend name; `Ok(None)` for ordinary names.
    fn parse_fault_name(name: &str, seed: u64) -> Result<Option<(crate::fault::FaultPlan, &str)>> {
        let Some(rest) = name.strip_prefix("fault") else {
            return Ok(None);
        };
        if let Some(inner) = rest.strip_prefix(':') {
            return Ok(Some((crate::fault::FaultPlan::parse("", seed)?, inner)));
        }
        if let Some(rest) = rest.strip_prefix('[') {
            if let Some((spec, inner)) = rest.split_once("]:") {
                return Ok(Some((crate::fault::FaultPlan::parse(spec, seed)?, inner)));
            }
            return Err(PapiError::Substrate(format!(
                "malformed fault substrate name '{name}' (expected fault[spec]:inner)"
            )));
        }
        Ok(None)
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Is `name` (canonical or alias) registered?  Fault-prefixed names are
    /// resolvable when their inner name is.
    pub fn contains(&self, name: &str) -> bool {
        match Self::parse_fault_name(name, 0) {
            Ok(Some((_, inner))) => self.contains(inner),
            Ok(None) => self.entry(name).is_ok(),
            Err(_) => false,
        }
    }

    /// Describe every backend by probing a throwaway instance of each.
    /// Backends whose factory fails are skipped.
    pub fn list(&self) -> Vec<SubstrateInfo> {
        self.entries
            .iter()
            .filter_map(|e| {
                let sub = (e.factory)(0).ok()?;
                let hw = sub.hw_info();
                Some(SubstrateInfo {
                    name: e.name.clone(),
                    aliases: e.aliases.clone(),
                    description: e.description.clone(),
                    counters: hw.num_counters,
                    groups: sub.groups().len(),
                    sampling: hw.precise_sampling,
                })
            })
            .collect()
    }
}

impl Default for SubstrateRegistry {
    fn default() -> Self {
        SubstrateRegistry::with_builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_every_sim_platform_by_both_names() {
        let reg = SubstrateRegistry::with_builtin();
        assert_eq!(reg.names().len(), 8);
        for spec in simcpu::platform::all_platforms() {
            let suffix = spec.name.strip_prefix("sim-").unwrap();
            for name in [format!("sim:{suffix}"), spec.name.to_string()] {
                let sub = reg.create(&name, 7).unwrap();
                assert_eq!(sub.hw_info().model, spec.model, "{name}");
                assert_eq!(sub.num_counters(), spec.num_counters);
            }
        }
    }

    #[test]
    fn registry_is_send_and_sync() {
        // The thread layer shares one registry behind an Arc and creates a
        // substrate per registered thread from arbitrary threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SubstrateRegistry>();

        let reg = std::sync::Arc::new(SubstrateRegistry::with_builtin());
        let joins: Vec<_> = (0..4)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || reg.create("sim:x86", t).unwrap().num_counters())
            })
            .collect();
        for j in joins {
            assert_eq!(j.join().unwrap(), 4);
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let reg = SubstrateRegistry::with_builtin();
        assert!(matches!(
            reg.create("sim:pdp11", 0),
            Err(PapiError::Substrate(_))
        ));
        assert!(!reg.contains("sim:pdp11"));
        assert!(reg.contains("sim:power3"));
        assert!(reg.contains("sim-power3"));
    }

    #[test]
    fn list_reports_counters_groups_and_sampling() {
        let infos = SubstrateRegistry::with_builtin().list();
        assert_eq!(infos.len(), 8);
        let p3 = infos.iter().find(|i| i.name == "sim:power3").unwrap();
        assert!(p3.groups > 0, "POWER3 is group-allocated");
        let alpha = infos.iter().find(|i| i.name == "sim:alpha").unwrap();
        assert!(alpha.sampling, "Alpha has ProfileMe sampling");
        let x86 = infos.iter().find(|i| i.name == "sim:x86").unwrap();
        assert_eq!(x86.groups, 0);
        assert!(!x86.sampling);
    }

    #[test]
    fn custom_registration_and_override() {
        let mut reg = SubstrateRegistry::new();
        reg.register(
            "mine",
            "custom backend",
            Box::new(|seed| {
                Ok(Box::new(SimSubstrate::for_platform(
                    simcpu::platform::sim_generic(),
                    seed,
                )) as BoxSubstrate)
            }),
        );
        assert_eq!(reg.names(), vec!["mine"]);
        let sub = reg.create("mine", 1).unwrap();
        assert!(sub.groups().is_empty());
        // Re-registering the same name replaces the entry.
        reg.register(
            "mine",
            "replacement",
            Box::new(|seed| {
                Ok(Box::new(SimSubstrate::for_platform(
                    simcpu::platform::sim_power3(),
                    seed,
                )) as BoxSubstrate)
            }),
        );
        assert_eq!(reg.names().len(), 1);
        assert!(!reg.create("mine", 1).unwrap().groups().is_empty());
    }

    #[test]
    fn fault_prefix_wraps_any_backend() {
        let reg = SubstrateRegistry::with_builtin();
        let sub = reg.create("fault:sim:x86", 7).unwrap();
        assert_eq!(
            sub.hw_info().model,
            reg.create("sim:x86", 7).unwrap().hw_info().model
        );
        assert_eq!(sub.counter_width(), 64, "empty plan keeps native width");
        let sub = reg.create("fault[bits=32,read=5]:sim:x86", 7).unwrap();
        assert_eq!(sub.counter_width(), 32);
        let sub = reg.create("fault[chaos]:sim:power3", 7).unwrap();
        assert_eq!(sub.counter_width(), 32);
        assert!(!sub.groups().is_empty(), "inner POWER3 groups visible");
        assert!(reg.contains("fault:sim:x86"));
        assert!(reg.contains("fault[chaos]:sim-alpha"));
        assert!(!reg.contains("fault:sim:pdp11"));
        assert!(!reg.contains("fault[oops:sim:x86"));
        assert!(matches!(
            reg.create("fault:sim:pdp11", 0),
            Err(PapiError::Substrate(_))
        ));
        assert!(matches!(
            reg.create("fault[read:sim:x86", 0),
            Err(PapiError::Substrate(_))
        ));
        assert!(reg.create("fault[bogus=1]:sim:x86", 0).is_err());
    }

    #[test]
    fn boxed_substrate_preserves_alloc_model() {
        use crate::alloc::AllocModel;
        let reg = SubstrateRegistry::with_builtin();
        let boxed = reg.create("sim:power3", 3).unwrap();
        assert!(matches!(boxed.alloc_model(), AllocModel::Groups(_)));
        let boxed = reg.create("sim:x86", 3).unwrap();
        assert!(matches!(boxed.alloc_model(), AllocModel::Masks(_)));
    }
}
