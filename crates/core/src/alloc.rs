//! Counter allocation — the PAPI-3 split of §5.
//!
//! Following the paper's PAPI-3 design, allocation is split into two halves:
//!
//! * a **hardware-independent solver** ([`solver`]) — bipartite matching
//!   over abstract constraint rows (bitmasks), knowing nothing about the
//!   platform, and
//! * a **hardware-dependent translation** ([`AllocTranslation`]) — each
//!   substrate describes how its constraint scheme (per-event counter masks,
//!   or POWER-style fixed groups) maps onto solver rows via
//!   [`crate::Substrate::alloc_model`].
//!
//! The portable layer never special-cases group platforms: it asks the
//! substrate for candidate [`ConstraintSet`]s and hands each to the solver
//! until one admits a complete matching. Group semantics (all events must
//! co-reside in one group; the assignment is the event's slot within it) are
//! encoded entirely by [`GroupModel`]'s translation into single-bit rows.

use simcpu::platform::GroupDef;
use simcpu::NativeEventDesc;

pub mod solver;

pub use solver::{
    greedy_first_fit, max_cardinality_assign, max_weight_assign, optimal_assign,
    optimal_assign_stats, AllocStats,
};

/// One candidate allocation instance in the solver's abstract vocabulary:
/// `rows[i]` is the bitmask of counters event `i` may occupy among
/// `num_counters` slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSet {
    /// Per-event allowed-counter bitmask, parallel to the requested codes.
    pub rows: Vec<u32>,
    /// Number of counter slots in this candidate.
    pub num_counters: usize,
    /// Hardware tag for the candidate (the group id on group platforms).
    pub tag: Option<u32>,
}

/// The hardware-dependent half of the PAPI-3 allocation split: translate a
/// request for native event codes into solver instances.
///
/// Candidates are tried in order; the first one the solver can satisfy
/// wins. Mask platforms produce exactly one candidate; group platforms
/// produce one per group containing every requested event.
pub trait AllocTranslation {
    fn translate(&self, codes: &[u32], natives: &[NativeEventDesc]) -> Vec<ConstraintSet>;
}

/// Translation for platforms with per-event counter masks (x86 style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskModel {
    pub num_counters: usize,
}

impl AllocTranslation for MaskModel {
    fn translate(&self, codes: &[u32], natives: &[NativeEventDesc]) -> Vec<ConstraintSet> {
        let rows = codes
            .iter()
            .map(|&c| {
                natives
                    .iter()
                    .find(|e| e.code == c)
                    .map(|e| e.counter_mask)
                    .unwrap_or(0)
            })
            .collect();
        vec![ConstraintSet {
            rows,
            num_counters: self.num_counters,
            tag: None,
        }]
    }
}

/// Translation for group-allocated platforms (POWER style): the requested
/// events must all appear in a single group, and each event's only legal
/// "counter" is its slot within that group — a single-bit solver row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupModel {
    pub groups: Vec<GroupDef>,
}

impl AllocTranslation for GroupModel {
    fn translate(&self, codes: &[u32], _natives: &[NativeEventDesc]) -> Vec<ConstraintSet> {
        let mut out = Vec::new();
        'groups: for g in &self.groups {
            if g.events.len() > 32 {
                continue; // slots beyond a u32 row cannot be expressed
            }
            let mut rows = Vec::with_capacity(codes.len());
            for code in codes {
                match g.events.iter().position(|e| e == code) {
                    Some(pos) => rows.push(1u32 << pos),
                    None => continue 'groups,
                }
            }
            out.push(ConstraintSet {
                rows,
                num_counters: g.events.len(),
                tag: Some(g.id),
            });
        }
        out
    }
}

/// The two built-in translation schemes, constructible straight from a
/// platform description. Substrates with exotic constraint languages can
/// implement [`AllocTranslation`] directly instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocModel {
    Masks(MaskModel),
    Groups(GroupModel),
}

impl AllocModel {
    /// Mask-based when `groups` is empty, group-based otherwise — the same
    /// dichotomy `PlatformSpec` expresses.
    pub fn for_platform(num_counters: usize, groups: &[GroupDef]) -> AllocModel {
        if groups.is_empty() {
            AllocModel::Masks(MaskModel { num_counters })
        } else {
            AllocModel::Groups(GroupModel {
                groups: groups.to_vec(),
            })
        }
    }
}

impl AllocTranslation for AllocModel {
    fn translate(&self, codes: &[u32], natives: &[NativeEventDesc]) -> Vec<ConstraintSet> {
        match self {
            AllocModel::Masks(m) => m.translate(codes, natives),
            AllocModel::Groups(g) => g.translate(codes, natives),
        }
    }
}

/// The machine-independent allocation driver: translate, then solve each
/// candidate in order until one matches. Search effort across all candidates
/// accumulates into `stats`.
pub fn allocate_with(
    model: &dyn AllocTranslation,
    codes: &[u32],
    natives: &[NativeEventDesc],
    stats: &mut AllocStats,
) -> Option<Vec<usize>> {
    for cand in model.translate(codes, natives) {
        if let Some(assign) = solver::optimal_assign_stats(&cand.rows, cand.num_counters, stats) {
            return Some(assign);
        }
    }
    None
}

/// Is `codes` allocatable under `model` at all? (Used by preset-table
/// construction and multiplex partitioning, which probe many candidates.)
pub fn is_allocatable(
    model: &dyn AllocTranslation,
    codes: &[u32],
    natives: &[NativeEventDesc],
) -> bool {
    allocate_with(model, codes, natives, &mut AllocStats::default()).is_some()
}

/// Group-constrained allocation (POWER style): the requested native codes
/// must all appear in a single group; the assignment is the event's position
/// within that group. Returns `(group id, counter per requested code)`.
///
/// This is the pre-split reference implementation; the live path goes
/// through [`GroupModel`] + the solver. Kept public for the equivalence
/// property tests and the ablation experiments.
pub fn allocate_in_group(codes: &[u32], groups: &[GroupDef]) -> Option<(u32, Vec<usize>)> {
    'groups: for g in groups {
        let mut assign = Vec::with_capacity(codes.len());
        for code in codes {
            match g.events.iter().position(|e| e == code) {
                Some(pos) => assign.push(pos),
                None => continue 'groups,
            }
        }
        return Some((g.id, assign));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::{sim_power3, sim_x86};

    fn groups_fixture() -> Vec<GroupDef> {
        vec![
            GroupDef {
                id: 0,
                name: "g0",
                events: vec![10, 11, 12],
            },
            GroupDef {
                id: 1,
                name: "g1",
                events: vec![10, 13, 14, 15],
            },
        ]
    }

    #[test]
    fn group_allocation_finds_containing_group() {
        let groups = groups_fixture();
        let (g, assign) = allocate_in_group(&[13, 10], &groups).unwrap();
        assert_eq!(g, 1);
        assert_eq!(assign, vec![1, 0]);
        assert!(allocate_in_group(&[11, 13], &groups).is_none()); // spans groups
        assert!(allocate_in_group(&[99], &groups).is_none());
    }

    #[test]
    fn group_model_translation_matches_reference_impl() {
        let groups = groups_fixture();
        let model = GroupModel {
            groups: groups.clone(),
        };
        for codes in [
            vec![13u32, 10],
            vec![10, 11, 12],
            vec![11, 13],
            vec![99],
            vec![15, 14, 13, 10],
        ] {
            let reference = allocate_in_group(&codes, &groups).map(|(_, a)| a);
            let split = allocate_with(&model, &codes, &[], &mut AllocStats::default());
            assert_eq!(split, reference, "codes {codes:?}");
        }
    }

    #[test]
    fn group_model_candidates_carry_group_tags_in_order() {
        let model = GroupModel {
            groups: groups_fixture(),
        };
        let cands = model.translate(&[10], &[]);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].tag, Some(0));
        assert_eq!(cands[1].tag, Some(1));
        // Single-bit rows: slot position in the group.
        assert_eq!(cands[0].rows, vec![0b001]);
        assert_eq!(cands[0].num_counters, 3);
        assert_eq!(cands[1].num_counters, 4);
    }

    #[test]
    fn mask_model_matches_direct_solver_call() {
        let spec = sim_x86();
        let model = MaskModel {
            num_counters: spec.num_counters,
        };
        let codes: Vec<u32> = spec.events.iter().take(3).map(|e| e.code).collect();
        let masks: Vec<u32> = spec.events.iter().take(3).map(|e| e.counter_mask).collect();
        let direct = optimal_assign(&masks, spec.num_counters);
        let via_model = allocate_with(&model, &codes, &spec.events, &mut AllocStats::default());
        assert_eq!(via_model, direct);
    }

    #[test]
    fn unknown_code_yields_empty_mask_row_and_fails() {
        let spec = sim_x86();
        let model = MaskModel {
            num_counters: spec.num_counters,
        };
        assert!(allocate_with(
            &model,
            &[0x4fff_ffff],
            &spec.events,
            &mut AllocStats::default()
        )
        .is_none());
    }

    #[test]
    fn for_platform_picks_scheme_from_groups() {
        let x86 = sim_x86();
        assert!(matches!(
            AllocModel::for_platform(x86.num_counters, &x86.groups),
            AllocModel::Masks(_)
        ));
        let p3 = sim_power3();
        assert!(matches!(
            AllocModel::for_platform(p3.num_counters, &p3.groups),
            AllocModel::Groups(_)
        ));
    }

    #[test]
    fn power3_real_groups_equivalence() {
        // On the real POWER3 description, the split path and the reference
        // group matcher agree for every pair of native events.
        let spec = sim_power3();
        let model = AllocModel::for_platform(spec.num_counters, &spec.groups);
        for a in &spec.events {
            for b in &spec.events {
                if a.code == b.code {
                    continue;
                }
                let codes = [a.code, b.code];
                let reference = allocate_in_group(&codes, &spec.groups).map(|(_, x)| x);
                let split = allocate_with(&model, &codes, &spec.events, &mut AllocStats::default());
                assert_eq!(split, reference, "{} + {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn group_stats_record_solver_effort() {
        let model = GroupModel {
            groups: groups_fixture(),
        };
        let mut stats = AllocStats::default();
        allocate_with(&model, &[13, 10], &[], &mut stats).unwrap();
        // Group 0 lacks code 13, so only group 1 reaches the solver: one
        // probe per event, no displacement (rows are single-bit, disjoint).
        assert_eq!(stats.augment_steps, 2);
        assert_eq!(stats.backtracks, 0);
    }
}
