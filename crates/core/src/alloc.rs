//! Counter allocation — the PAPI-3 split of §5.
//!
//! Following the paper's PAPI-3 design, allocation is split into two halves:
//!
//! * a **hardware-independent solver** ([`solver`]) — bipartite matching
//!   over abstract constraint rows (bitmasks), knowing nothing about the
//!   platform, and
//! * a **hardware-dependent translation** ([`AllocTranslation`]) — each
//!   substrate describes how its constraint scheme (per-event counter masks,
//!   or POWER-style fixed groups) maps onto solver rows via
//!   [`crate::Substrate::alloc_model`].
//!
//! The portable layer never special-cases group platforms: it asks the
//! substrate for candidate [`ConstraintSet`]s and hands each to the solver
//! until one admits a complete matching. Group semantics (all events must
//! co-reside in one group; the assignment is the event's slot within it) are
//! encoded entirely by [`GroupModel`]'s translation into single-bit rows.

use simcpu::platform::GroupDef;
use simcpu::NativeEventDesc;

pub mod solver;

pub use solver::{
    greedy_first_fit, max_cardinality_assign, max_weight_assign, optimal_assign,
    optimal_assign_stats, AllocStats,
};

/// One candidate allocation instance in the solver's abstract vocabulary:
/// `rows[i]` is the bitmask of counters event `i` may occupy among
/// `num_counters` slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSet {
    /// Per-event allowed-counter bitmask, parallel to the requested codes.
    pub rows: Vec<u32>,
    /// Number of counter slots in this candidate.
    pub num_counters: usize,
    /// Hardware tag for the candidate (the group id on group platforms).
    pub tag: Option<u32>,
}

/// The hardware-dependent half of the PAPI-3 allocation split: translate a
/// request for native event codes into solver instances.
///
/// Candidates are tried in order; the first one the solver can satisfy
/// wins. Mask platforms produce exactly one candidate; group platforms
/// produce one per group containing every requested event.
pub trait AllocTranslation {
    fn translate(&self, codes: &[u32], natives: &[NativeEventDesc]) -> Vec<ConstraintSet>;
}

/// Translation for platforms with per-event counter masks (x86 style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskModel {
    pub num_counters: usize,
}

impl AllocTranslation for MaskModel {
    fn translate(&self, codes: &[u32], natives: &[NativeEventDesc]) -> Vec<ConstraintSet> {
        let rows = codes
            .iter()
            .map(|&c| {
                natives
                    .iter()
                    .find(|e| e.code == c)
                    .map(|e| e.counter_mask)
                    .unwrap_or(0)
            })
            .collect();
        vec![ConstraintSet {
            rows,
            num_counters: self.num_counters,
            tag: None,
        }]
    }
}

/// Translation for group-allocated platforms (POWER style): the requested
/// events must all appear in a single group, and each event's only legal
/// "counter" is its slot within that group — a single-bit solver row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupModel {
    pub groups: Vec<GroupDef>,
}

impl AllocTranslation for GroupModel {
    fn translate(&self, codes: &[u32], _natives: &[NativeEventDesc]) -> Vec<ConstraintSet> {
        let mut out = Vec::new();
        'groups: for g in &self.groups {
            if g.events.len() > 32 {
                continue; // slots beyond a u32 row cannot be expressed
            }
            let mut rows = Vec::with_capacity(codes.len());
            for code in codes {
                match g.events.iter().position(|e| e == code) {
                    Some(pos) => rows.push(1u32 << pos),
                    None => continue 'groups,
                }
            }
            out.push(ConstraintSet {
                rows,
                num_counters: g.events.len(),
                tag: Some(g.id),
            });
        }
        out
    }
}

/// The two built-in translation schemes, constructible straight from a
/// platform description. Substrates with exotic constraint languages can
/// implement [`AllocTranslation`] directly instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocModel {
    Masks(MaskModel),
    Groups(GroupModel),
}

impl AllocModel {
    /// Mask-based when `groups` is empty, group-based otherwise — the same
    /// dichotomy `PlatformSpec` expresses.
    pub fn for_platform(num_counters: usize, groups: &[GroupDef]) -> AllocModel {
        if groups.is_empty() {
            AllocModel::Masks(MaskModel { num_counters })
        } else {
            AllocModel::Groups(GroupModel {
                groups: groups.to_vec(),
            })
        }
    }
}

impl AllocTranslation for AllocModel {
    fn translate(&self, codes: &[u32], natives: &[NativeEventDesc]) -> Vec<ConstraintSet> {
        match self {
            AllocModel::Masks(m) => m.translate(codes, natives),
            AllocModel::Groups(g) => g.translate(codes, natives),
        }
    }
}

/// The machine-independent allocation driver: translate, then solve each
/// candidate in order until one matches. Search effort across all candidates
/// accumulates into `stats`.
pub fn allocate_with(
    model: &dyn AllocTranslation,
    codes: &[u32],
    natives: &[NativeEventDesc],
    stats: &mut AllocStats,
) -> Option<Vec<usize>> {
    for cand in model.translate(codes, natives) {
        if let Some(assign) = solver::optimal_assign_stats(&cand.rows, cand.num_counters, stats) {
            return Some(assign);
        }
    }
    None
}

/// Is `codes` allocatable under `model` at all? (Used by preset-table
/// construction and multiplex partitioning, which probe many candidates.)
pub fn is_allocatable(
    model: &dyn AllocTranslation,
    codes: &[u32],
    natives: &[NativeEventDesc],
) -> bool {
    allocate_with(model, codes, natives, &mut AllocStats::default()).is_some()
}

/// A structural fingerprint of a translation model, used to key (and
/// invalidate) memoized allocator solutions.  Two models with the same
/// fingerprint translate identical requests into identical solver instances.
pub fn model_fingerprint(model: &AllocModel) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match model {
        AllocModel::Masks(m) => {
            0u8.hash(&mut h);
            m.num_counters.hash(&mut h);
        }
        AllocModel::Groups(g) => {
            1u8.hash(&mut h);
            for grp in &g.groups {
                grp.id.hash(&mut h);
                grp.events.hash(&mut h);
            }
        }
    }
    h.finish()
}

/// Most entries a memo cache retains before evicting its oldest; tools cycle
/// through a handful of EventSets, so a small bound keeps lookups cheap.
const ALLOC_MEMO_CAP: usize = 64;

/// Memoized allocator solutions, keyed by the *sorted* native-code signature
/// plus the model fingerprint.
///
/// The counter-mask/group constraints of a request depend only on *which*
/// codes are requested, never on request order or machine state, so a
/// solved assignment can be replayed for any permutation of the same codes:
/// entries store the assignment *by code* and [`AllocCache::allocate`]
/// projects it back into request order.  Re-`start` of an unchanged
/// EventSet — and the re-solve after an add/remove round-trip that restores
/// a previously seen signature — therefore skips the augmenting-path search
/// entirely.  Infeasible signatures are memoized too (`None`), so repeated
/// doomed requests also skip the search.
/// A memoized solution: the by-code counter assignment, or `None` for a
/// signature proven infeasible.
type CachedAssignment = Option<Vec<(u32, usize)>>;

#[derive(Debug, Default)]
pub struct AllocCache {
    /// `(sorted codes, by-code assignment)`, oldest first.
    entries: Vec<(Vec<u32>, CachedAssignment)>,
    model_fp: Option<u64>,
    hits: u64,
    misses: u64,
}

impl AllocCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`allocate_with`], memoized.  Returns the assignment (in request
    /// order) and whether it was served from the cache.  On a miss the
    /// solver runs and `stats` accumulates its effort exactly as in a cold
    /// solve; on a hit `stats` is untouched.
    pub fn allocate(
        &mut self,
        model: &AllocModel,
        codes: &[u32],
        natives: &[NativeEventDesc],
        stats: &mut AllocStats,
    ) -> (Option<Vec<usize>>, bool) {
        let fp = model_fingerprint(model);
        if self.model_fp != Some(fp) {
            // Different constraint scheme: stale solutions are meaningless.
            self.entries.clear();
            self.model_fp = Some(fp);
        }
        let mut key: Vec<u32> = codes.to_vec();
        key.sort_unstable();
        if key.windows(2).any(|w| w[0] == w[1]) {
            // Duplicate codes make the by-code projection ambiguous; solve
            // directly without touching the cache.
            self.misses += 1;
            return (allocate_with(model, codes, natives, stats), false);
        }
        if let Some((_, memo)) = self.entries.iter().find(|(k, _)| *k == key) {
            self.hits += 1;
            let assign = memo.as_ref().map(|by_code| {
                codes
                    .iter()
                    .map(|c| {
                        by_code
                            .iter()
                            .find(|(code, _)| code == c)
                            .expect("memoized signature covers every requested code")
                            .1
                    })
                    .collect()
            });
            return (assign, true);
        }
        self.misses += 1;
        let assign = allocate_with(model, codes, natives, stats);
        let by_code = assign
            .as_ref()
            .map(|a| codes.iter().copied().zip(a.iter().copied()).collect());
        if self.entries.len() >= ALLOC_MEMO_CAP {
            self.entries.remove(0);
        }
        self.entries.push((key, by_code));
        (assign, false)
    }

    /// Requests answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that ran the solver.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Signatures currently memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no signatures yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Group-constrained allocation (POWER style): the requested native codes
/// must all appear in a single group; the assignment is the event's position
/// within that group. Returns `(group id, counter per requested code)`.
///
/// This is the pre-split reference implementation; the live path goes
/// through [`GroupModel`] + the solver. Kept public for the equivalence
/// property tests and the ablation experiments.
pub fn allocate_in_group(codes: &[u32], groups: &[GroupDef]) -> Option<(u32, Vec<usize>)> {
    'groups: for g in groups {
        let mut assign = Vec::with_capacity(codes.len());
        for code in codes {
            match g.events.iter().position(|e| e == code) {
                Some(pos) => assign.push(pos),
                None => continue 'groups,
            }
        }
        return Some((g.id, assign));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::{sim_power3, sim_x86};

    fn groups_fixture() -> Vec<GroupDef> {
        vec![
            GroupDef {
                id: 0,
                name: "g0",
                events: vec![10, 11, 12],
            },
            GroupDef {
                id: 1,
                name: "g1",
                events: vec![10, 13, 14, 15],
            },
        ]
    }

    #[test]
    fn group_allocation_finds_containing_group() {
        let groups = groups_fixture();
        let (g, assign) = allocate_in_group(&[13, 10], &groups).unwrap();
        assert_eq!(g, 1);
        assert_eq!(assign, vec![1, 0]);
        assert!(allocate_in_group(&[11, 13], &groups).is_none()); // spans groups
        assert!(allocate_in_group(&[99], &groups).is_none());
    }

    #[test]
    fn group_model_translation_matches_reference_impl() {
        let groups = groups_fixture();
        let model = GroupModel {
            groups: groups.clone(),
        };
        for codes in [
            vec![13u32, 10],
            vec![10, 11, 12],
            vec![11, 13],
            vec![99],
            vec![15, 14, 13, 10],
        ] {
            let reference = allocate_in_group(&codes, &groups).map(|(_, a)| a);
            let split = allocate_with(&model, &codes, &[], &mut AllocStats::default());
            assert_eq!(split, reference, "codes {codes:?}");
        }
    }

    #[test]
    fn group_model_candidates_carry_group_tags_in_order() {
        let model = GroupModel {
            groups: groups_fixture(),
        };
        let cands = model.translate(&[10], &[]);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].tag, Some(0));
        assert_eq!(cands[1].tag, Some(1));
        // Single-bit rows: slot position in the group.
        assert_eq!(cands[0].rows, vec![0b001]);
        assert_eq!(cands[0].num_counters, 3);
        assert_eq!(cands[1].num_counters, 4);
    }

    #[test]
    fn mask_model_matches_direct_solver_call() {
        let spec = sim_x86();
        let model = MaskModel {
            num_counters: spec.num_counters,
        };
        let codes: Vec<u32> = spec.events.iter().take(3).map(|e| e.code).collect();
        let masks: Vec<u32> = spec.events.iter().take(3).map(|e| e.counter_mask).collect();
        let direct = optimal_assign(&masks, spec.num_counters);
        let via_model = allocate_with(&model, &codes, &spec.events, &mut AllocStats::default());
        assert_eq!(via_model, direct);
    }

    #[test]
    fn unknown_code_yields_empty_mask_row_and_fails() {
        let spec = sim_x86();
        let model = MaskModel {
            num_counters: spec.num_counters,
        };
        assert!(allocate_with(
            &model,
            &[0x4fff_ffff],
            &spec.events,
            &mut AllocStats::default()
        )
        .is_none());
    }

    #[test]
    fn for_platform_picks_scheme_from_groups() {
        let x86 = sim_x86();
        assert!(matches!(
            AllocModel::for_platform(x86.num_counters, &x86.groups),
            AllocModel::Masks(_)
        ));
        let p3 = sim_power3();
        assert!(matches!(
            AllocModel::for_platform(p3.num_counters, &p3.groups),
            AllocModel::Groups(_)
        ));
    }

    #[test]
    fn power3_real_groups_equivalence() {
        // On the real POWER3 description, the split path and the reference
        // group matcher agree for every pair of native events.
        let spec = sim_power3();
        let model = AllocModel::for_platform(spec.num_counters, &spec.groups);
        for a in &spec.events {
            for b in &spec.events {
                if a.code == b.code {
                    continue;
                }
                let codes = [a.code, b.code];
                let reference = allocate_in_group(&codes, &spec.groups).map(|(_, x)| x);
                let split = allocate_with(&model, &codes, &spec.events, &mut AllocStats::default());
                assert_eq!(split, reference, "{} + {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn memo_returns_bit_identical_assignments_to_cold_solve() {
        // Mask platform: every 3-subset of the x86 natives, cold vs memo'd.
        let spec = sim_x86();
        let model = AllocModel::Masks(MaskModel {
            num_counters: spec.num_counters,
        });
        let mut cache = AllocCache::new();
        let codes: Vec<u32> = spec.events.iter().map(|e| e.code).collect();
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                for k in (j + 1)..codes.len() {
                    let req = [codes[i], codes[j], codes[k]];
                    let cold =
                        allocate_with(&model, &req, &spec.events, &mut AllocStats::default());
                    let (first, hit1) =
                        cache.allocate(&model, &req, &spec.events, &mut AllocStats::default());
                    let (second, hit2) =
                        cache.allocate(&model, &req, &spec.events, &mut AllocStats::default());
                    assert!(!hit1, "{req:?}: first request must be a miss");
                    assert!(hit2, "{req:?}: second request must hit");
                    assert_eq!(first, cold, "{req:?}: miss path is the cold solve");
                    assert_eq!(second, cold, "{req:?}: hit replays bit-identically");
                }
            }
        }
        assert_eq!(cache.hits(), cache.misses());
    }

    #[test]
    fn memo_replays_permutations_as_valid_assignments() {
        let spec = sim_x86();
        let model = AllocModel::Masks(MaskModel {
            num_counters: spec.num_counters,
        });
        let mut cache = AllocCache::new();
        let fwd: Vec<u32> = spec.events.iter().take(3).map(|e| e.code).collect();
        let rev: Vec<u32> = fwd.iter().rev().copied().collect();
        let (a, _) = cache.allocate(&model, &fwd, &spec.events, &mut AllocStats::default());
        let (b, hit) = cache.allocate(&model, &rev, &spec.events, &mut AllocStats::default());
        assert!(hit, "permutation of a seen signature must hit");
        let (a, b) = (a.unwrap(), b.unwrap());
        // Same counter per code, regardless of request order.
        for (i, c) in fwd.iter().enumerate() {
            let j = rev.iter().position(|x| x == c).unwrap();
            assert_eq!(a[i], b[j], "code {c:#x}");
        }
    }

    #[test]
    fn memo_caches_infeasible_signatures_and_group_models() {
        let p3 = sim_power3();
        let model = AllocModel::for_platform(p3.num_counters, &p3.groups);
        let mut cache = AllocCache::new();
        // Two events that span groups: infeasible, from the solver and then
        // from the memo.
        let a = p3.event_by_name("PM_LD_MISS_L1").unwrap().code;
        let b = p3.event_by_name("PM_BR_TAKEN").unwrap().code;
        let (r1, h1) = cache.allocate(&model, &[a, b], &p3.events, &mut AllocStats::default());
        let (r2, h2) = cache.allocate(&model, &[a, b], &p3.events, &mut AllocStats::default());
        assert!(r1.is_none() && r2.is_none());
        assert!(!h1 && h2);
        // Switching the model invalidates the cache.
        let masks = AllocModel::Masks(MaskModel { num_counters: 4 });
        let (_, h3) = cache.allocate(&masks, &[a, b], &p3.events, &mut AllocStats::default());
        assert!(!h3, "model change must flush memoized solutions");
    }

    #[test]
    fn memo_bypasses_duplicate_code_requests() {
        let spec = sim_x86();
        let model = AllocModel::Masks(MaskModel {
            num_counters: spec.num_counters,
        });
        let mut cache = AllocCache::new();
        let c = spec.events[0].code;
        let cold = allocate_with(&model, &[c, c], &spec.events, &mut AllocStats::default());
        for _ in 0..2 {
            let (got, hit) =
                cache.allocate(&model, &[c, c], &spec.events, &mut AllocStats::default());
            assert_eq!(got, cold);
            assert!(!hit, "duplicate-code requests never hit the memo");
        }
        assert!(cache.is_empty());
    }

    #[test]
    fn group_stats_record_solver_effort() {
        let model = GroupModel {
            groups: groups_fixture(),
        };
        let mut stats = AllocStats::default();
        allocate_with(&model, &[13, 10], &[], &mut stats).unwrap();
        // Group 0 lacks code 13, so only group 1 reaches the solver: one
        // probe per event, no displacement (rows are single-bit, disjoint).
        assert_eq!(stats.augment_steps, 2);
        assert_eq!(stats.backtracks, 0);
    }
}
