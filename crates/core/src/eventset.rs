//! EventSets: the low-level interface's unit of counter management.
//!
//! PAPI manages events in user-defined sets. A set is built while *stopped*
//! (events added or removed, multiplexing and domain configured), then
//! *started* — at which point the library resolves presets to native events,
//! solves counter allocation and programs the hardware. Version-3 semantics
//! apply: only one EventSet may run at a time (overlapping EventSets were
//! removed "to reduce memory usage and runtime overhead").
//!
//! All data here is stopped-state configuration: it is only mutated inside
//! the owning session's exclusive phase (the [`crate::SeqCell`] odd
//! sequence stamp when the session lives in a
//! [`crate::threads::ThreadedPapi`] table), so the lock-free read path
//! never observes a half-edited set — the started snapshot lives in the
//! runtime's `ReadPlan`, not here.

use simcpu::{Domain, ThreadId};

/// Identifies an EventSet within a [`crate::Papi`] instance.
///
/// Ids are *session-local*: two sessions can both hand out id 0. The
/// thread layer wraps them in [`crate::threads::TaggedSetId`], which adds
/// the owning shard/slot so a cross-thread lookup is rejected instead of
/// silently resolving to the wrong thread's set.
pub type EventSetId = usize;

/// Lifecycle state of an EventSet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetState {
    Stopped,
    Running,
}

/// Overflow registration attached to an EventSet.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OverflowReg {
    /// PAPI event code within the set whose counter overflows.
    pub code: u32,
    pub threshold: u64,
    /// Index into `Papi::handlers` (user callback) or `Papi::profils`.
    pub route: OvfRoute,
}

/// Where an overflow interrupt is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OvfRoute {
    /// User callback registered via `Papi::overflow`.
    Handler(usize),
    /// SVR4-style profiling histogram registered via `Papi::profil`.
    Profil(usize),
}

/// The stored (stopped-state) contents of an EventSet.
#[derive(Debug)]
pub(crate) struct EventSetData {
    pub events: Vec<u32>,
    pub domain: Domain,
    pub multiplex: bool,
    /// Switching period override for multiplexing, in cycles
    /// (`None` = [`crate::multiplex::DEFAULT_MPX_PERIOD_CYCLES`]).
    pub mpx_period: Option<u64>,
    /// Thread this set is attached to (PAPI_attach); `None` = the whole
    /// machine / current granularity.
    pub attached: Option<ThreadId>,
    pub state: SetState,
    pub overflow: Vec<OverflowReg>,
}

impl EventSetData {
    pub fn new() -> Self {
        EventSetData {
            events: Vec::new(),
            domain: Domain::USER,
            multiplex: false,
            mpx_period: None,
            attached: None,
            state: SetState::Stopped,
            overflow: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_defaults() {
        let s = EventSetData::new();
        assert_eq!(s.state, SetState::Stopped);
        assert_eq!(s.domain, Domain::USER);
        assert!(!s.multiplex);
        assert!(s.events.is_empty());
    }
}
