//! PAPI error codes.
//!
//! The variants mirror the C library's `PAPI_E*` return codes so that code
//! written against the original specification translates directly.

use simcpu::MachError;

/// Errors returned by the portable layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PapiError {
    /// `PAPI_EINVAL` — invalid argument.
    Inval(&'static str),
    /// `PAPI_ENOEVNT` — the event is not available on this platform (or the
    /// preset cannot be mapped to native events).
    NoEvnt(u32),
    /// `PAPI_ENOTPRESET` — the code is not a preset event code.
    NotPreset(u32),
    /// `PAPI_ENOCNTR` — the hardware does not have enough counters.
    NoCntr,
    /// `PAPI_ECNFLCT` — the events conflict: no counter assignment exists
    /// (and multiplexing is not enabled for the set).
    Cnflct,
    /// `PAPI_ENOTRUN` — the EventSet is not running.
    NotRun,
    /// `PAPI_EISRUN` — an EventSet is already running (version-3 semantics:
    /// overlapping EventSets were removed).
    IsRun,
    /// `PAPI_ENOEVST` — no such EventSet.
    NoEvst(usize),
    /// `PAPI_ENOSUPP` — the operation is not supported on this substrate
    /// (e.g. precise sampling without the hardware).
    NoSupp(&'static str),
    /// `PAPI_ESBSTR` — permanent machine-dependent-layer failure.  The
    /// condition will not clear by retrying (unknown backend name, lost
    /// kernel context, malformed counter state).
    Substrate(String),
    /// `PAPI_EMISC` — *transient* substrate failure: the same operation may
    /// succeed if reissued (an `EINTR`-style interrupted syscall, a
    /// momentarily busy counter interface).  The portable layer retries
    /// these on the counting paths with a bounded budget before giving up
    /// (see `Papi::set_transient_retry_budget`).
    ///
    /// Carries a `&'static str` rather than a `String` deliberately: these
    /// errors are minted on the hot read path, potentially once per retry
    /// attempt, and must not allocate (the zero-allocation guarantee covers
    /// the retry loop).
    SubstrateTransient(&'static str),
}

impl std::fmt::Display for PapiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PapiError::Inval(s) => write!(f, "PAPI_EINVAL: invalid argument: {s}"),
            PapiError::NoEvnt(c) => write!(
                f,
                "PAPI_ENOEVNT: event {c:#x} not available on this platform"
            ),
            PapiError::NotPreset(c) => {
                write!(f, "PAPI_ENOTPRESET: {c:#x} is not a preset event code")
            }
            PapiError::NoCntr => write!(f, "PAPI_ENOCNTR: not enough hardware counters"),
            PapiError::Cnflct => write!(
                f,
                "PAPI_ECNFLCT: events conflict and cannot be counted together"
            ),
            PapiError::NotRun => write!(f, "PAPI_ENOTRUN: EventSet is not running"),
            PapiError::IsRun => write!(f, "PAPI_EISRUN: an EventSet is already running"),
            PapiError::NoEvst(i) => write!(f, "PAPI_ENOEVST: no such EventSet {i}"),
            PapiError::NoSupp(s) => write!(f, "PAPI_ENOSUPP: {s}"),
            PapiError::Substrate(s) => write!(f, "PAPI_ESBSTR: substrate error: {s}"),
            PapiError::SubstrateTransient(s) => {
                write!(f, "PAPI_EMISC: transient substrate error: {s}")
            }
        }
    }
}

impl PapiError {
    /// True for errors that may clear on retry.  The dispatch layer's
    /// bounded retry loop keys off this; everything else is permanent and
    /// surfaces immediately.
    pub fn is_transient(&self) -> bool {
        matches!(self, PapiError::SubstrateTransient(_))
    }
}

impl std::error::Error for PapiError {}

impl From<MachError> for PapiError {
    fn from(e: MachError) -> Self {
        match e {
            MachError::SamplingUnsupported => PapiError::NoSupp("no precise sampling hardware"),
            other => PapiError::Substrate(other.to_string()),
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PapiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_papi_code() {
        assert!(PapiError::Cnflct.to_string().contains("ECNFLCT"));
        assert!(PapiError::NoEvnt(0x8000_0001)
            .to_string()
            .contains("0x80000001"));
        assert!(PapiError::IsRun.to_string().contains("EISRUN"));
    }

    #[test]
    fn from_mach_error() {
        let e: PapiError = MachError::SamplingUnsupported.into();
        assert_eq!(e, PapiError::NoSupp("no precise sampling hardware"));
        let e: PapiError = MachError::NoSuchCounter(3).into();
        assert!(matches!(e, PapiError::Substrate(_)));
    }

    #[test]
    fn transient_vs_permanent_split() {
        assert!(PapiError::SubstrateTransient("busy").is_transient());
        assert!(!PapiError::Substrate("gone".into()).is_transient());
        assert!(!PapiError::Cnflct.is_transient());
        let t = PapiError::SubstrateTransient("busy").to_string();
        assert!(t.contains("EMISC"), "{t}");
        let p = PapiError::Substrate("gone".into()).to_string();
        assert!(p.contains("ESBSTR"), "{p}");
    }
}
