//! Integration-style tests of the full session layer (moved out of
//! `lib.rs` when it became a facade; they exercise the public API exactly
//! as external callers do).

use crate::{sampling, AppExit, Papi, PapiError, Preset, ProfilConfig, SetState, SimSubstrate};
use simcpu::platform::{sim_alpha, sim_generic, sim_power3, sim_t3e, sim_x86};
use simcpu::{AddrGen, Machine, PlatformSpec, Program, ProgramBuilder};
use simcpu::{Domain, SampleConfig};
use std::sync::{Arc, Mutex};

fn fma_loop(iters: u32, fmas: usize) -> Program {
    let mut b = ProgramBuilder::new();
    b.func("main", |f| {
        f.loop_(iters, |f| {
            f.ffma(fmas);
        });
    });
    b.build("main")
}

fn papi_on(spec: PlatformSpec, prog: Program) -> Papi<SimSubstrate> {
    let mut m = Machine::new(spec, 42);
    m.load(prog);
    Papi::init(SimSubstrate::new(m)).unwrap()
}

#[test]
fn lowlevel_count_fp_ops() {
    let mut p = papi_on(sim_generic(), fma_loop(1000, 4));
    let set = p.create_eventset();
    p.add_event(set, Preset::FpOps.code()).unwrap();
    p.add_event(set, Preset::TotIns.code()).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    assert_eq!(v[0], 8000);
    assert_eq!(v[1] as u64, 1000 * 5 + 2);
}

#[test]
fn derived_sub_preset_values() {
    let mut p = papi_on(sim_x86(), fma_loop(500, 1));
    let set = p.create_eventset();
    p.add_event(set, Preset::BrNtk.code()).unwrap();
    p.add_event(set, Preset::BrIns.code()).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    assert_eq!(v[1], 500); // branches
    assert_eq!(v[0], 1); // not taken once (loop exit)
}

#[test]
fn eventset_state_machine_errors() {
    let mut p = papi_on(sim_generic(), fma_loop(10, 1));
    let set = p.create_eventset();
    assert!(matches!(p.start(set), Err(PapiError::Inval(_)))); // empty
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    assert!(matches!(p.read(set), Err(PapiError::NotRun)));
    assert!(matches!(p.stop(set), Err(PapiError::NotRun)));
    p.start(set).unwrap();
    assert_eq!(p.state(set).unwrap(), SetState::Running);
    assert!(matches!(
        p.add_event(set, Preset::TotIns.code()),
        Err(PapiError::IsRun)
    ));
    // v3 semantics: a second running set is refused.
    let set2 = p.create_eventset();
    p.add_event(set2, Preset::TotIns.code()).unwrap();
    assert!(matches!(p.start(set2), Err(PapiError::IsRun)));
    p.stop(set).unwrap();
    p.start(set2).unwrap();
    p.stop(set2).unwrap();
}

#[test]
fn duplicate_and_unknown_events_rejected() {
    let mut p = papi_on(sim_generic(), fma_loop(10, 1));
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    assert!(matches!(
        p.add_event(set, Preset::TotCyc.code()),
        Err(PapiError::Inval(_))
    ));
    assert!(matches!(
        p.add_event(set, 0x4abc_0000),
        Err(PapiError::NoEvnt(_))
    ));
    assert!(matches!(
        p.add_event(99, Preset::TotCyc.code()),
        Err(PapiError::NoEvst(99))
    ));
}

#[test]
fn unavailable_preset_rejected_at_add() {
    // sim-t3e has no TLB events.
    let mut p = papi_on(sim_t3e(), fma_loop(10, 1));
    let set = p.create_eventset();
    assert!(matches!(
        p.add_event(set, Preset::TlbDm.code()),
        Err(PapiError::NoEvnt(_))
    ));
}

#[test]
fn conflicting_events_cnflct_without_multiplex() {
    // sim-x86: four FP-class events exceed the two FP-capable counters.
    let mut p = papi_on(sim_x86(), fma_loop(10, 1));
    let set = p.create_eventset();
    p.add_event(set, Preset::FdvIns.code()).unwrap();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.add_event(set, Preset::FpOps.code()).unwrap();
    assert!(matches!(p.start(set), Err(PapiError::Cnflct)));
    // The set is still usable after the failed start.
    assert_eq!(p.state(set).unwrap(), SetState::Stopped);
}

#[test]
fn multiplex_counts_many_events() {
    let mut p = papi_on(sim_x86(), fma_loop(200_000, 4));
    let set = p.create_eventset();
    p.add_event(set, Preset::FdvIns.code()).unwrap();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.add_event(set, Preset::FpOps.code()).unwrap();
    p.add_event(set, Preset::TotIns.code()).unwrap();
    p.set_multiplex(set).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    // True counts: fdv 0, fma 800k, fp_ops 1.6M, ins 1M+2.
    assert_eq!(v[0], 0);
    let fma_err = (v[1] - 800_000).abs() as f64 / 800_000.0;
    assert!(fma_err < 0.15, "fma estimate off by {fma_err}: {}", v[1]);
    let ops_err = (v[2] - 1_600_000).abs() as f64 / 1_600_000.0;
    assert!(ops_err < 0.15, "fp_ops estimate off by {ops_err}: {}", v[2]);
}

#[test]
fn accum_and_reset() {
    let mut p = papi_on(sim_generic(), fma_loop(100, 2));
    let set = p.create_eventset();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let mut acc = vec![0i64];
    p.accum(set, &mut acc).unwrap();
    assert_eq!(acc[0], 200);
    // After accum the live counter is reset.
    let v = p.read(set).unwrap();
    assert_eq!(v[0], 0);
    p.stop(set).unwrap();
}

#[test]
fn overflow_callback_fires() {
    let mut p = papi_on(sim_generic(), fma_loop(10_000, 4));
    let set = p.create_eventset();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    let hits = Arc::new(Mutex::new(Vec::new()));
    let h2 = Arc::clone(&hits);
    p.overflow(
        set,
        Preset::FmaIns.code(),
        1000,
        Box::new(move |info| h2.lock().unwrap().push(info)),
    )
    .unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    let hits = hits.lock().unwrap();
    assert!(
        (38..=40).contains(&hits.len()),
        "got {} overflows",
        hits.len()
    );
    assert!(hits.iter().all(|i| i.code == Preset::FmaIns.code()));
}

#[test]
fn overflow_on_multiplexed_set_rejected() {
    let mut p = papi_on(sim_generic(), fma_loop(10, 1));
    let set = p.create_eventset();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.set_multiplex(set).unwrap();
    assert!(matches!(
        p.overflow(set, Preset::FmaIns.code(), 100, Box::new(|_| {})),
        Err(PapiError::Cnflct)
    ));
}

#[test]
fn profil_histogram_collects() {
    let mut p = papi_on(sim_generic(), fma_loop(50_000, 4));
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    let text_end = Program::pc_of(64);
    let pid = p
        .profil(
            set,
            Preset::TotCyc.code(),
            ProfilConfig {
                start: simcpu::TEXT_BASE,
                end: text_end,
                bucket_bytes: 4,
                threshold: 5000,
            },
        )
        .unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    let prof = p.profil_histogram(pid).unwrap();
    assert!(prof.total_samples() > 20, "got {}", prof.total_samples());
    assert!(prof.buckets().iter().sum::<u64>() > 0);
}

#[test]
fn two_profils_on_different_events_simultaneously() {
    // §2: "SVR4-compatible code profiling based on any hardware counter
    // metric" — two metrics profiled in the same run.
    let mut b = ProgramBuilder::new();
    b.func("main", |f| {
        f.loop_(40_000, |f| {
            f.ffma(2);
            f.load(AddrGen::Chase {
                base: 0x40_0000,
                len: 1 << 21,
            });
        });
    });
    let mut p = papi_on(sim_generic(), b.build("main"));
    let set = p.create_eventset();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.add_event(set, Preset::L1Dcm.code()).unwrap();
    let cfg = ProfilConfig {
        start: simcpu::TEXT_BASE,
        end: Program::pc_of(16),
        bucket_bytes: 4,
        threshold: 2_000,
    };
    let pid_fma = p.profil(set, Preset::FmaIns.code(), cfg).unwrap();
    let pid_mis = p.profil(set, Preset::L1Dcm.code(), cfg).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    let fma = p.profil_histogram(pid_fma).unwrap();
    let mis = p.profil_histogram(pid_mis).unwrap();
    assert!(
        fma.total_samples() > 20,
        "fma samples {}",
        fma.total_samples()
    );
    assert!(
        mis.total_samples() > 10,
        "miss samples {}",
        mis.total_samples()
    );
    // ~80k FMAs vs ~40k misses at the same threshold: the FMA profile
    // must have roughly twice the samples.
    let ratio = fma.total_samples() as f64 / mis.total_samples() as f64;
    assert!(ratio > 1.4 && ratio < 2.6, "ratio {ratio}");
}

#[test]
fn duplicate_profil_on_same_event_rejected() {
    let mut p = papi_on(sim_generic(), fma_loop(100, 1));
    let set = p.create_eventset();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    let cfg = ProfilConfig {
        start: simcpu::TEXT_BASE,
        end: Program::pc_of(8),
        bucket_bytes: 4,
        threshold: 10,
    };
    p.profil(set, Preset::FmaIns.code(), cfg).unwrap();
    assert!(matches!(
        p.profil(set, Preset::FmaIns.code(), cfg),
        Err(PapiError::Cnflct)
    ));
    assert!(matches!(
        p.overflow(set, Preset::FmaIns.code(), 5, Box::new(|_| {})),
        Err(PapiError::Cnflct)
    ));
}

#[test]
fn multiplex_on_group_platform() {
    // Group platforms multiplex across groups: branch-group and
    // mem-group events in one (explicitly multiplexed) set.
    let mut b = ProgramBuilder::new();
    b.func("main", |f| {
        f.loop_(400_000, |f| {
            f.load(AddrGen::Stride {
                base: 0x30_0000,
                stride: 64,
                len: 1 << 19,
            });
            f.int(1);
        });
    });
    let mut p = papi_on(sim_power3(), b.build("main"));
    let tkn = p.event_name_to_code("PM_BR_TAKEN").unwrap();
    let ldm = p.event_name_to_code("PM_LD_MISS_L1").unwrap();
    let set = p.create_eventset();
    p.add_event(set, tkn).unwrap();
    p.add_event(set, ldm).unwrap();
    assert!(matches!(p.start(set), Err(PapiError::Cnflct)));
    p.set_multiplex(set).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    // Taken branches ~= 400k - 1; every load misses (512 KiB stream,
    // 8192 lines, 400k accesses wrap ~48 times... all within cache? No:
    // 1<<19 = 512 KiB > 16 KiB L1, streaming -> miss per line visit).
    let tkn_err = (v[0] - 399_999).abs() as f64 / 399_999.0;
    assert!(tkn_err < 0.1, "taken estimate off: {} ({tkn_err})", v[0]);
    assert!(v[1] > 300_000, "expected streaming misses, got {}", v[1]);
}

#[test]
fn timers_move_forward() {
    let mut p = papi_on(sim_generic(), fma_loop(100_000, 1));
    let c0 = p.get_real_cyc();
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    assert!(p.get_real_cyc() > c0);
    assert!(p.get_real_usec() > 0);
    assert!(p.get_virt_usec(0).unwrap() > 0);
    assert!(p.get_virt_usec(0).unwrap() <= p.get_real_usec());
}

#[test]
fn event_name_lookups() {
    let p = papi_on(sim_x86(), fma_loop(1, 1));
    assert_eq!(
        p.event_name_to_code("PAPI_TOT_CYC").unwrap(),
        Preset::TotCyc.code()
    );
    let c = p.event_name_to_code("INST_RETIRED").unwrap();
    assert_eq!(p.event_code_to_name(c).unwrap(), "INST_RETIRED");
    assert!(p.event_name_to_code("NOPE").is_err());
    assert_eq!(
        p.event_code_to_name(Preset::FpOps.code()).unwrap(),
        "PAPI_FP_OPS"
    );
}

#[test]
fn native_event_counting() {
    let mut p = papi_on(sim_x86(), fma_loop(100, 3));
    let fml = p.event_name_to_code("FML_INS").unwrap();
    let set = p.create_eventset();
    p.add_event(set, fml).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    assert_eq!(v[0], 0); // FMAs are not plain multiplies on sim-x86
}

#[test]
fn group_platform_allocation_and_conflict() {
    let mut p = papi_on(sim_power3(), fma_loop(100, 2));
    // PM_CYC + PM_INST_CMPL live in every group: fine.
    let set = p.create_eventset();
    let cyc = p.event_name_to_code("PM_CYC").unwrap();
    let inst = p.event_name_to_code("PM_INST_CMPL").unwrap();
    p.add_event(set, cyc).unwrap();
    p.add_event(set, inst).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    assert!(v[0] > 0 && v[1] > 0);
    // PM_BR_TAKEN (branch group) + PM_LD_MISS_L1 (mem/cache groups)
    // span groups: conflict.
    let set2 = p.create_eventset();
    let tkn = p.event_name_to_code("PM_BR_TAKEN").unwrap();
    let ldm = p.event_name_to_code("PM_LD_MISS_L1").unwrap();
    p.add_event(set2, tkn).unwrap();
    p.add_event(set2, ldm).unwrap();
    assert!(matches!(p.start(set2), Err(PapiError::Cnflct)));
}

#[test]
fn power3_rounding_quirk_shows_in_counts() {
    // A workload with converts: FP_INS over-counts on sim-power3.
    let mut b = ProgramBuilder::new();
    b.func("main", |f| {
        f.loop_(1000, |f| {
            f.fadd(2);
            f.fcvt(1);
        });
    });
    let mut p = papi_on(sim_power3(), b.build("main"));
    let set = p.create_eventset();
    p.add_event(set, Preset::FpIns.code()).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    // Analytic FP instructions = 2000; PM_FPU_CMPL also counts the 1000
    // converts — the paper's calibration discrepancy.
    assert_eq!(v[0], 3000);
    let m = p.preset_table().mapping(Preset::FpIns.code()).unwrap();
    assert!(m.inexact);
}

#[test]
fn sampling_through_papi() {
    let mut p = papi_on(sim_alpha(), fma_loop(20_000, 4));
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    p.start_sampling(SampleConfig {
        period: 200,
        jitter: 20,
        buffer_capacity: 128,
    })
    .unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    let samples = p.stop_sampling().unwrap();
    assert!(samples.len() > 100, "got {}", samples.len());
    // Estimation from samples tracks the FMA-heavy mix.
    let est = sampling::estimate_count(&samples, 200, simcpu::EventKind::FpFma);
    let err = (est as f64 - 80_000.0).abs() / 80_000.0;
    assert!(err < 0.2, "estimate {est} off by {err}");
}

#[test]
fn mpx_period_configurable_and_validated() {
    let mut p = papi_on(sim_x86(), fma_loop(300_000, 4));
    let set = p.create_eventset();
    for pr in [Preset::FdvIns, Preset::FmaIns, Preset::FpOps] {
        p.add_event(set, pr.code()).unwrap();
    }
    p.set_multiplex(set).unwrap();
    assert!(matches!(
        p.set_multiplex_period(set, 0),
        Err(PapiError::Inval(_))
    ));
    p.set_multiplex_period(set, 20_000).unwrap(); // 5x faster switching
    p.start(set).unwrap();
    assert!(matches!(
        p.set_multiplex_period(set, 1),
        Err(PapiError::IsRun)
    ));
    p.run_app().unwrap();
    let v = p.stop(set).unwrap();
    let err = (v[1] - 1_200_000).abs() as f64 / 1_200_000.0;
    assert!(err < 0.1, "fast-switching mpx should converge, err {err}");
}

#[test]
fn sampled_histogram_and_estimates() {
    let mut p = papi_on(sim_alpha(), fma_loop(30_000, 4));
    // Not running a sampling session -> NotRun.
    assert!(matches!(
        p.sampled_histogram(
            simcpu::EventKind::FpFma,
            ProfilConfig {
                start: simcpu::TEXT_BASE,
                end: Program::pc_of(16),
                bucket_bytes: 4,
                threshold: 1
            }
        ),
        Err(PapiError::NotRun)
    ));
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    p.start_sampling(SampleConfig {
        period: 300,
        jitter: 30,
        buffer_capacity: 128,
    })
    .unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    let hist = p
        .sampled_histogram(
            simcpu::EventKind::FpFma,
            ProfilConfig {
                start: simcpu::TEXT_BASE,
                end: Program::pc_of(16),
                bucket_bytes: 4,
                threshold: 1,
            },
        )
        .unwrap();
    // FMA samples land exactly on the 4 FMA instruction buckets.
    let nonzero: Vec<usize> = hist
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, _)| i)
        .collect();
    assert!(
        !nonzero.is_empty() && nonzero.iter().all(|&i| i < 4),
        "buckets {nonzero:?}"
    );
    let est = p
        .estimate_counts_from_samples(&[simcpu::EventKind::FpFma])
        .unwrap();
    let err = (est[0] as f64 - 120_000.0).abs() / 120_000.0;
    assert!(err < 0.15, "estimate {} off by {err}", est[0]);
    // The session still owns its samples afterwards.
    let all = p.stop_sampling().unwrap();
    assert!(!all.is_empty());
}

#[test]
fn sampling_unsupported_on_x86() {
    let mut p = papi_on(sim_x86(), fma_loop(10, 1));
    assert!(matches!(
        p.start_sampling(SampleConfig::default()),
        Err(PapiError::NoSupp(_))
    ));
}

#[test]
fn meminfo_through_papi() {
    let mut b = ProgramBuilder::new();
    b.func("main", |f| {
        f.loop_(32, |f| {
            f.store(AddrGen::Stride {
                base: 0x200_0000,
                stride: 4096,
                len: 32 * 4096,
            });
        });
    });
    let mut p = papi_on(sim_generic(), b.build("main"));
    p.run_app().unwrap();
    let mi = p.get_mem_info(0).unwrap();
    assert_eq!(mi.resident_pages, 32);
}

#[test]
fn destroy_eventset_lifecycle() {
    let mut p = papi_on(sim_generic(), fma_loop(10, 1));
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    p.start(set).unwrap();
    assert!(matches!(p.destroy_eventset(set), Err(PapiError::IsRun)));
    p.stop(set).unwrap();
    p.destroy_eventset(set).unwrap();
    assert!(matches!(p.state(set), Err(PapiError::NoEvst(_))));
}

#[test]
fn remove_event_updates_set() {
    let mut p = papi_on(sim_generic(), fma_loop(10, 1));
    let set = p.create_eventset();
    p.add_events(set, &[Preset::TotCyc.code(), Preset::TotIns.code()])
        .unwrap();
    assert_eq!(p.num_events(set).unwrap(), 2);
    p.remove_event(set, Preset::TotCyc.code()).unwrap();
    assert_eq!(p.list_events(set).unwrap(), vec![Preset::TotIns.code()]);
    assert!(matches!(
        p.remove_event(set, Preset::TotCyc.code()),
        Err(PapiError::NoEvnt(_))
    ));
}

#[test]
fn attach_reads_one_threads_counts() {
    // Two threads with disjoint work; an attached set sees only its
    // thread's share (PAPI_attach over per-thread virtualization).
    let build = || {
        let mut m = Machine::new(sim_generic(), 14);
        m.load(fma_loop(30_000, 4)); // t0: FP
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(30_000, |f| {
                f.int(4);
            });
        });
        m.load(b.build("main")); // t1: integer
        m.set_granularity(simcpu::Granularity::Thread);
        Papi::init(SimSubstrate::new(m)).unwrap()
    };
    let measure_thread = |tid: u32| -> i64 {
        let mut p = build();
        let set = p.create_eventset();
        p.add_event(set, Preset::FmaIns.code()).unwrap();
        p.attach(set, tid).unwrap();
        p.start(set).unwrap();
        p.run_app().unwrap();
        p.stop(set).unwrap()[0]
    };
    assert_eq!(measure_thread(0), 120_000, "t0 owns all FMAs");
    assert_eq!(measure_thread(1), 0, "integer thread has no FMAs");
}

#[test]
fn attach_state_machine_rules() {
    let mut p = papi_on(sim_generic(), fma_loop(10, 1));
    let set = p.create_eventset();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.attach(set, 0).unwrap();
    p.detach(set).unwrap();
    p.set_multiplex(set).unwrap();
    assert!(matches!(p.attach(set, 0), Err(PapiError::Cnflct)));
    let set2 = p.create_eventset();
    p.add_event(set2, Preset::TotCyc.code()).unwrap();
    p.start(set2).unwrap();
    assert!(matches!(p.attach(set2, 0), Err(PapiError::IsRun)));
    p.stop(set2).unwrap();
}

#[test]
fn domain_filters_kernel_overhead() {
    // USER-domain cycles exclude measurement overhead; ALL includes it.
    let prog = fma_loop(10_000, 2);
    let count_with = |domain: Domain| -> i64 {
        let mut p = papi_on(sim_x86(), prog.clone());
        let set = p.create_eventset();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        p.set_domain(set, domain).unwrap();
        p.start(set).unwrap();
        // Extra reads generate kernel-mode cycles mid-run.
        for _ in 0..50 {
            let _ = p.read(set).unwrap();
        }
        p.run_app().unwrap();
        p.stop(set).unwrap()[0]
    };
    let user = count_with(Domain::USER);
    let all = count_with(Domain::ALL);
    assert!(all > user, "ALL {all} must exceed USER {user}");
}

#[test]
fn obs_counts_api_traffic_and_journal() {
    let mut p = papi_on(sim_generic(), fma_loop(10_000, 4));
    let obs = papi_obs::Obs::new();
    obs.enable_journal(1024);
    p.attach_obs(obs.clone());

    let set = p.create_eventset();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.overflow(set, Preset::FmaIns.code(), 1000, Box::new(|_| {}))
        .unwrap();
    p.start(set).unwrap();
    let mut acc = vec![0i64];
    while !matches!(p.run_for(50_000).unwrap(), AppExit::Halted) {
        let _ = p.read(set).unwrap();
    }
    p.accum(set, &mut acc).unwrap();
    p.stop(set).unwrap();
    p.destroy_eventset(set).unwrap();

    use papi_obs::Counter as C;
    assert_eq!(obs.get(C::EventsetCreated), 1);
    assert_eq!(obs.get(C::EventsetDestroyed), 1);
    assert_eq!(obs.get(C::Starts), 1);
    assert_eq!(obs.get(C::Stops), 1);
    assert!(obs.get(C::Reads) >= 2); // explicit reads + accum's read
    assert!(obs.get(C::CounterReads) >= obs.get(C::Reads));
    assert_eq!(obs.get(C::Accums), 1);
    assert_eq!(obs.get(C::Resets), 1); // accum's reset
    assert_eq!(obs.get(C::AllocAttempts), 1);
    assert_eq!(obs.get(C::AllocSuccesses), 1);
    assert!(obs.get(C::AllocAugmentSteps) >= 1);
    assert!(
        obs.get(C::OverflowInterrupts) >= 30,
        "interrupts {}",
        obs.get(C::OverflowInterrupts)
    );
    assert_eq!(
        obs.get(C::OverflowHandlerDispatches),
        obs.get(C::OverflowInterrupts)
    );
    // Reads cost kernel cycles; the span accounting must have seen them.
    assert!(obs.get(C::CyclesInRead) > 0);
    assert!(obs.get(C::CyclesInStartStop) > 0);

    // The journal saw the lifecycle in virtual-time order.
    let recs = obs.journal_records();
    assert!(!recs.is_empty());
    assert!(recs.windows(2).all(|w| w[0].cycles <= w[1].cycles));
    assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
    let kinds: Vec<&str> = recs.iter().map(|r| r.event.kind()).collect();
    for expected in [
        "obs.eventset_created",
        "obs.alloc",
        "obs.start",
        "obs.read",
        "obs.overflow",
        "obs.accum",
        "obs.reset",
        "obs.stop",
        "obs.eventset_destroyed",
    ] {
        assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
    }
    assert_eq!(obs.get(C::JournalRecords), recs.len() as u64);
}

#[test]
fn obs_counts_mpx_rotations_and_profil_hits() {
    let mut p = papi_on(sim_x86(), fma_loop(200_000, 4));
    let obs = papi_obs::Obs::new();
    p.attach_obs(obs.clone());
    let set = p.create_eventset();
    p.add_event(set, Preset::FdvIns.code()).unwrap();
    p.add_event(set, Preset::FmaIns.code()).unwrap();
    p.add_event(set, Preset::FpOps.code()).unwrap();
    p.add_event(set, Preset::TotIns.code()).unwrap();
    p.set_multiplex(set).unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();

    use papi_obs::Counter as C;
    assert!(
        obs.get(C::MpxRotations) >= 5,
        "rotations {}",
        obs.get(C::MpxRotations)
    );
    // Every rotation flushes; the final stop() flushes once more.
    assert!(obs.get(C::MpxFlushes) > obs.get(C::MpxRotations));
    assert_eq!(obs.get(C::MpxProgramOps), obs.get(C::MpxRotations));
    assert!(obs.get(C::CyclesInMpxRotate) > 0);
    // One failed direct allocation attempt preceded the mpx fallback.
    assert_eq!(obs.get(C::AllocAttempts), 1);
    assert_eq!(obs.get(C::AllocFailures), 1);

    // Profil hits route through the same dispatcher.
    let mut p = papi_on(sim_generic(), fma_loop(50_000, 4));
    let obs = papi_obs::Obs::new();
    p.attach_obs(obs.clone());
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    p.profil(
        set,
        Preset::TotCyc.code(),
        ProfilConfig {
            start: simcpu::TEXT_BASE,
            end: Program::pc_of(64),
            bucket_bytes: 4,
            threshold: 5000,
        },
    )
    .unwrap();
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    assert!(obs.get(C::ProfilHits) > 20);
    assert_eq!(obs.get(C::ProfilHits), obs.get(C::OverflowInterrupts));
    assert_eq!(obs.get(C::OverflowHandlerDispatches), 0);
}

#[test]
fn obs_never_perturbs_measurements() {
    // Identical runs with and without the observer (journal on) must
    // produce identical counts and identical virtual end times: the
    // instrumentation issues no costed substrate operations.
    let run = |with_obs: bool| -> (Vec<i64>, u64) {
        let mut p = papi_on(sim_x86(), fma_loop(30_000, 2));
        if with_obs {
            let obs = papi_obs::Obs::new();
            obs.enable_journal(256);
            p.attach_obs(obs);
        }
        let set = p.create_eventset();
        p.add_event(set, Preset::FpOps.code()).unwrap();
        p.add_event(set, Preset::TotCyc.code()).unwrap();
        p.start(set).unwrap();
        while !matches!(p.run_for(25_000).unwrap(), AppExit::Halted) {
            let _ = p.read(set).unwrap();
        }
        let v = p.stop(set).unwrap();
        (v, p.get_real_cyc())
    };
    let (vals_plain, cyc_plain) = run(false);
    let (vals_obs, cyc_obs) = run(true);
    assert_eq!(vals_plain, vals_obs);
    assert_eq!(cyc_plain, cyc_obs);
}

#[test]
fn obs_detach_and_reuse() {
    let mut p = papi_on(sim_generic(), fma_loop(100, 1));
    let obs = papi_obs::Obs::new();
    p.attach_obs(obs.clone());
    assert!(p.obs().is_some());
    let set = p.create_eventset();
    p.add_event(set, Preset::TotCyc.code()).unwrap();
    let detached = p.detach_obs().unwrap();
    assert!(p.obs().is_none());
    // Detached: no further accounting.
    p.start(set).unwrap();
    p.run_app().unwrap();
    p.stop(set).unwrap();
    assert_eq!(detached.get(papi_obs::Counter::Starts), 0);
    assert_eq!(detached.get(papi_obs::Counter::EventsetCreated), 1);
}
