//! PAPI preset events and their per-platform mapping to native events.
//!
//! A *preset* is a standard event name (`PAPI_FP_OPS`, `PAPI_L1_DCM`, …)
//! with a platform-independent meaning, here expressed as a formula over the
//! machine-level [`EventKind`] signals. At initialization the library maps
//! each preset onto this platform's native events:
//!
//! 1. a single native event whose signal vector equals the formula
//!    (*direct* mapping),
//! 2. a sum of two native events (*derived add*),
//! 3. a difference of two native events (*derived sub*),
//! 4. failing all of those, a single native event (or pair-sum) that counts
//!    a **superset** of the formula — an *inexact* mapping, flagged as such.
//!
//! Inexact mappings reproduce the paper's data-interpretation lesson: on the
//! POWER3-like platform `PAPI_FP_INS` maps to `PM_FPU_CMPL`, which also
//! counts convert/rounding instructions, so measured counts exceed the
//! analytic expectation exactly as the paper's users observed.

use crate::alloc::{is_allocatable, AllocModel, AllocTranslation};
use crate::error::{PapiError, Result};
use simcpu::platform::GroupDef;
use simcpu::{EventKind, NativeEventDesc};
use std::collections::BTreeMap;

/// Bit marking preset event codes (mirrors `PAPI_PRESET_MASK`).
pub const PRESET_MASK: u32 = 0x8000_0000;

macro_rules! presets {
    ($( $idx:literal $variant:ident $name:literal $descr:literal => [ $( ($kind:ident, $coeff:literal) ),+ ] ; )+) => {
        /// The standard preset events.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u32)]
        pub enum Preset {
            $( #[doc = $descr] $variant = PRESET_MASK | $idx, )+
        }

        impl Preset {
            /// Every preset, in code order.
            pub const ALL: &'static [Preset] = &[ $( Preset::$variant, )+ ];

            /// The `PAPI_*` name.
            pub fn name(self) -> &'static str {
                match self {
                    $( Preset::$variant => $name, )+
                }
            }

            /// Human-readable description.
            pub fn descr(self) -> &'static str {
                match self {
                    $( Preset::$variant => $descr, )+
                }
            }

            /// The platform-independent formula over machine signals.
            pub fn formula(self) -> &'static [(EventKind, i64)] {
                match self {
                    $( Preset::$variant => &[ $( (EventKind::$kind, $coeff) ),+ ], )+
                }
            }
        }
    };
}

presets! {
    0  TotCyc "PAPI_TOT_CYC" "Total cycles" => [(Cycles, 1)];
    1  TotIns "PAPI_TOT_INS" "Instructions completed" => [(Instructions, 1)];
    2  IntIns "PAPI_INT_INS" "Integer instructions" => [(IntOps, 1)];
    3  FpIns  "PAPI_FP_INS"  "Floating point instructions" => [(FpAdd, 1), (FpMul, 1), (FpFma, 1), (FpDiv, 1)];
    4  FpOps  "PAPI_FP_OPS"  "Floating point operations (FMA counts as two)" => [(FpAdd, 1), (FpMul, 1), (FpFma, 2), (FpDiv, 1)];
    5  FmaIns "PAPI_FMA_INS" "Fused multiply-add instructions" => [(FpFma, 1)];
    6  FdvIns "PAPI_FDV_INS" "Floating point divide instructions" => [(FpDiv, 1)];
    7  LdIns  "PAPI_LD_INS"  "Load instructions" => [(Loads, 1)];
    8  SrIns  "PAPI_SR_INS"  "Store instructions" => [(Stores, 1)];
    9  LstIns "PAPI_LST_INS" "Load/store instructions" => [(Loads, 1), (Stores, 1)];
    10 L1Dca  "PAPI_L1_DCA"  "L1 data cache accesses" => [(L1DAccess, 1)];
    11 L1Dcm  "PAPI_L1_DCM"  "L1 data cache misses" => [(L1DMiss, 1)];
    12 L1Icm  "PAPI_L1_ICM"  "L1 instruction cache misses" => [(L1IMiss, 1)];
    13 L1Tcm  "PAPI_L1_TCM"  "L1 total cache misses" => [(L1DMiss, 1), (L1IMiss, 1)];
    14 L2Tca  "PAPI_L2_TCA"  "L2 total cache accesses" => [(L2Access, 1)];
    15 L2Tcm  "PAPI_L2_TCM"  "L2 total cache misses" => [(L2Miss, 1)];
    16 TlbDm  "PAPI_TLB_DM"  "Data TLB misses" => [(DtlbMiss, 1)];
    17 TlbIm  "PAPI_TLB_IM"  "Instruction TLB misses" => [(ItlbMiss, 1)];
    18 TlbTl  "PAPI_TLB_TL"  "Total TLB misses" => [(DtlbMiss, 1), (ItlbMiss, 1)];
    19 BrIns  "PAPI_BR_INS"  "Conditional branch instructions" => [(Branches, 1)];
    20 BrTkn  "PAPI_BR_TKN"  "Conditional branches taken" => [(BranchTaken, 1)];
    21 BrNtk  "PAPI_BR_NTK"  "Conditional branches not taken" => [(Branches, 1), (BranchTaken, -1)];
    22 BrMsp  "PAPI_BR_MSP"  "Conditional branches mispredicted" => [(BranchMispred, 1)];
    23 BrPrc  "PAPI_BR_PRC"  "Conditional branches correctly predicted" => [(Branches, 1), (BranchMispred, -1)];
    24 ResStl "PAPI_RES_STL" "Cycles stalled on any resource" => [(StallCycles, 1)];
}

impl Preset {
    /// The preset event code (`PRESET_MASK | index`).
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Decode a preset code.
    pub fn from_code(code: u32) -> Option<Preset> {
        Preset::ALL.iter().copied().find(|p| p.code() == code)
    }

    /// Look up a preset by its `PAPI_*` name.
    pub fn from_name(name: &str) -> Option<Preset> {
        Preset::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// True if `code` is in the preset code space.
pub fn is_preset_code(code: u32) -> bool {
    code & PRESET_MASK != 0
}

/// How a preset was realized on this platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Native terms: `(native code, coefficient)` — the preset's value is
    /// the coefficient-weighted sum of the native counts.
    pub terms: Vec<(u32, i64)>,
    /// True when the native combination counts a superset of the preset's
    /// definition (platform semantics differ — interpret with care).
    pub inexact: bool,
}

impl Mapping {
    /// `DERIVED_*` style tag for display.
    pub fn kind(&self) -> &'static str {
        match (
            self.terms.len(),
            self.terms.iter().any(|&(_, c)| c < 0),
            self.inexact,
        ) {
            (1, _, false) => "DIRECT",
            (_, false, false) => "DERIVED_ADD",
            (_, true, false) => "DERIVED_SUB",
            _ => "INEXACT",
        }
    }
}

/// The per-platform preset table, built once at `Papi::init`.
#[derive(Debug, Clone, Default)]
pub struct PresetTable {
    map: BTreeMap<u32, Mapping>,
}

type KindVec = [i64; simcpu::pmu::NUM_EVENT_KINDS];

fn kind_vec_of(e: &NativeEventDesc) -> KindVec {
    let mut v = [0i64; simcpu::pmu::NUM_EVENT_KINDS];
    for &(k, m) in &e.kinds {
        v[k as usize] += m as i64;
    }
    v
}

fn formula_vec(p: Preset) -> KindVec {
    let mut v = [0i64; simcpu::pmu::NUM_EVENT_KINDS];
    for &(k, c) in p.formula() {
        v[k as usize] += c;
    }
    v
}

fn add(a: &KindVec, b: &KindVec, sign: i64) -> KindVec {
    let mut r = *a;
    for (r, b) in r.iter_mut().zip(b) {
        *r += sign * b;
    }
    r
}

/// `combo` counts a superset of `want`: every wanted signal is counted at
/// least as often, nothing is counted negatively, and `want` has no negative
/// coefficients itself.
fn is_superset(combo: &KindVec, want: &KindVec) -> bool {
    want.iter()
        .zip(combo)
        .all(|(w, c)| *w >= 0 && *c >= *w && (*w > 0 || *c >= 0))
}

impl PresetTable {
    /// Map every preset onto `events`, using the search order documented at
    /// the module level. A candidate combination is accepted only if its
    /// native events can actually be counted *simultaneously* on this
    /// platform (counter masks admit a matching / one group contains them):
    /// a derived event whose terms collide on a single counter is not
    /// "available" in any useful sense.
    pub fn build(
        events: &[NativeEventDesc],
        num_counters: usize,
        groups: &[GroupDef],
    ) -> PresetTable {
        Self::build_with(events, &AllocModel::for_platform(num_counters, groups))
    }

    /// [`PresetTable::build`] against an explicit allocation-translation
    /// model (the PAPI-3 split: the table never inspects masks or groups
    /// itself).
    pub fn build_with(events: &[NativeEventDesc], model: &dyn AllocTranslation) -> PresetTable {
        let vecs: Vec<KindVec> = events.iter().map(kind_vec_of).collect();
        let feasible = |idxs: &[usize]| -> bool {
            let codes: Vec<u32> = idxs.iter().map(|&i| events[i].code).collect();
            is_allocatable(model, &codes, events)
        };
        let mut map = BTreeMap::new();
        for &p in Preset::ALL {
            let want = formula_vec(p);
            if let Some(m) = Self::search(events, &vecs, &want, &feasible) {
                map.insert(p.code(), m);
            }
        }
        PresetTable { map }
    }

    fn search(
        events: &[NativeEventDesc],
        vecs: &[KindVec],
        want: &KindVec,
        feasible: &dyn Fn(&[usize]) -> bool,
    ) -> Option<Mapping> {
        // 1. direct
        for (i, v) in vecs.iter().enumerate() {
            if v == want && feasible(&[i]) {
                return Some(Mapping {
                    terms: vec![(events[i].code, 1)],
                    inexact: false,
                });
            }
        }
        // 2. derived add / 3. derived sub
        for i in 0..vecs.len() {
            for j in 0..vecs.len() {
                if i == j || !feasible(&[i, j]) {
                    continue;
                }
                if add(&vecs[i], &vecs[j], 1) == *want && i < j {
                    return Some(Mapping {
                        terms: vec![(events[i].code, 1), (events[j].code, 1)],
                        inexact: false,
                    });
                }
                if add(&vecs[i], &vecs[j], -1) == *want {
                    return Some(Mapping {
                        terms: vec![(events[i].code, 1), (events[j].code, -1)],
                        inexact: false,
                    });
                }
            }
        }
        // Inexact mappings are only acceptable when the native combination
        // is *close*: at most one extra signal class beyond the preset's
        // definition (e.g. converts folded into an FP-instruction counter).
        // Anything looser would "map" semantically unrelated events.
        let extra_kinds = |combo: &KindVec| -> usize {
            combo
                .iter()
                .zip(want)
                .filter(|(c, w)| **c > 0 && **w == 0)
                .count()
        };
        // 4. inexact single superset — prefer the tightest.
        let mut best: Option<(usize, usize)> = None; // (extra_kinds, idx)
        for (i, v) in vecs.iter().enumerate() {
            if is_superset(v, want) && feasible(&[i]) {
                let extra = extra_kinds(v);
                if extra <= 1 && best.is_none_or(|(be, _)| extra < be) {
                    best = Some((extra, i));
                }
            }
        }
        if let Some((_, i)) = best {
            return Some(Mapping {
                terms: vec![(events[i].code, 1)],
                inexact: true,
            });
        }
        // 5. inexact pair sum superset
        for i in 0..vecs.len() {
            for j in (i + 1)..vecs.len() {
                if !feasible(&[i, j]) {
                    continue;
                }
                let combo = add(&vecs[i], &vecs[j], 1);
                if is_superset(&combo, want) && extra_kinds(&combo) <= 1 {
                    return Some(Mapping {
                        terms: vec![(events[i].code, 1), (events[j].code, 1)],
                        inexact: true,
                    });
                }
            }
        }
        None
    }

    /// The mapping for a preset code, if the platform supports it.
    pub fn mapping(&self, code: u32) -> Option<&Mapping> {
        self.map.get(&code)
    }

    /// `PAPI_query_event` for presets.
    pub fn available(&self, p: Preset) -> bool {
        self.map.contains_key(&p.code())
    }

    /// All available presets.
    pub fn available_presets(&self) -> Vec<Preset> {
        Preset::ALL
            .iter()
            .copied()
            .filter(|p| self.available(*p))
            .collect()
    }

    /// Resolve a PAPI event code (preset or native) to native terms.
    pub fn resolve(&self, code: u32, natives: &[NativeEventDesc]) -> Result<Mapping> {
        if is_preset_code(code) {
            if Preset::from_code(code).is_none() {
                return Err(PapiError::NotPreset(code));
            }
            self.mapping(code).cloned().ok_or(PapiError::NoEvnt(code))
        } else {
            if natives.iter().any(|e| e.code == code) {
                Ok(Mapping {
                    terms: vec![(code, 1)],
                    inexact: false,
                })
            } else {
                Err(PapiError::NoEvnt(code))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::platform::{all_platforms, sim_generic, sim_power3, sim_t3e, sim_x86};

    #[test]
    fn preset_codes_have_mask_and_are_unique() {
        let mut codes: Vec<u32> = Preset::ALL.iter().map(|p| p.code()).collect();
        for c in &codes {
            assert!(is_preset_code(*c));
        }
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }

    #[test]
    fn from_code_and_name_roundtrip() {
        for &p in Preset::ALL {
            assert_eq!(Preset::from_code(p.code()), Some(p));
            assert_eq!(Preset::from_name(p.name()), Some(p));
        }
        assert_eq!(Preset::from_code(PRESET_MASK | 9999), None);
        assert_eq!(Preset::from_name("PAPI_BOGUS"), None);
    }

    #[test]
    fn generic_platform_maps_everything_exactly() {
        let p = sim_generic();
        let t = PresetTable::build(&p.events, p.num_counters, &p.groups);
        for &pr in Preset::ALL {
            let m = t
                .mapping(pr.code())
                .unwrap_or_else(|| panic!("{} unavailable", pr.name()));
            assert!(!m.inexact, "{} inexact on sim-generic", pr.name());
        }
    }

    #[test]
    fn x86_direct_and_derived() {
        let p = sim_x86();
        let t = PresetTable::build(&p.events, p.num_counters, &p.groups);
        // Direct: cycles
        let cyc = t.mapping(Preset::TotCyc.code()).unwrap();
        assert_eq!(cyc.kind(), "DIRECT");
        // TLB_TL must be a derived add of DTLB+ITLB misses
        let tl = t.mapping(Preset::TlbTl.code()).unwrap();
        assert_eq!(tl.kind(), "DERIVED_ADD");
        assert_eq!(tl.terms.len(), 2);
        // BR_NTK = branches - taken: derived sub
        let ntk = t.mapping(Preset::BrNtk.code()).unwrap();
        assert_eq!(ntk.kind(), "DERIVED_SUB");
        assert!(ntk.terms.iter().any(|&(_, c)| c == -1));
    }

    #[test]
    fn power3_fp_ins_is_inexact_rounding_quirk() {
        let p = sim_power3();
        let t = PresetTable::build(&p.events, p.num_counters, &p.groups);
        let m = t.mapping(Preset::FpIns.code()).expect("FP_INS should map");
        assert!(
            m.inexact,
            "PM_FPU_CMPL counts converts: mapping must be flagged inexact"
        );
        let fpu = p.event_by_name("PM_FPU_CMPL").unwrap();
        assert_eq!(m.terms[0].0, fpu.code);
    }

    #[test]
    fn t3e_lacks_tlb_and_l2_presets() {
        let p = sim_t3e();
        let t = PresetTable::build(&p.events, p.num_counters, &p.groups);
        assert!(!t.available(Preset::TlbDm));
        assert!(!t.available(Preset::L2Tcm));
        assert!(t.available(Preset::TotCyc));
        assert!(t.available(Preset::FpOps));
    }

    #[test]
    fn every_platform_maps_the_core_presets() {
        for plat in all_platforms() {
            let t = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
            for pr in [Preset::TotCyc, Preset::TotIns] {
                assert!(t.available(pr), "{} missing {}", plat.name, pr.name());
            }
        }
    }

    #[test]
    fn resolve_native_and_errors() {
        let p = sim_x86();
        let t = PresetTable::build(&p.events, p.num_counters, &p.groups);
        let native = p.events[0].code;
        let m = t.resolve(native, &p.events).unwrap();
        assert_eq!(m.terms, vec![(native, 1)]);
        assert!(matches!(
            t.resolve(0x4fff_0000, &p.events),
            Err(PapiError::NoEvnt(_))
        ));
        assert!(matches!(
            t.resolve(PRESET_MASK | 9999, &p.events),
            Err(PapiError::NotPreset(_))
        ));
    }

    #[test]
    fn mapping_values_match_formula_on_exact_mappings() {
        // For every exact mapping on every platform, the weighted sum of the
        // native kind-vectors must equal the preset formula.
        for plat in all_platforms() {
            let t = PresetTable::build(&plat.events, plat.num_counters, &plat.groups);
            for &pr in Preset::ALL {
                let Some(m) = t.mapping(pr.code()) else {
                    continue;
                };
                if m.inexact {
                    continue;
                }
                let mut combo = [0i64; simcpu::pmu::NUM_EVENT_KINDS];
                for &(code, coeff) in &m.terms {
                    let e = plat.event_by_code(code).unwrap();
                    for &(k, mult) in &e.kinds {
                        combo[k as usize] += coeff * mult as i64;
                    }
                }
                let want = formula_vec(pr);
                assert_eq!(combo, want, "{} on {}", pr.name(), plat.name);
            }
        }
    }

    #[test]
    fn available_presets_sorted_nonempty() {
        let p = sim_x86();
        let t = PresetTable::build(&p.events, p.num_counters, &p.groups);
        let avail = t.available_presets();
        assert!(
            avail.len() >= 15,
            "x86 should map most presets, got {}",
            avail.len()
        );
    }
}
