//! The hardware-independent allocation solver.
//!
//! "The counter allocation problem may be cast in terms of the bipartite
//! graph matching problem": event vertices on one side, physical counters on
//! the other, an edge where the event's constraint row allows that counter.
//! The solver sees nothing but bitmask rows — no event codes, no groups, no
//! platform names. Translating a platform's constraint scheme into rows is
//! the hardware-dependent half of the split and lives in
//! [`crate::alloc::AllocTranslation`].
//!
//! Provided algorithms:
//! * [`optimal_assign`] — complete matching via augmenting paths (optimal:
//!   finds an assignment whenever one exists; this is the "optimal matching
//!   algorithm … included in version 2.3 of PAPI"),
//! * [`max_cardinality_assign`] — maximum-cardinality variant for "map as
//!   many as possible",
//! * [`max_weight_assign`] — maximum-weight variant for prioritized events
//!   (greedy over a transversal matroid, which is exact),
//! * [`greedy_first_fit`] — the naive baseline the paper's algorithm
//!   replaced, kept for the ablation experiment.

/// Search-effort statistics for one allocation solve, reported to the
/// self-instrumentation layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Augmenting-path probe calls (each call examines one event vertex).
    pub augment_steps: u64,
    /// Events displaced from a counter and re-placed along an alternating
    /// path — the matcher's backtracking effort.
    pub backtracks: u64,
}

/// Try to extend the matching with an augmenting path from event `ev`.
///
/// `owner[c]` is the event currently holding counter `c` (or `usize::MAX`).
fn augment(
    masks: &[u32],
    ev: usize,
    owner: &mut [usize],
    visited: &mut [bool],
    stats: &mut AllocStats,
) -> bool {
    stats.augment_steps += 1;
    for c in 0..owner.len() {
        if masks[ev] & (1 << c) == 0 || visited[c] {
            continue;
        }
        visited[c] = true;
        if owner[c] == usize::MAX {
            owner[c] = ev;
            return true;
        }
        let displaced = owner[c];
        // Try to re-place the current holder along an alternating path.
        if augment(masks, displaced, owner, visited, stats) {
            stats.backtracks += 1;
            owner[c] = ev;
            return true;
        }
    }
    false
}

fn owners_to_assign(owner: &[usize], n_events: usize) -> Vec<Option<usize>> {
    let mut assign = vec![None; n_events];
    for (c, &e) in owner.iter().enumerate() {
        if e != usize::MAX {
            assign[e] = Some(c);
        }
    }
    assign
}

/// Find a *complete* assignment of every event to a distinct allowed
/// counter, or `None` if no such assignment exists. Optimal in the sense
/// that it fails only when the constraint graph admits no perfect matching
/// on the event side (Hall's condition violated).
///
/// ```
/// use papi_core::alloc::{optimal_assign, greedy_first_fit};
/// // Event 0 may go on counters {0,1}; event 1 only on {0}.
/// let masks = [0b11, 0b01];
/// assert_eq!(greedy_first_fit(&masks, 2), None);        // first-fit strands event 1
/// assert_eq!(optimal_assign(&masks, 2), Some(vec![1, 0])); // the matcher re-routes
/// ```
pub fn optimal_assign(masks: &[u32], num_counters: usize) -> Option<Vec<usize>> {
    optimal_assign_stats(masks, num_counters, &mut AllocStats::default())
}

/// [`optimal_assign`] with search-effort accounting: augmenting-path probes
/// and displacements are accumulated into `stats` regardless of outcome.
pub fn optimal_assign_stats(
    masks: &[u32],
    num_counters: usize,
    stats: &mut AllocStats,
) -> Option<Vec<usize>> {
    if masks.len() > num_counters {
        return None;
    }
    let mut owner = vec![usize::MAX; num_counters];
    for ev in 0..masks.len() {
        let mut visited = vec![false; num_counters];
        if !augment(masks, ev, &mut owner, &mut visited, stats) {
            return None;
        }
    }
    Some(
        owners_to_assign(&owner, masks.len())
            .into_iter()
            .map(|o| o.unwrap())
            .collect(),
    )
}

/// Assign as many events as possible; unmatched events get `None`.
/// The number of `Some`s is the maximum cardinality matching.
pub fn max_cardinality_assign(masks: &[u32], num_counters: usize) -> Vec<Option<usize>> {
    let mut stats = AllocStats::default();
    let mut owner = vec![usize::MAX; num_counters];
    for ev in 0..masks.len() {
        let mut visited = vec![false; num_counters];
        augment(masks, ev, &mut owner, &mut visited, &mut stats);
    }
    owners_to_assign(&owner, masks.len())
}

/// Maximum-weight matching: higher-weight events win when not all fit.
///
/// Greedy insertion in descending weight order with augmenting paths is
/// exact for matchable sets (they form a transversal matroid).
pub fn max_weight_assign(
    masks: &[u32],
    weights: &[u64],
    num_counters: usize,
) -> Vec<Option<usize>> {
    assert_eq!(masks.len(), weights.len());
    let mut order: Vec<usize> = (0..masks.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut stats = AllocStats::default();
    let mut owner = vec![usize::MAX; num_counters];
    for &ev in &order {
        let mut visited = vec![false; num_counters];
        augment(masks, ev, &mut owner, &mut visited, &mut stats);
    }
    owners_to_assign(&owner, masks.len())
}

/// The naive baseline: place each event on its lowest-numbered free allowed
/// counter, never revisiting earlier placements. Fails on instances the
/// optimal algorithm solves (the motivation for PAPI 2.3's matcher).
pub fn greedy_first_fit(masks: &[u32], num_counters: usize) -> Option<Vec<usize>> {
    let mut used = vec![false; num_counters];
    let mut assign = Vec::with_capacity(masks.len());
    for &m in masks {
        let mut placed = None;
        for (c, slot) in used.iter_mut().enumerate() {
            if m & (1 << c) != 0 && !*slot {
                *slot = true;
                placed = Some(c);
                break;
            }
        }
        assign.push(placed?);
    }
    Some(assign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_full_assignment() {
        let masks = vec![0b1111, 0b1111, 0b1111, 0b1111];
        let a = optimal_assign(&masks, 4).unwrap();
        let mut s = a.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn too_many_events_fails() {
        assert!(optimal_assign(&[0b11, 0b11, 0b11], 2).is_none());
    }

    #[test]
    fn optimal_beats_greedy_on_crossing_constraints() {
        // Event 0 may use counters {0,1}; event 1 only {0}.
        // Greedy places 0 on counter 0 and then fails on event 1;
        // optimal re-routes event 0 to counter 1.
        let masks = vec![0b011, 0b001];
        assert!(greedy_first_fit(&masks, 3).is_none());
        let a = optimal_assign(&masks, 3).unwrap();
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn respects_masks() {
        let masks = vec![0b100, 0b010, 0b001];
        let a = optimal_assign(&masks, 3).unwrap();
        assert_eq!(a, vec![2, 1, 0]);
    }

    #[test]
    fn infeasible_by_hall_violation() {
        // Three events all constrained to the same two counters.
        let masks = vec![0b011, 0b011, 0b011];
        assert!(optimal_assign(&masks, 3).is_none());
        let mc = max_cardinality_assign(&masks, 3);
        assert_eq!(mc.iter().filter(|o| o.is_some()).count(), 2);
    }

    #[test]
    fn max_cardinality_on_feasible_matches_all() {
        let masks = vec![0b011, 0b001, 0b110];
        let mc = max_cardinality_assign(&masks, 3);
        assert!(mc.iter().all(|o| o.is_some()));
        // Distinct counters.
        let mut cs: Vec<usize> = mc.iter().map(|o| o.unwrap()).collect();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn max_weight_prefers_heavy_events() {
        // Two events want the only counter; the heavy one must win.
        let masks = vec![0b001, 0b001];
        let w = vec![1, 100];
        let a = max_weight_assign(&masks, &w, 1);
        assert_eq!(a[0], None);
        assert_eq!(a[1], Some(0));
    }

    #[test]
    fn max_weight_reroutes_to_keep_both() {
        // Heavy event is flexible; light event is constrained. Both fit.
        let masks = vec![0b011, 0b001];
        let w = vec![100, 1];
        let a = max_weight_assign(&masks, &w, 2);
        assert_eq!(a[0], Some(1));
        assert_eq!(a[1], Some(0));
    }

    #[test]
    fn greedy_succeeds_on_easy_instance() {
        let masks = vec![0b01, 0b10];
        assert_eq!(greedy_first_fit(&masks, 2), Some(vec![0, 1]));
    }

    #[test]
    fn stats_count_probes_and_backtracks() {
        // Crossing constraints: placing event 1 must displace event 0.
        let masks = vec![0b011, 0b001];
        let mut stats = AllocStats::default();
        let a = optimal_assign_stats(&masks, 3, &mut stats).unwrap();
        assert_eq!(a, vec![1, 0]);
        // Probe for event 0, probe for event 1, recursive re-place of event 0.
        assert_eq!(stats.augment_steps, 3);
        assert_eq!(stats.backtracks, 1);

        // Non-crossing instance needs no backtracking.
        let mut easy = AllocStats::default();
        optimal_assign_stats(&[0b01, 0b10], 2, &mut easy).unwrap();
        assert_eq!(easy.augment_steps, 2);
        assert_eq!(easy.backtracks, 0);
    }

    #[test]
    fn empty_event_list_is_trivially_assignable() {
        assert_eq!(optimal_assign(&[], 4), Some(vec![]));
        assert_eq!(greedy_first_fit(&[], 4), Some(vec![]));
    }

    #[test]
    fn exhaustive_agreement_with_bruteforce_on_small_instances() {
        // For every 3-event/3-counter mask combination, optimal_assign must
        // succeed exactly when a brute-force perfect matching exists, and
        // max_cardinality must equal the brute-force maximum.
        fn brute_max(masks: &[u32]) -> usize {
            let mut best = 0;
            // all injective partial maps events->counters
            fn rec(masks: &[u32], i: usize, used: u32, size: usize, best: &mut usize) {
                if i == masks.len() {
                    *best = (*best).max(size);
                    return;
                }
                rec(masks, i + 1, used, size, best); // skip event i
                for c in 0..3 {
                    if masks[i] & (1 << c) != 0 && used & (1 << c) == 0 {
                        rec(masks, i + 1, used | (1 << c), size + 1, best);
                    }
                }
            }
            rec(masks, 0, 0, 0, &mut best);
            best
        }
        for m0 in 1..8u32 {
            for m1 in 1..8u32 {
                for m2 in 1..8u32 {
                    let masks = vec![m0, m1, m2];
                    let bf = brute_max(&masks);
                    let mc = max_cardinality_assign(&masks, 3)
                        .iter()
                        .filter(|o| o.is_some())
                        .count();
                    assert_eq!(mc, bf, "masks {masks:?}");
                    assert_eq!(
                        optimal_assign(&masks, 3).is_some(),
                        bf == 3,
                        "masks {masks:?}"
                    );
                }
            }
        }
    }
}
