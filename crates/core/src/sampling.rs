//! Hardware-assisted precise sampling (ProfileMe / Event Address Registers).
//!
//! On substrates with sampling hardware (`sim-alpha`, `sim-ia64`,
//! `sim-generic`) the PMU records the *exact* PC of randomly selected
//! in-flight instructions together with the event signals they raised and
//! their latency. §4 of the paper describes two uses, both implemented here:
//!
//! * **precise profiling** — histograms built from exact addresses instead
//!   of skidded interrupt PCs ([`profile_from_samples`]);
//! * **aggregate-count estimation** — "aggregate event counts can be
//!   estimated from sampling data with lower overhead than direct counting"
//!   ([`estimate_counts`]), the mechanism behind the 1–2 % overhead the
//!   paper measured on the DCPI substrate.

use crate::profile::{Profil, ProfilConfig};
use simcpu::{EventKind, SampleRecord};

/// Estimate the total count of `kind` from a precise-sample stream.
///
/// The hardware samples one retired instruction per (mean) `period`, so each
/// sample carrying the signal stands for `period` occurrences.
///
/// ```
/// use papi_core::sampling::estimate_count;
/// use simcpu::{EventKind, SampleRecord};
/// let samples = vec![
///     SampleRecord { pc: 0x1000, thread: 0, kind_mask: EventKind::FpFma.bit(), latency: 1, cycle: 0, daddr: None },
///     SampleRecord { pc: 0x1004, thread: 0, kind_mask: EventKind::Loads.bit(), latency: 9, cycle: 4, daddr: Some(0x8000) },
/// ];
/// assert_eq!(estimate_count(&samples, 1024, EventKind::FpFma), 1024);
/// assert_eq!(estimate_count(&samples, 1024, EventKind::Stores), 0);
/// ```
pub fn estimate_count(samples: &[SampleRecord], period: u64, kind: EventKind) -> u64 {
    samples.iter().filter(|s| s.has(kind)).count() as u64 * period
}

/// Estimate several kinds at once.
pub fn estimate_counts(samples: &[SampleRecord], period: u64, kinds: &[EventKind]) -> Vec<u64> {
    kinds
        .iter()
        .map(|&k| estimate_count(samples, period, k))
        .collect()
}

/// Estimate total retired instructions represented by the stream.
pub fn estimated_instructions(samples: &[SampleRecord], period: u64) -> u64 {
    samples.len() as u64 * period
}

/// Estimate total cycles from per-sample latencies (each sample's latency
/// stands for `period` instructions of similar cost).
pub fn estimated_cycles(samples: &[SampleRecord], period: u64) -> u64 {
    samples.iter().map(|s| s.latency as u64).sum::<u64>() * period
}

/// Build a profiling histogram from precise samples, selecting only samples
/// that carry `kind` (e.g. an L1-miss profile). Attribution is exact: the
/// sampled PC is the instruction that raised the signal.
pub fn profile_from_samples(
    samples: &[SampleRecord],
    kind: EventKind,
    cfg: ProfilConfig,
) -> Profil {
    let mut p = Profil::new(cfg);
    for s in samples {
        if s.has(kind) {
            p.hit(s.pc);
        }
    }
    p
}

/// Data-centric profile from the *data* Event Address Registers: a
/// histogram of data pages (or any power-of-two granule) for samples
/// carrying `kind` — "EARs accurately identify the instruction **and
/// data** addresses for some events" (§4). Returns `(granule base, count)`
/// pairs sorted by descending count.
pub fn data_profile_from_samples(
    samples: &[SampleRecord],
    kind: EventKind,
    granule: u64,
) -> Vec<(u64, u64)> {
    assert!(granule.is_power_of_two());
    let mut map = std::collections::HashMap::new();
    for s in samples {
        if s.has(kind) {
            if let Some(a) = s.daddr {
                *map.entry(a & !(granule - 1)).or_insert(0u64) += 1;
            }
        }
    }
    let mut v: Vec<(u64, u64)> = map.into_iter().collect();
    v.sort_by_key(|&(base, n)| (std::cmp::Reverse(n), base));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64, kinds: &[EventKind], latency: u32) -> SampleRecord {
        let mut mask = 0;
        for k in kinds {
            mask |= k.bit();
        }
        SampleRecord {
            pc,
            thread: 0,
            kind_mask: mask,
            latency,
            cycle: 0,
            daddr: None,
        }
    }

    #[test]
    fn estimate_count_scales_by_period() {
        let samples = vec![
            rec(0x1000, &[EventKind::FpFma], 1),
            rec(0x1004, &[EventKind::Loads, EventKind::L1DMiss], 12),
            rec(0x1008, &[EventKind::FpFma], 1),
        ];
        assert_eq!(estimate_count(&samples, 1000, EventKind::FpFma), 2000);
        assert_eq!(estimate_count(&samples, 1000, EventKind::L1DMiss), 1000);
        assert_eq!(estimate_count(&samples, 1000, EventKind::Stores), 0);
        assert_eq!(estimated_instructions(&samples, 1000), 3000);
        assert_eq!(estimated_cycles(&samples, 10), 140);
    }

    #[test]
    fn estimate_counts_batch() {
        let samples = vec![rec(0, &[EventKind::Branches], 1)];
        let v = estimate_counts(&samples, 64, &[EventKind::Branches, EventKind::FpAdd]);
        assert_eq!(v, vec![64, 0]);
    }

    #[test]
    fn profile_filters_by_kind_and_is_exact() {
        let samples = vec![
            rec(0x1000, &[EventKind::L1DMiss], 10),
            rec(0x1000, &[EventKind::L1DMiss], 10),
            rec(0x1040, &[EventKind::FpAdd], 1),
        ];
        let cfg = ProfilConfig {
            start: 0x1000,
            end: 0x1080,
            bucket_bytes: 64,
            threshold: 1,
        };
        let p = profile_from_samples(&samples, EventKind::L1DMiss, cfg);
        assert_eq!(p.buckets(), &[2, 0]);
    }

    #[test]
    fn data_profile_groups_by_granule() {
        let mut samples = vec![
            rec(0x10, &[EventKind::L1DMiss], 9),
            rec(0x14, &[EventKind::L1DMiss], 9),
            rec(0x18, &[EventKind::L1DMiss], 9),
            rec(0x1c, &[EventKind::FpAdd], 1),
        ];
        samples[0].daddr = Some(0x1_0000);
        samples[1].daddr = Some(0x1_0FF8); // same 4 KiB page
        samples[2].daddr = Some(0x2_0000); // different page
        samples[3].daddr = Some(0x9_0000); // not an L1DMiss sample
        let prof = data_profile_from_samples(&samples, EventKind::L1DMiss, 4096);
        assert_eq!(prof, vec![(0x1_0000, 2), (0x2_0000, 1)]);
    }

    #[test]
    fn empty_stream_estimates_zero() {
        assert_eq!(estimate_count(&[], 1024, EventKind::Cycles), 0);
        assert_eq!(estimated_instructions(&[], 1024), 0);
    }
}
