//! # papi-capi — the C API surface of the PAPI specification
//!
//! PAPI is specified as a C library; this crate exposes the specification's
//! function names and calling conventions (`PAPI_library_init`,
//! `PAPI_create_eventset`, `PAPI_start`, `PAPI_flops`, …) as
//! `extern "C"` symbols over `papi-core`, using the C API's global-session
//! model and its negative `PAPI_E*` return codes.
//!
//! Because the monitored "process" is a simulated machine, two `PAPIx_*`
//! extensions (not in the C spec) stand in for process creation: selecting
//! a platform and loading a workload. Everything else follows the spec.
//!
//! Safety: the C entry points take raw pointers; each documents and checks
//! its contract (null pointers are rejected with `PAPI_EINVAL`).

use papi_core::{
    BoxSubstrate, Papi, PapiError, PapiThread, Preset, Substrate, SubstrateRegistry, ThreadedPapi,
};
use std::cell::RefCell;
use std::ffi::{c_char, c_int, c_longlong, c_uint, c_ulong, CStr};
use std::sync::{Arc, Mutex};

/// `PAPI_VER_CURRENT` of the version we implement (3.0.0 encoded as in the
/// C header: major<<24 | minor<<16 | revision<<8).
#[allow(clippy::identity_op, clippy::erasing_op)]
pub const PAPI_VER_CURRENT: c_int = (3 << 24) | (0 << 16) | (0 << 8);

// The spec's return codes.
pub const PAPI_OK: c_int = 0;
pub const PAPI_EINVAL: c_int = -1;
pub const PAPI_ENOMEM: c_int = -2;
pub const PAPI_ESYS: c_int = -3;
pub const PAPI_ESBSTR: c_int = -4;
pub const PAPI_ENOEVNT: c_int = -7;
pub const PAPI_ECNFLCT: c_int = -8;
pub const PAPI_ENOTRUN: c_int = -9;
pub const PAPI_EISRUN: c_int = -10;
pub const PAPI_ENOEVST: c_int = -11;
pub const PAPI_ENOTPRESET: c_int = -12;
pub const PAPI_ENOCNTR: c_int = -13;
pub const PAPI_EMISC: c_int = -14;
pub const PAPI_ENOSUPP: c_int = -19;
pub const PAPI_ENOINIT: c_int = -22;

fn errno(e: &PapiError) -> c_int {
    match e {
        PapiError::Inval(_) => PAPI_EINVAL,
        PapiError::NoEvnt(_) => PAPI_ENOEVNT,
        PapiError::NotPreset(_) => PAPI_ENOTPRESET,
        PapiError::NoCntr => PAPI_ENOCNTR,
        PapiError::Cnflct => PAPI_ECNFLCT,
        PapiError::NotRun => PAPI_ENOTRUN,
        PapiError::IsRun => PAPI_EISRUN,
        PapiError::NoEvst(_) => PAPI_ENOEVST,
        PapiError::NoSupp(_) => PAPI_ENOSUPP,
        PapiError::Substrate(_) => PAPI_ESBSTR,
        // Transient substrate faults that survived the portable layer's
        // retry budget: distinguishable from permanent ESBSTR so C callers
        // can implement their own backoff.
        PapiError::SubstrateTransient(_) => PAPI_EMISC,
    }
}

// The C library's global session holds its substrate behind dynamic
// dispatch: `PAPIx_init_platform` picks any registry backend by name.
static SESSION: Mutex<Option<Papi<BoxSubstrate>>> = Mutex::new(None);

// Thread support, mirroring `PAPI_thread_init`/`PAPI_register_thread`:
// the platform name selected at init (new registered threads get their own
// substrate of the same platform), the sharded per-thread session table,
// and the user-supplied thread-id function.
//
// The POOL mutex guards only this *handle slot* (swapped on init/shutdown).
// A registered thread's C calls never take it: they route through the
// thread-local TOKEN below, whose session lives behind papi-core's
// sequence-stamped cell — one uncontended compare-exchange per call, no OS
// mutex, so N registered C threads count without serializing on each
// other.
static PLATFORM: Mutex<Option<String>> = Mutex::new(None);
static POOL: Mutex<Option<Arc<ThreadedPapi<BoxSubstrate>>>> = Mutex::new(None);
static THREAD_ID_FN: Mutex<Option<extern "C" fn() -> c_ulong>> = Mutex::new(None);

thread_local! {
    // A registered thread's token: while present, every C API call from
    // this thread routes to the thread's own private session.
    static TOKEN: RefCell<Option<PapiThread<BoxSubstrate>>> = const { RefCell::new(None) };
}

fn with_papi<F: FnOnce(&mut Papi<BoxSubstrate>) -> c_int>(f: F) -> c_int {
    // A registered thread operates on its own session — same functions,
    // same EventSet handles, per-thread counters (the C API's per-thread
    // model: handles are only meaningful on the thread that made them).
    enum Routed<F> {
        Done(c_int),
        Global(F),
    }
    let routed = TOKEN.with(|t| match t.borrow().as_ref() {
        Some(token) => Routed::Done(token.with(|p| f(p))),
        None => Routed::Global(f),
    });
    let f = match routed {
        Routed::Done(rc) => return rc,
        Routed::Global(f) => f,
    };
    let mut guard = match SESSION.lock() {
        Ok(g) => g,
        Err(_) => return PAPI_EMISC,
    };
    match guard.as_mut() {
        Some(p) => f(p),
        None => PAPI_ENOINIT,
    }
}

/// `PAPI_library_init(PAPI_VER_CURRENT)`. Initializes the library on the
/// `sim-generic` platform (use [`PAPIx_init_platform`] for another). Returns
/// the version on success, like the C API.
///
/// # Safety
/// Safe to call from any thread; the session is a process-global guarded by
/// a mutex, as in the C library.
#[no_mangle]
pub extern "C" fn PAPI_library_init(version: c_int) -> c_int {
    if version != PAPI_VER_CURRENT {
        return PAPI_EINVAL;
    }
    init_platform("sim-generic")
}

fn registry() -> SubstrateRegistry {
    let mut reg = SubstrateRegistry::with_builtin();
    perfctr_emu::register_substrates(&mut reg);
    reg
}

fn init_platform(name: &str) -> c_int {
    match Papi::init_from_registry(&registry(), name, 42) {
        Ok(p) => {
            *SESSION.lock().unwrap() = Some(p);
            *PLATFORM.lock().unwrap() = Some(name.to_string());
            // A new platform invalidates the old per-thread session table;
            // threads registered after this point get the new substrate.
            *POOL.lock().unwrap() = None;
            PAPI_VER_CURRENT
        }
        Err(_) => PAPI_ESBSTR,
    }
}

/// Extension: initialize on a named substrate — any simulated platform
/// (`sim:x86`, or the legacy `sim-x86` spelling) or the `perfctr`
/// kernel-patch emulation.
///
/// # Safety
/// `name` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn PAPIx_init_platform(name: *const c_char) -> c_int {
    if name.is_null() {
        return PAPI_EINVAL;
    }
    let Ok(s) = CStr::from_ptr(name).to_str() else {
        return PAPI_EINVAL;
    };
    init_platform(s)
}

/// Extension: load a named demo workload (`matmul`, `dense_fp`, `stream`,
/// `chase`, `cg`) into the monitored machine.
///
/// # Safety
/// `name` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn PAPIx_load_workload(name: *const c_char) -> c_int {
    if name.is_null() {
        return PAPI_EINVAL;
    }
    let Ok(s) = CStr::from_ptr(name).to_str() else {
        return PAPI_EINVAL;
    };
    let program = match s {
        "matmul" => papi_workloads::matmul(24).program,
        "dense_fp" => papi_workloads::dense_fp(100_000, 4, 2).program,
        "stream" => papi_workloads::stream_copy(1 << 18, 2).program,
        "chase" => papi_workloads::pointer_chase(1 << 20, 100_000).program,
        "cg" => papi_workloads::cg_like(256, 8, 4).program,
        _ => return PAPI_EINVAL,
    };
    with_papi(|p| match p.substrate_mut().load_program(program.clone()) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// Extension: run the monitored application to completion.
#[no_mangle]
pub extern "C" fn PAPIx_run_app() -> c_int {
    with_papi(|p| match p.run_app() {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_shutdown`.
///
/// Clears the global session, the per-thread session table, and the
/// calling thread's registration. Tokens held by *other* still-registered
/// threads keep their private sessions alive until those threads exit (or
/// call [`PAPI_unregister_thread`]); they can no longer be unregistered
/// through the retired table.
#[no_mangle]
pub extern "C" fn PAPI_shutdown() {
    *SESSION.lock().unwrap() = None;
    *POOL.lock().unwrap() = None;
    *THREAD_ID_FN.lock().unwrap() = None;
    TOKEN.with(|t| t.borrow_mut().take());
}

/// `PAPI_thread_init(id_fn)`: enable thread support, supplying the
/// function that names the calling OS thread (`pthread_self` in C).
/// Must follow `PAPI_library_init`; required before
/// [`PAPI_register_thread`].
///
/// # Safety
/// `id_fn` must be callable for the lifetime of the library (it is a plain
/// function pointer; a NULL pointer on the C side arrives as `None` and is
/// rejected with `PAPI_EINVAL`).
#[no_mangle]
pub extern "C" fn PAPI_thread_init(id_fn: Option<extern "C" fn() -> c_ulong>) -> c_int {
    let Some(id_fn) = id_fn else {
        return PAPI_EINVAL;
    };
    if SESSION.lock().map(|g| g.is_none()).unwrap_or(true) {
        return PAPI_ENOINIT;
    }
    *THREAD_ID_FN.lock().unwrap() = Some(id_fn);
    PAPI_OK
}

/// `PAPI_thread_id()`: the calling thread's id as reported by the
/// function given to [`PAPI_thread_init`], or `(unsigned long)-1` when
/// thread support is not initialized.
#[no_mangle]
pub extern "C" fn PAPI_thread_id() -> c_ulong {
    match *THREAD_ID_FN.lock().unwrap() {
        Some(f) => f(),
        None => c_ulong::MAX,
    }
}

/// `PAPI_register_thread()`: give the calling OS thread its own counter
/// context. From this call until [`PAPI_unregister_thread`], every PAPI
/// call from this thread operates on the thread's private session (its
/// own substrate, its own EventSet handles — handles are per-thread, as
/// in the C library).
///
/// Errors: `PAPI_ENOINIT` before `PAPI_library_init`, `PAPI_EMISC` before
/// [`PAPI_thread_init`], `PAPI_ECNFLCT` if the thread is already
/// registered.
#[no_mangle]
pub extern "C" fn PAPI_register_thread() -> c_int {
    if THREAD_ID_FN.lock().unwrap().is_none() {
        return PAPI_EMISC;
    }
    let Some(platform) = PLATFORM.lock().unwrap().clone() else {
        return PAPI_ENOINIT;
    };
    let pool = {
        let mut pool = POOL.lock().unwrap();
        pool.get_or_insert_with(|| {
            Arc::new(ThreadedPapi::from_registry(
                Arc::new(registry()),
                &platform,
                // Per-thread machines get seeds distinct from the global
                // session's fixed seed 42.
                1000,
            ))
        })
        .clone()
    };
    match pool.register_thread() {
        Ok(token) => {
            TOKEN.with(|t| *t.borrow_mut() = Some(token));
            PAPI_OK
        }
        Err(e) => errno(&e),
    }
}

/// `PAPI_unregister_thread()`: retire the calling thread's private
/// session and route its future PAPI calls back to the global session.
///
/// Fails with `PAPI_EINVAL` if the thread is not registered or still owns
/// live EventSets (destroy them first — real PAPI makes the same demand).
#[no_mangle]
pub extern "C" fn PAPI_unregister_thread() -> c_int {
    let Some(token) = TOKEN.with(|t| t.borrow_mut().take()) else {
        return PAPI_EINVAL;
    };
    let Some(pool) = POOL.lock().unwrap().clone() else {
        // The table was torn down (shutdown/platform change) while this
        // thread was registered; dropping the token frees its session.
        return PAPI_OK;
    };
    match pool.unregister_thread(token) {
        Ok(_session) => PAPI_OK,
        Err((token, e)) => {
            // Registration stands; the thread keeps its session.
            TOKEN.with(|t| *t.borrow_mut() = Some(token));
            errno(&e)
        }
    }
}

/// `PAPI_is_initialized`.
#[no_mangle]
pub extern "C" fn PAPI_is_initialized() -> c_int {
    if SESSION.lock().map(|g| g.is_some()).unwrap_or(false) {
        1 // PAPI_LOW_LEVEL_INITED
    } else {
        0 // PAPI_NOT_INITED
    }
}

/// `PAPI_num_counters`.
#[no_mangle]
pub extern "C" fn PAPI_num_counters() -> c_int {
    let mut out = PAPI_ENOINIT;
    let _ = with_papi(|p| {
        out = p.num_counters() as c_int;
        PAPI_OK
    });
    out
}

/// `PAPI_create_eventset(&es)`. `*es` must be `PAPI_NULL` (-1) on entry.
///
/// # Safety
/// `es` must be a valid, writable pointer.
#[no_mangle]
pub unsafe extern "C" fn PAPI_create_eventset(es: *mut c_int) -> c_int {
    if es.is_null() || *es != -1 {
        return PAPI_EINVAL;
    }
    with_papi(|p| {
        *es = p.create_eventset() as c_int;
        PAPI_OK
    })
}

/// `PAPI_destroy_eventset(&es)`; resets `*es` to `PAPI_NULL` on success.
///
/// # Safety
/// `es` must be a valid, writable pointer.
#[no_mangle]
pub unsafe extern "C" fn PAPI_destroy_eventset(es: *mut c_int) -> c_int {
    if es.is_null() || *es < 0 {
        return PAPI_EINVAL;
    }
    let id = *es as usize;
    with_papi(|p| match p.destroy_eventset(id) {
        Ok(()) => {
            *es = -1;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_add_event`.
#[no_mangle]
pub extern "C" fn PAPI_add_event(es: c_int, code: c_uint) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_papi(|p| match p.add_event(es as usize, code) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_set_multiplex`.
#[no_mangle]
pub extern "C" fn PAPI_set_multiplex(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_papi(|p| match p.set_multiplex(es as usize) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_start`.
#[no_mangle]
pub extern "C" fn PAPI_start(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_papi(|p| match p.start(es as usize) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

unsafe fn copy_out(values: *mut c_longlong, v: &[i64]) -> c_int {
    if values.is_null() {
        return PAPI_EINVAL;
    }
    for (i, &x) in v.iter().enumerate() {
        *values.add(i) = x;
    }
    PAPI_OK
}

/// `PAPI_stop(es, values)`. `values` must have room for one `long long`
/// per event in the set.
///
/// # Safety
/// `values` must point to at least `PAPI_num_events(es)` writable slots.
#[no_mangle]
pub unsafe extern "C" fn PAPI_stop(es: c_int, values: *mut c_longlong) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_papi(|p| match p.stop(es as usize) {
        Ok(v) => copy_out(values, &v),
        Err(e) => errno(&e),
    })
}

/// `PAPI_read(es, values)`.
///
/// Delegates to the zero-allocation `read_into` path: the caller's buffer is
/// filled in place, with no intermediate vector on this side of the FFI
/// boundary either.
///
/// # Safety
/// `values` must point to at least `PAPI_num_events(es)` writable slots.
#[no_mangle]
pub unsafe extern "C" fn PAPI_read(es: c_int, values: *mut c_longlong) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_papi(|p| {
        let n = match p.num_events(es as usize) {
            Ok(n) => n,
            Err(e) => return errno(&e),
        };
        if values.is_null() {
            return PAPI_EINVAL;
        }
        let out = std::slice::from_raw_parts_mut(values, n);
        match p.read_into(es as usize, out) {
            Ok(()) => PAPI_OK,
            Err(e) => errno(&e),
        }
    })
}

/// `PAPI_accum(es, values)`.
///
/// # Safety
/// `values` must point to at least `PAPI_num_events(es)` readable+writable
/// slots.
#[no_mangle]
pub unsafe extern "C" fn PAPI_accum(es: c_int, values: *mut c_longlong) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_papi(|p| {
        let n = match p.num_events(es as usize) {
            Ok(n) => n,
            Err(e) => return errno(&e),
        };
        if values.is_null() {
            return PAPI_EINVAL;
        }
        // Accumulate straight into the caller's buffer: `accum` stages its
        // read in per-session scratch, so no allocation happens here either.
        let acc = std::slice::from_raw_parts_mut(values, n);
        match p.accum(es as usize, acc) {
            Ok(()) => PAPI_OK,
            Err(e) => errno(&e),
        }
    })
}

/// `PAPI_reset`.
#[no_mangle]
pub extern "C" fn PAPI_reset(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_papi(|p| match p.reset(es as usize) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_query_event`.
#[no_mangle]
pub extern "C" fn PAPI_query_event(code: c_uint) -> c_int {
    with_papi(|p| {
        if p.query_event(code) {
            PAPI_OK
        } else {
            PAPI_ENOEVNT
        }
    })
}

/// `PAPI_event_name_to_code`.
///
/// # Safety
/// `name` must be a valid NUL-terminated C string; `code` must be writable.
#[no_mangle]
pub unsafe extern "C" fn PAPI_event_name_to_code(name: *const c_char, code: *mut c_uint) -> c_int {
    if name.is_null() || code.is_null() {
        return PAPI_EINVAL;
    }
    let Ok(n) = CStr::from_ptr(name).to_str() else {
        return PAPI_EINVAL;
    };
    with_papi(|p| match p.event_name_to_code(n) {
        Ok(c) => {
            *code = c;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_get_real_usec`.
#[no_mangle]
pub extern "C" fn PAPI_get_real_usec() -> c_longlong {
    let mut out = 0;
    let _ = with_papi(|p| {
        out = p.get_real_usec() as c_longlong;
        PAPI_OK
    });
    out
}

/// `PAPI_get_real_cyc`.
#[no_mangle]
pub extern "C" fn PAPI_get_real_cyc() -> c_longlong {
    let mut out = 0;
    let _ = with_papi(|p| {
        out = p.get_real_cyc() as c_longlong;
        PAPI_OK
    });
    out
}

/// `PAPI_get_virt_usec` (thread 0, like the single-threaded C default).
#[no_mangle]
pub extern "C" fn PAPI_get_virt_usec() -> c_longlong {
    let mut out = 0;
    let _ = with_papi(|p| {
        out = p.get_virt_usec(0).unwrap_or(0) as c_longlong;
        PAPI_OK
    });
    out
}

/// `PAPI_flops(&rtime, &ptime, &flpops, &mflops)` — the spec's easy entry
/// point: first call starts counting, later calls report.
///
/// # Safety
/// All four pointers must be valid and writable.
#[no_mangle]
pub unsafe extern "C" fn PAPI_flops(
    rtime: *mut f32,
    ptime: *mut f32,
    flpops: *mut c_longlong,
    mflops: *mut f32,
) -> c_int {
    if rtime.is_null() || ptime.is_null() || flpops.is_null() || mflops.is_null() {
        return PAPI_EINVAL;
    }
    with_papi(|p| match p.flops() {
        Ok(f) => {
            *rtime = (f.real_us / 1e6) as f32;
            *ptime = (f.proc_us / 1e6) as f32;
            *flpops = f.flpops;
            *mflops = f.mflops as f32;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// The preset code of `PAPI_TOT_CYC` etc., exported as constants for C
/// callers (the header would `#define` these).
#[no_mangle]
pub extern "C" fn PAPI_preset_code(index: c_int) -> c_uint {
    Preset::ALL
        .get(index as usize)
        .map(|p| p.code())
        .unwrap_or(0)
}

/// `PAPI_num_events(es)`.
#[no_mangle]
pub extern "C" fn PAPI_num_events(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    let mut out = PAPI_ENOEVST;
    let rc = with_papi(|p| match p.num_events(es as usize) {
        Ok(n) => {
            out = n as c_int;
            PAPI_OK
        }
        Err(e) => errno(&e),
    });
    if rc == PAPI_OK {
        out
    } else {
        rc
    }
}

/// `PAPI_list_events(es, codes, &n)`: on entry `*n` is the buffer size; on
/// exit it is the number of events written.
///
/// # Safety
/// `codes` must point to at least `*n` writable `c_uint` slots; `n` must be
/// valid and writable.
#[no_mangle]
pub unsafe extern "C" fn PAPI_list_events(es: c_int, codes: *mut c_uint, n: *mut c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    if codes.is_null() || n.is_null() || *n < 0 {
        return PAPI_EINVAL;
    }
    let cap = *n as usize;
    with_papi(|p| match p.list_events(es as usize) {
        Ok(evts) => {
            let k = evts.len().min(cap);
            for (i, &c) in evts.iter().take(k).enumerate() {
                *codes.add(i) = c;
            }
            *n = k as c_int;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_event_code_to_name(code, buf, len)`: NUL-terminated, truncating.
///
/// # Safety
/// `buf` must point to at least `len` writable bytes.
#[no_mangle]
pub unsafe extern "C" fn PAPI_event_code_to_name(
    code: c_uint,
    buf: *mut c_char,
    len: c_int,
) -> c_int {
    if buf.is_null() || len <= 0 {
        return PAPI_EINVAL;
    }
    with_papi(|p| match p.event_code_to_name(code) {
        Ok(name) => {
            let bytes = name.as_bytes();
            let k = bytes.len().min(len as usize - 1);
            for (i, &b) in bytes.iter().take(k).enumerate() {
                *buf.add(i) = b as c_char;
            }
            *buf.add(k) = 0;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_strerror(code)`: static description of an error code, or NULL for
/// an unknown code (as in the C library).
#[no_mangle]
pub extern "C" fn PAPI_strerror(code: c_int) -> *const c_char {
    let s: &'static [u8] = match code {
        PAPI_OK => b"No error ",
        PAPI_EINVAL => b"Invalid argument ",
        PAPI_ENOMEM => b"Insufficient memory ",
        PAPI_ESYS => b"A system or C library call failed ",
        PAPI_ESBSTR => b"Substrate returned an error ",
        PAPI_ENOEVNT => b"Event does not exist ",
        PAPI_ECNFLCT => b"Event exists, but cannot be counted due to hardware resource limits ",
        PAPI_ENOTRUN => b"EventSet is currently not running ",
        PAPI_EISRUN => b"EventSet is currently counting ",
        PAPI_ENOEVST => b"No such EventSet available ",
        PAPI_ENOTPRESET => b"Event in argument is not a valid preset ",
        PAPI_ENOCNTR => b"Hardware does not support performance counters ",
        PAPI_EMISC => b"Unknown error code ",
        PAPI_ENOSUPP => b"Not supported ",
        PAPI_ENOINIT => b"PAPI hasn't been initialized yet ",
        _ => return std::ptr::null(),
    };
    s.as_ptr() as *const c_char
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    // The global session serializes these tests.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn cstr(s: &str) -> CString {
        CString::new(s).unwrap()
    }

    #[test]
    fn c_api_full_flow() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        assert_eq!(PAPI_is_initialized(), 1);
        unsafe {
            assert_eq!(PAPIx_load_workload(cstr("matmul").as_ptr()), PAPI_OK);
            let mut es: c_int = -1;
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
            assert!(es >= 0);
            let mut code: c_uint = 0;
            assert_eq!(
                PAPI_event_name_to_code(cstr("PAPI_FP_OPS").as_ptr(), &mut code),
                PAPI_OK
            );
            assert_eq!(PAPI_add_event(es, code), PAPI_OK);
            assert_eq!(PAPI_start(es), PAPI_OK);
            assert_eq!(PAPIx_run_app(), PAPI_OK);
            let mut values: [c_longlong; 1] = [0];
            assert_eq!(PAPI_stop(es, values.as_mut_ptr()), PAPI_OK);
            assert_eq!(values[0], 2 * 24i64.pow(3));
            assert_eq!(PAPI_destroy_eventset(&mut es), PAPI_OK);
            assert_eq!(es, -1);
        }
        PAPI_shutdown();
        assert_eq!(PAPI_is_initialized(), 0);
    }

    #[test]
    fn c_api_init_on_named_substrates() {
        let _g = TEST_LOCK.lock().unwrap();
        unsafe {
            // Registry spelling, legacy spelling, and the perfctr backend
            // all initialize; unknown names map to PAPI_ESBSTR.
            for name in ["sim:power3", "sim-power3", "perfctr"] {
                assert_eq!(
                    PAPIx_init_platform(cstr(name).as_ptr()),
                    PAPI_VER_CURRENT,
                    "{name}"
                );
            }
            assert_eq!(PAPIx_init_platform(cstr("sim-vax").as_ptr()), PAPI_ESBSTR);
            // The perfctr session counts like any other.
            assert_eq!(
                PAPIx_init_platform(cstr("perfctr").as_ptr()),
                PAPI_VER_CURRENT
            );
            assert_eq!(PAPIx_load_workload(cstr("matmul").as_ptr()), PAPI_OK);
            let mut es: c_int = -1;
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
            let mut code: c_uint = 0;
            assert_eq!(
                PAPI_event_name_to_code(cstr("PAPI_FP_OPS").as_ptr(), &mut code),
                PAPI_OK
            );
            assert_eq!(PAPI_add_event(es, code), PAPI_OK);
            assert_eq!(PAPI_start(es), PAPI_OK);
            assert_eq!(PAPIx_run_app(), PAPI_OK);
            let mut values: [c_longlong; 1] = [0];
            assert_eq!(PAPI_stop(es, values.as_mut_ptr()), PAPI_OK);
            assert_eq!(values[0], 2 * 24i64.pow(3));
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_error_codes() {
        let _g = TEST_LOCK.lock().unwrap();
        PAPI_shutdown();
        // Not initialized.
        assert_eq!(PAPI_start(0), PAPI_ENOINIT);
        assert_eq!(PAPI_library_init(123), PAPI_EINVAL);
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            // Bad eventset handles.
            assert_eq!(PAPI_add_event(-1, 0), PAPI_ENOEVST);
            assert_eq!(PAPI_add_event(99, PAPI_preset_code(0)), PAPI_ENOEVST);
            let mut es: c_int = 5; // must be PAPI_NULL on entry
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_EINVAL);
            es = -1;
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
            // Unknown event.
            assert_eq!(PAPI_add_event(es, 0x4abc_0000), PAPI_ENOEVNT);
            // Stop before start.
            let mut v: [c_longlong; 1] = [0];
            assert_eq!(PAPI_stop(es, v.as_mut_ptr()), PAPI_ENOTRUN);
            // Unknown workload / null pointers.
            assert_eq!(PAPIx_load_workload(cstr("nope").as_ptr()), PAPI_EINVAL);
            assert_eq!(PAPIx_load_workload(std::ptr::null()), PAPI_EINVAL);
            let mut code: c_uint = 0;
            assert_eq!(
                PAPI_event_name_to_code(std::ptr::null(), &mut code),
                PAPI_EINVAL
            );
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_introspection_and_strerror() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            let mut es: c_int = -1;
            PAPI_create_eventset(&mut es);
            let c0 = PAPI_preset_code(0);
            let c1 = PAPI_preset_code(1);
            PAPI_add_event(es, c0);
            PAPI_add_event(es, c1);
            assert_eq!(PAPI_num_events(es), 2);
            let mut codes = [0u32; 8];
            let mut n: c_int = 8;
            assert_eq!(PAPI_list_events(es, codes.as_mut_ptr(), &mut n), PAPI_OK);
            assert_eq!(n, 2);
            assert_eq!(codes[0], c0);
            let mut buf = [0i8; 32];
            assert_eq!(PAPI_event_code_to_name(c0, buf.as_mut_ptr(), 32), PAPI_OK);
            let name = CStr::from_ptr(buf.as_ptr()).to_str().unwrap();
            assert_eq!(name, "PAPI_TOT_CYC");
            // Truncation keeps NUL termination.
            let mut tiny = [0i8; 6];
            assert_eq!(PAPI_event_code_to_name(c0, tiny.as_mut_ptr(), 6), PAPI_OK);
            assert_eq!(CStr::from_ptr(tiny.as_ptr()).to_str().unwrap(), "PAPI_");
            // strerror
            let msg = CStr::from_ptr(PAPI_strerror(PAPI_ECNFLCT))
                .to_str()
                .unwrap();
            assert!(msg.contains("hardware resource"));
            assert!(PAPI_strerror(-999).is_null());
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_flops_easy_path() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            assert_eq!(PAPIx_load_workload(cstr("dense_fp").as_ptr()), PAPI_OK);
            let (mut rt, mut pt, mut fl, mut mf) = (0f32, 0f32, 0i64, 0f32);
            assert_eq!(PAPI_flops(&mut rt, &mut pt, &mut fl, &mut mf), PAPI_OK);
            assert_eq!(fl, 0);
            assert_eq!(PAPIx_run_app(), PAPI_OK);
            assert_eq!(PAPI_flops(&mut rt, &mut pt, &mut fl, &mut mf), PAPI_OK);
            assert_eq!(fl, 100_000 * 10); // 4 FMA x2 + 2 adds
            assert!(mf > 0.0 && rt > 0.0 && pt > 0.0);
        }
        PAPI_shutdown();
    }

    extern "C" fn fake_tid() -> c_ulong {
        7
    }

    #[test]
    fn c_api_thread_registration_flow() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        // Thread support is opt-in, as in the C library.
        assert_eq!(PAPI_thread_id(), c_ulong::MAX);
        assert_eq!(PAPI_register_thread(), PAPI_EMISC);
        assert_eq!(PAPI_thread_init(None), PAPI_EINVAL);
        assert_eq!(PAPI_thread_init(Some(fake_tid)), PAPI_OK);
        assert_eq!(PAPI_thread_id(), 7);
        // Unregistering a never-registered thread is an error, not a panic.
        assert_eq!(PAPI_unregister_thread(), PAPI_EINVAL);

        let mut joins = Vec::new();
        for _ in 0..4 {
            joins.push(std::thread::spawn(|| unsafe {
                assert_eq!(PAPI_register_thread(), PAPI_OK);
                // Double registration of the same OS thread conflicts.
                assert_eq!(PAPI_register_thread(), PAPI_ECNFLCT);
                // From here, every call operates on this thread's private
                // session: its own machine, workload, and EventSet handles.
                assert_eq!(PAPIx_load_workload(cstr("matmul").as_ptr()), PAPI_OK);
                let mut es: c_int = -1;
                assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
                let mut code: c_uint = 0;
                assert_eq!(
                    PAPI_event_name_to_code(cstr("PAPI_FP_OPS").as_ptr(), &mut code),
                    PAPI_OK
                );
                assert_eq!(PAPI_add_event(es, code), PAPI_OK);
                assert_eq!(PAPI_start(es), PAPI_OK);
                assert_eq!(PAPIx_run_app(), PAPI_OK);
                let mut v: [c_longlong; 1] = [0];
                assert_eq!(PAPI_stop(es, v.as_mut_ptr()), PAPI_OK);
                // Unregistering with a live EventSet is rejected; the
                // registration (and the handle) survive for cleanup.
                assert_eq!(PAPI_unregister_thread(), PAPI_EINVAL);
                assert_eq!(PAPI_destroy_eventset(&mut es), PAPI_OK);
                assert_eq!(PAPI_unregister_thread(), PAPI_OK);
                v[0]
            }));
        }
        let counts: Vec<c_longlong> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        // Four private machines ran four private matmuls: identical, exact.
        assert!(counts.iter().all(|&c| c == 2 * 24i64.pow(3)), "{counts:?}");
        PAPI_shutdown();
        assert_eq!(PAPI_thread_id(), c_ulong::MAX);
    }

    #[test]
    fn c_api_registered_thread_does_not_disturb_global_session() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        assert_eq!(PAPI_thread_init(Some(fake_tid)), PAPI_OK);
        unsafe {
            // Global session counts matmul on the main thread...
            assert_eq!(PAPIx_load_workload(cstr("matmul").as_ptr()), PAPI_OK);
            let mut es: c_int = -1;
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
            let mut code: c_uint = 0;
            PAPI_event_name_to_code(cstr("PAPI_FP_OPS").as_ptr(), &mut code);
            assert_eq!(PAPI_add_event(es, code), PAPI_OK);
            assert_eq!(PAPI_start(es), PAPI_OK);
            // ...while a registered thread counts a different workload on
            // its own machine, concurrently.
            let t = std::thread::spawn(move || {
                assert_eq!(PAPI_register_thread(), PAPI_OK);
                assert_eq!(PAPIx_load_workload(cstr("dense_fp").as_ptr()), PAPI_OK);
                let mut es: c_int = -1;
                assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
                assert_eq!(PAPI_add_event(es, code), PAPI_OK);
                assert_eq!(PAPI_start(es), PAPI_OK);
                assert_eq!(PAPIx_run_app(), PAPI_OK);
                let mut v: [c_longlong; 1] = [0];
                assert_eq!(PAPI_stop(es, v.as_mut_ptr()), PAPI_OK);
                assert_eq!(PAPI_destroy_eventset(&mut es), PAPI_OK);
                assert_eq!(PAPI_unregister_thread(), PAPI_OK);
                v[0]
            });
            let thread_flops = t.join().unwrap();
            assert_eq!(thread_flops, 100_000 * 10);
            // The global session's count is untouched by the thread's run.
            assert_eq!(PAPIx_run_app(), PAPI_OK);
            let mut v: [c_longlong; 1] = [0];
            assert_eq!(PAPI_stop(es, v.as_mut_ptr()), PAPI_OK);
            assert_eq!(v[0], 2 * 24i64.pow(3));
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_accum_and_reset() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            assert_eq!(PAPIx_load_workload(cstr("dense_fp").as_ptr()), PAPI_OK);
            let mut es: c_int = -1;
            PAPI_create_eventset(&mut es);
            let mut code: c_uint = 0;
            PAPI_event_name_to_code(cstr("PAPI_FMA_INS").as_ptr(), &mut code);
            PAPI_add_event(es, code);
            PAPI_start(es);
            PAPIx_run_app();
            let mut acc: [c_longlong; 1] = [1000];
            assert_eq!(PAPI_accum(es, acc.as_mut_ptr()), PAPI_OK);
            assert_eq!(acc[0], 1000 + 400_000);
            let mut v: [c_longlong; 1] = [0];
            assert_eq!(PAPI_read(es, v.as_mut_ptr()), PAPI_OK);
            assert_eq!(v[0], 0); // accum reset the counter
            PAPI_stop(es, v.as_mut_ptr());
        }
        PAPI_shutdown();
    }
}
