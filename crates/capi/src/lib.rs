//! # papi-capi — the C API surface of the PAPI specification
//!
//! PAPI is specified as a C library; this crate exposes the specification's
//! function names and calling conventions (`PAPI_library_init`,
//! `PAPI_create_eventset`, `PAPI_start`, `PAPI_flops`, …) as
//! `extern "C"` symbols over `papi-core`, using the C API's global-session
//! model and its negative `PAPI_E*` return codes.
//!
//! Because the monitored "process" is a simulated machine, two `PAPIx_*`
//! extensions (not in the C spec) stand in for process creation: selecting
//! a platform and loading a workload. Everything else follows the spec.
//!
//! Safety: the C entry points take raw pointers; each documents and checks
//! its contract (null pointers are rejected with `PAPI_EINVAL`).

use papi_core::{BoxSubstrate, Papi, PapiError, Preset, Substrate, SubstrateRegistry};
use std::ffi::{c_char, c_int, c_longlong, c_uint, CStr};
use std::sync::Mutex;

/// `PAPI_VER_CURRENT` of the version we implement (3.0.0 encoded as in the
/// C header: major<<24 | minor<<16 | revision<<8).
#[allow(clippy::identity_op, clippy::erasing_op)]
pub const PAPI_VER_CURRENT: c_int = (3 << 24) | (0 << 16) | (0 << 8);

// The spec's return codes.
pub const PAPI_OK: c_int = 0;
pub const PAPI_EINVAL: c_int = -1;
pub const PAPI_ENOMEM: c_int = -2;
pub const PAPI_ESYS: c_int = -3;
pub const PAPI_ESBSTR: c_int = -4;
pub const PAPI_ENOEVNT: c_int = -7;
pub const PAPI_ECNFLCT: c_int = -8;
pub const PAPI_ENOTRUN: c_int = -9;
pub const PAPI_EISRUN: c_int = -10;
pub const PAPI_ENOEVST: c_int = -11;
pub const PAPI_ENOTPRESET: c_int = -12;
pub const PAPI_ENOCNTR: c_int = -13;
pub const PAPI_EMISC: c_int = -14;
pub const PAPI_ENOSUPP: c_int = -19;
pub const PAPI_ENOINIT: c_int = -22;

fn errno(e: &PapiError) -> c_int {
    match e {
        PapiError::Inval(_) => PAPI_EINVAL,
        PapiError::NoEvnt(_) => PAPI_ENOEVNT,
        PapiError::NotPreset(_) => PAPI_ENOTPRESET,
        PapiError::NoCntr => PAPI_ENOCNTR,
        PapiError::Cnflct => PAPI_ECNFLCT,
        PapiError::NotRun => PAPI_ENOTRUN,
        PapiError::IsRun => PAPI_EISRUN,
        PapiError::NoEvst(_) => PAPI_ENOEVST,
        PapiError::NoSupp(_) => PAPI_ENOSUPP,
        PapiError::Substrate(_) => PAPI_ESBSTR,
    }
}

// The C library's global session holds its substrate behind dynamic
// dispatch: `PAPIx_init_platform` picks any registry backend by name.
struct Session {
    papi: Papi<BoxSubstrate>,
}

static SESSION: Mutex<Option<Session>> = Mutex::new(None);

fn with_session<F: FnOnce(&mut Session) -> c_int>(f: F) -> c_int {
    let mut guard = match SESSION.lock() {
        Ok(g) => g,
        Err(_) => return PAPI_EMISC,
    };
    match guard.as_mut() {
        Some(s) => f(s),
        None => PAPI_ENOINIT,
    }
}

/// `PAPI_library_init(PAPI_VER_CURRENT)`. Initializes the library on the
/// `sim-generic` platform (use [`PAPIx_init_platform`] for another). Returns
/// the version on success, like the C API.
///
/// # Safety
/// Safe to call from any thread; the session is a process-global guarded by
/// a mutex, as in the C library.
#[no_mangle]
pub extern "C" fn PAPI_library_init(version: c_int) -> c_int {
    if version != PAPI_VER_CURRENT {
        return PAPI_EINVAL;
    }
    init_platform("sim-generic")
}

fn init_platform(name: &str) -> c_int {
    let mut reg = SubstrateRegistry::with_builtin();
    perfctr_emu::register_substrates(&mut reg);
    match Papi::init_from_registry(&reg, name, 42) {
        Ok(p) => {
            *SESSION.lock().unwrap() = Some(Session { papi: p });
            PAPI_VER_CURRENT
        }
        Err(_) => PAPI_ESBSTR,
    }
}

/// Extension: initialize on a named substrate — any simulated platform
/// (`sim:x86`, or the legacy `sim-x86` spelling) or the `perfctr`
/// kernel-patch emulation.
///
/// # Safety
/// `name` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn PAPIx_init_platform(name: *const c_char) -> c_int {
    if name.is_null() {
        return PAPI_EINVAL;
    }
    let Ok(s) = CStr::from_ptr(name).to_str() else {
        return PAPI_EINVAL;
    };
    init_platform(s)
}

/// Extension: load a named demo workload (`matmul`, `dense_fp`, `stream`,
/// `chase`, `cg`) into the monitored machine.
///
/// # Safety
/// `name` must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn PAPIx_load_workload(name: *const c_char) -> c_int {
    if name.is_null() {
        return PAPI_EINVAL;
    }
    let Ok(s) = CStr::from_ptr(name).to_str() else {
        return PAPI_EINVAL;
    };
    let program = match s {
        "matmul" => papi_workloads::matmul(24).program,
        "dense_fp" => papi_workloads::dense_fp(100_000, 4, 2).program,
        "stream" => papi_workloads::stream_copy(1 << 18, 2).program,
        "chase" => papi_workloads::pointer_chase(1 << 20, 100_000).program,
        "cg" => papi_workloads::cg_like(256, 8, 4).program,
        _ => return PAPI_EINVAL,
    };
    with_session(
        |s| match s.papi.substrate_mut().load_program(program.clone()) {
            Ok(()) => PAPI_OK,
            Err(e) => errno(&e),
        },
    )
}

/// Extension: run the monitored application to completion.
#[no_mangle]
pub extern "C" fn PAPIx_run_app() -> c_int {
    with_session(|s| match s.papi.run_app() {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_shutdown`.
#[no_mangle]
pub extern "C" fn PAPI_shutdown() {
    *SESSION.lock().unwrap() = None;
}

/// `PAPI_is_initialized`.
#[no_mangle]
pub extern "C" fn PAPI_is_initialized() -> c_int {
    if SESSION.lock().map(|g| g.is_some()).unwrap_or(false) {
        1 // PAPI_LOW_LEVEL_INITED
    } else {
        0 // PAPI_NOT_INITED
    }
}

/// `PAPI_num_counters`.
#[no_mangle]
pub extern "C" fn PAPI_num_counters() -> c_int {
    let mut out = PAPI_ENOINIT;
    let _ = with_session(|s| {
        out = s.papi.num_counters() as c_int;
        PAPI_OK
    });
    out
}

/// `PAPI_create_eventset(&es)`. `*es` must be `PAPI_NULL` (-1) on entry.
///
/// # Safety
/// `es` must be a valid, writable pointer.
#[no_mangle]
pub unsafe extern "C" fn PAPI_create_eventset(es: *mut c_int) -> c_int {
    if es.is_null() || *es != -1 {
        return PAPI_EINVAL;
    }
    with_session(|s| {
        *es = s.papi.create_eventset() as c_int;
        PAPI_OK
    })
}

/// `PAPI_destroy_eventset(&es)`; resets `*es` to `PAPI_NULL` on success.
///
/// # Safety
/// `es` must be a valid, writable pointer.
#[no_mangle]
pub unsafe extern "C" fn PAPI_destroy_eventset(es: *mut c_int) -> c_int {
    if es.is_null() || *es < 0 {
        return PAPI_EINVAL;
    }
    let id = *es as usize;
    with_session(|s| match s.papi.destroy_eventset(id) {
        Ok(()) => {
            *es = -1;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_add_event`.
#[no_mangle]
pub extern "C" fn PAPI_add_event(es: c_int, code: c_uint) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_session(|s| match s.papi.add_event(es as usize, code) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_set_multiplex`.
#[no_mangle]
pub extern "C" fn PAPI_set_multiplex(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_session(|s| match s.papi.set_multiplex(es as usize) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_start`.
#[no_mangle]
pub extern "C" fn PAPI_start(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_session(|s| match s.papi.start(es as usize) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

unsafe fn copy_out(values: *mut c_longlong, v: &[i64]) -> c_int {
    if values.is_null() {
        return PAPI_EINVAL;
    }
    for (i, &x) in v.iter().enumerate() {
        *values.add(i) = x;
    }
    PAPI_OK
}

/// `PAPI_stop(es, values)`. `values` must have room for one `long long`
/// per event in the set.
///
/// # Safety
/// `values` must point to at least `PAPI_num_events(es)` writable slots.
#[no_mangle]
pub unsafe extern "C" fn PAPI_stop(es: c_int, values: *mut c_longlong) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_session(|s| match s.papi.stop(es as usize) {
        Ok(v) => copy_out(values, &v),
        Err(e) => errno(&e),
    })
}

/// `PAPI_read(es, values)`.
///
/// Delegates to the zero-allocation `read_into` path: the caller's buffer is
/// filled in place, with no intermediate vector on this side of the FFI
/// boundary either.
///
/// # Safety
/// `values` must point to at least `PAPI_num_events(es)` writable slots.
#[no_mangle]
pub unsafe extern "C" fn PAPI_read(es: c_int, values: *mut c_longlong) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_session(|s| {
        let n = match s.papi.num_events(es as usize) {
            Ok(n) => n,
            Err(e) => return errno(&e),
        };
        if values.is_null() {
            return PAPI_EINVAL;
        }
        let out = std::slice::from_raw_parts_mut(values, n);
        match s.papi.read_into(es as usize, out) {
            Ok(()) => PAPI_OK,
            Err(e) => errno(&e),
        }
    })
}

/// `PAPI_accum(es, values)`.
///
/// # Safety
/// `values` must point to at least `PAPI_num_events(es)` readable+writable
/// slots.
#[no_mangle]
pub unsafe extern "C" fn PAPI_accum(es: c_int, values: *mut c_longlong) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_session(|s| {
        let n = match s.papi.num_events(es as usize) {
            Ok(n) => n,
            Err(e) => return errno(&e),
        };
        if values.is_null() {
            return PAPI_EINVAL;
        }
        // Accumulate straight into the caller's buffer: `accum` stages its
        // read in per-session scratch, so no allocation happens here either.
        let acc = std::slice::from_raw_parts_mut(values, n);
        match s.papi.accum(es as usize, acc) {
            Ok(()) => PAPI_OK,
            Err(e) => errno(&e),
        }
    })
}

/// `PAPI_reset`.
#[no_mangle]
pub extern "C" fn PAPI_reset(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    with_session(|s| match s.papi.reset(es as usize) {
        Ok(()) => PAPI_OK,
        Err(e) => errno(&e),
    })
}

/// `PAPI_query_event`.
#[no_mangle]
pub extern "C" fn PAPI_query_event(code: c_uint) -> c_int {
    with_session(|s| {
        if s.papi.query_event(code) {
            PAPI_OK
        } else {
            PAPI_ENOEVNT
        }
    })
}

/// `PAPI_event_name_to_code`.
///
/// # Safety
/// `name` must be a valid NUL-terminated C string; `code` must be writable.
#[no_mangle]
pub unsafe extern "C" fn PAPI_event_name_to_code(name: *const c_char, code: *mut c_uint) -> c_int {
    if name.is_null() || code.is_null() {
        return PAPI_EINVAL;
    }
    let Ok(n) = CStr::from_ptr(name).to_str() else {
        return PAPI_EINVAL;
    };
    with_session(|s| match s.papi.event_name_to_code(n) {
        Ok(c) => {
            *code = c;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_get_real_usec`.
#[no_mangle]
pub extern "C" fn PAPI_get_real_usec() -> c_longlong {
    let mut out = 0;
    let _ = with_session(|s| {
        out = s.papi.get_real_usec() as c_longlong;
        PAPI_OK
    });
    out
}

/// `PAPI_get_real_cyc`.
#[no_mangle]
pub extern "C" fn PAPI_get_real_cyc() -> c_longlong {
    let mut out = 0;
    let _ = with_session(|s| {
        out = s.papi.get_real_cyc() as c_longlong;
        PAPI_OK
    });
    out
}

/// `PAPI_get_virt_usec` (thread 0, like the single-threaded C default).
#[no_mangle]
pub extern "C" fn PAPI_get_virt_usec() -> c_longlong {
    let mut out = 0;
    let _ = with_session(|s| {
        out = s.papi.get_virt_usec(0).unwrap_or(0) as c_longlong;
        PAPI_OK
    });
    out
}

/// `PAPI_flops(&rtime, &ptime, &flpops, &mflops)` — the spec's easy entry
/// point: first call starts counting, later calls report.
///
/// # Safety
/// All four pointers must be valid and writable.
#[no_mangle]
pub unsafe extern "C" fn PAPI_flops(
    rtime: *mut f32,
    ptime: *mut f32,
    flpops: *mut c_longlong,
    mflops: *mut f32,
) -> c_int {
    if rtime.is_null() || ptime.is_null() || flpops.is_null() || mflops.is_null() {
        return PAPI_EINVAL;
    }
    with_session(|s| match s.papi.flops() {
        Ok(f) => {
            *rtime = (f.real_us / 1e6) as f32;
            *ptime = (f.proc_us / 1e6) as f32;
            *flpops = f.flpops;
            *mflops = f.mflops as f32;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// The preset code of `PAPI_TOT_CYC` etc., exported as constants for C
/// callers (the header would `#define` these).
#[no_mangle]
pub extern "C" fn PAPI_preset_code(index: c_int) -> c_uint {
    Preset::ALL
        .get(index as usize)
        .map(|p| p.code())
        .unwrap_or(0)
}

/// `PAPI_num_events(es)`.
#[no_mangle]
pub extern "C" fn PAPI_num_events(es: c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    let mut out = PAPI_ENOEVST;
    let rc = with_session(|s| match s.papi.num_events(es as usize) {
        Ok(n) => {
            out = n as c_int;
            PAPI_OK
        }
        Err(e) => errno(&e),
    });
    if rc == PAPI_OK {
        out
    } else {
        rc
    }
}

/// `PAPI_list_events(es, codes, &n)`: on entry `*n` is the buffer size; on
/// exit it is the number of events written.
///
/// # Safety
/// `codes` must point to at least `*n` writable `c_uint` slots; `n` must be
/// valid and writable.
#[no_mangle]
pub unsafe extern "C" fn PAPI_list_events(es: c_int, codes: *mut c_uint, n: *mut c_int) -> c_int {
    if es < 0 {
        return PAPI_ENOEVST;
    }
    if codes.is_null() || n.is_null() || *n < 0 {
        return PAPI_EINVAL;
    }
    let cap = *n as usize;
    with_session(|s| match s.papi.list_events(es as usize) {
        Ok(evts) => {
            let k = evts.len().min(cap);
            for (i, &c) in evts.iter().take(k).enumerate() {
                *codes.add(i) = c;
            }
            *n = k as c_int;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_event_code_to_name(code, buf, len)`: NUL-terminated, truncating.
///
/// # Safety
/// `buf` must point to at least `len` writable bytes.
#[no_mangle]
pub unsafe extern "C" fn PAPI_event_code_to_name(
    code: c_uint,
    buf: *mut c_char,
    len: c_int,
) -> c_int {
    if buf.is_null() || len <= 0 {
        return PAPI_EINVAL;
    }
    with_session(|s| match s.papi.event_code_to_name(code) {
        Ok(name) => {
            let bytes = name.as_bytes();
            let k = bytes.len().min(len as usize - 1);
            for (i, &b) in bytes.iter().take(k).enumerate() {
                *buf.add(i) = b as c_char;
            }
            *buf.add(k) = 0;
            PAPI_OK
        }
        Err(e) => errno(&e),
    })
}

/// `PAPI_strerror(code)`: static description of an error code, or NULL for
/// an unknown code (as in the C library).
#[no_mangle]
pub extern "C" fn PAPI_strerror(code: c_int) -> *const c_char {
    let s: &'static [u8] = match code {
        PAPI_OK => b"No error ",
        PAPI_EINVAL => b"Invalid argument ",
        PAPI_ENOMEM => b"Insufficient memory ",
        PAPI_ESYS => b"A system or C library call failed ",
        PAPI_ESBSTR => b"Substrate returned an error ",
        PAPI_ENOEVNT => b"Event does not exist ",
        PAPI_ECNFLCT => b"Event exists, but cannot be counted due to hardware resource limits ",
        PAPI_ENOTRUN => b"EventSet is currently not running ",
        PAPI_EISRUN => b"EventSet is currently counting ",
        PAPI_ENOEVST => b"No such EventSet available ",
        PAPI_ENOTPRESET => b"Event in argument is not a valid preset ",
        PAPI_ENOCNTR => b"Hardware does not support performance counters ",
        PAPI_EMISC => b"Unknown error code ",
        PAPI_ENOSUPP => b"Not supported ",
        PAPI_ENOINIT => b"PAPI hasn't been initialized yet ",
        _ => return std::ptr::null(),
    };
    s.as_ptr() as *const c_char
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    // The global session serializes these tests.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn cstr(s: &str) -> CString {
        CString::new(s).unwrap()
    }

    #[test]
    fn c_api_full_flow() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        assert_eq!(PAPI_is_initialized(), 1);
        unsafe {
            assert_eq!(PAPIx_load_workload(cstr("matmul").as_ptr()), PAPI_OK);
            let mut es: c_int = -1;
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
            assert!(es >= 0);
            let mut code: c_uint = 0;
            assert_eq!(
                PAPI_event_name_to_code(cstr("PAPI_FP_OPS").as_ptr(), &mut code),
                PAPI_OK
            );
            assert_eq!(PAPI_add_event(es, code), PAPI_OK);
            assert_eq!(PAPI_start(es), PAPI_OK);
            assert_eq!(PAPIx_run_app(), PAPI_OK);
            let mut values: [c_longlong; 1] = [0];
            assert_eq!(PAPI_stop(es, values.as_mut_ptr()), PAPI_OK);
            assert_eq!(values[0], 2 * 24i64.pow(3));
            assert_eq!(PAPI_destroy_eventset(&mut es), PAPI_OK);
            assert_eq!(es, -1);
        }
        PAPI_shutdown();
        assert_eq!(PAPI_is_initialized(), 0);
    }

    #[test]
    fn c_api_init_on_named_substrates() {
        let _g = TEST_LOCK.lock().unwrap();
        unsafe {
            // Registry spelling, legacy spelling, and the perfctr backend
            // all initialize; unknown names map to PAPI_ESBSTR.
            for name in ["sim:power3", "sim-power3", "perfctr"] {
                assert_eq!(
                    PAPIx_init_platform(cstr(name).as_ptr()),
                    PAPI_VER_CURRENT,
                    "{name}"
                );
            }
            assert_eq!(PAPIx_init_platform(cstr("sim-vax").as_ptr()), PAPI_ESBSTR);
            // The perfctr session counts like any other.
            assert_eq!(
                PAPIx_init_platform(cstr("perfctr").as_ptr()),
                PAPI_VER_CURRENT
            );
            assert_eq!(PAPIx_load_workload(cstr("matmul").as_ptr()), PAPI_OK);
            let mut es: c_int = -1;
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
            let mut code: c_uint = 0;
            assert_eq!(
                PAPI_event_name_to_code(cstr("PAPI_FP_OPS").as_ptr(), &mut code),
                PAPI_OK
            );
            assert_eq!(PAPI_add_event(es, code), PAPI_OK);
            assert_eq!(PAPI_start(es), PAPI_OK);
            assert_eq!(PAPIx_run_app(), PAPI_OK);
            let mut values: [c_longlong; 1] = [0];
            assert_eq!(PAPI_stop(es, values.as_mut_ptr()), PAPI_OK);
            assert_eq!(values[0], 2 * 24i64.pow(3));
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_error_codes() {
        let _g = TEST_LOCK.lock().unwrap();
        PAPI_shutdown();
        // Not initialized.
        assert_eq!(PAPI_start(0), PAPI_ENOINIT);
        assert_eq!(PAPI_library_init(123), PAPI_EINVAL);
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            // Bad eventset handles.
            assert_eq!(PAPI_add_event(-1, 0), PAPI_ENOEVST);
            assert_eq!(PAPI_add_event(99, PAPI_preset_code(0)), PAPI_ENOEVST);
            let mut es: c_int = 5; // must be PAPI_NULL on entry
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_EINVAL);
            es = -1;
            assert_eq!(PAPI_create_eventset(&mut es), PAPI_OK);
            // Unknown event.
            assert_eq!(PAPI_add_event(es, 0x4abc_0000), PAPI_ENOEVNT);
            // Stop before start.
            let mut v: [c_longlong; 1] = [0];
            assert_eq!(PAPI_stop(es, v.as_mut_ptr()), PAPI_ENOTRUN);
            // Unknown workload / null pointers.
            assert_eq!(PAPIx_load_workload(cstr("nope").as_ptr()), PAPI_EINVAL);
            assert_eq!(PAPIx_load_workload(std::ptr::null()), PAPI_EINVAL);
            let mut code: c_uint = 0;
            assert_eq!(
                PAPI_event_name_to_code(std::ptr::null(), &mut code),
                PAPI_EINVAL
            );
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_introspection_and_strerror() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            let mut es: c_int = -1;
            PAPI_create_eventset(&mut es);
            let c0 = PAPI_preset_code(0);
            let c1 = PAPI_preset_code(1);
            PAPI_add_event(es, c0);
            PAPI_add_event(es, c1);
            assert_eq!(PAPI_num_events(es), 2);
            let mut codes = [0u32; 8];
            let mut n: c_int = 8;
            assert_eq!(PAPI_list_events(es, codes.as_mut_ptr(), &mut n), PAPI_OK);
            assert_eq!(n, 2);
            assert_eq!(codes[0], c0);
            let mut buf = [0i8; 32];
            assert_eq!(PAPI_event_code_to_name(c0, buf.as_mut_ptr(), 32), PAPI_OK);
            let name = CStr::from_ptr(buf.as_ptr()).to_str().unwrap();
            assert_eq!(name, "PAPI_TOT_CYC");
            // Truncation keeps NUL termination.
            let mut tiny = [0i8; 6];
            assert_eq!(PAPI_event_code_to_name(c0, tiny.as_mut_ptr(), 6), PAPI_OK);
            assert_eq!(CStr::from_ptr(tiny.as_ptr()).to_str().unwrap(), "PAPI_");
            // strerror
            let msg = CStr::from_ptr(PAPI_strerror(PAPI_ECNFLCT))
                .to_str()
                .unwrap();
            assert!(msg.contains("hardware resource"));
            assert!(PAPI_strerror(-999).is_null());
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_flops_easy_path() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            assert_eq!(PAPIx_load_workload(cstr("dense_fp").as_ptr()), PAPI_OK);
            let (mut rt, mut pt, mut fl, mut mf) = (0f32, 0f32, 0i64, 0f32);
            assert_eq!(PAPI_flops(&mut rt, &mut pt, &mut fl, &mut mf), PAPI_OK);
            assert_eq!(fl, 0);
            assert_eq!(PAPIx_run_app(), PAPI_OK);
            assert_eq!(PAPI_flops(&mut rt, &mut pt, &mut fl, &mut mf), PAPI_OK);
            assert_eq!(fl, 100_000 * 10); // 4 FMA x2 + 2 adds
            assert!(mf > 0.0 && rt > 0.0 && pt > 0.0);
        }
        PAPI_shutdown();
    }

    #[test]
    fn c_api_accum_and_reset() {
        let _g = TEST_LOCK.lock().unwrap();
        assert_eq!(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
        unsafe {
            assert_eq!(PAPIx_load_workload(cstr("dense_fp").as_ptr()), PAPI_OK);
            let mut es: c_int = -1;
            PAPI_create_eventset(&mut es);
            let mut code: c_uint = 0;
            PAPI_event_name_to_code(cstr("PAPI_FMA_INS").as_ptr(), &mut code);
            PAPI_add_event(es, code);
            PAPI_start(es);
            PAPIx_run_app();
            let mut acc: [c_longlong; 1] = [1000];
            assert_eq!(PAPI_accum(es, acc.as_mut_ptr()), PAPI_OK);
            assert_eq!(acc[0], 1000 + 400_000);
            let mut v: [c_longlong; 1] = [0];
            assert_eq!(PAPI_read(es, v.as_mut_ptr()), PAPI_OK);
            assert_eq!(v[0], 0); // accum reset the counter
            PAPI_stop(es, v.as_mut_ptr());
        }
        PAPI_shutdown();
    }
}
