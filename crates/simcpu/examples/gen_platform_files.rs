//! Regenerate the checked-in `platforms/*.toml` model files in canonical
//! form from the in-memory built-in specs.
//!
//! The files were originally generated from the pre-refactor Rust
//! constructors (now snapshotted test-only in `platform::legacy`); since the
//! renderer round-trips exactly, re-running this is idempotent and serves as
//! a canonicalizer after hand edits.
//!
//!     cargo run -p simcpu --example gen_platform_files

use simcpu::platform::all_platforms;
use simcpu::render_platform;

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../platforms");
    std::fs::create_dir_all(&dir).expect("create platforms/");
    for spec in all_platforms() {
        let path = dir.join(format!("{}.toml", spec.name));
        std::fs::write(&path, render_platform(&spec))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}
