//! Fully-associative translation lookaside buffers with LRU replacement.

/// Page size used throughout the simulator (4 KiB, like every platform the
/// paper ran on except some large-page configurations we do not model).
pub const PAGE_SIZE: u64 = 4096;

/// A fully-associative TLB of `entries` page translations.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: usize,
    /// Page numbers, most-recently-used first.
    pages: Vec<u64>,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        Tlb {
            entries,
            pages: Vec::with_capacity(entries),
            accesses: 0,
            misses: 0,
        }
    }

    /// Translate `addr`; returns `true` on a TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let page = addr / PAGE_SIZE;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            let p = self.pages.remove(pos);
            self.pages.insert(0, p);
            true
        } else {
            self.misses += 1;
            if self.pages.len() == self.entries {
                self.pages.pop();
            }
            self.pages.insert(0, page);
            false
        }
    }

    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Flush all translations (context switch on platforms without ASIDs).
    pub fn flush(&mut self) {
        self.pages.clear();
    }

    pub fn reset(&mut self) {
        self.pages.clear();
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss_same_page() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ff8)); // same page
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_capacity() {
        let mut t = Tlb::new(2);
        t.access(0);
        t.access(PAGE_SIZE);
        t.access(0); // page 0 MRU
        t.access(2 * PAGE_SIZE); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(PAGE_SIZE));
    }

    #[test]
    fn flush_keeps_stats() {
        let mut t = Tlb::new(4);
        t.access(0);
        t.flush();
        assert_eq!(t.accesses(), 1);
        assert!(!t.access(0)); // miss again after flush
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn sequential_walk_misses_once_per_page() {
        let mut t = Tlb::new(64);
        for a in (0..16 * PAGE_SIZE).step_by(64) {
            t.access(a);
        }
        assert_eq!(t.misses(), 16);
    }
}
