//! A gshare-lite branch predictor: a table of 2-bit saturating counters
//! indexed by PC, xor-folded with a short global history.

/// Two-bit saturating counter states: 0,1 predict not-taken; 2,3 taken.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// `entries` must be a power of two.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two());
        BranchPredictor {
            table: vec![1; entries], // weakly not-taken
            history: 0,
            history_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ h) as usize) & (self.table.len() - 1)
    }

    /// Predict, then update with the actual `taken` outcome. Returns `true`
    /// if the prediction was wrong (a misprediction).
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.predictions += 1;
        let i = self.index(pc);
        let predicted_taken = self.table[i] >= 2;
        let mispredict = predicted_taken != taken;
        if mispredict {
            self.mispredictions += 1;
        }
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
        mispredict
    }

    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    pub fn reset(&mut self) {
        self.table.fill(1);
        self.history = 0;
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = BranchPredictor::new(64, 0);
        for _ in 0..100 {
            p.predict_and_update(0x1000, true);
        }
        // After warmup (2 wrong at most) the rest must be correct.
        assert!(
            p.mispredictions() <= 2,
            "mispredicts = {}",
            p.mispredictions()
        );
    }

    #[test]
    fn learns_never_taken_immediately() {
        let mut p = BranchPredictor::new(64, 0);
        for _ in 0..50 {
            p.predict_and_update(0x2000, false);
        }
        assert_eq!(p.mispredictions(), 0); // initial state predicts not-taken
    }

    #[test]
    fn loop_backedge_one_mispredict_per_exit() {
        let mut p = BranchPredictor::new(64, 0);
        // 10 outer iterations of a loop taken 20x then not taken once.
        for _ in 0..10 {
            for _ in 0..20 {
                p.predict_and_update(0x3000, true);
            }
            p.predict_and_update(0x3000, false);
        }
        // warmup (≤2) + one exit mispredict per outer iteration
        assert!(
            p.mispredictions() <= 2 + 10,
            "mispredicts = {}",
            p.mispredictions()
        );
        assert!(p.mispredictions() >= 10);
    }

    #[test]
    fn random_branch_roughly_half_mispredicted() {
        let mut p = BranchPredictor::new(1024, 8);
        // LCG-driven "random" outcomes
        let mut s: u64 = 12345;
        let n = 10_000;
        for _ in 0..n {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.predict_and_update(0x4000, (s >> 62) & 1 == 1);
        }
        let rate = p.mispredictions() as f64 / n as f64;
        assert!(rate > 0.3 && rate < 0.7, "rate = {rate}");
    }

    #[test]
    fn reset_clears_stats() {
        let mut p = BranchPredictor::new(64, 4);
        p.predict_and_update(0, true);
        p.reset();
        assert_eq!(p.predictions(), 0);
        assert_eq!(p.mispredictions(), 0);
    }
}
