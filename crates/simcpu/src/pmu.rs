//! The performance-monitoring unit: a small set of physical counter
//! registers, each programmable with one *native event*, plus overflow
//! interrupt generation and ProfileMe/EAR-style precise sampling hardware.
//!
//! Native events are platform-specific combinations of machine-level
//! [`EventKind`] signals (see [`crate::platform`]); a physical counter
//! counts the sum of its event's signals, subject to a counting *domain*
//! (user/kernel). Constraints on which events may live on which counters —
//! the reason the paper casts allocation as bipartite matching — are encoded
//! as a per-event counter bitmask in [`NativeEventDesc::counter_mask`].

use serde::{Deserialize, Serialize};

/// Machine-level event signals the simulated core raises as it executes.
///
/// Native events on each platform are built from these; the variants are the
/// union of what the paper's platforms could observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum EventKind {
    /// Elapsed core cycles (including stalls).
    Cycles = 0,
    /// Retired instructions.
    Instructions,
    /// Integer ALU operations.
    IntOps,
    /// FP adds retired.
    FpAdd,
    /// FP multiplies retired.
    FpMul,
    /// Fused multiply-adds retired (one instruction, two FLOPs).
    FpFma,
    /// FP divides retired.
    FpDiv,
    /// FP convert/round instructions retired.
    FpCvt,
    /// Loads retired.
    Loads,
    /// Stores retired.
    Stores,
    /// L1 data-cache accesses.
    L1DAccess,
    /// L1 data-cache misses.
    L1DMiss,
    /// L1 instruction-cache accesses.
    L1IAccess,
    /// L1 instruction-cache misses.
    L1IMiss,
    /// Unified L2 accesses.
    L2Access,
    /// Unified L2 misses.
    L2Miss,
    /// Data-TLB misses.
    DtlbMiss,
    /// Instruction-TLB misses.
    ItlbMiss,
    /// Conditional branches retired.
    Branches,
    /// Conditional branches taken.
    BranchTaken,
    /// Conditional branches mispredicted.
    BranchMispred,
    /// Cycles in which the pipeline was stalled (memory or divide).
    StallCycles,
    /// Messages sent to an inter-thread channel.
    MsgSend,
    /// Messages received from an inter-thread channel.
    MsgRecv,
    /// Cycles spent blocked waiting for a message.
    MsgBlockCycles,
}

/// Number of [`EventKind`] variants (kept in sync by [`EventKind::ALL`]).
pub const NUM_EVENT_KINDS: usize = 25;

impl EventKind {
    /// All variants, indexable by `as usize`.
    pub const ALL: [EventKind; NUM_EVENT_KINDS] = [
        EventKind::Cycles,
        EventKind::Instructions,
        EventKind::IntOps,
        EventKind::FpAdd,
        EventKind::FpMul,
        EventKind::FpFma,
        EventKind::FpDiv,
        EventKind::FpCvt,
        EventKind::Loads,
        EventKind::Stores,
        EventKind::L1DAccess,
        EventKind::L1DMiss,
        EventKind::L1IAccess,
        EventKind::L1IMiss,
        EventKind::L2Access,
        EventKind::L2Miss,
        EventKind::DtlbMiss,
        EventKind::ItlbMiss,
        EventKind::Branches,
        EventKind::BranchTaken,
        EventKind::BranchMispred,
        EventKind::StallCycles,
        EventKind::MsgSend,
        EventKind::MsgRecv,
        EventKind::MsgBlockCycles,
    ];

    /// Bit in a sample record's `kind_mask`.
    pub fn bit(self) -> u32 {
        1 << (self as u8)
    }
}

/// Counting domain of a counter: which privilege modes it counts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    pub user: bool,
    pub kernel: bool,
}

impl Domain {
    pub const USER: Domain = Domain {
        user: true,
        kernel: false,
    };
    pub const KERNEL: Domain = Domain {
        user: false,
        kernel: true,
    };
    pub const ALL: Domain = Domain {
        user: true,
        kernel: true,
    };

    pub fn matches(&self, kernel_mode: bool) -> bool {
        if kernel_mode {
            self.kernel
        } else {
            self.user
        }
    }
}

/// Description of one native event a platform exposes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NativeEventDesc {
    /// Platform-scoped event code. By convention bit 30 is set (mirroring
    /// PAPI's `PAPI_NATIVE_MASK`).
    pub code: u32,
    /// Vendor-style mnemonic, e.g. `INST_RETIRED` or `PM_FPU0_CMPL`.
    pub name: &'static str,
    pub descr: &'static str,
    /// The machine signals this event sums, with multipliers.
    pub kinds: Vec<(EventKind, u32)>,
    /// Bitmask of physical counters this event may be programmed on.
    pub counter_mask: u32,
    /// Group id on group-allocated platforms (e.g. POWER3); `None` on
    /// counter-mask platforms.
    pub group: Option<u32>,
}

/// Event programmed onto one physical counter.
#[derive(Debug, Clone)]
struct Programmed {
    code: u32,
    kinds: Vec<(EventKind, u32)>,
    domain: Domain,
}

#[derive(Debug, Clone)]
struct OverflowCfg {
    threshold: u64,
    next: u64,
}

/// Precise-sampling (ProfileMe / EAR) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleConfig {
    /// Mean retired-instruction period between samples.
    pub period: u64,
    /// Uniform jitter applied to each period, `[-jitter, +jitter]`, to avoid
    /// phase-locking with loops (real ProfileMe randomizes its counter).
    pub jitter: u32,
    /// Ring-buffer capacity before the hardware raises a buffer-full event.
    pub buffer_capacity: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            period: 1024,
            jitter: 64,
            buffer_capacity: 256,
        }
    }
}

/// One precise sample: the *exact* instruction the hardware selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Exact PC of the sampled instruction (no skid).
    pub pc: u64,
    /// Thread that retired it.
    pub thread: u32,
    /// OR of [`EventKind::bit`] for every signal the instruction raised.
    pub kind_mask: u32,
    /// Cycles the instruction occupied retirement (its latency).
    pub latency: u32,
    /// Cycle timestamp at retirement.
    pub cycle: u64,
    /// Effective data address, for loads/stores (the *data* Event Address
    /// Register of Itanium; ProfileMe records the same).
    pub daddr: Option<u64>,
}

impl SampleRecord {
    pub fn has(&self, kind: EventKind) -> bool {
        self.kind_mask & kind.bit() != 0
    }
}

/// Saved per-thread counter state (counter virtualization).
#[derive(Debug, Clone, Default)]
pub struct PmuContext {
    counts: Vec<u64>,
    next_ovf: Vec<Option<u64>>,
    /// Programming epoch the counts were saved under; a restore against a
    /// different epoch means the counters were reprogrammed while this
    /// thread was off-CPU and the saved counts belong to *other events*.
    epoch: u64,
}

impl PmuContext {
    /// Saved value of counter `idx`, if this context has been populated.
    pub fn count(&self, idx: usize) -> Option<u64> {
        self.counts.get(idx).copied()
    }

    /// Programming epoch this context was saved under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[derive(Debug, Clone)]
struct SamplingState {
    cfg: SampleConfig,
    countdown: u64,
    buffer: Vec<SampleRecord>,
}

/// The PMU attached to a simulated core.
#[derive(Debug, Clone)]
pub struct Pmu {
    counters: Vec<Option<Programmed>>,
    counts: Vec<u64>,
    overflow: Vec<Option<OverflowCfg>>,
    running: bool,
    pending_overflow: u32,
    sampling: Option<SamplingState>,
    /// Bumped on every `program()` call; saved contexts are only restored
    /// against the epoch they were captured under (see
    /// [`Pmu::restore_context`]).
    epoch: u64,
    /// Register width in bits (1..=64). Narrow registers wrap: counts are
    /// kept modulo `2^bits`, like the paper-era 32-bit R10000/UltraSPARC
    /// and 40-bit Pentium counters. 64 means never wraps.
    bits: u32,
    /// `2^bits - 1`, precomputed (`u64::MAX` for 64-bit registers).
    mask: u64,
    /// Flat dispatch table: one `(kind, counter, mult, domain)` entry per
    /// signal of every programmed counter, rebuilt by [`Pmu::program`].
    /// [`Pmu::record`] scans this contiguous list instead of the per-slot
    /// `kinds` vectors.
    incr: Vec<(EventKind, u32, u32, Domain)>,
}

impl Pmu {
    pub fn new(num_counters: usize) -> Self {
        Self::with_width(num_counters, 64)
    }

    /// A PMU whose counter registers are `bits` wide (1..=64). Counts wrap
    /// modulo `2^bits`; software above must widen them.
    pub fn with_width(num_counters: usize, bits: u32) -> Self {
        assert!(num_counters > 0 && num_counters <= 32);
        assert!((1..=64).contains(&bits), "counter width out of range");
        Pmu {
            counters: vec![None; num_counters],
            counts: vec![0; num_counters],
            overflow: vec![None; num_counters],
            running: false,
            pending_overflow: 0,
            sampling: None,
            epoch: 0,
            bits,
            mask: if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            },
            incr: Vec::new(),
        }
    }

    /// Register width in bits.
    pub fn counter_bits(&self) -> u32 {
        self.bits
    }

    /// `2^bits - 1`: the largest value a register can hold.
    pub fn counter_mask(&self) -> u64 {
        self.mask
    }

    /// Test hook: set counter `idx`'s register to `v` (masked to the
    /// register width) and re-base any armed overflow threshold on it.
    /// Lets wraparound tests start a register near saturation without
    /// simulating `2^32` events.
    pub fn preload(&mut self, idx: usize, v: u64) {
        self.counts[idx] = v & self.mask;
        if let Some(o) = &mut self.overflow[idx] {
            o.next = self.counts[idx] + o.threshold;
        }
    }

    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    pub fn running(&self) -> bool {
        self.running
    }

    /// Program counter `idx` with a native event in the given domain, or
    /// clear it with `None`. Programming implicitly resets the count.
    pub fn program(&mut self, idx: usize, event: Option<(&NativeEventDesc, Domain)>) {
        self.counters[idx] = event.map(|(e, d)| Programmed {
            code: e.code,
            kinds: e.kinds.clone(),
            domain: d,
        });
        self.counts[idx] = 0;
        if let Some(o) = &mut self.overflow[idx] {
            o.next = o.threshold;
        }
        self.rebuild_incr();
        // Any saved per-thread context now describes different events.
        self.epoch += 1;
    }

    /// Rebuild the flat `record` dispatch table from the programmed slots.
    fn rebuild_incr(&mut self) {
        self.incr.clear();
        for (i, slot) in self.counters.iter().enumerate() {
            let Some(p) = slot else { continue };
            for &(k, mult) in &p.kinds {
                self.incr.push((k, i as u32, mult, p.domain));
            }
        }
    }

    /// Current programming epoch (bumped by every [`Pmu::program`] call).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Code programmed on counter `idx`, if any.
    pub fn programmed_code(&self, idx: usize) -> Option<u32> {
        self.counters[idx].as_ref().map(|p| p.code)
    }

    pub fn start(&mut self) {
        self.running = true;
    }

    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Read counter `idx` (no cost model here — the machine charges it).
    pub fn read(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Zero all counters and re-arm overflow thresholds.
    pub fn reset_counts(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
        for o in self.overflow.iter_mut().flatten() {
            o.next = o.threshold;
        }
        self.pending_overflow = 0;
    }

    /// Arm (or disarm with `None`) overflow interrupts on counter `idx`.
    /// The interrupt fires each time the count crosses a multiple of
    /// `threshold` counted from arming.
    pub fn set_overflow(&mut self, idx: usize, threshold: Option<u64>) {
        self.overflow[idx] = threshold.map(|t| {
            assert!(t > 0, "overflow threshold must be positive");
            OverflowCfg {
                threshold: t,
                next: self.counts[idx] + t,
            }
        });
    }

    /// True if any counter has overflow armed.
    pub fn overflow_armed(&self) -> bool {
        self.overflow.iter().any(|o| o.is_some())
    }

    /// Record `n` occurrences of `kind` in the given privilege mode.
    ///
    /// Dispatches through the flat [`Pmu::incr`] table (rebuilt by
    /// `program()`) instead of scanning every counter's heap-allocated
    /// `kinds` list: `record` runs on every simulated instruction batch
    /// *and* every costed kernel crossing, so the per-call constant is
    /// what bounds the whole simulator's hot loop.
    pub fn record(&mut self, kind: EventKind, n: u64, kernel_mode: bool) {
        if !self.running || n == 0 {
            return;
        }
        let Pmu {
            incr,
            counts,
            overflow,
            pending_overflow,
            mask,
            ..
        } = self;
        for &(k, i, mult, d) in incr.iter() {
            if k != kind || !d.matches(kernel_mode) {
                continue;
            }
            let i = i as usize;
            // Overflow crossings are detected on the unwrapped sum,
            // then the register wraps to its width; any armed
            // threshold is re-based by the same amount so crossings
            // keep firing at the right counts across a wrap.
            let s = counts[i] + n * mult as u64;
            if let Some(o) = &mut overflow[i] {
                if s >= o.next {
                    *pending_overflow |= 1 << i;
                    let past = s - o.next;
                    o.next += o.threshold * (past / o.threshold + 1);
                }
            }
            let wrapped = s & *mask;
            if wrapped != s {
                if let Some(o) = &mut overflow[i] {
                    o.next = o.next.saturating_sub(s - wrapped);
                }
            }
            counts[i] = wrapped;
        }
    }

    /// Take the pending-overflow bitmask, clearing it.
    pub fn take_overflows(&mut self) -> u32 {
        std::mem::take(&mut self.pending_overflow)
    }

    // --- precise sampling -------------------------------------------------

    /// Enable or disable precise sampling.
    pub fn configure_sampling(&mut self, cfg: Option<SampleConfig>) {
        self.sampling = cfg.map(|c| {
            assert!(c.period > 0 && c.buffer_capacity > 0);
            SamplingState {
                cfg: c,
                countdown: c.period,
                buffer: Vec::with_capacity(c.buffer_capacity),
            }
        });
    }

    pub fn sampling_enabled(&self) -> bool {
        self.sampling.is_some()
    }

    /// Called once per retired instruction while sampling; returns `true`
    /// when the buffer reached capacity (hardware raises buffer-full).
    ///
    /// `rand_word` supplies the jitter; the machine passes its RNG output.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_tick(
        &mut self,
        pc: u64,
        thread: u32,
        kind_mask: u32,
        latency: u32,
        cycle: u64,
        daddr: Option<u64>,
        rand_word: u64,
    ) -> bool {
        let Some(s) = &mut self.sampling else {
            return false;
        };
        if !self.running {
            return false;
        }
        if s.countdown > 1 {
            s.countdown -= 1;
            return false;
        }
        s.buffer.push(SampleRecord {
            pc,
            thread,
            kind_mask,
            latency,
            cycle,
            daddr,
        });
        let j = if s.cfg.jitter == 0 {
            0
        } else {
            (rand_word % (2 * s.cfg.jitter as u64 + 1)) as i64 - s.cfg.jitter as i64
        };
        s.countdown = (s.cfg.period as i64 + j).max(1) as u64;
        s.buffer.len() >= s.cfg.buffer_capacity
    }

    /// Drain the sample buffer (the machine charges per-record cost).
    pub fn drain_samples(&mut self) -> Vec<SampleRecord> {
        match &mut self.sampling {
            Some(s) => std::mem::take(&mut s.buffer),
            None => Vec::new(),
        }
    }

    /// Number of buffered samples.
    pub fn buffered_samples(&self) -> usize {
        self.sampling.as_ref().map_or(0, |s| s.buffer.len())
    }

    // --- per-thread virtualization ----------------------------------------

    /// Save the current counts for a departing thread and zero the live
    /// registers for the next one.
    pub fn save_context(&mut self) -> PmuContext {
        let ctx = PmuContext {
            counts: self.counts.clone(),
            next_ovf: self
                .overflow
                .iter()
                .map(|o| o.as_ref().map(|o| o.next))
                .collect(),
            epoch: self.epoch,
        };
        for c in &mut self.counts {
            *c = 0;
        }
        for o in self.overflow.iter_mut().flatten() {
            o.next = o.threshold;
        }
        ctx
    }

    /// Restore a previously saved context.
    ///
    /// A context is only meaningful for the programming epoch it was saved
    /// under: if the counters were reprogrammed since (the epoch advanced),
    /// the saved counts belong to events that are no longer on the hardware,
    /// and restoring them would bleed one configuration's counts into
    /// another thread's view of the new one. Such stale contexts reset the
    /// registers instead.
    pub fn restore_context(&mut self, ctx: &PmuContext) {
        if ctx.counts.len() == self.counts.len() && ctx.epoch == self.epoch {
            self.counts.copy_from_slice(&ctx.counts);
            for (o, n) in self.overflow.iter_mut().zip(&ctx.next_ovf) {
                if let (Some(o), Some(n)) = (o.as_mut(), n) {
                    o.next = *n;
                }
            }
        } else {
            // Fresh or stale context (never populated, or the counters were
            // reprogrammed since it was saved).
            self.reset_counts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kinds: Vec<(EventKind, u32)>) -> NativeEventDesc {
        NativeEventDesc {
            code: 0x4000_0001,
            name: "TEST_EV",
            descr: "test",
            kinds,
            counter_mask: 0b11,
            group: None,
        }
    }

    #[test]
    fn kinds_all_is_complete_and_ordered() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
    }

    #[test]
    fn counts_only_when_running() {
        let mut p = Pmu::new(2);
        p.program(0, Some((&ev(vec![(EventKind::Loads, 1)]), Domain::ALL)));
        p.record(EventKind::Loads, 5, false);
        assert_eq!(p.read(0), 0);
        p.start();
        p.record(EventKind::Loads, 5, false);
        assert_eq!(p.read(0), 5);
        p.stop();
        p.record(EventKind::Loads, 5, false);
        assert_eq!(p.read(0), 5);
    }

    #[test]
    fn multiplier_and_multi_kind_events() {
        // An FP_OPS-style event: adds + muls + 2*fma
        let e = ev(vec![
            (EventKind::FpAdd, 1),
            (EventKind::FpMul, 1),
            (EventKind::FpFma, 2),
        ]);
        let mut p = Pmu::new(1);
        p.program(0, Some((&e, Domain::ALL)));
        p.start();
        p.record(EventKind::FpAdd, 3, false);
        p.record(EventKind::FpFma, 4, false);
        p.record(EventKind::FpDiv, 9, false);
        assert_eq!(p.read(0), 3 + 8);
    }

    #[test]
    fn domain_filtering() {
        let mut p = Pmu::new(2);
        p.program(0, Some((&ev(vec![(EventKind::Cycles, 1)]), Domain::USER)));
        p.program(1, Some((&ev(vec![(EventKind::Cycles, 1)]), Domain::ALL)));
        p.start();
        p.record(EventKind::Cycles, 10, false);
        p.record(EventKind::Cycles, 7, true);
        assert_eq!(p.read(0), 10);
        assert_eq!(p.read(1), 17);
    }

    #[test]
    fn overflow_fires_on_threshold_crossings() {
        let mut p = Pmu::new(1);
        p.program(
            0,
            Some((&ev(vec![(EventKind::Instructions, 1)]), Domain::ALL)),
        );
        p.set_overflow(0, Some(100));
        p.start();
        p.record(EventKind::Instructions, 99, false);
        assert_eq!(p.take_overflows(), 0);
        p.record(EventKind::Instructions, 1, false);
        assert_eq!(p.take_overflows(), 1);
        assert_eq!(p.take_overflows(), 0); // cleared
        p.record(EventKind::Instructions, 100, false);
        assert_eq!(p.take_overflows(), 1);
    }

    #[test]
    fn overflow_big_jump_delivers_once_and_rearms() {
        let mut p = Pmu::new(1);
        p.program(0, Some((&ev(vec![(EventKind::Cycles, 1)]), Domain::ALL)));
        p.set_overflow(0, Some(10));
        p.start();
        p.record(EventKind::Cycles, 35, false); // crosses 10,20,30
        assert_eq!(p.take_overflows(), 1);
        // next threshold is 40
        p.record(EventKind::Cycles, 4, false);
        assert_eq!(p.take_overflows(), 0);
        p.record(EventKind::Cycles, 1, false);
        assert_eq!(p.take_overflows(), 1);
    }

    #[test]
    fn program_resets_count() {
        let mut p = Pmu::new(1);
        let e = ev(vec![(EventKind::Loads, 1)]);
        p.program(0, Some((&e, Domain::ALL)));
        p.start();
        p.record(EventKind::Loads, 5, false);
        p.program(0, Some((&e, Domain::ALL)));
        assert_eq!(p.read(0), 0);
    }

    #[test]
    fn sampling_period_and_buffer_full() {
        let mut p = Pmu::new(1);
        p.configure_sampling(Some(SampleConfig {
            period: 10,
            jitter: 0,
            buffer_capacity: 3,
        }));
        p.start();
        let mut full = false;
        let mut n = 0;
        for i in 0..1000 {
            full = p.sample_tick(0x1000 + i, 0, 0, 1, i, None, 0);
            n += 1;
            if full {
                break;
            }
        }
        assert!(full);
        assert_eq!(n, 30); // 3 samples at period 10
        let recs = p.drain_samples();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].pc, 0x1000 + 9);
        assert_eq!(p.buffered_samples(), 0);
    }

    #[test]
    fn sampling_respects_running() {
        let mut p = Pmu::new(1);
        p.configure_sampling(Some(SampleConfig {
            period: 1,
            jitter: 0,
            buffer_capacity: 100,
        }));
        for i in 0..10 {
            p.sample_tick(i, 0, 0, 1, i, None, 0);
        }
        assert_eq!(p.buffered_samples(), 0);
        p.start();
        for i in 0..10 {
            p.sample_tick(i, 0, 0, 1, i, None, 0);
        }
        assert_eq!(p.buffered_samples(), 10);
    }

    #[test]
    fn sample_record_kind_mask() {
        let r = SampleRecord {
            pc: 0,
            thread: 0,
            kind_mask: EventKind::L1DMiss.bit() | EventKind::Loads.bit(),
            latency: 12,
            cycle: 0,
            daddr: Some(0x1000),
        };
        assert!(r.has(EventKind::L1DMiss));
        assert!(r.has(EventKind::Loads));
        assert!(!r.has(EventKind::Stores));
    }

    #[test]
    fn context_save_restore_roundtrip() {
        let mut p = Pmu::new(2);
        let e = ev(vec![(EventKind::Instructions, 1)]);
        p.program(0, Some((&e, Domain::ALL)));
        p.start();
        p.record(EventKind::Instructions, 42, false);
        let ctx = p.save_context();
        assert_eq!(p.read(0), 0); // fresh for next thread
        p.record(EventKind::Instructions, 7, false);
        p.restore_context(&ctx);
        assert_eq!(p.read(0), 42);
    }

    #[test]
    fn context_restore_after_reprogram_resets() {
        let mut p = Pmu::new(2);
        let e = ev(vec![(EventKind::Instructions, 1)]);
        p.program(0, Some((&e, Domain::ALL)));
        p.start();
        p.record(EventKind::Instructions, 42, false);
        let ctx = PmuContext::default(); // stale/empty context
        p.restore_context(&ctx);
        assert_eq!(p.read(0), 0);
    }

    #[test]
    fn stale_epoch_context_does_not_bleed_into_new_programming() {
        // A context saved under one programming must not restore its counts
        // into counters that have since been reprogrammed to other events:
        // the counter *count* is unchanged, so only the epoch distinguishes
        // the configurations.
        let mut p = Pmu::new(2);
        p.program(
            0,
            Some((&ev(vec![(EventKind::Instructions, 1)]), Domain::ALL)),
        );
        p.start();
        p.record(EventKind::Instructions, 42, false);
        let ctx = p.save_context();
        assert_eq!(ctx.epoch(), p.epoch());

        // Reprogram counter 0 to a different event between save and restore.
        p.program(0, Some((&ev(vec![(EventKind::Loads, 1)]), Domain::ALL)));
        p.restore_context(&ctx);
        assert_eq!(p.read(0), 0, "stale instruction count bled into loads");

        // A context saved under the *current* programming still round-trips.
        p.record(EventKind::Loads, 9, false);
        let ctx2 = p.save_context();
        p.restore_context(&ctx2);
        assert_eq!(p.read(0), 9);
    }

    #[test]
    fn narrow_registers_wrap_at_width() {
        let mut p = Pmu::with_width(1, 8); // 8-bit register: wraps at 256
        assert_eq!(p.counter_bits(), 8);
        assert_eq!(p.counter_mask(), 255);
        p.program(0, Some((&ev(vec![(EventKind::Loads, 1)]), Domain::ALL)));
        p.start();
        p.record(EventKind::Loads, 250, false);
        assert_eq!(p.read(0), 250);
        p.record(EventKind::Loads, 10, false); // 260 -> wraps to 4
        assert_eq!(p.read(0), 4);
    }

    #[test]
    fn preload_biases_register_toward_wrap() {
        let mut p = Pmu::with_width(1, 32);
        p.program(0, Some((&ev(vec![(EventKind::Loads, 1)]), Domain::ALL)));
        p.start();
        p.preload(0, (1u64 << 32) - 3);
        p.record(EventKind::Loads, 5, false);
        assert_eq!(p.read(0), 2); // crossed the 32-bit boundary
    }

    #[test]
    fn overflow_keeps_firing_across_wrap() {
        let mut p = Pmu::with_width(1, 8);
        p.program(0, Some((&ev(vec![(EventKind::Cycles, 1)]), Domain::ALL)));
        p.set_overflow(0, Some(100));
        p.start();
        p.preload(0, 250);
        // Armed at 250: next crossing at 350 (unwrapped), i.e. 94 after wrap.
        p.record(EventKind::Cycles, 50, false); // register now 300&255 = 44
        assert_eq!(p.take_overflows(), 0);
        p.record(EventKind::Cycles, 50, false); // unwrapped 350: fires
        assert_eq!(p.take_overflows(), 1);
        assert_eq!(p.read(0), 94);
    }

    #[test]
    fn full_width_pmu_never_wraps() {
        let p = Pmu::new(1);
        assert_eq!(p.counter_bits(), 64);
        assert_eq!(p.counter_mask(), u64::MAX);
    }

    #[test]
    fn program_advances_epoch() {
        let mut p = Pmu::new(2);
        let e0 = p.epoch();
        p.program(0, Some((&ev(vec![(EventKind::Cycles, 1)]), Domain::ALL)));
        assert!(p.epoch() > e0);
        let e1 = p.epoch();
        p.program(0, None); // deprogramming counts too
        assert!(p.epoch() > e1);
    }
}
