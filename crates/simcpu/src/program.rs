//! Programs and the structured program builder.
//!
//! A [`Program`] is a flat vector of [`Inst`]s plus a symbol table mapping
//! function names to index ranges. The [`ProgramBuilder`] provides the
//! structured constructs workloads are written in — functions, counted
//! loops, calls, forward skips — and resolves everything to absolute
//! instruction indices.
//!
//! Programs also support *instrumentation*: inserting [`Inst::Probe`]
//! pseudo-instructions at chosen points while remapping every control-flow
//! target, which is how the dynaprof reproduction patches running code.

use crate::isa::{AddrGen, BranchPat, Inst};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Base virtual address of the text segment. Instruction `i` has PC
/// `TEXT_BASE + 4 * i`.
pub const TEXT_BASE: u64 = 0x1000;

/// A named function: instructions `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// An executable synthetic program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub insts: Vec<Inst>,
    pub symbols: Vec<Symbol>,
    /// Index of the first instruction to execute.
    pub entry: usize,
}

impl Program {
    /// PC of the instruction at `idx`.
    pub fn pc_of(idx: usize) -> u64 {
        TEXT_BASE + 4 * idx as u64
    }

    /// Instruction index of `pc` (PCs between instructions round down).
    pub fn idx_of(pc: u64) -> usize {
        ((pc.saturating_sub(TEXT_BASE)) / 4) as usize
    }

    pub fn len(&self) -> usize {
        self.insts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The symbol containing instruction `idx`, if any.
    pub fn symbol_at(&self, idx: usize) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.start <= idx && idx < s.end)
    }

    /// Look a symbol up by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Instrument the program: insert `Probe { id }` *before* each original
    /// instruction index in `points`, remapping every branch/jump/call
    /// target, the symbol table and the entry point.
    ///
    /// Targets are remapped the way a binary patcher relocates them:
    /// **call** targets (and the entry point) that land exactly on an
    /// insertion point are routed *through* the probe — so an entry probe
    /// runs on every call to the function — while **branch/jump** targets
    /// skip probes inserted at the target index, so a loop back-edge does
    /// not re-execute a function-entry trampoline on every iteration.
    ///
    /// `points` may be unsorted; duplicate indices insert multiple probes
    /// (in the order given).
    pub fn instrument(&self, points: &[(usize, u32)]) -> Program {
        let mut pts: Vec<(usize, u32)> = points.to_vec();
        pts.sort_by_key(|&(idx, _)| idx);
        for &(idx, _) in &pts {
            assert!(idx <= self.insts.len(), "probe point {idx} out of range");
        }
        // New index of the original instruction `i`: shifted once per probe
        // inserted at an index <= i.
        let remap = |i: usize| -> usize { i + pts.iter().take_while(|&&(p, _)| p <= i).count() };
        // Call-target remap: a probe at exactly the target occupies the old
        // slot, so the call lands on the probe.
        let remap_call =
            |t: usize| -> usize { t + pts.iter().take_while(|&&(p, _)| p < t).count() };

        let mut insts = Vec::with_capacity(self.insts.len() + pts.len());
        let mut next_pt = 0;
        for (i, inst) in self.insts.iter().enumerate() {
            while next_pt < pts.len() && pts[next_pt].0 == i {
                insts.push(Inst::Probe { id: pts[next_pt].1 });
                next_pt += 1;
            }
            let fixed = match *inst {
                Inst::Br { pat, target } => Inst::Br {
                    pat,
                    target: remap(target as usize) as u32,
                },
                Inst::Jmp { target } => Inst::Jmp {
                    target: remap(target as usize) as u32,
                },
                Inst::Call { target } => Inst::Call {
                    target: remap_call(target as usize) as u32,
                },
                other => other,
            };
            insts.push(fixed);
        }
        while next_pt < pts.len() {
            insts.push(Inst::Probe { id: pts[next_pt].1 });
            next_pt += 1;
        }
        let symbols = self
            .symbols
            .iter()
            .map(|s| Symbol {
                name: s.name.clone(),
                start: remap_call(s.start),
                end: remap(s.end.saturating_sub(1)) + 1,
            })
            .collect();
        Program {
            insts,
            symbols,
            entry: remap_call(self.entry),
        }
    }

    /// A human-readable listing (dynaprof's "list the internal structure").
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(s) = self.symbols.iter().find(|s| s.start == i) {
                writeln!(out, "{}:", s.name).unwrap();
            }
            writeln!(out, "  {:#8x}  [{i:5}]  {inst:?}", Self::pc_of(i)).unwrap();
        }
        out
    }
}

/// Builds a [`Program`] out of named functions.
///
/// ```
/// use simcpu::program::ProgramBuilder;
/// use simcpu::isa::AddrGen;
///
/// let mut b = ProgramBuilder::new();
/// b.func("kernel", |f| {
///     f.loop_(100, |f| {
///         f.ffma(4);
///         f.load(AddrGen::Stride { base: 0x10000, stride: 8, len: 1 << 16 });
///     });
/// });
/// b.func("main", |f| {
///     f.call("kernel");
/// });
/// let prog = b.build("main");
/// assert!(prog.symbol("kernel").is_some());
/// ```
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    symbols: Vec<Symbol>,
    call_fixups: Vec<(usize, String)>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    pub fn new() -> Self {
        ProgramBuilder {
            insts: Vec::new(),
            symbols: Vec::new(),
            call_fixups: Vec::new(),
        }
    }

    /// Define a function. Functions are laid out in definition order; a
    /// `Ret` is appended if the body does not already end in `Ret` or
    /// `Halt`. Panics on duplicate names.
    pub fn func(&mut self, name: &str, body: impl FnOnce(&mut FuncBuilder<'_>)) -> &mut Self {
        assert!(
            self.symbols.iter().all(|s| s.name != name),
            "duplicate function {name}"
        );
        let start = self.insts.len();
        {
            let mut fb = FuncBuilder {
                insts: &mut self.insts,
                call_fixups: &mut self.call_fixups,
            };
            body(&mut fb);
        }
        if !matches!(self.insts.last(), Some(Inst::Ret) | Some(Inst::Halt)) {
            self.insts.push(Inst::Ret);
        }
        let end = self.insts.len();
        self.symbols.push(Symbol {
            name: name.to_string(),
            start,
            end,
        });
        self
    }

    /// Finish the program. A synthetic `_start` function calling `entry`
    /// and halting is appended and becomes the entry point.
    ///
    /// Panics if `entry` or any called function is undefined.
    pub fn build(mut self, entry: &str) -> Program {
        let start_idx = self.insts.len();
        let entry_target = self
            .symbols
            .iter()
            .find(|s| s.name == entry)
            .unwrap_or_else(|| panic!("entry function {entry} not defined"))
            .start as u32;
        self.insts.push(Inst::Call {
            target: entry_target,
        });
        self.insts.push(Inst::Halt);
        self.symbols.push(Symbol {
            name: "_start".to_string(),
            start: start_idx,
            end: start_idx + 2,
        });

        let by_name: HashMap<&str, usize> = self
            .symbols
            .iter()
            .map(|s| (s.name.as_str(), s.start))
            .collect();
        for (at, name) in &self.call_fixups {
            let target = *by_name
                .get(name.as_str())
                .unwrap_or_else(|| panic!("call to undefined function {name}"));
            self.insts[*at] = Inst::Call {
                target: target as u32,
            };
        }
        Program {
            insts: self.insts,
            symbols: self.symbols,
            entry: start_idx,
        }
    }
}

/// Emits the body of one function. Obtained from [`ProgramBuilder::func`].
pub struct FuncBuilder<'a> {
    insts: &'a mut Vec<Inst>,
    call_fixups: &'a mut Vec<(usize, String)>,
}

impl FuncBuilder<'_> {
    fn emit_n(&mut self, inst: Inst, n: usize) -> &mut Self {
        for _ in 0..n {
            self.insts.push(inst);
        }
        self
    }

    /// `n` integer ALU ops.
    pub fn int(&mut self, n: usize) -> &mut Self {
        self.emit_n(Inst::Int, n)
    }

    /// `n` FP adds.
    pub fn fadd(&mut self, n: usize) -> &mut Self {
        self.emit_n(Inst::FAdd, n)
    }

    /// `n` FP multiplies.
    pub fn fmul(&mut self, n: usize) -> &mut Self {
        self.emit_n(Inst::FMul, n)
    }

    /// `n` fused multiply-adds (two FLOPs each).
    pub fn ffma(&mut self, n: usize) -> &mut Self {
        self.emit_n(Inst::FFma, n)
    }

    /// `n` FP divides.
    pub fn fdiv(&mut self, n: usize) -> &mut Self {
        self.emit_n(Inst::FDiv, n)
    }

    /// `n` FP convert/rounding instructions.
    pub fn fcvt(&mut self, n: usize) -> &mut Self {
        self.emit_n(Inst::FCvt, n)
    }

    /// `n` no-ops.
    pub fn nop(&mut self, n: usize) -> &mut Self {
        self.emit_n(Inst::Nop, n)
    }

    /// One load from the given address stream.
    pub fn load(&mut self, gen: AddrGen) -> &mut Self {
        self.insts.push(Inst::Load(gen));
        self
    }

    /// `n` loads sharing one address stream shape (each instruction gets its
    /// own cursor, so `n` copies of a strided stream walk in lockstep).
    pub fn loads(&mut self, n: usize, gen: AddrGen) -> &mut Self {
        self.emit_n(Inst::Load(gen), n)
    }

    /// One store to the given address stream.
    pub fn store(&mut self, gen: AddrGen) -> &mut Self {
        self.insts.push(Inst::Store(gen));
        self
    }

    /// A counted loop: `body` executes exactly `count` times. `count >= 1`.
    pub fn loop_(&mut self, count: u32, body: impl FnOnce(&mut Self)) -> &mut Self {
        assert!(count >= 1, "loop count must be >= 1");
        let top = self.insts.len() as u32;
        body(self);
        self.insts.push(Inst::Br {
            pat: BranchPat::Loop { count },
            target: top,
        });
        self
    }

    /// A conditional branch that skips the instructions emitted by `body`
    /// when taken.
    pub fn skip_if(&mut self, pat: BranchPat, body: impl FnOnce(&mut Self)) -> &mut Self {
        let br_at = self.insts.len();
        self.insts.push(Inst::Nop); // placeholder
        body(self);
        let after = self.insts.len() as u32;
        self.insts[br_at] = Inst::Br { pat, target: after };
        self
    }

    /// Call a (possibly not-yet-defined) function by name.
    pub fn call(&mut self, name: &str) -> &mut Self {
        self.call_fixups.push((self.insts.len(), name.to_string()));
        self.insts.push(Inst::Nop); // placeholder, patched in build()
        self
    }

    /// Explicit early return.
    pub fn ret(&mut self) -> &mut Self {
        self.insts.push(Inst::Ret);
        self
    }

    /// Halt the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.insts.push(Inst::Halt);
        self
    }

    /// Send a message token to channel `chan`.
    pub fn send(&mut self, chan: u16) -> &mut Self {
        self.insts.push(Inst::Send { chan });
        self
    }

    /// Blocking receive from channel `chan`.
    pub fn recv(&mut self, chan: u16) -> &mut Self {
        self.insts.push(Inst::Recv { chan });
        self
    }

    /// Escape hatch: emit a raw instruction.
    pub fn raw(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Index the next emitted instruction will occupy (for hand-built
    /// control flow via [`FuncBuilder::raw`]).
    pub fn here(&self) -> usize {
        self.insts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Program {
        let mut b = ProgramBuilder::new();
        b.func("leaf", |f| {
            f.fadd(2);
        });
        b.func("main", |f| {
            f.loop_(3, |f| {
                f.int(1);
                f.call("leaf");
            });
        });
        b.build("main")
    }

    #[test]
    fn build_layout_and_symbols() {
        let p = simple();
        let leaf = p.symbol("leaf").unwrap();
        assert_eq!(leaf.start, 0);
        assert_eq!(leaf.end, 3); // fadd, fadd, ret
        assert_eq!(p.insts[2], Inst::Ret);
        let start = p.symbol("_start").unwrap();
        assert_eq!(p.entry, start.start);
        assert_eq!(
            p.insts[p.entry],
            Inst::Call {
                target: p.symbol("main").unwrap().start as u32
            }
        );
    }

    #[test]
    fn call_fixup_resolves_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        b.func("a", |f| {
            f.call("b"); // forward reference
        });
        b.func("b", |f| {
            f.call("a"); // backward reference
        });
        let p = b.build("a");
        let a = p.symbol("a").unwrap().start as u32;
        let bsym = p.symbol("b").unwrap().start as u32;
        assert_eq!(p.insts[a as usize], Inst::Call { target: bsym });
        assert_eq!(p.insts[bsym as usize], Inst::Call { target: a });
    }

    #[test]
    #[should_panic(expected = "undefined function")]
    fn undefined_call_panics() {
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.call("missing");
        });
        b.build("main");
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut b = ProgramBuilder::new();
        b.func("f", |f| {
            f.nop(1);
        });
        b.func("f", |f| {
            f.nop(1);
        });
    }

    #[test]
    fn loop_emits_backedge() {
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(5, |f| {
                f.int(2);
            });
        });
        let p = b.build("main");
        assert_eq!(
            p.insts[2],
            Inst::Br {
                pat: BranchPat::Loop { count: 5 },
                target: 0
            }
        );
    }

    #[test]
    fn skip_if_targets_past_body() {
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.skip_if(BranchPat::Always, |f| {
                f.int(3);
            });
            f.nop(1);
        });
        let p = b.build("main");
        assert_eq!(
            p.insts[0],
            Inst::Br {
                pat: BranchPat::Always,
                target: 4
            }
        );
    }

    #[test]
    fn pc_idx_roundtrip() {
        assert_eq!(Program::idx_of(Program::pc_of(17)), 17);
        assert_eq!(Program::pc_of(0), TEXT_BASE);
    }

    #[test]
    fn instrument_inserts_and_remaps() {
        let p = simple();
        let main = p.symbol("main").unwrap().start;
        let leaf = p.symbol("leaf").unwrap().start;
        // entry probes on both functions
        let ip = p.instrument(&[(main, 10), (leaf, 20)]);
        // leaf probe is at old index 0; main probe shifted by 1
        assert_eq!(ip.insts[leaf], Inst::Probe { id: 20 });
        let new_main = ip.symbol("main").unwrap().start;
        assert_eq!(ip.insts[new_main], Inst::Probe { id: 10 });
        // call to leaf must now land on the probe
        let call = ip.insts.iter().find_map(|i| match i {
            Inst::Call { target } if *target as usize == leaf => Some(*target),
            _ => None,
        });
        assert!(
            call.is_some(),
            "call should target the leaf probe at old start"
        );
        // program still has all original instructions
        assert_eq!(ip.insts.len(), p.insts.len() + 2);
    }

    #[test]
    fn instrument_backedge_skips_entry_probe() {
        let mut b = ProgramBuilder::new();
        b.func("main", |f| {
            f.loop_(4, |f| {
                f.int(1);
            });
        });
        let p = b.build("main");
        // Probe at the loop top (index 0, also function entry): the call
        // reaches the probe, but the back-edge must target the original
        // instruction, now at index 1 — the probe fires once per call.
        let ip = p.instrument(&[(0, 1)]);
        assert_eq!(ip.insts[0], Inst::Probe { id: 1 });
        assert_eq!(
            ip.insts[2],
            Inst::Br {
                pat: BranchPat::Loop { count: 4 },
                target: 1
            }
        );
        let call = ip.insts[ip.entry];
        assert_eq!(call, Inst::Call { target: 0 });
    }

    #[test]
    fn instrument_entry_shifts() {
        let p = simple();
        let ip = p.instrument(&[(0, 9)]);
        assert_eq!(ip.entry, p.entry + 1);
    }

    #[test]
    fn disassemble_lists_symbols() {
        let p = simple();
        let d = p.disassemble();
        assert!(d.contains("leaf:"));
        assert!(d.contains("main:"));
        assert!(d.contains("_start:"));
    }

    #[test]
    fn symbol_at_boundaries() {
        let p = simple();
        let leaf = p.symbol("leaf").unwrap().clone();
        assert_eq!(p.symbol_at(leaf.start).unwrap().name, "leaf");
        assert_eq!(p.symbol_at(leaf.end - 1).unwrap().name, "leaf");
        assert_ne!(p.symbol_at(leaf.end).map(|s| s.name.as_str()), Some("leaf"));
    }
}
