//! # simcpu — a deterministic simulated processor with a PMU
//!
//! This crate is the *hardware* underneath the PAPI reproduction: a small,
//! fully deterministic processor simulator whose purpose is not cycle-exact
//! modelling of any real chip, but faithful reproduction of the **mechanisms**
//! a hardware-performance-counter interface talks to:
//!
//! * a synthetic-workload ISA ([`isa`]) and a program builder ([`program`]),
//! * instruction and data caches and TLBs ([`cache`], [`tlb`]),
//! * a branch predictor ([`branch`]),
//! * in-order and out-of-order pipeline timing, including the *interrupt
//!   skid* that makes program-counter sampling imprecise on out-of-order
//!   machines ([`platform::PipelineCfg`]),
//! * a performance-monitoring unit with a small number of physical counter
//!   registers, per-event counter constraints, POWER-style counter *groups*,
//!   overflow interrupts and ProfileMe/EAR-style precise sampling ([`pmu`]),
//! * several *platforms* with different native event sets, constraints and
//!   access-cost models ([`platform`]), standing in for the machines the
//!   paper ran on (Linux/x86, Alpha Tru64 + DCPI, POWER3, Itanium, Cray T3E),
//! * a minimal OS layer: threads, a round-robin scheduler, per-thread counter
//!   virtualization, real vs virtual time, and memory accounting
//!   ([`machine`]).
//!
//! Everything that costs time on a real machine costs simulated cycles here —
//! including reading a counter, taking an overflow interrupt and draining a
//! sample buffer — so the paper's overhead experiments are reproduced by the
//! same mechanism that causes them on metal: *the act of measuring perturbs
//! the phenomenon being measured*.
//!
//! The crate is `std`-only, single-threaded and deterministic: all randomness
//! flows from a seed stored in the [`machine::Machine`].

pub mod branch;
pub mod cache;
pub mod isa;
pub mod machine;
pub mod platform;
pub mod pmu;
pub mod program;
pub mod tlb;

pub use isa::{AddrGen, BranchPat, Inst};
pub use machine::{Granularity, MachError, Machine, MemInfo, RunExit, ThreadId, Truth};
pub use platform::model::{
    load_platform_file, parse_platform, render_platform, PlatformParseError,
};
pub use platform::{
    all_platforms, platform_by_name, CostModel, PipelineCfg, PipelineKind, PlatformSpec,
};
pub use pmu::{Domain, EventKind, NativeEventDesc, SampleConfig, SampleRecord};
pub use program::{Program, ProgramBuilder, Symbol, TEXT_BASE};
