//! The synthetic-workload instruction set.
//!
//! Instructions carry *event semantics* rather than real dataflow: a load
//! owns an address-stream generator, a conditional branch owns a
//! taken/not-taken pattern. This keeps programs executable and deterministic
//! while letting workload authors compute expected hardware-event counts
//! analytically — the property the paper's `calibrate` utility depends on.
//!
//! Control flow (loops, calls, returns) is real: branch targets are
//! instruction indices resolved by the [`crate::program::ProgramBuilder`].

use serde::{Deserialize, Serialize};

/// How a memory instruction generates its effective addresses, one per
/// dynamic execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AddrGen {
    /// Walk a region sequentially with the given stride, wrapping at `len`.
    ///
    /// `len` and `stride` are in bytes; generated addresses are
    /// `base + (i * stride) % len`.
    Stride { base: u64, stride: u64, len: u64 },
    /// Uniformly random addresses in `[base, base + len)`, 8-byte aligned.
    Rand { base: u64, len: u64 },
    /// Always the same address (e.g. a hot lock word).
    Fixed { addr: u64 },
    /// A pointer-chase style walk: the next offset is a hash of the current
    /// one, cache-line aligned, which defeats both spatial locality and
    /// next-line prefetching.
    Chase { base: u64, len: u64 },
}

impl AddrGen {
    /// Produce the next effective address, updating `cursor` (per-thread
    /// instruction state) and drawing from `rand_word` when random.
    pub fn next(&self, cursor: &mut u64, rand_word: u64) -> u64 {
        match *self {
            AddrGen::Stride { base, stride, len } => {
                let a = base + *cursor;
                *cursor = (*cursor + stride) % len.max(1);
                a
            }
            AddrGen::Rand { base, len } => {
                let span = (len / 8).max(1);
                base + (rand_word % span) * 8
            }
            AddrGen::Fixed { addr } => addr,
            AddrGen::Chase { base, len } => {
                let a = base + *cursor;
                // Full-period LCG over the line indices (lines is a power of
                // two in practice; a ≡ 1 mod 4 and odd c give full period),
                // so the walk visits every line with no spatial locality.
                let lines = (len / 64).max(1);
                let line = *cursor / 64;
                let next_line = (line.wrapping_mul(2654435761).wrapping_add(12345)) % lines;
                *cursor = next_line * 64;
                a
            }
        }
    }
}

/// The taken/not-taken behaviour of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BranchPat {
    /// A loop back-edge: taken `count - 1` consecutive times, then not taken
    /// once (so a loop body placed before it executes exactly `count` times),
    /// then the cycle repeats — which makes nested loops work.
    Loop { count: u32 },
    /// Taken on every `k`-th dynamic execution (1-based): execution numbers
    /// `k, 2k, 3k, …` are taken. `Every { k: 1 }` is always taken.
    Every { k: u32 },
    /// Taken with probability `p_num / 256` using the thread RNG — the
    /// unpredictable branch that defeats the predictor.
    Rand { p_num: u8 },
    /// Unconditionally taken.
    Always,
    /// Never taken (falls through; still occupies a predictor slot).
    Never,
}

impl BranchPat {
    /// Decide the outcome of this dynamic execution, updating `ctr`
    /// (per-thread instruction state).
    pub fn outcome(&self, ctr: &mut u64, rand_byte: u8) -> bool {
        match *self {
            BranchPat::Loop { count } => {
                let c = count.max(1) as u64;
                *ctr += 1;
                if *ctr >= c {
                    *ctr = 0;
                    false
                } else {
                    true
                }
            }
            BranchPat::Every { k } => {
                let k = k.max(1) as u64;
                *ctr += 1;
                if *ctr >= k {
                    *ctr = 0;
                    true
                } else {
                    false
                }
            }
            BranchPat::Rand { p_num } => rand_byte < p_num,
            BranchPat::Always => true,
            BranchPat::Never => false,
        }
    }
}

/// One instruction of the synthetic ISA.
///
/// Every instruction occupies 4 bytes of the text segment; the instruction at
/// index `i` has PC `TEXT_BASE + 4 * i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// Integer ALU operation (1 cycle).
    Int,
    /// Floating-point add.
    FAdd,
    /// Floating-point multiply.
    FMul,
    /// Fused multiply-add: one instruction, two FLOPs.
    FFma,
    /// Floating-point divide (long latency).
    FDiv,
    /// Floating-point convert/round — the instruction class that inflated
    /// POWER3 FP-instruction counts in the paper's calibration anecdote.
    FCvt,
    /// Memory load through D-TLB, L1D and L2.
    Load(AddrGen),
    /// Memory store (write-buffered: cheaper than a load on a miss).
    Store(AddrGen),
    /// Conditional branch to an absolute instruction index.
    Br { pat: BranchPat, target: u32 },
    /// Unconditional jump.
    Jmp { target: u32 },
    /// Call: pushes the return index and jumps.
    Call { target: u32 },
    /// Return to the most recent call site (halts the thread on an empty
    /// stack — i.e. returning from the entry function).
    Ret,
    /// No-op (still fetched and retired).
    Nop,
    /// Instrumentation probe: traps out of the simulation to the runner with
    /// this id. This is how the dynaprof reproduction patches code.
    Probe { id: u32 },
    /// Send one message token to an inter-thread channel (non-blocking).
    Send { chan: u16 },
    /// Receive one message token from a channel, blocking the thread until
    /// one is available.
    Recv { chan: u16 },
    /// Stop the current thread.
    Halt,
}

impl Inst {
    /// True for instructions that redirect control flow when executed
    /// (unconditionally or when taken).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::Jmp { .. } | Inst::Call { .. } | Inst::Ret
        )
    }

    /// True for the floating-point arithmetic class (not converts).
    pub fn is_fp_arith(&self) -> bool {
        matches!(self, Inst::FAdd | Inst::FMul | Inst::FFma | Inst::FDiv)
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load(_) | Inst::Store(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_wraps_at_len() {
        let g = AddrGen::Stride {
            base: 0x1000,
            stride: 8,
            len: 24,
        };
        let mut c = 0;
        let seq: Vec<u64> = (0..5).map(|_| g.next(&mut c, 0)).collect();
        assert_eq!(seq, vec![0x1000, 0x1008, 0x1010, 0x1000, 0x1008]);
    }

    #[test]
    fn fixed_is_fixed() {
        let g = AddrGen::Fixed { addr: 0x42 };
        let mut c = 0;
        assert_eq!(g.next(&mut c, 7), 0x42);
        assert_eq!(g.next(&mut c, 99), 0x42);
    }

    #[test]
    fn rand_stays_in_region_and_aligned() {
        let g = AddrGen::Rand {
            base: 0x2000,
            len: 256,
        };
        let mut c = 0;
        for w in 0..1000u64 {
            let a = g.next(&mut c, w.wrapping_mul(0x9E3779B97F4A7C15));
            assert!((0x2000..0x2000 + 256).contains(&a));
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn chase_stays_in_region_line_aligned() {
        let g = AddrGen::Chase {
            base: 0x4000,
            len: 4096,
        };
        let mut c = 0;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let a = g.next(&mut c, 0);
            assert!((0x4000..0x4000 + 4096).contains(&a));
            seen.insert(a / 64);
        }
        // The walk must visit many distinct lines, not sit on one.
        assert!(seen.len() > 8, "chase visited only {} lines", seen.len());
    }

    #[test]
    fn loop_pattern_runs_body_count_times() {
        // Loop { count: 3 } as a back-edge: body runs 3 times per entry.
        let p = BranchPat::Loop { count: 3 };
        let mut ctr = 0;
        // taken, taken, not-taken; then the cycle repeats.
        assert!(p.outcome(&mut ctr, 0));
        assert!(p.outcome(&mut ctr, 0));
        assert!(!p.outcome(&mut ctr, 0));
        assert!(p.outcome(&mut ctr, 0));
        assert!(p.outcome(&mut ctr, 0));
        assert!(!p.outcome(&mut ctr, 0));
    }

    #[test]
    fn loop_count_one_never_taken() {
        let p = BranchPat::Loop { count: 1 };
        let mut ctr = 0;
        for _ in 0..5 {
            assert!(!p.outcome(&mut ctr, 0));
        }
    }

    #[test]
    fn every_k_taken_on_kth() {
        let p = BranchPat::Every { k: 4 };
        let mut ctr = 0;
        let outcomes: Vec<bool> = (0..8).map(|_| p.outcome(&mut ctr, 0)).collect();
        assert_eq!(
            outcomes,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn always_never() {
        let mut c = 0;
        assert!(BranchPat::Always.outcome(&mut c, 0));
        assert!(!BranchPat::Never.outcome(&mut c, 255));
    }

    #[test]
    fn rand_probability_rough() {
        let p = BranchPat::Rand { p_num: 128 };
        let mut c = 0;
        let taken = (0..=255u16).filter(|&b| p.outcome(&mut c, b as u8)).count();
        assert_eq!(taken, 128); // bytes 0..128 are taken
    }

    #[test]
    fn classification_helpers() {
        assert!(Inst::FAdd.is_fp_arith());
        assert!(!Inst::FCvt.is_fp_arith());
        assert!(Inst::Load(AddrGen::Fixed { addr: 0 }).is_mem());
        assert!(Inst::Ret.is_control());
        assert!(!Inst::Nop.is_control());
    }
}
